//! Offline stand-in for the `crossbeam` API surface this workspace uses:
//! the work-stealing `deque` module and `thread::scope`. Semantics match
//! upstream (FIFO worker deques, `Steal` retry stickiness, scoped join on
//! exit); the implementation trades the lock-free internals for simple
//! mutex-protected deques, which is plenty for a handful of sweep workers.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Whether the source was empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// Whether the attempt should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// Whether a task was stolen.
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }

        /// Returns this steal if it succeeded, otherwise evaluates `f`;
        /// `Retry` is sticky over a later `Empty`, as upstream.
        pub fn or_else<F>(self, f: F) -> Steal<T>
        where
            F: FnOnce() -> Steal<T>,
        {
            match self {
                Steal::Empty => f(),
                Steal::Success(task) => Steal::Success(task),
                Steal::Retry => match f() {
                    Steal::Empty => Steal::Retry,
                    other => other,
                },
            }
        }
    }

    impl<T> FromIterator<Steal<T>> for Steal<T> {
        /// The first success wins and short-circuits; otherwise `Retry`
        /// if any attempt asked for one, else `Empty`.
        fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
            let mut retry = false;
            for steal in iter {
                match steal {
                    Steal::Success(task) => return Steal::Success(task),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if retry {
                Steal::Retry
            } else {
                Steal::Empty
            }
        }
    }

    /// Global FIFO task injector.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the global queue.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("injector lock").push_back(task);
        }

        /// Pops one task directly.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector lock").pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Steals a batch into `dest`'s local queue and pops one task for
        /// the caller, like upstream's `steal_batch_and_pop`.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut queue = self.queue.lock().expect("injector lock");
            let first = match queue.pop_front() {
                Some(task) => task,
                None => return Steal::Empty,
            };
            let batch = (queue.len() / 2).min(16);
            let mut local = dest.queue.lock().expect("worker lock");
            for _ in 0..batch {
                match queue.pop_front() {
                    Some(task) => local.push_back(task),
                    None => break,
                }
            }
            Steal::Success(first)
        }

        /// Whether the global queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector lock").is_empty()
        }
    }

    /// A worker's local FIFO queue.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker queue.
        pub fn new_fifo() -> Worker<T> {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes onto the local queue.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("worker lock").push_back(task);
        }

        /// Pops from the local queue (FIFO order).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("worker lock").pop_front()
        }

        /// Whether the local queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker lock").is_empty()
        }

        /// A handle other workers can steal from.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A steal handle onto another worker's queue.
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the owning worker's queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("stealer lock").pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }
    }
}

/// Scoped threads, wrapping `std::thread::scope` behind crossbeam's
/// `Result`-returning signature.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// What `scope` returns: `Err` carries a child thread's panic payload,
    /// which is what callers `.expect()` on.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope in which borrowing threads can be spawned.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A join handle for a scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope; the closure receives the
        /// scope again so it can spawn siblings, as upstream.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing spawns are allowed; all
    /// spawned threads are joined before this returns. A panic in an
    /// unjoined child surfaces as `Err`, like upstream.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn injector_batch_and_steal_order() {
        let injector: Injector<u32> = Injector::new();
        for i in 0..10 {
            injector.push(i);
        }
        let local = Worker::new_fifo();
        assert_eq!(injector.steal_batch_and_pop(&local), Steal::Success(0));
        let mut drained = Vec::new();
        while let Some(v) = local.pop() {
            drained.push(v);
        }
        assert!(!drained.is_empty());
        assert!(drained.windows(2).all(|w| w[0] < w[1]), "FIFO order");
    }

    #[test]
    fn steal_collect_prefers_success() {
        let steals = vec![Steal::Empty, Steal::Retry, Steal::Success(7u8)];
        let collected: Steal<u8> = steals.into_iter().collect();
        assert_eq!(collected, Steal::Success(7));
        let collected: Steal<u8> = vec![Steal::Empty, Steal::Retry].into_iter().collect();
        assert!(collected.is_retry());
    }

    #[test]
    fn scope_joins_and_propagates() {
        let mut data = vec![0u64; 4];
        let result = super::thread::scope(|s| {
            let mut handles = Vec::new();
            for (i, slot) in data.iter_mut().enumerate() {
                handles.push(s.spawn(move |_| *slot = i as u64 + 1));
            }
            for h in handles {
                h.join().expect("worker");
            }
            42
        });
        assert_eq!(result.expect("scope"), 42);
        assert_eq!(data, vec![1, 2, 3, 4]);
    }
}
