//! Offline stand-in for `serde_derive`: the derive macros emit empty
//! marker impls of the stand-in `serde` traits. No `syn`/`quote` — the
//! type name is read straight off the token stream, which is enough for
//! the workspace's derives (plain structs and enums without generics).

use proc_macro::{TokenStream, TokenTree};

/// The identifier following the first `struct` or `enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            assert!(
                                p.as_char() != '<',
                                "offline serde_derive stand-in: generic types unsupported"
                            );
                        }
                        return name.to_string();
                    }
                    other => panic!("offline serde_derive stand-in: expected type name, got {other:?}"),
                }
            }
        }
    }
    panic!("offline serde_derive stand-in: no struct or enum in derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("well-formed impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("well-formed impl")
}
