//! Offline stand-in for `proptest`. Property exploration needs the real
//! crate; offline, the `proptest!` macro expands to nothing so the
//! deterministic seeded-grid tests beside each property carry the
//! coverage. Strategy constructors used *outside* `proptest!` blocks
//! (`Just`, `prop_oneof!`, `Strategy`) are real types so helper functions
//! returning `impl Strategy<Value = T>` still compile.

/// Strategy types: the compile-time surface of proptest strategies.
pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A value-generation strategy (marker form: no runner offline).
    pub trait Strategy {
        /// The type of values the strategy produces.
        type Value;
    }

    /// Strategy producing exactly one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T> Strategy for Just<T> {
        type Value = T;
    }

    /// Uniform choice between same-typed alternatives (`prop_oneof!`).
    #[derive(Debug, Clone, Copy)]
    pub struct Union<A> {
        /// The wrapped alternatives.
        pub alternatives: A,
    }

    impl<A> Union<A> {
        /// Builds a union over the given alternatives.
        pub fn new(alternatives: A) -> Union<A> {
            Union { alternatives }
        }
    }

    // First-arm selection is enough for the compile-only strategies: every
    // arm produces the same `Value` type and the runner never executes.
    macro_rules! union_strategy {
        ($first:ident $(, $rest:ident)*) => {
            impl<$first: Strategy $(, $rest)*> Strategy for Union<($first, $($rest),*)> {
                type Value = $first::Value;
            }
        };
    }

    union_strategy!(A);
    union_strategy!(A, B);
    union_strategy!(A, B, C);
    union_strategy!(A, B, C, D);
    union_strategy!(A, B, C, D, E);
    union_strategy!(A, B, C, D, E, F);
    union_strategy!(A, B, C, D, E, F, G);
    union_strategy!(A, B, C, D, E, F, G, H);

    impl<T> Strategy for Range<T> {
        type Value = T;
    }

    impl<T> Strategy for RangeInclusive<T> {
        type Value = T;
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);

    /// Compile-only stand-in for `any::<T>()`-style element markers.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Strategy for AnyStrategy<T> {
        type Value = T;
    }

    /// Arbitrary-value marker (`any::<T>()`).
    pub fn any<T>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies (compile-only stand-ins).
pub mod collection {
    use super::strategy::Strategy;

    /// Vec strategy over `element` with lengths drawn from `size`.
    #[derive(Debug, Clone, Copy)]
    pub struct VecStrategy<E, S> {
        /// The element strategy and size range.
        pub element: E,
        /// Lengths the real runner would draw from.
        pub size: S,
    }

    /// Strategy for a `Vec` of values from an element strategy.
    pub fn vec<E, S>(element: E, size: S) -> VecStrategy<E, S> {
        VecStrategy { element, size }
    }

    impl<E: Strategy, S> Strategy for VecStrategy<E, S> {
        type Value = Vec<E::Value>;
    }
}

/// Runner configuration; accepted and ignored offline.
#[derive(Debug, Clone, Default)]
pub struct ProptestConfig {
    /// Maximum shrink iterations the real runner would use.
    pub max_shrink_iters: u32,
    /// Test cases per property the real runner would execute.
    pub cases: u32,
}

/// The whole `proptest!` block vanishes offline: the deterministic
/// `#[test]` twins beside each property provide the coverage.
#[macro_export]
macro_rules! proptest {
    ($($tt:tt)*) => {};
}

/// Builds a union over the given alternatives; the first arm fixes the
/// `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(($($arm),+,))
    };
    () => {
        compile_error!("prop_oneof! needs an arm")
    };
}

/// The prelude glob the workspace imports.
pub mod prelude {
    pub use crate::strategy::{any, AnyStrategy, Just, Strategy, Union};
    pub use crate::{prop_oneof, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn three_way() -> impl Strategy<Value = u8> {
        prop_oneof![Just(1u8), Just(2u8), Just(3u8)]
    }

    #[test]
    fn strategies_compile_and_block_vanishes() {
        let _ = three_way();
        let _ = crate::collection::vec(any::<u8>(), 0..10);
        proptest! {
            fn this_never_runs(x in 0u8..10) {
                panic!("the offline proptest! block must expand to nothing: {x}");
            }
        }
    }
}
