//! Offline stand-in for `serde`. The workspace derives `Serialize` /
//! `Deserialize` on config and metrics types for downstream tooling, but
//! never serializes through serde at runtime (JSON output is hand-rolled
//! in `converge-trace`), so the traits carry no methods: the derive macros
//! emit empty marker impls and everything compiles without crates.io.
//!
//! The `derive` feature exists so `features = ["derive"]` dependency
//! declarations resolve; it pulls in the matching stand-in proc macro.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
