//! Offline stand-in for the subset of the `bytes` crate — `Bytes`,
//! `BytesMut`, `Buf`, and `BufMut` this workspace uses, with the same
//! semantics (network byte order, cheap clones, panics on short reads).
//! `Bytes` is an `Arc<[u8]>` plus a `[start, end)` window, so `clone`,
//! `slice`, and `split_to` are O(1) and share storage.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte view.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// A view over a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Bytes {
        Bytes::from_static(data)
    }
}

impl From<BytesMut> for Bytes {
    fn from(buf: BytesMut) -> Bytes {
        buf.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with `capacity` reserved.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> BytesMut {
        BytesMut { buf: vec![0; len] }
    }

    /// Length of the buffer.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reserves additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let rest = self.buf.split_off(at);
        let head = std::mem::replace(&mut self.buf, rest);
        BytesMut { buf: head }
    }

    /// Freezes into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> BytesMut {
        BytesMut { buf }
    }
}

/// Read access to a byte cursor: network (big-endian) byte order, panics
/// on short reads, exactly like the real crate's `Buf`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_be_bytes(b)
    }

    /// Reads a big-endian unsigned integer of `nbytes` bytes.
    fn get_uint(&mut self, nbytes: usize) -> u64 {
        assert!(nbytes <= 8, "get_uint: at most 8 bytes");
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b[8 - nbytes..]);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.buf
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.buf.drain(..cnt);
    }
}

/// Write access to a growable buffer: network (big-endian) byte order.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes the low `nbytes` bytes of `v`, big-endian.
    fn put_uint(&mut self, v: u64, nbytes: usize) {
        assert!(nbytes <= 8, "put_uint: at most 8 bytes");
        self.put_slice(&v.to_be_bytes()[8 - nbytes..]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_network_order() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(0x0102);
        buf.put_u32(0xdead_beef);
        buf.put_u64(42);
        buf.put_i32(-5);
        buf.put_uint(0x0a0b0c, 3);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u16(), 0x0102);
        assert_eq!(bytes.get_u32(), 0xdead_beef);
        assert_eq!(bytes.get_u64(), 42);
        assert_eq!(bytes.get_i32(), -5);
        assert_eq!(bytes.get_uint(3), 0x0a0b0c);
        assert!(bytes.is_empty());
    }

    #[test]
    fn slices_share_storage() {
        let bytes = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mid = bytes.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let mut tail = bytes.clone();
        let head = tail.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&tail[..], &[3, 4, 5]);
        assert_eq!(bytes.len(), 5);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut short: &[u8] = &[1];
        let _ = short.get_u32();
    }
}
