//! Offline stand-in for the `rand` 0.8 API surface this workspace uses.
//!
//! The container this repo builds in has no crates.io access, so the
//! workspace `[patch.crates-io]` section substitutes this crate. It is
//! **bit-exact** with rand 0.8.5 for every API the simulator calls:
//! `SmallRng` is xoshiro256++ with the SplitMix64 `seed_from_u64`,
//! `gen_bool` is the fixed-point Bernoulli, integer `gen_range` is
//! Lemire-style widening-multiply rejection, and float `gen_range` is the
//! [1, 2) mantissa-fill method. Bit-exactness matters: every seeded
//! fixture in the repo (golden traces, loss sequences) was produced from
//! exact streams the real crate produced. The xoshiro reference vector
//! from the upstream test suite is pinned in this crate's tests.

use std::ops::{Range, RangeInclusive};

/// Random number generator trait: the subset of `rand_core::RngCore` the
/// workspace uses, with identical stream consumption per call.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable RNG constructors (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;
    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Constructs from a `u64` seed (algorithm chosen by the generator;
    /// xoshiro uses SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Samples a value via the `Standard` distribution (`u64`, `f64`,
/// `u32`, `bool` supported).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl StandardSample for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl StandardSample for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl StandardSample for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl StandardSample for f64 {
    /// 53-bit multiply method of rand 0.8: `(next_u64 >> 11)
    /// * 2^-53`, uniform on [0, 1).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    /// rand 0.8 compares the most significant bit of a `u32`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        (rng.next_u32() as i32) < 0
    }
}

/// Widening multiply: the full 2N-bit product split into (high, low).
trait WideningMul: Sized {
    fn widening(self, other: Self) -> (Self, Self);
}

impl WideningMul for u32 {
    fn widening(self, other: u32) -> (u32, u32) {
        let prod = self as u64 * other as u64;
        ((prod >> 32) as u32, prod as u32)
    }
}

impl WideningMul for u64 {
    fn widening(self, other: u64) -> (u64, u64) {
        let prod = self as u128 * other as u128;
        ((prod >> 64) as u64, prod as u64)
    }
}

impl WideningMul for usize {
    fn widening(self, other: usize) -> (usize, usize) {
        let (hi, lo) = (self as u64).widening(other as u64);
        (hi as usize, lo as usize)
    }
}

/// Types uniform ranges can be sampled for.
pub trait SampleUniform: Sized {
    /// One sample from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// One sample from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int_impl {
    ($ty:ty, $uty:ty, $ularge:ty) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "gen_range: empty range");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                assert!(low <= high, "gen_range: empty range");
                let range = (high as $uty).wrapping_sub(low as $uty).wrapping_add(1) as $ularge;
                // Full integer range: every draw is in range.
                if range == 0 {
                    return <$ty as StandardSample>::sample_standard(rng);
                }
                let zone = if (<$uty>::MAX as u64) <= (u16::MAX as u64) {
                    // Small types widen to u32: mirror rand 0.8's
                    // `ints_to_reject` zone computation.
                    let unsigned_max: $ularge = <$ularge>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = <$ularge as StandardSample>::sample_standard(rng);
                    let (hi, lo) = v.widening(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl! { u8, u8, u32 }
uniform_int_impl! { u16, u16, u32 }
uniform_int_impl! { u32, u32, u32 }
uniform_int_impl! { u64, u64, u64 }
uniform_int_impl! { usize, usize, usize }
uniform_int_impl! { i32, u32, u32 }
uniform_int_impl! { i64, u64, u64 }

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $exp_bias:expr, $mant_bits:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(
                    low.is_finite() && high.is_finite(),
                    "gen_range: low and high must be finite"
                );
                assert!(low < high, "gen_range: empty range");
                let scale = high - low;
                loop {
                    // A value in [1, 2): random mantissa under a fixed
                    // exponent, exactly rand 0.8's
                    // `into_float_with_exponent(0)`.
                    let fraction =
                        <$uty as StandardSample>::sample_standard(rng) >> $bits_to_discard;
                    let value1_2 =
                        <$ty>::from_bits(fraction | (($exp_bias as $uty) << $mant_bits));
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                }
            }

            // Inclusive float ranges are unused by the workspace; the
            // half-open sampler is stream-compatible for all callers.
            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                Self::sample_single(low, high, rng)
            }
        }
    };
}

uniform_float_impl! { f64, u64, 12, 1023u64, 52 }
uniform_float_impl! { f32, u32, 9, 127u32, 23 }

/// Range argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_single_inclusive(low, high, rng)
    }
}

/// Random number generator trait: the subset of `rand::Rng` the
/// workspace uses, with identical stream consumption per call. Extension
/// methods over [`RngCore`], mirroring rand 0.8's blanket impl.
pub trait Rng: RngCore {
    /// Draws one sample from the `Standard` distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws one sample from the range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        Self: Sized,
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` of `true`, via rand 0.8's
    /// fixed-point comparison: `p` maps to `(p * 2^64) as u64` and one
    /// `u64` draw decides. Always consumes one `u64`, exactly like
    /// rand 0.8's `Bernoulli`, except for `p == 1.0` which short-circuits
    /// without a draw (the `ALWAYS_TRUE` case upstream).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        if p == 1.0 {
            return true;
        }
        let scale = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * scale) as u64;
        self.next_u64() < p_int
    }

    /// Fills a byte slice (delegates to [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, rand 0.8's 64-bit `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        /// High 32 bits of the next 64, the xoshiro-specific override in
        /// rand 0.8, not the generic one from `rand_core`.
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let res = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            res
        }

        /// `rand_core::impls::fill_bytes_via_next`: whole little-endian
        /// `u64` words, then one trailing `u64` (> 4 bytes left) or `u32`
        /// (<= 4 bytes left), preserved for stream compatibility.
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut left = dest;
            while left.len() >= 8 {
                let (chunk, rest) = left.split_at_mut(8);
                left = rest;
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let n = left.len();
            if n > 4 {
                left.copy_from_slice(&self.next_u64().to_le_bytes()[..n]);
            } else if n > 0 {
                left.copy_from_slice(&self.next_u32().to_le_bytes()[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            if seed.iter().all(|&b| b == 0) {
                return SmallRng::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            SmallRng { s }
        }

        /// SplitMix64 expansion of the seed into the four state words,
        /// exactly as rand 0.8's xoshiro `seed_from_u64`.
        fn seed_from_u64(mut state: u64) -> SmallRng {
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                *word = z;
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    /// The xoshiro256++ reference vector from the upstream rand 0.8.5
    /// test suite (state words 1, 2, 3, 4), produced with the reference
    /// C implementation at <http://xoshiro.di.unimi.it>.
    #[test]
    fn xoshiro_reference_vector() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seed_from_u64_is_splitmix() {
        // SplitMix64(0) first output, from the reference implementation.
        let mut rng = SmallRng::seed_from_u64(0);
        let first = rng.next_u64();
        let mut again = SmallRng::seed_from_u64(0);
        assert_eq!(first, again.next_u64());
        assert_ne!(
            SmallRng::seed_from_u64(1).next_u64(),
            SmallRng::seed_from_u64(2).next_u64()
        );
    }

    #[test]
    fn gen_bool_consumes_one_u64() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let _ = a.gen_bool(0.25);
        let _ = b.next_u64();
        assert_eq!(a, b);
        // p == 1.0 short-circuits without a draw.
        let mut c = SmallRng::seed_from_u64(9);
        assert!(c.gen_bool(1.0));
        let mut d = SmallRng::seed_from_u64(9);
        assert_eq!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&w));
            let x = rng.gen_range(0usize..=5);
            assert!(x <= 5);
        }
    }
}
