//! Offline stand-in for `criterion`: the macro and builder surface the
//! workspace benches use, backed by a small wall-clock harness. Each
//! bench warms up, runs timed batches until a fixed measurement budget
//! elapses, and prints a mean time per iteration. `--quick` shrinks the
//! budget so CI smoke runs stay cheap; a substring argument filters
//! bench IDs just like the real harness.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for callers that use `criterion::black_box`.
pub use std::hint::black_box;

/// A named benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only form (joins onto the group name).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as bench IDs.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to bench closures; `iter` runs and times the workload.
pub struct Bencher<'a> {
    budget: Duration,
    out: &'a mut Vec<String>,
    id: String,
}

impl Bencher<'_> {
    /// Times `routine` over enough iterations to fill the harness
    /// budget and records the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until a sliver of the budget elapses.
        let warmup_until = Instant::now() + self.budget / 10;
        while Instant::now() < warmup_until {
            black_box(routine());
        }
        let started = Instant::now();
        let mut iters: u64 = 0;
        while started.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
        }
        let mean_ns = started.elapsed().as_nanos() as f64 / iters.max(1) as f64;
        self.out
            .push(format!("{:<48} time: {:>14.1} ns/iter", self.id, mean_ns));
    }
}

/// The harness entry point: filtering plus the measurement budget.
pub struct Criterion {
    filter: Option<String>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            filter: None,
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Applies harness CLI arguments: `--quick` shrinks the budget, a
    /// bare argument filters bench IDs by substring, and the flags cargo
    /// itself passes (`--bench`) are accepted and ignored.
    pub fn configure_from_args(mut self) -> Criterion {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => self.budget = Duration::from_millis(30),
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        if !self.selected(&id) {
            return;
        }
        let mut out = Vec::new();
        let mut bencher = Bencher {
            budget: self.budget,
            out: &mut out,
            id,
        };
        f(&mut bencher);
        for line in out {
            println!("{line}");
        }
    }

    /// Runs one benchmark under `id`.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnOnce(&mut Bencher)) {
        self.run_one(id.into_benchmark_id(), f);
    }

    /// Opens a named group; bench IDs are `group/bench`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Prints the closing summary (a no-op in the stand-in harness).
    pub fn final_summary(&self) {}
}

/// A group of related benches sharing a name prefix and budget tweaks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in harness is
    /// budget-driven rather than sample-count-driven.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.budget = budget.min(Duration::from_secs(2));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(id, f);
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring the real macro's simple
/// `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
            criterion.final_summary();
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            budget: Duration::from_millis(5),
        };
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0, "bencher must execute the routine");
        let mut group = c.benchmark_group("grp");
        group.sample_size(10).measurement_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| x + 1)
        });
        group.finish();
    }

    #[test]
    fn filter_skips_unmatched() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
            budget: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
    }
}
