#!/usr/bin/env bash
# Tier-1 gate: lint, build, unit/integration tests, a quick-scale smoke
# run of the full experiment sweep on 2 workers (exercises the
# work-stealing pool, the memo cache, and the bench-report writer), a
# traced experiment run with JSONL timeline validation, the chaos
# fault-injection matrix with the invariant checker armed, a fleet-engine
# smoke cell with invariants armed on every member, and the two perf
# ratchets (fig11 event loop, 1000-session fleet cell).
set -euo pipefail
cd "$(dirname "$0")"

cargo clippy -q --all-targets -- -D warnings
cargo build --release
cargo test -q

mkdir -p results
cargo run --release -p converge-bench --bin experiments -- \
    all --quick --jobs 2 --bench-json results/BENCH_sweep.json > results/smoke_all.txt
test -s results/smoke_all.txt
grep -q '"schema": "converge-bench/sweep/v1"' results/BENCH_sweep.json

# Traced run: fig11 writes one JSONL timeline per job; validate schema,
# field presence, and monotone timestamps.
rm -rf results/traces
cargo run --release -p converge-bench --bin experiments -- \
    fig11 --quick --jobs 2 --trace results/traces > results/smoke_fig11.txt
ls results/traces/*.jsonl > /dev/null
for f in results/traces/*.jsonl; do
    head -1 "$f" | grep -q '"schema":"converge-trace/v1"'
    head -1 "$f" | grep -q '"job":"'
    # Every record line carries at_us + event, and at_us never decreases.
    tail -n +2 "$f" | awk '
        !/"at_us":[0-9]+/ || !/"event":"[a-z_]+"/ { print "bad record: " $0; exit 1 }
        { at = $0; sub(/.*"at_us":/, "", at); sub(/[,}].*/, "", at) }
        at + 0 < prev + 0 { print "timestamp regression at " NR ": " at " < " prev; exit 1 }
        { prev = at }
    '
    test -s "${f%.jsonl}.timeline.txt"
done

# Chaos gate: the fault-injection matrix (scheduler x impairment x seed)
# with every timeline replayed through the control-loop invariant rules;
# --check-invariants exits non-zero on any violation.
cargo run --release -p converge-bench --bin experiments -- \
    chaos --quick --jobs 2 --check-invariants > results/smoke_chaos.txt
test -s results/smoke_chaos.txt
grep -q 'Chaos matrix' results/smoke_chaos.txt

# Controller-shootout gate: 1 seed x 3 controllers (GCC, NADA, mp-BBR)
# through the full scheduler/FEC loop with the invariant checker armed —
# proves the non-default controllers hold the control-loop invariants.
cargo run --release -p converge-bench --bin experiments -- \
    shootout --quick --jobs 2 --check-invariants > results/smoke_shootout.txt
test -s results/smoke_shootout.txt
grep -q 'mp-BBR' results/smoke_shootout.txt
grep -q 'NADA' results/smoke_shootout.txt

# Drive-replay gate: the committed 4/6/8-path drive fixtures through
# scheduler x controller (1 seed at quick scale) with the invariant
# checker armed — proves the time-varying drive links hold the
# control-loop invariants across every topology width.
cargo run --release -p converge-bench --bin experiments -- \
    drive --quick --jobs 2 --check-invariants > results/smoke_drive.txt
test -s results/smoke_drive.txt
grep -q 'blackout-flap' results/smoke_drive.txt
grep -q 'coverage-gaps' results/smoke_drive.txt
grep -q 'handover' results/smoke_drive.txt

# Fleet smoke gate: ~200 concurrent sessions through SFU bottlenecks in
# the sharded fleet engine with the control-loop invariant checker armed
# on every member; the stdout fold must carry the QoE-fairness quantiles.
cargo run --release -p converge-bench --bin experiments -- \
    fleet --quick --sessions 200 --conference-size 4 --shards 2 \
    --check-invariants > results/smoke_fleet.txt
test -s results/smoke_fleet.txt
grep -q '^qoe|p5=' results/smoke_fleet.txt
grep -q '^total|decoded=' results/smoke_fleet.txt

# Idle-skip equivalence gate: chaos + drive scenario generators, idle-skip
# off vs on must produce byte-identical trace streams and QoE folds. The
# pinned seed grid already ran under `cargo test` above; this re-runs the
# suite with a fixed proptest case budget so a real (non-stub) proptest
# explores the same bounded space deterministically on every CI run.
PROPTEST_CASES=32 cargo test -q -p converge-integration --test idle_skip_equivalence

# Perf ratchets: re-run each committed cell single-worker with bench
# accounting and gate against its trajectory (results/BENCH_fig11.json
# for the single-session event loop, results/BENCH_fleet.json for the
# 1000-session fleet engine). A fresh run must stay within the noise
# margin of the BEST committed run — appending a higher run to a
# trajectory is the only way a floor moves, and it only moves up. The
# gate itself is unit-tested against fixture JSON pairs first.
bash scripts/perf_ratchet_test.sh
cargo run --release -p converge-bench --bin experiments -- \
    fig11 --quick --jobs 1 --bench-json results/BENCH_fig11.current.json > /dev/null
bash scripts/perf_ratchet.sh results/BENCH_fig11.json results/BENCH_fig11.current.json
cargo run --release -p converge-bench --bin experiments -- \
    fleet --sessions 1000 --conference-size 4 --duration-s 20 --shards 1 \
    --bench-json results/BENCH_fleet.current.json > /dev/null
bash scripts/perf_ratchet.sh results/BENCH_fleet.json results/BENCH_fleet.current.json

echo "ci: ok"
