#!/usr/bin/env bash
# Tier-1 gate: lint, build, unit/integration tests, a quick-scale smoke
# run of the full experiment sweep on 2 workers (exercises the
# work-stealing pool, the memo cache, and the bench-report writer), a
# traced experiment run with JSONL timeline validation, and the chaos
# fault-injection matrix with the invariant checker armed.
set -euo pipefail
cd "$(dirname "$0")"

cargo clippy -q --all-targets -- -D warnings
cargo build --release
cargo test -q

mkdir -p results
cargo run --release -p converge-bench --bin experiments -- \
    all --quick --jobs 2 --bench-json results/BENCH_sweep.json > results/smoke_all.txt
test -s results/smoke_all.txt
grep -q '"schema": "converge-bench/sweep/v1"' results/BENCH_sweep.json

# Traced run: fig11 writes one JSONL timeline per job; validate schema,
# field presence, and monotone timestamps.
rm -rf results/traces
cargo run --release -p converge-bench --bin experiments -- \
    fig11 --quick --jobs 2 --trace results/traces > results/smoke_fig11.txt
ls results/traces/*.jsonl > /dev/null
for f in results/traces/*.jsonl; do
    head -1 "$f" | grep -q '"schema":"converge-trace/v1"'
    head -1 "$f" | grep -q '"job":"'
    # Every record line carries at_us + event, and at_us never decreases.
    tail -n +2 "$f" | awk '
        !/"at_us":[0-9]+/ || !/"event":"[a-z_]+"/ { print "bad record: " $0; exit 1 }
        { at = $0; sub(/.*"at_us":/, "", at); sub(/[,}].*/, "", at) }
        at + 0 < prev + 0 { print "timestamp regression at " NR ": " at " < " prev; exit 1 }
        { prev = at }
    '
    test -s "${f%.jsonl}.timeline.txt"
done

# Chaos gate: the fault-injection matrix (scheduler x impairment x seed)
# with every timeline replayed through the control-loop invariant rules;
# --check-invariants exits non-zero on any violation.
cargo run --release -p converge-bench --bin experiments -- \
    chaos --quick --jobs 2 --check-invariants > results/smoke_chaos.txt
test -s results/smoke_chaos.txt
grep -q 'Chaos matrix' results/smoke_chaos.txt

echo "ci: ok"
