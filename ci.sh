#!/usr/bin/env bash
# Tier-1 gate: lint, build, unit/integration tests, a quick-scale smoke
# run of the full experiment sweep on 2 workers (exercises the
# work-stealing pool, the memo cache, and the bench-report writer), a
# traced experiment run with JSONL timeline validation, and the chaos
# fault-injection matrix with the invariant checker armed.
set -euo pipefail
cd "$(dirname "$0")"

cargo clippy -q --all-targets -- -D warnings
cargo build --release
cargo test -q

mkdir -p results
cargo run --release -p converge-bench --bin experiments -- \
    all --quick --jobs 2 --bench-json results/BENCH_sweep.json > results/smoke_all.txt
test -s results/smoke_all.txt
grep -q '"schema": "converge-bench/sweep/v1"' results/BENCH_sweep.json

# Traced run: fig11 writes one JSONL timeline per job; validate schema,
# field presence, and monotone timestamps.
rm -rf results/traces
cargo run --release -p converge-bench --bin experiments -- \
    fig11 --quick --jobs 2 --trace results/traces > results/smoke_fig11.txt
ls results/traces/*.jsonl > /dev/null
for f in results/traces/*.jsonl; do
    head -1 "$f" | grep -q '"schema":"converge-trace/v1"'
    head -1 "$f" | grep -q '"job":"'
    # Every record line carries at_us + event, and at_us never decreases.
    tail -n +2 "$f" | awk '
        !/"at_us":[0-9]+/ || !/"event":"[a-z_]+"/ { print "bad record: " $0; exit 1 }
        { at = $0; sub(/.*"at_us":/, "", at); sub(/[,}].*/, "", at) }
        at + 0 < prev + 0 { print "timestamp regression at " NR ": " at " < " prev; exit 1 }
        { prev = at }
    '
    test -s "${f%.jsonl}.timeline.txt"
done

# Chaos gate: the fault-injection matrix (scheduler x impairment x seed)
# with every timeline replayed through the control-loop invariant rules;
# --check-invariants exits non-zero on any violation.
cargo run --release -p converge-bench --bin experiments -- \
    chaos --quick --jobs 2 --check-invariants > results/smoke_chaos.txt
test -s results/smoke_chaos.txt
grep -q 'Chaos matrix' results/smoke_chaos.txt

# Controller-shootout gate: 1 seed x 3 controllers (GCC, NADA, mp-BBR)
# through the full scheduler/FEC loop with the invariant checker armed —
# proves the non-default controllers hold the control-loop invariants.
cargo run --release -p converge-bench --bin experiments -- \
    shootout --quick --jobs 2 --check-invariants > results/smoke_shootout.txt
test -s results/smoke_shootout.txt
grep -q 'mp-BBR' results/smoke_shootout.txt
grep -q 'NADA' results/smoke_shootout.txt

# Drive-replay gate: the committed 4/6/8-path drive fixtures through
# scheduler x controller (1 seed at quick scale) with the invariant
# checker armed — proves the time-varying drive links hold the
# control-loop invariants across every topology width.
cargo run --release -p converge-bench --bin experiments -- \
    drive --quick --jobs 2 --check-invariants > results/smoke_drive.txt
test -s results/smoke_drive.txt
grep -q 'blackout-flap' results/smoke_drive.txt
grep -q 'coverage-gaps' results/smoke_drive.txt
grep -q 'handover' results/smoke_drive.txt

# Perf trajectory: re-run fig11 with bench accounting and compare the
# sim-s/wall-s throughput against the committed baseline. The threshold
# is deliberately generous (>= 1/4 of baseline) — it catches order-of-
# magnitude regressions (accidental O(n^2), debug spew), not machine
# noise.
cargo run --release -p converge-bench --bin experiments -- \
    fig11 --quick --jobs 2 --bench-json results/BENCH_fig11.current.json > /dev/null
awk '
    FNR == 1 { file++ }
    /"sim_s_per_wall_s"/ {
        v = $0; sub(/.*"sim_s_per_wall_s": */, "", v); sub(/,.*/, "", v)
        rate[file] = v + 0
    }
    END {
        if (rate[1] <= 0) { print "ci: missing baseline sim_s_per_wall_s"; exit 1 }
        if (rate[2] < rate[1] / 4) {
            printf "ci: fig11 throughput regressed: %.1f sim-s/wall-s vs baseline %.1f\n", rate[2], rate[1]
            exit 1
        }
        printf "ci: fig11 throughput %.1f sim-s/wall-s (baseline %.1f)\n", rate[2], rate[1]
    }
' results/BENCH_fig11.json results/BENCH_fig11.current.json

echo "ci: ok"
