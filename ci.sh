#!/usr/bin/env bash
# Tier-1 gate: build, unit/integration tests, and a quick-scale smoke run
# of the full experiment sweep on 2 workers (exercises the work-stealing
# pool, the memo cache, and the bench-report writer).
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q

mkdir -p results
cargo run --release -p converge-bench --bin experiments -- \
    all --quick --jobs 2 --bench-json results/BENCH_sweep.json > results/smoke_all.txt
test -s results/smoke_all.txt
grep -q '"schema": "converge-bench/sweep/v1"' results/BENCH_sweep.json
echo "ci: ok"
