//! Multi-camera driving comparison: the paper's motivating workload —
//! conferencing with up to three camera streams from a moving vehicle —
//! run over every scheduler, printing a Figure-3-style comparison.
//!
//! ```text
//! cargo run --release -p converge-sim --example multicamera_drive
//! ```

use converge_net::SimDuration;
use converge_sim::{FecKind, ScenarioConfig, SchedulerKind, Session, SessionConfig};

fn main() {
    let duration = SimDuration::from_secs(60);
    let systems: [(SchedulerKind, FecKind); 5] = [
        (SchedulerKind::SinglePath(1), FecKind::WebRtcTable), // WebRTC on cellular A
        (SchedulerKind::MRtp, FecKind::WebRtcTable),
        (SchedulerKind::MTput, FecKind::WebRtcTable),
        (SchedulerKind::Srtt, FecKind::WebRtcTable),
        (SchedulerKind::Converge, FecKind::Converge),
    ];

    println!("Multi-camera video conferencing while driving (60 s per call)");
    println!();
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "system", "streams", "fps/cam", "freeze ms", "fec ovh %", "e2e ms"
    );

    for streams in 1..=3u8 {
        for (scheduler, fec) in systems {
            let config = SessionConfig::builder()
                .scenario(ScenarioConfig::driving(duration, 42))
                .scheduler(scheduler)
                .fec(fec)
                .streams(streams)
                .duration(duration)
                .seed(42)
                .build()
                .expect("valid session config");
            let r = Session::new(config).run();
            println!(
                "{:<22} {:>8} {:>10.1} {:>10.0} {:>12.1} {:>10.1}",
                scheduler.label(),
                streams,
                r.fps_per_stream(),
                r.freeze_total_ms,
                r.fec_overhead_pct(),
                r.e2e_mean_ms
            );
        }
        println!();
    }
    println!("Expected shape (paper Fig. 3): the naive multipath variants drop");
    println!("below single-path WebRTC on FPS and pile up FEC overhead, while");
    println!("Converge holds the highest FPS with the least overhead.");
}
