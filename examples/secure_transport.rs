//! Secure multipath transport: protect RTP payloads with the SRTP-style
//! transform (path-aware nonces, per-path replay windows) and watch the
//! connection monitor react as a path goes silent and comes back — the
//! RTP/SRTP and connection-management extensions of paper section 5.
//!
//! ```text
//! cargo run --release -p converge-sim --example secure_transport
//! ```

use converge_net::{PathId, SimTime};
use converge_rtp::{SrtpContext, SrtpError};
use converge_signal::{ConnectionMonitor, MonitorConfig, PathState};

fn main() {
    println!("--- SRTP-style protection across paths ---");
    // Both endpoints derive the same context from the (DTLS) session key.
    let sender_ctx = SrtpContext::new(0x5EC0_7E55);
    let mut receiver_ctx = SrtpContext::new(0x5EC0_7E55);

    let payload = b"keyframe slice: independent decode anchor";
    // The same media sequence duplicated over two paths (a Converge probe
    // duplicate) must produce different ciphertexts and both must verify.
    let on_path0 = sender_ctx.protect(7, 1000, 0, payload);
    let on_path1 = sender_ctx.protect(7, 1000, 1, payload);
    println!("ciphertexts differ across paths: {}", on_path0 != on_path1);
    assert!(receiver_ctx.unprotect(7, 1000, 0, &on_path0).is_ok());
    assert!(receiver_ctx.unprotect(7, 1000, 1, &on_path1).is_ok());
    println!("both path copies authenticated and decrypted");

    // Replays and tampering are rejected.
    assert_eq!(
        receiver_ctx.unprotect(7, 1000, 0, &on_path0),
        Err(SrtpError::Replayed)
    );
    let mut tampered = on_path1.to_vec();
    tampered[3] ^= 0x40;
    assert_eq!(
        receiver_ctx.unprotect(7, 1001, 1, &tampered),
        Err(SrtpError::AuthenticationFailed)
    );
    println!("replay and tamper attempts rejected");

    println!();
    println!("--- Connection monitor through a path outage ---");
    let mut monitor = ConnectionMonitor::new(MonitorConfig::default(), &[PathId(0), PathId(1)]);
    let t = SimTime::from_millis;
    // Both paths chatty for 2 s.
    for ms in (0..2_000).step_by(100) {
        monitor.on_activity(t(ms), PathId(0));
        monitor.on_activity(t(ms), PathId(1));
    }
    // Path 1 goes silent (coverage gap); path 0 keeps talking.
    for ms in (2_000..9_000).step_by(100) {
        monitor.on_activity(t(ms), PathId(0));
        for ev in monitor.poll(t(ms)) {
            println!(
                "  t={:.1}s: {} -> {:?}",
                ms as f64 / 1000.0,
                ev.path,
                ev.state
            );
        }
    }
    println!("usable paths during outage: {:?}", monitor.usable_paths());
    // Path 1 resurfaces.
    if let Some(ev) = monitor.on_activity(t(9_100), PathId(1)) {
        println!("  t=9.1s: {} -> {:?}", ev.path, ev.state);
    }
    println!("usable paths after recovery: {:?}", monitor.usable_paths());
    assert_eq!(monitor.state(PathId(1)), Some(PathState::Up));
}
