//! FEC tuning: sweep the path loss rate and compare Converge's
//! path-specific FEC controller against WebRTC's static table (the
//! trade-off of the paper's Figs. 12–13).
//!
//! ```text
//! cargo run --release -p converge-sim --example fec_tuning
//! ```

use converge_net::SimDuration;
use converge_sim::{FecKind, ScenarioConfig, SchedulerKind, Session, SessionConfig};

fn main() {
    let duration = SimDuration::from_secs(45);

    println!("FEC policy trade-off on two 15 Mbps / 100 ms paths");
    println!();
    println!(
        "{:>6} {:<14} {:>10} {:>10} {:>10} {:>10}",
        "loss%", "policy", "ovh %", "util %", "tput Mbps", "e2e ms"
    );

    for loss_pct in [0.0, 1.0, 2.0, 5.0, 10.0] {
        for fec in [FecKind::WebRtcTable, FecKind::Converge] {
            let config = SessionConfig::builder()
                .scenario(ScenarioConfig::fec_tradeoff(loss_pct))
                .scheduler(SchedulerKind::Converge)
                .fec(fec)
                .streams(1)
                .duration(duration)
                .seed(7)
                .build()
                .expect("valid session config");
            let r = Session::new(config).run();
            let label = match fec {
                FecKind::Converge => "converge",
                FecKind::WebRtcTable => "webrtc-table",
                FecKind::None => "none",
            };
            println!(
                "{:>6.1} {:<14} {:>10.1} {:>10.1} {:>10.2} {:>10.1}",
                loss_pct,
                label,
                r.fec_overhead_pct(),
                r.fec_utilization_pct(),
                r.throughput_bps / 1e6,
                r.e2e_mean_ms
            );
        }
        println!();
    }
    println!("Expected shape (paper Fig. 12): the table policy spends ~40%+");
    println!("overhead even at 1% loss with low utilization; Converge sends a");
    println!("few percent and uses most of what it sends.");
}
