//! Controller shootout: run the same emulated call once per congestion
//! controller (GCC, NADA, mp-BBR) — or a single one — and compare the
//! QoE that comes out of the full scheduler/FEC loop.
//!
//! ```text
//! cargo run --release -p converge-sim --example controller_shootout
//! cargo run --release -p converge-sim --example controller_shootout -- --controller nada
//! ```

use converge_net::SimDuration;
use converge_sim::{
    ControllerKind, FecKind, ScenarioConfig, SchedulerKind, Session, SessionConfig,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut kinds: Vec<ControllerKind> = ControllerKind::ALL.to_vec();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--controller" => {
                let value = args.next().unwrap_or_default();
                match ControllerKind::parse(&value) {
                    Some(kind) => kinds = vec![kind],
                    None => {
                        eprintln!("unknown controller {value:?}; use gcc, nada, or mp-bbr");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other:?}; usage: controller_shootout [--controller <gcc|nada|mp-bbr>]");
                std::process::exit(2);
            }
        }
    }

    let duration = SimDuration::from_secs(60);
    println!("60 s driving-scenario call, one run per controller:\n");
    println!(
        "{:<8} {:>10} {:>8} {:>11} {:>10}",
        "ctrl", "tput Mbps", "fps", "freeze ms", "e2e ms"
    );
    for kind in kinds {
        let config = SessionConfig::builder()
            .scenario(ScenarioConfig::driving(duration, 42))
            .scheduler(SchedulerKind::Converge)
            .fec(FecKind::Converge)
            .duration(duration)
            .seed(42)
            .controller(kind)
            .build()
            .expect("valid session config");
        let report = Session::new(config).run();
        println!(
            "{:<8} {:>10.2} {:>8.1} {:>11.0} {:>10.1}",
            kind.label(),
            report.throughput_bps / 1e6,
            report.fps_per_stream(),
            report.freeze_total_ms,
            report.e2e_mean_ms
        );
    }
}
