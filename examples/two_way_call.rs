//! A bidirectional Converge call: both endpoints send video over the same
//! multipath network, so each direction's media contends with the other's
//! feedback — the full conference topology rather than the one-way
//! measurement setup.
//!
//! ```text
//! cargo run --release -p converge-sim --example two_way_call
//! ```

use converge_net::SimDuration;
use converge_sim::{DuplexSession, FecKind, ScenarioConfig, SchedulerKind, SessionConfig};

fn main() {
    let duration = SimDuration::from_secs(45);
    let config = SessionConfig::builder()
        .scenario(ScenarioConfig::walking(duration, 23))
        .scheduler(SchedulerKind::Converge)
        .fec(FecKind::Converge)
        .streams(1)
        .duration(duration)
        .seed(23)
        .build()
        .expect("valid session config");

    println!("Running a 45 s two-way Converge call over the walking scenario...");
    let (a_to_b, b_to_a) = DuplexSession::new(config).run();

    for (label, r) in [("A -> B", &a_to_b), ("B -> A", &b_to_a)] {
        println!();
        println!("=== {label} ===");
        println!("throughput   {:>7.2} Mbps", r.throughput_bps / 1e6);
        println!("frame rate   {:>7.1} fps", r.fps_per_stream());
        println!(
            "E2E latency  {:>7.1} ms mean / {:.1} ms p95",
            r.e2e_mean_ms, r.e2e_p95_ms
        );
        println!(
            "freezes      {:>7.0} ms across {} events",
            r.freeze_total_ms, r.freeze_events
        );
        println!("resolution   {:>7.0} p average", r.avg_encoded_height);
        println!(
            "FEC          {:>6.1}% overhead, {:.1}% utilization",
            r.fec_overhead_pct(),
            r.fec_utilization_pct()
        );
    }

    println!();
    println!("Both directions share every path: neither side starves the other's");
    println!("feedback, and the schedulers adapt to the contention independently.");
}
