//! Quickstart: run one Converge multipath conference call over the
//! emulated "driving" scenario and print the QoE report.
//!
//! ```text
//! cargo run --release -p converge-sim --example quickstart
//! ```

use converge_net::SimDuration;
use converge_sim::{FecKind, ScenarioConfig, SchedulerKind, Session, SessionConfig};

fn main() {
    let duration = SimDuration::from_secs(60);
    // Two emulated cellular paths with driving-grade bandwidth dynamics.
    let scenario = ScenarioConfig::driving(duration, 42);

    let config = SessionConfig::builder()
        .scenario(scenario)
        .scheduler(SchedulerKind::Converge)
        .fec(FecKind::Converge)
        .streams(1)
        .duration(duration)
        .seed(42)
        .build()
        .expect("valid session config");

    println!("Running a 60 s Converge call over two emulated driving paths...");
    let report = Session::new(config).run();

    println!();
    println!("=== Call report ===");
    println!(
        "throughput        {:>8.2} Mbps",
        report.throughput_bps / 1e6
    );
    println!("frame rate        {:>8.1} fps", report.fps_per_stream());
    println!(
        "E2E latency       {:>8.1} ms (mean), {:.1} ms (p95)",
        report.e2e_mean_ms, report.e2e_p95_ms
    );
    println!(
        "video freezes     {:>8.0} ms total across {} events",
        report.freeze_total_ms, report.freeze_events
    );
    println!(
        "image quality     QP {:>5.1}, PSNR {:.1} dB",
        report.avg_qp, report.psnr_db
    );
    println!(
        "frames            {} encoded / {} decoded / {} dropped",
        report.frames_encoded, report.frames_decoded, report.frames_dropped
    );
    println!(
        "FEC               {:>5.1}% overhead, {:.1}% utilization",
        report.fec_overhead_pct(),
        report.fec_utilization_pct()
    );
    println!("keyframe requests {:>5}", report.keyframe_requests);
    println!();
    println!("Per-path usage:");
    for (path, c) in &report.paths {
        println!(
            "  {path}: {} pkts sent ({:.2} MB), {} received, {} lost",
            c.packets_sent,
            c.bytes_sent as f64 / 1e6,
            c.packets_received,
            c.packets_lost
        );
    }
}
