//! Trace replay: run a Converge call over externally supplied bandwidth
//! traces (CSV `seconds,bits_per_sec`), the workflow for replaying real
//! network captures through the reproduction.
//!
//! ```text
//! cargo run --release -p converge-sim --example trace_replay [path1.csv path2.csv]
//! ```
//!
//! Without arguments, a built-in pair of traces reproducing a handover
//! (path 1 fades out while path 2 fades in) is used.

use converge_net::{SimDuration, SimTime};
use converge_sim::{FecKind, ScenarioConfig, SchedulerKind, Session, SessionConfig};

/// A fade-out trace: 20 → 1 Mbps over 60 s in 0.5 s steps.
fn fade_out_csv() -> String {
    (0..120)
        .map(|i| {
            let t = i as f64 * 0.5;
            let mbps = 20.0 - 19.0 * (i as f64 / 119.0);
            format!("{t:.1},{}", (mbps * 1e6) as u64)
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// A fade-in trace: 1 → 20 Mbps over the same span.
fn fade_in_csv() -> String {
    (0..120)
        .map(|i| {
            let t = i as f64 * 0.5;
            let mbps = 1.0 + 19.0 * (i as f64 / 119.0);
            format!("{t:.1},{}", (mbps * 1e6) as u64)
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (csv1, csv2) = if args.len() == 2 {
        let a = std::fs::read_to_string(&args[0]).expect("read first trace");
        let b = std::fs::read_to_string(&args[1]).expect("read second trace");
        (a, b)
    } else {
        println!("(no trace files given; replaying the built-in handover pair)");
        (fade_out_csv(), fade_in_csv())
    };

    let scenario = ScenarioConfig::from_traces(&[
        (csv1.as_str(), SimDuration::from_millis(25)),
        (csv2.as_str(), SimDuration::from_millis(35)),
    ])
    .expect("valid traces");

    let duration = scenario.paths[0].rate.span();
    println!(
        "Replaying {} s over {} paths (mean rates: {})",
        duration.as_secs_f64(),
        scenario.paths.len(),
        scenario
            .paths
            .iter()
            .map(|p| format!("{:.1} Mbps", p.rate.mean_rate() as f64 / 1e6))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let config = SessionConfig::builder()
        .scenario(scenario.clone())
        .scheduler(SchedulerKind::Converge)
        .fec(FecKind::Converge)
        .streams(1)
        .duration(duration)
        .seed(42)
        .build()
        .expect("valid session config");
    let r = Session::new(config).run();

    println!();
    println!("call: {:.1} fps, {:.2} Mbps delivered, {:.0} ms E2E, {:.0} ms frozen",
        r.fps_per_stream(),
        r.throughput_bps / 1e6,
        r.e2e_mean_ms,
        r.freeze_total_ms
    );
    println!();
    println!("per-10s path usage (Mbps sent), showing the scheduler tracking the");
    println!("handover as capacity moves from path 0 to path 1:");
    println!("{:>6} {:>10} {:>10} {:>12} {:>12}", "t", "cap0", "cap1", "sent_path0", "sent_path1");
    let empty = Vec::new();
    let s0 = r.path_series.get(&converge_net::PathId(0)).unwrap_or(&empty);
    let s1 = r.path_series.get(&converge_net::PathId(1)).unwrap_or(&empty);
    let secs = duration.as_secs_f64() as usize;
    for t in (0..secs).step_by(10) {
        let cap = |p: usize| {
            scenario.paths[p].rate.rate_at(SimTime::from_secs(t as u64)) as f64 / 1e6
        };
        let sent = |s: &Vec<u64>| {
            s.iter().skip(t).take(10).sum::<u64>() as f64 * 8.0 / 10.0 / 1e6
        };
        println!(
            "{:>5}s {:>10.1} {:>10.1} {:>12.2} {:>12.2}",
            t,
            cap(0),
            cap(1),
            sent(s0),
            sent(s1)
        );
    }
}
