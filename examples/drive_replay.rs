//! Drive replay: run a Converge call over a multi-path cellular drive
//! capture (JSONL rows of `{"t":..,"path":N,"rate_bps":..,"owd_ms":..,
//! "loss_pct":..}`), the workflow for feeding real 4-8 device drive logs
//! through the reproduction.
//!
//! ```text
//! cargo run --release -p converge-sim --example drive_replay [drive.jsonl]
//! ```
//!
//! Without an argument, the committed `blackout_flap` fixture is replayed:
//! 8 paths (WiFi, four cellular carriers, GEO + LEO satellite) with one
//! hard 8 s blackout and one flapping path.

use converge_net::{PathId, SimTime};
use converge_sim::{
    DriveFixture, FecKind, ScenarioConfig, SchedulerKind, Session, SessionConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scenario = match args.first() {
        Some(path) => ScenarioConfig::from_drive_file(path).expect("valid drive file"),
        None => {
            println!("(no drive file given; replaying the committed blackout_flap fixture)");
            DriveFixture::BlackoutFlap.scenario()
        }
    };

    let drives: Vec<_> = scenario
        .paths
        .iter()
        .map(|p| p.drive.clone().expect("drive scenarios carry a drive"))
        .collect();
    let duration = drives
        .iter()
        .map(|d| d.end() - SimTime::ZERO)
        .max()
        .expect("at least one path");
    println!(
        "Replaying '{}': {} paths, {} s (mean rates: {})",
        scenario.name,
        drives.len(),
        duration.as_secs_f64(),
        drives
            .iter()
            .map(|d| format!("{:.1} Mbps", d.mean_rate() as f64 / 1e6))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let config = SessionConfig::builder()
        .scenario(scenario.clone())
        .scheduler(SchedulerKind::Converge)
        .fec(FecKind::Converge)
        .streams(1)
        .duration(duration)
        .seed(42)
        .build()
        .expect("valid session config");
    let r = Session::new(config).run();

    println!();
    println!(
        "call: {:.1} fps, {:.2} Mbps delivered, {:.0} ms E2E, {:.0} ms frozen",
        r.fps_per_stream(),
        r.throughput_bps / 1e6,
        r.e2e_mean_ms,
        r.freeze_total_ms
    );

    println!();
    println!("per-10s drive capacity vs bytes the scheduler put on each path");
    println!("(watch the load route around each path's dark window):");
    let header: String = (0..drives.len())
        .map(|p| format!(" {:>5}{:>7}", format!("cap{p}"), format!("sent{p}")))
        .collect();
    println!("{:>6}{header}", "t");
    let empty = Vec::new();
    let secs = duration.as_secs_f64() as usize;
    for t in (0..secs).step_by(10) {
        let mut row = String::new();
        for (p, drive) in drives.iter().enumerate() {
            let cap = drive.rate_at(SimTime::from_secs(t as u64)) as f64 / 1e6;
            let series = r.path_series.get(&PathId(p as u8)).unwrap_or(&empty);
            let sent =
                series.iter().skip(t).take(10).sum::<u64>() as f64 * 8.0 / 10.0 / 1e6;
            row.push_str(&format!(" {cap:>5.1}{sent:>7.2}"));
        }
        println!("{t:>5}s{row}");
    }
}
