//! Backward compatibility: negotiate a session between a Converge peer and
//! a legacy single-path WebRTC peer, then between two Converge peers, and
//! run the call the negotiation produced — the fallback behaviour of
//! paper section 5.
//!
//! ```text
//! cargo run --release -p converge-sim --example fallback_negotiation
//! ```

use converge_net::{PathId, SimDuration, SimTime};
use converge_signal::{IceAgent, Interface, SessionDescription};
use converge_sim::{FecKind, ScenarioConfig, SchedulerKind, Session, SessionConfig};

fn negotiate(offerer_paths: &[u8], answerer_paths: &[u8]) -> Vec<u8> {
    let offer = SessionDescription::offer("alice", 1, 1, offerer_paths);
    // The offer travels as real SDP text.
    let wire = offer.serialize();
    let parsed = SessionDescription::parse(&wire).expect("valid SDP");
    let answer = SessionDescription::offer("bob", 2, 1, answerer_paths);
    parsed.negotiated_paths(&answer)
}

fn run_call(label: &str, multipath: bool) {
    let duration = SimDuration::from_secs(30);
    let scheduler = if multipath {
        SchedulerKind::Converge
    } else {
        SchedulerKind::SinglePath(0)
    };
    let fec = if multipath {
        FecKind::Converge
    } else {
        FecKind::WebRtcTable
    };
    let config = SessionConfig::builder()
        .scenario(ScenarioConfig::walking(duration, 11))
        .scheduler(scheduler)
        .fec(fec)
        .streams(1)
        .duration(duration)
        .seed(11)
        .build()
        .expect("valid session config");
    let r = Session::new(config).run();
    println!(
        "  {label}: {:.1} fps, {:.2} Mbps, {:.0} ms freezes",
        r.fps_per_stream(),
        r.throughput_bps / 1e6,
        r.freeze_total_ms
    );
}

fn main() {
    println!("--- SDP negotiation ---");
    let both = negotiate(&[0, 1], &[0, 1]);
    println!("Converge <-> Converge negotiated paths: {both:?}");
    let legacy = negotiate(&[0, 1], &[]);
    println!("Converge <-> legacy WebRTC negotiated paths: {legacy:?} (fallback)");

    println!();
    println!("--- ICE connectivity checks over both interfaces ---");
    let mk_agent = || {
        IceAgent::new(vec![
            Interface {
                name: "wifi0".into(),
                path: PathId(0),
                preference: 200,
            },
            Interface {
                name: "cell0".into(),
                path: PathId(1),
                preference: 100,
            },
        ])
    };
    let mut alice = mk_agent();
    let mut bob = mk_agent();
    alice.form_pairs(&bob.gather_candidates());
    bob.form_pairs(&alice.gather_candidates());
    let t0 = SimTime::ZERO;
    for check in alice.next_checks(t0) {
        if let Some(resp) = bob.on_message(t0, check) {
            alice.on_message(SimTime::from_millis(40), resp);
        }
    }
    println!("connected paths: {:?}", alice.connected_paths());

    println!();
    println!("--- Running the negotiated calls (30 s each) ---");
    if !both.is_empty() {
        run_call("multipath call (Converge)", true);
    }
    if legacy.is_empty() {
        run_call("fallback call (single-path WebRTC)", false);
    }
}
