//! Cross-crate integration tests for the Converge workspace live in the
//! `tests/` directory of this crate; the library itself only hosts shared
//! helpers.

/// Builds a deterministic two-path clean-network scenario used by several
/// integration tests.
pub fn clean_scenario() -> converge_sim::ScenarioConfig {
    converge_sim::ScenarioConfig::fec_tradeoff(0.0)
}
