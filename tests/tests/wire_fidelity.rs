//! Wire fidelity: every packet a real sender pipeline produces must
//! survive serialization to RTP bytes and back, including the multipath
//! extension and the video metadata the receiver depends on.

use converge_core::{
    classify, ConvergeScheduler, ConvergeSchedulerConfig, PathMetrics, Schedulable, Scheduler,
};
use converge_net::{PathId, SimDuration, SimTime};
use converge_sim::payload::{RtpKind, SimRtp};
use converge_sim::wire::{decode_rtp, encode_rtp, remap_stream};
use converge_video::{EncoderConfig, Packetizer, PacketizerConfig, StreamId, VideoEncoder};

#[test]
fn full_encoder_output_survives_the_wire() {
    let mut encoder = VideoEncoder::new(EncoderConfig::paper_default(StreamId(1)));
    let mut packetizer = Packetizer::new(PacketizerConfig::default());
    let mut scheduler = ConvergeScheduler::new(ConvergeSchedulerConfig::default());
    let paths = [
        PathMetrics::new(PathId(0), 10_000_000, SimDuration::from_millis(40), 0.01),
        PathMetrics::new(PathId(1), 5_000_000, SimDuration::from_millis(60), 0.02),
    ];

    let mut transport_seq = 0u64;
    let mut total = 0usize;
    // Ten seconds of encoded video through the real scheduler, every
    // packet through the wire codec.
    for i in 0..300u64 {
        let now = SimTime::from_micros(i * 33_333);
        if i == 150 {
            encoder.request_keyframe();
        }
        let frame = encoder.encode(now);
        let packets = packetizer.packetize(&frame);
        let batch: Vec<Schedulable> = packets
            .iter()
            .map(|p| Schedulable {
                packet: *p,
                class: classify(p),
            })
            .collect();
        let assignments = scheduler.assign_batch(now, &batch, &paths);
        for (sched, assign) in batch.iter().zip(assignments) {
            let rtp = SimRtp {
                kind: RtpKind::Media(sched.packet),
                path: assign.path,
                transport_seq: transport_seq & 0xFFFF,
                sent_at: now,
            };
            transport_seq += 1;
            let wire = encode_rtp(&rtp);
            assert!(wire.len() >= 24, "headers present");
            let decoded = decode_rtp(wire, now).expect("decode");
            // Stream identity travels in the SSRC; remap and compare.
            let decoded = remap_stream(decoded, 0x5100_0001);
            assert_eq!(decoded, rtp, "packet {total} mismatched");
            total += 1;
        }
    }
    assert!(total > 2_000, "exercised {total} packets");
}

#[test]
fn wire_rejects_cross_payload_confusion() {
    // A probe parsed as media (and vice versa) must fail or at least not
    // alias silently: the payload type is authoritative.
    let probe = SimRtp {
        kind: RtpKind::Probe { probe_seq: 7 },
        path: PathId(0),
        transport_seq: 1,
        sent_at: SimTime::ZERO,
    };
    let wire = encode_rtp(&probe);
    let back = decode_rtp(wire, SimTime::ZERO).unwrap();
    assert!(matches!(back.kind, RtpKind::Probe { probe_seq: 7 }));
}
