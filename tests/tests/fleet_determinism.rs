//! Fleet-engine determinism gates: the aggregate fold and the sampled
//! per-member JSONL timelines must be byte-identical for any shard
//! count, any batch size, and across repeated runs at a fixed seed.
//! These are the cross-crate versions of the unit gates inside
//! `converge-sim::fleet` — run at a slightly larger scale and through
//! the public API only.

use converge_net::SimDuration;
use converge_sim::FleetConfig;
use converge_sim::FleetEngine;

/// A fleet that is small enough for CI but still spans multiple
/// conferences per batch, a 1-member tail conference, and several
/// sampled timelines.
fn fleet_cfg(shards: usize, batch: usize) -> FleetConfig {
    let mut cfg = FleetConfig::new(13, 3);
    cfg.shards = shards;
    cfg.batch_conferences = batch;
    cfg.duration = SimDuration::from_secs(4);
    cfg.seed = 2024;
    cfg.trace_conferences = 2;
    cfg
}

fn fold_and_traces(shards: usize, batch: usize) -> (String, Vec<(String, String)>) {
    let report = FleetEngine::new(fleet_cfg(shards, batch)).run();
    (report.fold_text(), report.sampled_traces)
}

#[test]
fn fold_and_timelines_are_shard_count_invariant() {
    let (base_fold, base_traces) = fold_and_traces(1, 2);
    assert!(!base_traces.is_empty(), "sampled timelines must exist");
    for shards in [2, 4] {
        let (fold, traces) = fold_and_traces(shards, 2);
        assert_eq!(base_fold, fold, "fold diverged at {shards} shards");
        assert_eq!(base_traces, traces, "timelines diverged at {shards} shards");
    }
}

#[test]
fn fold_and_timelines_are_batch_size_invariant() {
    let (base_fold, base_traces) = fold_and_traces(2, 1);
    for batch in [3, 64] {
        let (fold, traces) = fold_and_traces(2, batch);
        assert_eq!(base_fold, fold, "fold diverged at batch {batch}");
        assert_eq!(base_traces, traces, "timelines diverged at batch {batch}");
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    let (a_fold, a_traces) = fold_and_traces(3, 2);
    let (b_fold, b_traces) = fold_and_traces(3, 2);
    assert_eq!(a_fold, b_fold);
    assert_eq!(a_traces, b_traces);
}

#[test]
fn invariant_checker_stays_clean_at_integration_scale() {
    let mut cfg = fleet_cfg(2, 2);
    cfg.check_invariants = true;
    let report = FleetEngine::new(cfg).run();
    assert_eq!(report.violations, 0, "control-loop invariants violated");
    // The run must actually have decoded media — an empty fleet would
    // hold every invariant vacuously.
    let decoded: u64 = report
        .conferences
        .iter()
        .flat_map(|c| c.sessions.iter())
        .map(|s| s.frames_decoded)
        .sum();
    assert!(decoded > 0, "no frames decoded at integration scale");
}
