//! Chaos-grade fault-injection matrix: every multipath scheduler crossed
//! with every named impairment over several seeds, each run validated by
//! the trace-driven invariant checker ([`converge_trace::InvariantSink`]).
//!
//! The assertions are survival floors, not QoE targets: the call must
//! complete without panicking, decode frames, keep its freeze ratio
//! finite, and — via `Session::run_checked` — emit a control-decision
//! timeline that satisfies every invariant (monotone time, no traffic on
//! disabled paths, Eq. 3 re-enable margin, FEC β ∈ [1, cap] with
//! repair ≤ media, GCC rate inside its clamp).

use std::sync::Arc;

use converge_net::{Direction, ImpairmentConfig, SimDuration};
use converge_sim::{
    FecKind, ImpairmentKind, ScenarioConfig, SchedulerKind, Session, SessionConfig,
};
use converge_trace::{jsonl, RingSink, TraceHandle};

/// Seeds of the matrix; three per cell so a fault that only bites under a
/// particular RNG stream still gets caught.
const SEEDS: [u64; 3] = [11, 42, 77];

/// Per-cell call length. Long enough to cover every chaos schedule (the
/// single blackout starts at 10 s; the flap has a 4 s period) while
/// keeping the 60-cell matrix affordable in a debug test run.
const CELL: SimDuration = SimDuration::from_secs(15);

fn chaos_cfg(scheduler: SchedulerKind, kind: ImpairmentKind, seed: u64) -> SessionConfig {
    SessionConfig::builder()
        .scenario(ScenarioConfig::chaos(kind))
        .scheduler(scheduler)
        .fec(FecKind::Converge)
        .streams(1)
        .duration(CELL)
        .seed(seed)
        .build()
        .expect("chaos scenario builds")
}

/// Runs one scheduler's row of the matrix: every impairment × every seed.
fn run_matrix_row(scheduler: SchedulerKind) {
    for kind in ImpairmentKind::ALL {
        for seed in SEEDS {
            let (report, violations) =
                Session::new(chaos_cfg(scheduler, kind, seed)).run_checked();
            assert!(
                violations.is_empty(),
                "{scheduler:?}/{}/seed {seed}: {violations:?}",
                kind.id()
            );
            assert!(
                report.frames_decoded > 0,
                "{scheduler:?}/{}/seed {seed} decoded nothing",
                kind.id()
            );
            let freeze = report.freeze_ratio_pct();
            assert!(
                freeze.is_finite() && (0.0..=100.0).contains(&freeze),
                "{scheduler:?}/{}/seed {seed}: freeze ratio {freeze}",
                kind.id()
            );
        }
    }
}

#[test]
fn chaos_matrix_converge_survives_every_fault() {
    run_matrix_row(SchedulerKind::Converge);
}

#[test]
fn chaos_matrix_mrtp_survives_every_fault() {
    run_matrix_row(SchedulerKind::MRtp);
}

#[test]
fn chaos_matrix_mtput_survives_every_fault() {
    run_matrix_row(SchedulerKind::MTput);
}

#[test]
fn chaos_matrix_srtt_survives_every_fault() {
    run_matrix_row(SchedulerKind::Srtt);
}

/// One traced run of a chaos cell: identical config × seed must produce a
/// byte-identical JSONL timeline, run to run — the determinism contract
/// the bench sweep relies on for any `--jobs` value.
#[test]
fn chaos_cell_timeline_is_byte_deterministic() {
    // Reorder is the stochastic impairment (per-packet RNG draws), so the
    // seed genuinely steers the trajectory — a pure schedule fault like
    // Flap would be trivially identical across seeds.
    let render_once = |seed: u64| -> (String, u64, f64) {
        let ring = Arc::new(RingSink::new(1 << 21));
        let cfg = SessionConfig::builder()
            .scenario(ScenarioConfig::chaos(ImpairmentKind::Reorder))
            .scheduler(SchedulerKind::Converge)
            .fec(FecKind::Converge)
            .streams(1)
            .duration(SimDuration::from_secs(10))
            .seed(seed)
            .trace(TraceHandle::new(ring.clone()))
            .build()
            .expect("valid config");
        let report = Session::new(cfg).run();
        assert_eq!(ring.dropped(), 0, "ring must hold the whole timeline");
        let records = ring.drain();
        assert!(!records.is_empty(), "a chaos run must emit trace events");
        (
            jsonl::render("chaos-determinism", &records),
            report.frames_decoded,
            report.freeze_total_ms,
        )
    };
    let (a, frames_a, freeze_a) = render_once(42);
    let (b, frames_b, freeze_b) = render_once(42);
    assert_eq!(a, b, "same config x seed must replay byte-identically");
    assert_eq!(frames_a, frames_b);
    assert_eq!(freeze_a, freeze_b);
    // A different seed must actually explore a different trajectory.
    let (c, _, _) = render_once(43);
    assert_ne!(a, c, "distinct seeds must not collapse to one trajectory");
}

/// Asymmetric impairment through the session builder: a degraded reverse
/// (feedback) channel on the cellular path only. The invariants must hold
/// even when RTCP feedback is starved in one direction.
#[test]
fn builder_reverse_feedback_impairment_runs_clean() {
    let cfg = SessionConfig::builder()
        .scenario(ScenarioConfig::chaos(ImpairmentKind::Reorder))
        .scheduler(SchedulerKind::Converge)
        .fec(FecKind::Converge)
        .streams(1)
        .duration(SimDuration::from_secs(12))
        .seed(11)
        .impair(
            1,
            Direction::Reverse,
            ImpairmentConfig::degraded(0.4, SimDuration::from_millis(40)),
        )
        .build()
        .expect("valid config");
    let (report, violations) = Session::new(cfg).run_checked();
    assert!(violations.is_empty(), "{violations:?}");
    assert!(report.frames_decoded > 0);
}
