//! Drive-conformance matrix: every committed drive fixture (4, 6, and 8
//! path topologies) replays through the full stack from its *file* form —
//! the same bytes the bench embeds at compile time — with a clean
//! invariant checker, deterministic timelines, and a golden snapshot of
//! the 8-path blackout-flap replay.
//!
//! To regenerate the golden after an *intentional* change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p converge-integration --test drive_conformance
//! ```

use std::sync::Arc;

use converge_net::SimDuration;
use converge_sim::{
    DriveFixture, FecKind, ScenarioConfig, SchedulerKind, Session, SessionConfig,
};
use converge_trace::{jsonl, RingSink, TraceHandle};

fn fixture_file(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("drives")
        .join(name)
}

/// (fixture enum, on-disk file, expected path count).
const FIXTURES: [(DriveFixture, &str, usize); 3] = [
    (DriveFixture::CoverageGaps, "coverage_gaps.jsonl", 4),
    (DriveFixture::Handover, "handover.jsonl", 6),
    (DriveFixture::BlackoutFlap, "blackout_flap.jsonl", 8),
];

fn session_cfg(scenario: ScenarioConfig, secs: u64, seed: u64) -> SessionConfig {
    SessionConfig::builder()
        .scenario(scenario)
        .scheduler(SchedulerKind::Converge)
        .fec(FecKind::Converge)
        .streams(1)
        .duration(SimDuration::from_secs(secs))
        .seed(seed)
        .build()
        .expect("valid drive session config")
}

/// The file loader and the compile-time embed must agree: same path
/// count, same drives, and the *file*-loaded replay is what the rest of
/// this suite exercises.
#[test]
fn on_disk_fixtures_match_their_embedded_twins() {
    for (fixture, file, paths) in FIXTURES {
        let from_file = ScenarioConfig::from_drive_file(fixture_file(file)).unwrap_or_else(|e| {
            panic!("{file}: {e}");
        });
        assert_eq!(from_file.paths.len(), paths, "{file}");
        let embedded = fixture.scenario();
        for (i, (a, b)) in from_file.paths.iter().zip(&embedded.paths).enumerate() {
            assert_eq!(
                a.drive.as_ref().expect("file drive").samples(),
                b.drive.as_ref().expect("embedded drive").samples(),
                "{file} path {i} diverges from the embedded fixture"
            );
        }
    }
}

/// Every fixture replays 20 s through the full loop with zero invariant
/// violations, decodes video, and keeps more than one path active.
#[test]
fn every_fixture_replays_invariant_clean() {
    for (_, file, paths) in FIXTURES {
        let scenario = ScenarioConfig::from_drive_file(fixture_file(file)).expect("fixture loads");
        let (report, violations) = Session::new(session_cfg(scenario, 20, 11)).run_checked();
        assert!(violations.is_empty(), "{file}: {violations:?}");
        assert_eq!(report.paths.len(), paths, "{file}");
        assert!(
            report.frames_decoded > 200,
            "{file}: {} frames",
            report.frames_decoded
        );
        let active = report.paths.values().filter(|p| p.bytes_sent > 0).count();
        assert!(active > 1, "{file}: only {active} active paths");
    }
}

/// Renders one pinned drive replay to JSONL: 4 s of the 8-path
/// blackout-flap fixture under Converge scheduling, seed 9. Short enough
/// to keep the fixture reviewable, long enough for the scheduler, FEC
/// controller, and all 8 drive-shaped paths to leave events.
fn render_drive_golden() -> String {
    let ring = Arc::new(RingSink::new(1 << 20));
    let scenario = ScenarioConfig::from_drive_file(fixture_file("blackout_flap.jsonl"))
        .expect("fixture loads");
    let cfg = SessionConfig::builder()
        .scenario(scenario)
        .scheduler(SchedulerKind::Converge)
        .fec(FecKind::Converge)
        .streams(1)
        .duration(SimDuration::from_secs(4))
        .seed(9)
        .trace(TraceHandle::new(ring.clone()))
        .build()
        .expect("golden drive config is valid");
    let report = Session::new(cfg).run();
    assert!(report.frames_decoded > 0, "golden drive run must decode frames");
    assert_eq!(ring.dropped(), 0, "ring must hold the whole timeline");
    jsonl::render("drive-golden", &ring.drain())
}

#[test]
fn drive_golden_matches_checked_in_fixture() {
    let rendered = render_drive_golden();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("drive_golden.jsonl");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &rendered).expect("write fixture");
        eprintln!("drive golden regenerated at {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if rendered != expected {
        let diverged = rendered
            .lines()
            .zip(expected.lines())
            .position(|(a, b)| a != b)
            .map(|i| {
                let got = rendered.lines().nth(i).unwrap_or("<eof>");
                let want = expected.lines().nth(i).unwrap_or("<eof>");
                format!("first divergence at line {}:\n  got:  {got}\n  want: {want}", i + 1)
            })
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: got {}, want {}",
                    rendered.lines().count(),
                    expected.lines().count()
                )
            });
        panic!(
            "drive golden drifted from {} — {diverged}\n\
             If the change is intentional, regenerate with UPDATE_GOLDEN=1 \
             and review the fixture diff.",
            path.display()
        );
    }
}

/// Back-to-back renders agree byte-for-byte, so a golden mismatch always
/// means the code changed, never that the replay is nondeterministic.
#[test]
fn drive_golden_render_is_self_consistent() {
    assert_eq!(render_drive_golden(), render_drive_golden());
}

/// Same fixture, same seed → byte-identical reports across independent
/// sessions (the file loader introduces no hidden state).
#[test]
fn drive_replay_is_deterministic_per_fixture() {
    for (_, file, _) in FIXTURES {
        let run = || {
            let scenario =
                ScenarioConfig::from_drive_file(fixture_file(file)).expect("fixture loads");
            let (report, violations) = Session::new(session_cfg(scenario, 8, 42)).run_checked();
            assert!(violations.is_empty(), "{file}: {violations:?}");
            format!("{report:?}")
        };
        assert_eq!(run(), run(), "{file} replay must be deterministic");
    }
}
