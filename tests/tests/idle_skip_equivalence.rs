//! Idle-skip equivalence: the event loop's fast path (jumping the clock
//! straight to the next timer while no packet is queued or in flight) must
//! be purely a wall-clock optimisation. For any scenario and seed, a
//! session with idle-skip disabled and one with it enabled must produce
//! byte-identical `converge-trace/v1` streams and identical QoE folds.
//!
//! The property is factored into `check_idle_skip_equivalence`; seeded
//! grid `#[test]`s pin a deterministic sample across the chaos impairment
//! matrix, the committed drive fixtures, and the seeded random scenario
//! generators, so the invariant runs on every `cargo test` even with the
//! offline proptest stand-in (which expands `proptest!` to nothing). Any
//! counterexample seed a real proptest run finds should be promoted to a
//! named `#[test]` below.

#![allow(dead_code, unused_imports)]

use std::sync::Arc;

use proptest::prelude::*;

use converge_net::SimDuration;
use converge_sim::{
    DriveFixture, FecKind, ImpairmentKind, ScenarioConfig, SchedulerKind, Session, SessionConfig,
};
use converge_trace::{jsonl, RingSink, TraceHandle};

/// Runs one fully pinned session and returns its rendered JSONL timeline
/// plus the debug rendering of its QoE report (every fold field).
fn render(
    scenario: ScenarioConfig,
    duration: SimDuration,
    seed: u64,
    idle_skip: bool,
) -> (String, String) {
    let ring = Arc::new(RingSink::new(1 << 20));
    let cfg = SessionConfig::builder()
        .scenario(scenario)
        .scheduler(SchedulerKind::Converge)
        .fec(FecKind::Converge)
        .streams(1)
        .duration(duration)
        .seed(seed)
        .idle_skip(idle_skip)
        .trace(TraceHandle::new(ring.clone()))
        .build()
        .expect("equivalence config is valid");
    let report = Session::new(cfg).run();
    assert_eq!(ring.dropped(), 0, "ring must hold the whole timeline");
    (
        jsonl::render("equiv", &ring.drain()),
        format!("{report:?}"),
    )
}

/// The property: disabling idle-skip changes nothing observable.
fn check_idle_skip_equivalence(label: &str, scenario: ScenarioConfig, seconds: u64, seed: u64) {
    let duration = SimDuration::from_secs(seconds);
    let (trace_off, report_off) = render(scenario.clone(), duration, seed, false);
    let (trace_on, report_on) = render(scenario, duration, seed, true);
    if trace_off != trace_on {
        // Point at the first divergent line instead of dumping both
        // multi-hundred-line documents.
        let hint = trace_off
            .lines()
            .zip(trace_on.lines())
            .position(|(a, b)| a != b)
            .map(|i| {
                let off = trace_off.lines().nth(i).unwrap_or("<eof>");
                let on = trace_on.lines().nth(i).unwrap_or("<eof>");
                format!("first divergence at line {}:\n  off: {off}\n  on:  {on}", i + 1)
            })
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: off {}, on {}",
                    trace_off.lines().count(),
                    trace_on.lines().count()
                )
            });
        panic!("idle-skip changed the trace stream ({label}, seed {seed}): {hint}");
    }
    assert_eq!(
        report_off, report_on,
        "idle-skip changed the QoE fold ({label}, seed {seed})"
    );
}

/// Chaos generator: every impairment row of the fault matrix.
#[test]
fn chaos_matrix_is_idle_skip_equivalent() {
    for kind in ImpairmentKind::ALL {
        for seed in [3, 21] {
            check_idle_skip_equivalence(kind.id(), ScenarioConfig::chaos(kind), 3, seed);
        }
    }
}

/// Drive generator: every committed 4/6/8-path drive fixture.
#[test]
fn drive_fixtures_are_idle_skip_equivalent() {
    for fixture in DriveFixture::ALL {
        check_idle_skip_equivalence(fixture.id(), fixture.scenario(), 3, 11);
    }
}

/// Seeded random scenario generators (the mobility traces draw their
/// rate/RTT processes from the seed).
#[test]
fn seeded_scenarios_are_idle_skip_equivalent() {
    let d = SimDuration::from_secs(3);
    for seed in [5, 17] {
        check_idle_skip_equivalence("walking", ScenarioConfig::walking(d, seed), 3, seed);
        check_idle_skip_equivalence("driving", ScenarioConfig::driving(d, seed), 3, seed);
    }
    for n_paths in [4, 8] {
        check_idle_skip_equivalence(
            "multi-carrier",
            ScenarioConfig::multi_carrier(n_paths, d, 23),
            3,
            23,
        );
    }
}

/// Wide seed sweep for counterexample hunting (minutes of wall clock, so
/// not part of the default suite): `cargo test -p converge-integration
/// --test idle_skip_equivalence -- --ignored`.
#[test]
#[ignore = "wide sweep; run explicitly when hunting for counterexamples"]
fn wide_seed_sweep_is_idle_skip_equivalent() {
    for seed in 0..32u64 {
        for kind in ImpairmentKind::ALL {
            check_idle_skip_equivalence(kind.id(), ScenarioConfig::chaos(kind), 2, seed);
        }
        for fixture in DriveFixture::ALL {
            check_idle_skip_equivalence(fixture.id(), fixture.scenario(), 2, seed);
        }
    }
}

proptest! {
    // With a real proptest the space is explored beyond the pinned grid;
    // failures print the seed tuple, which should then be promoted to a
    // named #[test] above.
    #[test]
    fn any_seed_is_idle_skip_equivalent(
        kind_idx in 0usize..5,
        seed in any::<u16>(),
        seconds in 1u64..4,
    ) {
        let kind = ImpairmentKind::ALL[kind_idx];
        check_idle_skip_equivalence(kind.id(), ScenarioConfig::chaos(kind), seconds, seed as u64);
    }

    #[test]
    fn any_drive_seed_is_idle_skip_equivalent(
        fixture_idx in 0usize..3,
        seed in any::<u16>(),
    ) {
        let fixture = DriveFixture::ALL[fixture_idx];
        check_idle_skip_equivalence(fixture.id(), fixture.scenario(), 3, seed as u64);
    }
}
