//! Edge-case integration tests: degenerate configurations and unusual
//! interleavings the main suites don't reach.

use converge_net::{PathId, RateTrace, SimDuration};
use converge_sim::{FecKind, PathSpec, ScenarioConfig, SchedulerKind, Session, SessionConfig};

fn scenario_with(paths: Vec<PathSpec>) -> ScenarioConfig {
    ScenarioConfig {
        name: "custom".into(),
        paths,
    }
}

/// The Converge system (scheduler + FEC, one stream) on a given scenario,
/// via the validating builder.
fn converge_cfg(scenario: ScenarioConfig, secs: u64, seed: u64) -> SessionConfig {
    SessionConfig::builder()
        .scenario(scenario)
        .scheduler(SchedulerKind::Converge)
        .fec(FecKind::Converge)
        .streams(1)
        .duration(SimDuration::from_secs(secs))
        .seed(seed)
        .build()
        .expect("valid session config")
}

#[test]
fn single_path_scenario_works_for_multipath_scheduler() {
    // Converge over exactly one path degenerates to single-path WebRTC
    // (the backward-compatibility story of paper section 5).
    let cfg = converge_cfg(
        scenario_with(vec![PathSpec::constant(12_000_000, 30, 0.0)]),
        15,
        2,
    );
    let r = Session::new(cfg).run();
    assert!(r.fps > 25.0, "single-path Converge call: {} fps", r.fps);
    assert_eq!(r.paths.len(), 1);
}

#[test]
fn three_paths_all_carry_load() {
    let cfg = converge_cfg(
        scenario_with(vec![
            PathSpec::constant(6_000_000, 20, 0.0),
            PathSpec::constant(6_000_000, 40, 0.0),
            PathSpec::constant(6_000_000, 60, 0.0),
        ]),
        20,
        6,
    );
    let r = Session::new(cfg).run();
    assert!(r.fps > 24.0, "{} fps", r.fps);
    for id in 0..3u8 {
        let sent = r
            .paths
            .get(&PathId(id))
            .map(|c| c.packets_sent)
            .unwrap_or(0);
        assert!(sent > 500, "path{id} starved: {sent} packets");
    }
    // Aggregate beats any single 6 Mbps path.
    assert!(
        r.throughput_bps > 7_000_000.0,
        "aggregation failed: {:.2} Mbps",
        r.throughput_bps / 1e6
    );
}

#[test]
fn wildly_asymmetric_paths_prefer_the_fat_one() {
    let cfg = converge_cfg(
        scenario_with(vec![
            PathSpec::constant(20_000_000, 15, 0.0),
            PathSpec::constant(300_000, 200, 2.0),
        ]),
        20,
        8,
    );
    let r = Session::new(cfg).run();
    let fat = r.paths[&PathId(0)].packets_sent;
    let thin = r.paths[&PathId(1)].packets_sent;
    assert!(fat > thin * 10, "fat path must dominate: {fat} vs {thin}");
    assert!(r.fps > 25.0, "{} fps", r.fps);
}

#[test]
fn very_short_call_terminates_cleanly() {
    let cfg = converge_cfg(ScenarioConfig::fec_tradeoff(0.0), 1, 1);
    let r = Session::new(cfg).run();
    assert_eq!(r.bins.len(), 1);
    assert!(r.frames_encoded >= 25);
}

#[test]
fn zero_rate_path_does_not_wedge_the_session() {
    // One path's trace is stuck at zero the whole call; the session must
    // ride the other path.
    let dead = PathSpec {
        rate: RateTrace::constant(0),
        ..PathSpec::constant(0, 50, 0.0)
    };
    let cfg = converge_cfg(
        scenario_with(vec![PathSpec::constant(12_000_000, 25, 0.0), dead]),
        15,
        4,
    );
    let r = Session::new(cfg).run();
    assert!(r.fps > 22.0, "live path must carry the call: {} fps", r.fps);
}

#[test]
fn heavy_loss_call_degrades_but_survives() {
    let cfg = converge_cfg(ScenarioConfig::fec_tradeoff(15.0), 20, 3);
    let r = Session::new(cfg).run();
    // 15% loss on both paths is brutal (a ~25-packet frame rarely arrives
    // whole); FEC + NACK must still salvage a substantial fraction.
    assert!(
        r.frames_decoded as f64 > r.frames_encoded as f64 * 0.35,
        "{} of {} frames decoded",
        r.frames_decoded,
        r.frames_encoded
    );
    assert!(r.fec_packets_used > 0);
    assert!(r.retransmissions > 0);
}

#[test]
fn fec_and_retransmission_double_recovery_is_harmless() {
    use converge_net::SimTime;
    use converge_sim::payload::{RtpKind, SimRtp};
    use converge_sim::receiver::{ConferenceReceiver, ReceiverEvent};
    use converge_video::{FrameType, PacketKind, StreamId, VideoPacket};

    let mk = |seq: u64, kind: PacketKind| VideoPacket {
        stream: StreamId(0),
        sequence: seq,
        frame_id: 0,
        gop_id: 0,
        frame_type: FrameType::Key,
        kind,
        size: 1200,
        capture_time: SimTime::ZERO,
    };
    let packets = [
        mk(0, PacketKind::Sps),
        mk(1, PacketKind::Pps),
        mk(2, PacketKind::Media { index: 0, count: 2 }),
        mk(3, PacketKind::Media { index: 1, count: 2 }),
    ];
    let mut rx = ConferenceReceiver::new(1, &[PathId(0)], 30, PathId(0));
    // Deliver everything except seq 3.
    for (i, p) in packets.iter().take(3).enumerate() {
        rx.on_rtp(
            SimTime::from_millis(i as u64),
            &SimRtp {
                kind: RtpKind::Media(*p),
                path: PathId(0),
                transport_seq: i as u64,
                sent_at: SimTime::ZERO,
            },
        );
    }
    // FEC recovers seq 3 → frame decodes.
    let evs = rx.on_rtp(
        SimTime::from_millis(10),
        &SimRtp {
            kind: RtpKind::Fec {
                stream: StreamId(0),
                protected: vec![packets[2], packets[3]],
                origin_path: PathId(0),
            },
            path: PathId(0),
            transport_seq: 4,
            sent_at: SimTime::ZERO,
        },
    );
    assert!(evs
        .iter()
        .any(|e| matches!(e, ReceiverEvent::FrameDecoded { .. })));
    // The retransmission of seq 3 then arrives anyway (NACK raced the FEC):
    // it must be treated as stale, not decoded twice.
    let evs = rx.on_rtp(
        SimTime::from_millis(60),
        &SimRtp {
            kind: RtpKind::Retransmission(packets[3]),
            path: PathId(0),
            transport_seq: 5,
            sent_at: SimTime::ZERO,
        },
    );
    assert!(
        !evs.iter()
            .any(|e| matches!(e, ReceiverEvent::FrameDecoded { .. })),
        "no double decode: {evs:?}"
    );
}

#[test]
fn duplicate_deliveries_never_double_decode() {
    use converge_net::SimTime;
    use converge_sim::payload::{RtpKind, SimRtp};
    use converge_sim::receiver::{ConferenceReceiver, ReceiverEvent};
    use converge_video::{FrameType, PacketKind, StreamId, VideoPacket};

    let mut rx = ConferenceReceiver::new(1, &[PathId(0), PathId(1)], 30, PathId(0));
    let packets: Vec<VideoPacket> = vec![
        PacketKind::Sps,
        PacketKind::Pps,
        PacketKind::Media { index: 0, count: 1 },
    ]
    .into_iter()
    .enumerate()
    .map(|(i, kind)| VideoPacket {
        stream: StreamId(0),
        sequence: i as u64,
        frame_id: 0,
        gop_id: 0,
        frame_type: FrameType::Key,
        kind,
        size: 500,
        capture_time: SimTime::ZERO,
    })
    .collect();

    let mut decodes = 0;
    // Deliver the whole frame twice (once per path — a full duplication).
    for path in [PathId(0), PathId(1)] {
        for (i, p) in packets.iter().enumerate() {
            let evs = rx.on_rtp(
                SimTime::from_millis(i as u64 + path.0 as u64 * 10),
                &SimRtp {
                    kind: RtpKind::Media(*p),
                    path,
                    transport_seq: i as u64,
                    sent_at: SimTime::ZERO,
                },
            );
            decodes += evs
                .iter()
                .filter(|e| matches!(e, ReceiverEvent::FrameDecoded { .. }))
                .count();
        }
    }
    assert_eq!(decodes, 1, "a duplicated frame decodes exactly once");
}

/// Reproduction of the `three_paths_all_carry_load` failure (see
/// ROADMAP.md open items): on three equal-rate paths with *no configured
/// loss*, the FEC/feedback coupling over-reacts — β repeatedly slams into
/// its 3.0 cap on the fast path once congestion drops start, repair
/// traffic balloons to a large fraction of media on a pipe that would be
/// clean if left alone, and the scheduler starves path 1 instead of
/// aggregating. This pins the traced diagnosis at today's numbers
/// (~21 fps, repair ≈ 4/5 of media on path 0, ~2.6× path-1 starvation —
/// the ROADMAP's 17 fps / 4× figures were the PR 2 seed state); the live
/// test above keeps its original assertions untouched.
///
/// Ignored because it documents a known-bad state: it *passes* while the
/// bug exists and should start failing — and then be deleted — once the
/// QoE calibration fix lands. Run with
/// `cargo test -p converge-integration --test edge_cases -- --ignored`.
#[test]
#[ignore = "documents the open three_paths_all_carry_load diagnosis"]
fn three_paths_diagnosis_beta_pinned_and_path1_starved() {
    use std::sync::Arc;

    use converge_net::SimTime;
    use converge_trace::{RingSink, TraceEvent, TraceHandle};

    let ring = Arc::new(RingSink::new(1 << 20));
    let cfg = SessionConfig::builder()
        .scenario(scenario_with(vec![
            PathSpec::constant(6_000_000, 20, 0.0),
            PathSpec::constant(6_000_000, 40, 0.0),
            PathSpec::constant(6_000_000, 60, 0.0),
        ]))
        .scheduler(SchedulerKind::Converge)
        .fec(FecKind::Converge)
        .streams(1)
        .duration(SimDuration::from_secs(20))
        .seed(6)
        .trace(TraceHandle::new(ring.clone()))
        .build()
        .expect("valid session config");
    let r = Session::new(cfg).run();

    // The failure itself: the call can't hold the frame rate three clean
    // 6 Mbps paths should trivially sustain.
    assert!(r.fps < 24.0, "bug appears fixed ({:.2} fps) — delete this repro", r.fps);

    // Diagnosis part 1: on path 0 — whose loss model is None, so every
    // loss is a self-inflicted congestion drop — β repeatedly hits the
    // 3.0 cap in the steady-state half of the call, and the repair
    // budget it grants rivals the media itself.
    let mut cap_hits = 0usize;
    let mut media = 0u64;
    let mut repair = 0u64;
    for rec in ring.drain() {
        if let TraceEvent::FecUpdated {
            path,
            beta_milli,
            media: m,
            repair: rp,
        } = rec.event
        {
            if path == PathId(0) {
                media += u64::from(m);
                repair += u64::from(rp);
                if rec.at > SimTime::from_secs(10) && beta_milli == 3_000 {
                    cap_hits += 1;
                }
            }
        }
    }
    assert!(
        cap_hits >= 20,
        "β should repeatedly pin at the cap late in the call: {cap_hits} hits"
    );
    assert!(
        repair * 2 > media,
        "repair should rival media on the clean fast path: {repair} repair vs {media} media"
    );

    // Diagnosis part 2: the repair load keeps the scheduler glued to the
    // fastest path — path 1 carries well under half of path 0's packets.
    let p0 = r.paths[&PathId(0)].packets_sent;
    let p1 = r.paths[&PathId(1)].packets_sent;
    assert!(p0 > 2 * p1, "expected >2x starvation, got {p0} vs {p1}");
}
