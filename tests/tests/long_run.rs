//! Long-run stability regressions: failures that only appear minutes into
//! a call (sequence-number wraps, estimator drift, monotone resource
//! growth).

use converge_net::SimDuration;
use converge_sim::{FecKind, ScenarioConfig, SchedulerKind, Session, SessionConfig};

/// The Converge system (scheduler + FEC, one stream) via the validating
/// builder.
fn converge_cfg(scenario: ScenarioConfig, duration: SimDuration, seed: u64) -> SessionConfig {
    SessionConfig::builder()
        .scenario(scenario)
        .scheduler(SchedulerKind::Converge)
        .fec(FecKind::Converge)
        .streams(1)
        .duration(duration)
        .seed(seed)
        .build()
        .expect("valid session config")
}

/// Regression for the 16-bit transport-sequence wrap: a high-rate path
/// crosses 65 536 packets after ~2 minutes; before the unwrap fix, GCC
/// went blind there and the tail of every long call degenerated into a
/// sustained outage (40+ consecutive sub-15-FPS seconds).
#[test]
fn no_degradation_after_transport_sequence_wrap() {
    let duration = SimDuration::from_secs(200);
    // Clean fast paths so the sender sustains ~10 Mbps: the wrap happens
    // near t = 65 536 × 1250 B × 8 / 10 Mbps ≈ 65 s per path at full rate,
    // comfortably inside the run.
    let cfg = converge_cfg(ScenarioConfig::fec_tradeoff(0.0), duration, 5);
    let report = Session::new(cfg).run();

    // Total packets on the busiest path must actually have wrapped,
    // otherwise this test is vacuous.
    let max_sent = report
        .paths
        .values()
        .map(|c| c.packets_sent)
        .max()
        .unwrap_or(0);
    assert!(
        max_sent > 70_000,
        "test must cross the 16-bit wrap (sent {max_sent})"
    );

    // No sustained outage: at most 2 consecutive seconds below 15 FPS
    // anywhere in the call (startup excluded).
    let mut consecutive = 0;
    let mut worst = 0;
    for bin in report.bins.iter().skip(5) {
        if bin.frames_decoded < 15 {
            consecutive += 1;
            worst = worst.max(consecutive);
        } else {
            consecutive = 0;
        }
    }
    assert!(
        worst <= 2,
        "sustained outage of {worst} consecutive bad seconds — wrap regression?"
    );

    // The last quarter of the call performs like the second quarter.
    let quarter = report.bins.len() / 4;
    let q2: u64 = report.bins[quarter..2 * quarter]
        .iter()
        .map(|b| b.media_bits)
        .sum();
    let q4: u64 = report.bins[3 * quarter..]
        .iter()
        .map(|b| b.media_bits)
        .sum();
    assert!(
        q4 as f64 > q2 as f64 * 0.7,
        "late-call throughput collapsed: q2={q2} q4={q4}"
    );
}

/// Per-packet jitter reorders packets inside a path; the receiver's
/// buffers and NACK reordering tolerance must absorb it without spurious
/// retransmission storms.
#[test]
fn jitter_reordering_absorbed_without_nack_storm() {
    let duration = SimDuration::from_secs(30);
    let mut scenario = ScenarioConfig::fec_tradeoff(0.0);
    scenario.paths[0].jitter = SimDuration::from_millis(10);
    scenario.paths[1].jitter = SimDuration::from_millis(10);
    let cfg = converge_cfg(scenario, duration, 9);
    let report = Session::new(cfg).run();
    assert!(
        report.fps > 25.0,
        "jitter alone must not break the call: {} fps",
        report.fps
    );
    // No loss in this scenario: every NACK would be a spurious reaction to
    // reordering. The 60 ms reordering tolerance should suppress nearly
    // all of them (10 ms jitter bound).
    assert!(
        report.nacks_sent < 20,
        "NACK storm from reordering: {} NACKs",
        report.nacks_sent
    );
    assert_eq!(
        report.retransmissions,
        report.nacks_sent.min(report.retransmissions)
    );
}

/// Resolution adaptation engages on starved networks and recovers on good
/// ones (end-to-end, through the whole stack).
#[test]
fn resolution_adapts_end_to_end() {
    // Two thin 1.5 Mbps paths: ~3 Mbps aggregate cannot carry 720p well.
    let starved = converge_cfg(
        ScenarioConfig {
            name: "starved".into(),
            paths: vec![
                converge_sim::scenarios::PathSpec::constant(1_500_000, 30, 0.0),
                converge_sim::scenarios::PathSpec::constant(1_500_000, 30, 0.0),
            ],
        },
        SimDuration::from_secs(30),
        3,
    );
    let r = Session::new(starved).run();
    assert!(
        r.avg_encoded_height < 700.0,
        "starved call should downscale: avg height {}",
        r.avg_encoded_height
    );

    let rich = converge_cfg(
        ScenarioConfig::fec_tradeoff(0.0),
        SimDuration::from_secs(30),
        3,
    );
    let r = Session::new(rich).run();
    assert!(
        r.avg_encoded_height > 650.0,
        "rich call should hold 720p: avg height {}",
        r.avg_encoded_height
    );
}
