//! Property-based tests (proptest) over the core data structures and
//! invariants of the workspace.
//!
//! Each stochastic property is factored into a `check_*` helper: the
//! `proptest!` block explores the parameter space when a real proptest is
//! available, and a seeded-grid `#[test]` pins a deterministic sample of
//! the same property so the invariant is exercised on every `cargo test`
//! regardless (the offline proptest stand-in expands `proptest!` blocks
//! to nothing).

// With the offline stand-in the `proptest!` bodies vanish, leaving
// strategies and imports used only inside them looking unused.
#![allow(dead_code, unused_imports)]

use bytes::Bytes;
use proptest::prelude::*;

use converge_core::PathShare;
use converge_net::event::EventQueue;
use converge_net::{
    BlackoutSchedule, Direction, DriveParseError, DriveSample, DriveTrace, ImpairmentConfig,
    Link, LinkConfig, LossModel, LossProcess, NetworkEmulator, Path, PathId, RateTrace,
    SendOutcome, SimDuration, SimTime, Transmit,
};
use converge_rtp::{fec, MultipathExtension, PayloadType, RtpPacket};
use converge_video::{
    CompleteFrame, FrameBuffer, FrameBufferEvent, FrameType, PacketBuffer, PacketBufferEvent,
    PacketKind, StreamId, VideoPacket,
};

// ---------- wire formats ----------

fn arb_payload_type() -> impl Strategy<Value = PayloadType> {
    prop_oneof![
        Just(PayloadType::Video),
        Just(PayloadType::Fec),
        Just(PayloadType::Retransmission),
        Just(PayloadType::Probe),
    ]
}

proptest! {
    #[test]
    fn rtp_roundtrips_any_fields(
        marker in any::<bool>(),
        pt in arb_payload_type(),
        sequence in any::<u16>(),
        timestamp in any::<u32>(),
        ssrc in any::<u32>(),
        with_ext in any::<bool>(),
        path_id in any::<u8>(),
        mp_seq in any::<u16>(),
        mp_tseq in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
    ) {
        let p = RtpPacket {
            marker,
            payload_type: pt,
            sequence,
            timestamp,
            ssrc,
            extension: with_ext.then_some(MultipathExtension {
                path_id,
                mp_sequence: mp_seq,
                mp_transport_sequence: mp_tseq,
            }),
            payload: Bytes::from(payload),
        };
        let back = RtpPacket::parse(p.serialize()).expect("roundtrip");
        prop_assert_eq!(p, back);
    }

    #[test]
    fn rtp_parser_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = RtpPacket::parse(Bytes::from(data));
    }

    #[test]
    fn rtcp_parser_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = converge_rtp::RtcpPacket::parse(Bytes::from(data));
    }
}

// ---------- FEC ----------

proptest! {
    #[test]
    fn fec_recovers_any_single_loss(
        sizes in proptest::collection::vec(1usize..1400, 1..12),
        missing_idx in any::<prop::sample::Index>(),
        seed in any::<u64>(),
    ) {
        let packets: Vec<(u16, Bytes)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let body: Vec<u8> = (0..len)
                    .map(|j| ((seed as usize + i * 31 + j * 7) % 256) as u8)
                    .collect();
                (i as u16, Bytes::from(body))
            })
            .collect();
        let group = fec::encode_one(&packets);
        let missing = missing_idx.index(packets.len());
        let received: Vec<(u16, Bytes)> = packets
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != missing)
            .map(|(_, p)| p.clone())
            .collect();
        let (seq, payload) = fec::recover(&group, &received).expect("single loss recoverable");
        prop_assert_eq!(seq, packets[missing].0);
        prop_assert_eq!(payload, packets[missing].1.clone());
    }

    #[test]
    fn fec_groups_partition_packets(
        n in 1usize..60,
        repair in 1usize..12,
    ) {
        let packets: Vec<(u16, Bytes)> = (0..n as u16)
            .map(|s| (s, Bytes::from(vec![s as u8; 100])))
            .collect();
        let groups = fec::encode_groups(&packets, repair);
        let mut covered: Vec<u16> = groups.iter().flat_map(|g| g.protected.clone()).collect();
        covered.sort_unstable();
        prop_assert_eq!(covered, (0..n as u16).collect::<Vec<_>>());
        prop_assert_eq!(groups.len(), repair.min(n));
    }
}

// ---------- event queue & time ----------

proptest! {
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..100_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
        }
    }

    #[test]
    fn serialization_delay_monotone_in_size(
        a in 1usize..10_000,
        b in 1usize..10_000,
        rate in 1u64..1_000_000_000,
    ) {
        let (small, large) = (a.min(b), a.max(b));
        prop_assert!(
            SimDuration::for_bytes_at_rate(small, rate)
                <= SimDuration::for_bytes_at_rate(large, rate)
        );
    }
}

// ---------- link ----------

proptest! {
    #[test]
    fn link_deliveries_are_fifo(
        sizes in proptest::collection::vec(1usize..1500, 1..100),
        gap_us in 0u64..5_000,
    ) {
        let mut link = Link::new(LinkConfig {
            rate: RateTrace::constant(5_000_000),
            propagation: SimDuration::from_millis(10),
            queue_capacity_bytes: usize::MAX / 2,
            loss: LossModel::None,
            jitter: SimDuration::ZERO,
            discipline: converge_net::QueueDiscipline::DropTail,
            seed: 0,
            impairment: ImpairmentConfig::default(),
        });
        let mut last_delivery = SimTime::ZERO;
        for (i, &size) in sizes.iter().enumerate() {
            let now = SimTime::from_micros(i as u64 * gap_us);
            match link.transmit(now, size) {
                Transmit::Delivered(at) => {
                    prop_assert!(at >= last_delivery, "reordered delivery");
                    prop_assert!(at >= now, "delivery before send");
                    last_delivery = at;
                }
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
    }
}

// ---------- impairment layer ----------

/// Single-path emulator whose forward link carries `impairment` and is
/// otherwise lossless with a deep queue, so every observed anomaly is the
/// impairment's doing.
fn impaired_emulator(seed: u64, impairment: ImpairmentConfig) -> NetworkEmulator<usize> {
    let cfg = LinkConfig {
        rate: RateTrace::constant(100_000_000),
        queue_capacity_bytes: usize::MAX / 2,
        seed,
        impairment,
        ..LinkConfig::default()
    };
    NetworkEmulator::new(vec![Path::symmetric(PathId(0), cfg)])
}

/// Reordering shifts delivery times but never loses, duplicates, or
/// corrupts: the delivered payload multiset equals the sent multiset.
fn check_reorder_preserves_multiset(n: usize, prob: f64, horizon_ms: u64, seed: u64) {
    let mut emu = impaired_emulator(
        seed,
        ImpairmentConfig::reordering(prob, SimDuration::from_millis(horizon_ms)),
    );
    for i in 0..n {
        let at = SimTime::from_millis(i as u64);
        let (outcome, _) = emu.send(PathId(0), Direction::Forward, at, 500, i);
        assert_eq!(outcome, SendOutcome::Enqueued, "send {i}");
    }
    let mut delivered: Vec<usize> = emu
        .poll(SimTime::from_secs(3_600))
        .into_iter()
        .map(|d| d.payload)
        .collect();
    delivered.sort_unstable();
    assert_eq!(delivered, (0..n).collect::<Vec<_>>());
    assert!(emu.idle());
}

/// Duplication delivers every original exactly once plus a copy count
/// that tracks the configured probability: six standard deviations of
/// Binomial(2000, p) stays under 0.07·n for any p, so a 0.1·n tolerance
/// never flakes.
fn check_duplication_count_matches_rate(prob: f64, seed: u64) {
    const N: usize = 2_000;
    let mut emu = impaired_emulator(
        seed,
        ImpairmentConfig::duplication(prob, SimDuration::from_millis(2)),
    );
    for i in 0..N {
        let at = SimTime::from_millis(i as u64);
        let (outcome, _) = emu.send(PathId(0), Direction::Forward, at, 500, i);
        assert_eq!(outcome, SendOutcome::Enqueued, "send {i}");
    }
    let delivered: Vec<usize> = emu
        .poll(SimTime::from_secs(3_600))
        .into_iter()
        .map(|d| d.payload)
        .collect();
    let uniques: std::collections::BTreeSet<usize> = delivered.iter().copied().collect();
    assert_eq!(uniques.len(), N, "every original arrives exactly once");
    let copies = delivered.len() - N;
    let expected = N as f64 * prob;
    assert!(
        (copies as f64 - expected).abs() < N as f64 * 0.1,
        "copies {copies} vs expected {expected:.0} (p={prob}, seed={seed})"
    );
}

/// A blacked-out link accepts nothing: every send inside the window
/// reports `Blackout`, hands the payload back, and delivers zero packets
/// — the queue stays untouched.
fn check_blackout_delivers_nothing(n: usize, off_ms: u64, seed: u64) {
    let schedule = BlackoutSchedule::single(SimTime::ZERO, SimDuration::from_millis(off_ms));
    let mut emu = impaired_emulator(seed, ImpairmentConfig::blackout(schedule));
    for i in 0..n {
        // Spread sends across the whole window, strictly inside it.
        let at = SimTime::from_micros(off_ms * 1_000 * i as u64 / n as u64);
        let (outcome, returned) = emu.send(PathId(0), Direction::Forward, at, 500, i);
        assert_eq!(outcome, SendOutcome::Blackout, "send {i}");
        assert_eq!(returned, Some(i), "payload handed back");
    }
    assert!(emu.poll(SimTime::from_secs(3_600)).is_empty());
    assert!(emu.idle());
}

proptest! {
    #[test]
    fn reorder_preserves_delivered_payload_multiset(
        n in 1usize..200,
        prob in 0.0f64..=1.0,
        horizon_ms in 1u64..200,
        seed in any::<u64>(),
    ) {
        check_reorder_preserves_multiset(n, prob, horizon_ms, seed);
    }

    #[test]
    fn duplication_count_matches_rate(prob in 0.2f64..0.8, seed in any::<u64>()) {
        check_duplication_count_matches_rate(prob, seed);
    }

    #[test]
    fn blackout_window_delivers_exactly_nothing(
        n in 1usize..100,
        off_ms in 1u64..10_000,
        seed in any::<u64>(),
    ) {
        check_blackout_delivers_nothing(n, off_ms, seed);
    }
}

/// Deterministic sample of `reorder_preserves_delivered_payload_multiset`.
#[test]
fn reorder_preserves_multiset_on_seeded_grid() {
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        for prob in [0.05, 0.5, 1.0] {
            check_reorder_preserves_multiset(150, prob, 40, seed);
        }
    }
}

/// Deterministic sample of `duplication_count_matches_rate`.
#[test]
fn duplication_count_matches_rate_on_seeded_grid() {
    for seed in [3u64, 11, 42] {
        for prob in [0.25, 0.5, 0.75] {
            check_duplication_count_matches_rate(prob, seed);
        }
    }
}

/// Deterministic sample of `blackout_window_delivers_exactly_nothing`.
#[test]
fn blackout_delivers_nothing_on_seeded_grid() {
    for seed in [7u64, 19, 101] {
        for off_ms in [1u64, 500, 9_999] {
            check_blackout_delivers_nothing(60, off_ms, seed);
        }
    }
}

// ---------- Gilbert–Elliott loss statistics ----------

/// `LossModel::mean_loss()` (the closed-form stationary loss rate)
/// matches the empirical drop frequency of the sampled chain. The
/// parameter ranges keep the chain fast-mixing so 400k draws concentrate
/// well inside the 0.03 tolerance (~6σ).
fn check_ge_mean_loss_matches_empirical(
    p_gb: f64,
    p_bg: f64,
    loss_good: f64,
    loss_bad: f64,
    seed: u64,
) {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let model = LossModel::GilbertElliott {
        p_gb,
        p_bg,
        loss_good,
        loss_bad,
    };
    let mut process = LossProcess::new(model.clone());
    let mut rng = SmallRng::seed_from_u64(seed);
    // Burn-in past the initial good state, then count.
    for _ in 0..10_000 {
        process.should_drop(&mut rng);
    }
    const DRAWS: usize = 400_000;
    let mut drops = 0usize;
    for _ in 0..DRAWS {
        if process.should_drop(&mut rng) {
            drops += 1;
        }
    }
    let empirical = drops as f64 / DRAWS as f64;
    let analytic = model.mean_loss();
    assert!(
        (empirical - analytic).abs() < 0.03,
        "empirical {empirical:.4} vs analytic {analytic:.4} \
         (p_gb={p_gb}, p_bg={p_bg}, lg={loss_good}, lb={loss_bad}, seed={seed})"
    );
}

proptest! {
    // Few cases: each one draws 400k samples, and the statistical bound
    // is already a ~6σ test per case.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn gilbert_elliott_mean_loss_matches_empirical_frequency(
        p_gb in 0.05f64..0.9,
        p_bg in 0.05f64..0.9,
        loss_good in 0.0f64..0.2,
        loss_bad in 0.3f64..1.0,
        seed in any::<u64>(),
    ) {
        check_ge_mean_loss_matches_empirical(p_gb, p_bg, loss_good, loss_bad, seed);
    }
}

/// Deterministic sample of the statistical property, including the
/// paper-shaped `bursty_percent` presets (good state lossless, bursty bad
/// state) and a fast-flipping chain.
#[test]
fn ge_mean_loss_matches_empirical_on_seeded_grid() {
    check_ge_mean_loss_matches_empirical(0.05, 0.5, 0.0, 0.6, 11);
    check_ge_mean_loss_matches_empirical(0.3, 0.3, 0.1, 0.9, 42);
    check_ge_mean_loss_matches_empirical(0.85, 0.85, 0.15, 0.35, 77);
    for pct in [1.0, 4.0, 10.0] {
        let model = LossModel::bursty_percent(pct);
        if let LossModel::GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
        } = model
        {
            check_ge_mean_loss_matches_empirical(p_gb, p_bg, loss_good, loss_bad, 7);
        }
    }
}

// ---------- traces ----------

proptest! {
    #[test]
    fn trace_rate_at_always_within_segment_values(
        rates in proptest::collection::vec(0u64..100_000_000, 1..50),
        at_us in 0u64..1_000_000_000,
    ) {
        let t = RateTrace::new(SimDuration::from_millis(500), rates.clone());
        let r = t.rate_at(SimTime::from_micros(at_us));
        prop_assert!(rates.contains(&r));
    }

    #[test]
    fn trace_csv_roundtrips(
        // Two or more rows: a single-row trace cannot encode its step in
        // CSV (documented behaviour of `from_csv`).
        rates in proptest::collection::vec(0u64..100_000_000, 2..50),
        step_ms in 1u64..10_000,
    ) {
        let t = RateTrace::new(SimDuration::from_millis(step_ms), rates);
        let back = RateTrace::from_csv(&t.to_csv()).expect("roundtrip");
        prop_assert_eq!(t, back);
    }
}

/// Promoted from `properties.proptest-regressions` (shrunk counterexample
/// `rates = [0], step_ms = 1`): a single-row trace cannot encode its step
/// in CSV, so `from_csv(to_csv(..))` comes back as a *constant* trace with
/// the default 1 s step — not the original 1 ms trace. That shrink is why
/// `trace_csv_roundtrips` above requires two or more rows; this test pins
/// the documented single-row behaviour so it can't regress silently.
#[test]
fn regression_single_row_trace_csv_loses_its_step() {
    let original = RateTrace::new(SimDuration::from_millis(1), vec![0]);
    let back = RateTrace::from_csv(&original.to_csv()).expect("single row parses");
    assert_ne!(back, original, "a 1 ms step cannot survive a 1-row CSV");
    assert_eq!(back, RateTrace::constant(0));
}

/// Zero-rate segments are legal (a blackout expressed as bandwidth) and
/// must be reported verbatim, not clamped or skipped.
#[test]
fn rate_trace_zero_rate_segments_are_reported_verbatim() {
    let t = RateTrace::new(SimDuration::from_millis(500), vec![0, 5_000_000]);
    assert_eq!(t.rate_at(SimTime::ZERO), 0);
    assert_eq!(t.rate_at(SimTime::from_millis(499)), 0);
    assert_eq!(t.rate_at(SimTime::from_millis(500)), 5_000_000);
    assert_eq!(t.mean_rate(), 2_500_000);
}

/// `rate_at` wraps past the end of the trace: the schedule is periodic
/// with period `span()`, even far beyond the first cycle.
#[test]
fn rate_trace_wraps_periodically_past_its_span() {
    let t = RateTrace::new(SimDuration::from_millis(500), vec![1, 2, 3]);
    let span = t.span();
    assert_eq!(span, SimDuration::from_millis(1_500));
    for probe_ms in [0u64, 250, 499, 500, 1_000, 1_499] {
        let probe = SimTime::from_millis(probe_ms);
        let wrapped = SimTime::from_micros(probe.as_micros() + 7 * span.as_micros());
        assert_eq!(t.rate_at(probe), t.rate_at(wrapped), "t={probe_ms}ms");
    }
    // Far beyond any cycle boundary arithmetic could accidentally cover:
    // a million full cycles later the first segment is in effect again.
    let far = SimTime::from_micros(span.as_micros() * 1_000_000);
    assert_eq!(t.rate_at(far), t.rate_at(SimTime::ZERO));
}

// ---------- drive traces ----------

/// Builds a drive trace from milli-unit integers: times in ms (strictly
/// increasing via positive gaps), OWDs in ms, loss in milli-percent.
/// Milli-units survive the CSV/JSONL decimal formatting exactly, so the
/// round-trip properties can demand equality rather than tolerance.
fn drive_from_milli(rows: &[(u64, u64, u64, u64)]) -> DriveTrace {
    let mut t_ms = 0u64;
    let samples = rows
        .iter()
        .map(|&(gap_ms, rate_bps, owd_ms, loss_milli_pct)| {
            t_ms += gap_ms;
            DriveSample {
                at: SimTime::from_millis(t_ms),
                rate_bps,
                owd: SimDuration::from_millis(owd_ms),
                loss_pct: loss_milli_pct as f64 / 1000.0,
            }
        })
        .collect();
    DriveTrace::new(samples).expect("milli-unit rows are valid")
}

fn check_drive_csv_roundtrips(rows: &[(u64, u64, u64, u64)]) {
    let t = drive_from_milli(rows);
    let back = DriveTrace::from_csv(&t.to_csv()).expect("csv roundtrip");
    assert_eq!(t, back);
}

fn check_drive_jsonl_roundtrips(rows: &[(u64, u64, u64, u64)], path: u8) {
    let t = drive_from_milli(rows);
    // Path IDs must be contiguous from 0, so a single-trace document only
    // parses when its rows carry path 0; any other ID is a missing-path
    // error, not a silent renumbering.
    match DriveTrace::parse_jsonl(&t.to_jsonl(path)) {
        Ok(back) => {
            assert_eq!(path, 0, "non-zero path must not parse as a lone trace");
            assert_eq!(back, vec![t]);
        }
        Err(err) => {
            assert_ne!(path, 0, "path-0 document must roundtrip: {err:?}");
            assert!(matches!(err, DriveParseError::MissingPath(0)), "{err:?}");
        }
    }
}

fn check_drive_rejects_non_monotone_time(rows: &[(u64, u64, u64, u64)], dup_at: usize) {
    let good = drive_from_milli(rows);
    let mut samples = good.samples().to_vec();
    let dup = samples[dup_at.min(samples.len() - 1)];
    samples.push(dup); // time now revisits an earlier stamp
    samples.sort_by_key(|s| s.at);
    let err = DriveTrace::new(samples).expect_err("duplicate timestamp must be rejected");
    assert!(matches!(err, DriveParseError::NonMonotoneTime(_)), "{err:?}");
}

fn check_drive_holds_across_boundaries(rows: &[(u64, u64, u64, u64)]) {
    let t = drive_from_milli(rows);
    let samples = t.samples();
    // Before the first sample: the first sample's values hold.
    let before = SimTime::ZERO;
    assert_eq!(t.sample_at(before), &samples[0]);
    for (i, s) in samples.iter().enumerate() {
        // Exactly at a boundary the new sample takes effect…
        assert_eq!(t.sample_at(s.at), s, "boundary {i}");
        // …and one microsecond earlier the previous one still holds.
        if i > 0 {
            let just_before = SimTime::from_micros(s.at.as_micros() - 1);
            assert_eq!(t.sample_at(just_before), &samples[i - 1], "pre-boundary {i}");
        }
    }
    // Past the end the last sample holds forever (no wrap, unlike
    // `RateTrace`).
    let far = SimTime::from_micros(t.end().as_micros() + 86_400_000_000);
    assert_eq!(t.sample_at(far), samples.last().unwrap());
    assert_eq!(t.until_next_change(far), None);
}

fn arb_drive_rows() -> impl Strategy<Value = Vec<(u64, u64, u64, u64)>> {
    proptest::collection::vec(
        (1u64..60_000, 0u64..100_000_000, 0u64..2_000, 0u64..100_000),
        1..40,
    )
}

proptest! {
    #[test]
    fn drive_csv_roundtrips(rows in arb_drive_rows()) {
        check_drive_csv_roundtrips(&rows);
    }

    #[test]
    fn drive_jsonl_roundtrips(rows in arb_drive_rows(), path in any::<u8>()) {
        check_drive_jsonl_roundtrips(&rows, path);
    }

    #[test]
    fn drive_rejects_non_monotone_time(rows in arb_drive_rows(), dup_at in any::<usize>()) {
        check_drive_rejects_non_monotone_time(&rows, dup_at);
    }

    #[test]
    fn drive_holds_across_boundaries(rows in arb_drive_rows()) {
        check_drive_holds_across_boundaries(&rows);
    }
}

/// Deterministic sample of the drive-trace properties (always runs, even
/// under the offline proptest stand-in).
#[test]
fn drive_properties_seeded_grid() {
    let grids: [&[(u64, u64, u64, u64)]; 4] = [
        // Single row: degenerate trace, zero loss.
        &[(5, 1_000_000, 40, 0)],
        // Coverage gap: healthy → dead (zero rate, lossy) → healthy.
        &[
            (1_000, 20_000_000, 35, 500),
            (9_000, 0, 120, 5_000),
            (8_000, 25_000_000, 30, 0),
        ],
        // Millisecond-scale gaps and fractional loss needing all three
        // formatted decimals.
        &[(1, 1, 1, 1), (1, 2, 2, 12), (1, 3, 3, 123), (2, 4, 0, 99_999)],
        // A longer walk with repeated values (plateaus are legal; only
        // *time* must move).
        &[
            (500, 8_000_000, 60, 250),
            (500, 8_000_000, 60, 250),
            (500, 9_500_000, 55, 0),
            (1_500, 9_500_000, 70, 0),
            (250, 500_000, 90, 10_000),
        ],
    ];
    for (i, rows) in grids.iter().enumerate() {
        check_drive_csv_roundtrips(rows);
        check_drive_jsonl_roundtrips(rows, 0);
        check_drive_jsonl_roundtrips(rows, i as u8);
        check_drive_rejects_non_monotone_time(rows, i);
        check_drive_holds_across_boundaries(rows);
    }
}

// ---------- path share (Eq. 1 + Eq. 2) ----------

proptest! {
    #[test]
    fn split_always_covers_exactly_n(
        n in 0usize..200,
        rates in proptest::collection::vec(1u64..50_000_000, 1..5),
        alphas in proptest::collection::vec(-40i32..40, 0..10),
    ) {
        use converge_core::PathMetrics;
        let paths: Vec<PathMetrics> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| PathMetrics::new(
                PathId(i as u8),
                r,
                SimDuration::from_millis(50),
                0.0,
            ))
            .collect();
        let mut share = PathShare::new();
        for (i, &a) in alphas.iter().enumerate() {
            share.apply_feedback(PathId((i % rates.len()) as u8), a, SimDuration::from_millis(10));
        }
        let counts = share.split(n, &paths, &std::collections::BTreeMap::new());
        let total: usize = counts.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, n);
    }
}

// ---------- receiver buffers ----------

/// Builds the packet list of one frame.
fn frame_packets(frame_id: u64, base_seq: u64, media: u16) -> Vec<VideoPacket> {
    let mut v = vec![VideoPacket {
        stream: StreamId(0),
        sequence: base_seq,
        frame_id,
        gop_id: 0,
        frame_type: if frame_id == 0 {
            FrameType::Key
        } else {
            FrameType::Delta
        },
        kind: PacketKind::Pps,
        size: 64,
        capture_time: SimTime::from_millis(frame_id * 33),
    }];
    for i in 0..media {
        v.push(VideoPacket {
            sequence: base_seq + 1 + i as u64,
            kind: PacketKind::Media {
                index: i,
                count: media,
            },
            size: 1200,
            ..v[0]
        });
    }
    v
}

proptest! {
    #[test]
    fn packet_buffer_completes_frames_in_any_arrival_order(
        order_seed in any::<u64>(),
        media in 1u16..20,
    ) {
        let mut pkts = frame_packets(0, 0, media);
        // Deterministic shuffle from the seed.
        let mut s = order_seed;
        for i in (1..pkts.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            pkts.swap(i, j);
        }
        let mut buf = PacketBuffer::new(1024);
        let mut complete = 0;
        for (i, p) in pkts.iter().enumerate() {
            for ev in buf.insert(SimTime::from_micros(i as u64), p) {
                if let PacketBufferEvent::FrameComplete(f) = ev {
                    complete += 1;
                    prop_assert_eq!(f.size, media as usize * 1200);
                }
            }
        }
        prop_assert_eq!(complete, 1, "exactly one completion");
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn packet_buffer_never_exceeds_capacity(
        cap in 4usize..64,
        inserts in proptest::collection::vec((0u64..30, 0u16..6), 1..300),
    ) {
        let mut buf = PacketBuffer::new(cap);
        for (i, &(frame_id, index)) in inserts.iter().enumerate() {
            let p = VideoPacket {
                stream: StreamId(0),
                sequence: i as u64,
                frame_id,
                gop_id: 0,
                frame_type: FrameType::Delta,
                // count high enough that frames rarely complete.
                kind: PacketKind::Media { index, count: 6 },
                size: 1200,
                capture_time: SimTime::ZERO,
            };
            buf.insert(SimTime::from_micros(i as u64), &p);
            prop_assert!(buf.len() <= cap, "len {} > cap {cap}", buf.len());
        }
    }

    #[test]
    fn frame_buffer_decodes_in_strictly_increasing_order(
        order_seed in any::<u64>(),
        n_frames in 2u64..30,
    ) {
        let mut ids: Vec<u64> = (0..n_frames).collect();
        let mut s = order_seed;
        for i in (1..ids.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            ids.swap(i, j);
        }
        let mut fb = FrameBuffer::new(64);
        fb.sps_received(0);
        let mut decoded: Vec<u64> = Vec::new();
        for (step, &frame_id) in ids.iter().enumerate() {
            let frame = CompleteFrame {
                stream: StreamId(0),
                frame_id,
                gop_id: 0,
                frame_type: if frame_id == 0 { FrameType::Key } else { FrameType::Delta },
                size: 1000,
                capture_time: SimTime::from_millis(frame_id * 33),
                first_arrival: SimTime::from_millis(step as u64),
                completed_at: SimTime::from_millis(step as u64),
            };
            for ev in fb.insert(SimTime::from_millis(step as u64), frame) {
                if let FrameBufferEvent::Decoded { frame, .. } = ev {
                    decoded.push(frame.frame_id);
                }
            }
        }
        // The decode sequence is strictly increasing (never replays or
        // reorders) regardless of arrival order.
        for w in decoded.windows(2) {
            prop_assert!(w[0] < w[1], "decode order violated: {decoded:?}");
        }
        // If the keyframe arrived before any delta, the whole chain must
        // decode; otherwise the buffer abandons the pre-keyframe chain and
        // asks the sender for a fresh keyframe (tested in unit tests).
        if ids[0] == 0 {
            prop_assert_eq!(decoded, (0..n_frames).collect::<Vec<_>>());
        }
    }
}

/// Promoted from `properties.proptest-regressions` (shrunk counterexample
/// `order_seed = 17940910340340672, n_frames = 3`): this seed shuffles the
/// arrival order to `[1, 0, 2]` — a delta frame lands *before* the
/// keyframe it depends on. That is the minimal case where a naive frame
/// buffer replays frame 1 (or decodes it ahead of the keyframe) once
/// frame 0 finally arrives, breaking the strictly-increasing decode
/// order. Pinned here as a plain test so the case survives even if the
/// proptest-regressions file is lost.
#[test]
fn regression_frame_buffer_delta_arriving_before_keyframe() {
    let arrival_order = [1u64, 0, 2]; // what the shrunk seed produces
    let mut fb = FrameBuffer::new(64);
    fb.sps_received(0);
    let mut decoded: Vec<u64> = Vec::new();
    for (step, &frame_id) in arrival_order.iter().enumerate() {
        let frame = CompleteFrame {
            stream: StreamId(0),
            frame_id,
            gop_id: 0,
            frame_type: if frame_id == 0 {
                FrameType::Key
            } else {
                FrameType::Delta
            },
            size: 1000,
            capture_time: SimTime::from_millis(frame_id * 33),
            first_arrival: SimTime::from_millis(step as u64),
            completed_at: SimTime::from_millis(step as u64),
        };
        for ev in fb.insert(SimTime::from_millis(step as u64), frame) {
            if let FrameBufferEvent::Decoded { frame, .. } = ev {
                decoded.push(frame.frame_id);
            }
        }
    }
    for w in decoded.windows(2) {
        assert!(w[0] < w[1], "decode order violated: {decoded:?}");
    }
}

// ---------- quality model ----------

proptest! {
    #[test]
    fn qp_and_psnr_move_oppositely(
        r1 in 100_000.0f64..50_000_000.0,
        r2 in 100_000.0f64..50_000_000.0,
    ) {
        use converge_video::{psnr_for_bitrate, qp_for_bitrate, VideoFormat};
        let f = VideoFormat::HD720;
        let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(qp_for_bitrate(f, lo) >= qp_for_bitrate(f, hi));
        prop_assert!(psnr_for_bitrate(f, lo) <= psnr_for_bitrate(f, hi));
    }
}

// ---------- scheduler assignments ----------

proptest! {
    #[test]
    fn schedulers_assign_every_packet_to_a_known_path(
        n_packets in 1usize..80,
        rate0 in 1u64..30_000_000,
        rate1 in 1u64..30_000_000,
    ) {
        use converge_core::{
            classify, ConvergeScheduler, ConvergeSchedulerConfig, MRtpScheduler,
            MTputScheduler, PathMetrics, Schedulable, Scheduler, SrttScheduler,
        };
        let paths = [
            PathMetrics::new(PathId(0), rate0, SimDuration::from_millis(40), 0.0),
            PathMetrics::new(PathId(1), rate1, SimDuration::from_millis(80), 0.0),
        ];
        let packets: Vec<Schedulable> = (0..n_packets)
            .map(|i| {
                let p = VideoPacket {
                    stream: StreamId(0),
                    sequence: i as u64,
                    frame_id: 0,
                    gop_id: 0,
                    frame_type: if i == 0 { FrameType::Key } else { FrameType::Delta },
                    kind: if i == 0 {
                        PacketKind::Pps
                    } else {
                        PacketKind::Media { index: i as u16, count: n_packets as u16 }
                    },
                    size: 1200,
                    capture_time: SimTime::ZERO,
                };
                Schedulable { packet: p, class: classify(&p) }
            })
            .collect();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(ConvergeScheduler::new(ConvergeSchedulerConfig::default())),
            Box::new(SrttScheduler::new(1250, SimDuration::from_micros(33_333))),
            Box::new(MTputScheduler::new()),
            Box::new(MRtpScheduler::new()),
        ];
        for sched in schedulers.iter_mut() {
            let out = sched.assign_batch(SimTime::ZERO, &packets, &paths);
            prop_assert_eq!(out.len(), packets.len(), "{}", sched.name());
            for a in &out {
                prop_assert!(a.path == PathId(0) || a.path == PathId(1));
            }
        }
    }
}
