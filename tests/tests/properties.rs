//! Property-based tests (proptest) over the core data structures and
//! invariants of the workspace.

use bytes::Bytes;
use proptest::prelude::*;

use converge_core::PathShare;
use converge_net::event::EventQueue;
use converge_net::{
    Link, LinkConfig, LossModel, PathId, RateTrace, SimDuration, SimTime, Transmit,
};
use converge_rtp::{fec, MultipathExtension, PayloadType, RtpPacket};
use converge_video::{
    CompleteFrame, FrameBuffer, FrameBufferEvent, FrameType, PacketBuffer, PacketBufferEvent,
    PacketKind, StreamId, VideoPacket,
};

// ---------- wire formats ----------

fn arb_payload_type() -> impl Strategy<Value = PayloadType> {
    prop_oneof![
        Just(PayloadType::Video),
        Just(PayloadType::Fec),
        Just(PayloadType::Retransmission),
        Just(PayloadType::Probe),
    ]
}

proptest! {
    #[test]
    fn rtp_roundtrips_any_fields(
        marker in any::<bool>(),
        pt in arb_payload_type(),
        sequence in any::<u16>(),
        timestamp in any::<u32>(),
        ssrc in any::<u32>(),
        with_ext in any::<bool>(),
        path_id in any::<u8>(),
        mp_seq in any::<u16>(),
        mp_tseq in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
    ) {
        let p = RtpPacket {
            marker,
            payload_type: pt,
            sequence,
            timestamp,
            ssrc,
            extension: with_ext.then_some(MultipathExtension {
                path_id,
                mp_sequence: mp_seq,
                mp_transport_sequence: mp_tseq,
            }),
            payload: Bytes::from(payload),
        };
        let back = RtpPacket::parse(p.serialize()).expect("roundtrip");
        prop_assert_eq!(p, back);
    }

    #[test]
    fn rtp_parser_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = RtpPacket::parse(Bytes::from(data));
    }

    #[test]
    fn rtcp_parser_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = converge_rtp::RtcpPacket::parse(Bytes::from(data));
    }
}

// ---------- FEC ----------

proptest! {
    #[test]
    fn fec_recovers_any_single_loss(
        sizes in proptest::collection::vec(1usize..1400, 1..12),
        missing_idx in any::<prop::sample::Index>(),
        seed in any::<u64>(),
    ) {
        let packets: Vec<(u16, Bytes)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let body: Vec<u8> = (0..len)
                    .map(|j| ((seed as usize + i * 31 + j * 7) % 256) as u8)
                    .collect();
                (i as u16, Bytes::from(body))
            })
            .collect();
        let group = fec::encode_one(&packets);
        let missing = missing_idx.index(packets.len());
        let received: Vec<(u16, Bytes)> = packets
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != missing)
            .map(|(_, p)| p.clone())
            .collect();
        let (seq, payload) = fec::recover(&group, &received).expect("single loss recoverable");
        prop_assert_eq!(seq, packets[missing].0);
        prop_assert_eq!(payload, packets[missing].1.clone());
    }

    #[test]
    fn fec_groups_partition_packets(
        n in 1usize..60,
        repair in 1usize..12,
    ) {
        let packets: Vec<(u16, Bytes)> = (0..n as u16)
            .map(|s| (s, Bytes::from(vec![s as u8; 100])))
            .collect();
        let groups = fec::encode_groups(&packets, repair);
        let mut covered: Vec<u16> = groups.iter().flat_map(|g| g.protected.clone()).collect();
        covered.sort_unstable();
        prop_assert_eq!(covered, (0..n as u16).collect::<Vec<_>>());
        prop_assert_eq!(groups.len(), repair.min(n));
    }
}

// ---------- event queue & time ----------

proptest! {
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..100_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
        }
    }

    #[test]
    fn serialization_delay_monotone_in_size(
        a in 1usize..10_000,
        b in 1usize..10_000,
        rate in 1u64..1_000_000_000,
    ) {
        let (small, large) = (a.min(b), a.max(b));
        prop_assert!(
            SimDuration::for_bytes_at_rate(small, rate)
                <= SimDuration::for_bytes_at_rate(large, rate)
        );
    }
}

// ---------- link ----------

proptest! {
    #[test]
    fn link_deliveries_are_fifo(
        sizes in proptest::collection::vec(1usize..1500, 1..100),
        gap_us in 0u64..5_000,
    ) {
        let mut link = Link::new(LinkConfig {
            rate: RateTrace::constant(5_000_000),
            propagation: SimDuration::from_millis(10),
            queue_capacity_bytes: usize::MAX / 2,
            loss: LossModel::None,
            jitter: SimDuration::ZERO,
            discipline: converge_net::QueueDiscipline::DropTail,
            seed: 0,
        });
        let mut last_delivery = SimTime::ZERO;
        for (i, &size) in sizes.iter().enumerate() {
            let now = SimTime::from_micros(i as u64 * gap_us);
            match link.transmit(now, size) {
                Transmit::Delivered(at) => {
                    prop_assert!(at >= last_delivery, "reordered delivery");
                    prop_assert!(at >= now, "delivery before send");
                    last_delivery = at;
                }
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
    }
}

// ---------- traces ----------

proptest! {
    #[test]
    fn trace_rate_at_always_within_segment_values(
        rates in proptest::collection::vec(0u64..100_000_000, 1..50),
        at_us in 0u64..1_000_000_000,
    ) {
        let t = RateTrace::new(SimDuration::from_millis(500), rates.clone());
        let r = t.rate_at(SimTime::from_micros(at_us));
        prop_assert!(rates.contains(&r));
    }

    #[test]
    fn trace_csv_roundtrips(
        // Two or more rows: a single-row trace cannot encode its step in
        // CSV (documented behaviour of `from_csv`).
        rates in proptest::collection::vec(0u64..100_000_000, 2..50),
        step_ms in 1u64..10_000,
    ) {
        let t = RateTrace::new(SimDuration::from_millis(step_ms), rates);
        let back = RateTrace::from_csv(&t.to_csv()).expect("roundtrip");
        prop_assert_eq!(t, back);
    }
}

// ---------- path share (Eq. 1 + Eq. 2) ----------

proptest! {
    #[test]
    fn split_always_covers_exactly_n(
        n in 0usize..200,
        rates in proptest::collection::vec(1u64..50_000_000, 1..5),
        alphas in proptest::collection::vec(-40i32..40, 0..10),
    ) {
        use converge_core::PathMetrics;
        let paths: Vec<PathMetrics> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| PathMetrics::new(
                PathId(i as u8),
                r,
                SimDuration::from_millis(50),
                0.0,
            ))
            .collect();
        let mut share = PathShare::new();
        for (i, &a) in alphas.iter().enumerate() {
            share.apply_feedback(PathId((i % rates.len()) as u8), a, SimDuration::from_millis(10));
        }
        let counts = share.split(n, &paths, &std::collections::BTreeMap::new());
        let total: usize = counts.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, n);
    }
}

// ---------- receiver buffers ----------

/// Builds the packet list of one frame.
fn frame_packets(frame_id: u64, base_seq: u64, media: u16) -> Vec<VideoPacket> {
    let mut v = vec![VideoPacket {
        stream: StreamId(0),
        sequence: base_seq,
        frame_id,
        gop_id: 0,
        frame_type: if frame_id == 0 {
            FrameType::Key
        } else {
            FrameType::Delta
        },
        kind: PacketKind::Pps,
        size: 64,
        capture_time: SimTime::from_millis(frame_id * 33),
    }];
    for i in 0..media {
        v.push(VideoPacket {
            sequence: base_seq + 1 + i as u64,
            kind: PacketKind::Media {
                index: i,
                count: media,
            },
            size: 1200,
            ..v[0]
        });
    }
    v
}

proptest! {
    #[test]
    fn packet_buffer_completes_frames_in_any_arrival_order(
        order_seed in any::<u64>(),
        media in 1u16..20,
    ) {
        let mut pkts = frame_packets(0, 0, media);
        // Deterministic shuffle from the seed.
        let mut s = order_seed;
        for i in (1..pkts.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            pkts.swap(i, j);
        }
        let mut buf = PacketBuffer::new(1024);
        let mut complete = 0;
        for (i, p) in pkts.iter().enumerate() {
            for ev in buf.insert(SimTime::from_micros(i as u64), p) {
                if let PacketBufferEvent::FrameComplete(f) = ev {
                    complete += 1;
                    prop_assert_eq!(f.size, media as usize * 1200);
                }
            }
        }
        prop_assert_eq!(complete, 1, "exactly one completion");
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn packet_buffer_never_exceeds_capacity(
        cap in 4usize..64,
        inserts in proptest::collection::vec((0u64..30, 0u16..6), 1..300),
    ) {
        let mut buf = PacketBuffer::new(cap);
        for (i, &(frame_id, index)) in inserts.iter().enumerate() {
            let p = VideoPacket {
                stream: StreamId(0),
                sequence: i as u64,
                frame_id,
                gop_id: 0,
                frame_type: FrameType::Delta,
                // count high enough that frames rarely complete.
                kind: PacketKind::Media { index, count: 6 },
                size: 1200,
                capture_time: SimTime::ZERO,
            };
            buf.insert(SimTime::from_micros(i as u64), &p);
            prop_assert!(buf.len() <= cap, "len {} > cap {cap}", buf.len());
        }
    }

    #[test]
    fn frame_buffer_decodes_in_strictly_increasing_order(
        order_seed in any::<u64>(),
        n_frames in 2u64..30,
    ) {
        let mut ids: Vec<u64> = (0..n_frames).collect();
        let mut s = order_seed;
        for i in (1..ids.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            ids.swap(i, j);
        }
        let mut fb = FrameBuffer::new(64);
        fb.sps_received(0);
        let mut decoded: Vec<u64> = Vec::new();
        for (step, &frame_id) in ids.iter().enumerate() {
            let frame = CompleteFrame {
                stream: StreamId(0),
                frame_id,
                gop_id: 0,
                frame_type: if frame_id == 0 { FrameType::Key } else { FrameType::Delta },
                size: 1000,
                capture_time: SimTime::from_millis(frame_id * 33),
                first_arrival: SimTime::from_millis(step as u64),
                completed_at: SimTime::from_millis(step as u64),
            };
            for ev in fb.insert(SimTime::from_millis(step as u64), frame) {
                if let FrameBufferEvent::Decoded { frame, .. } = ev {
                    decoded.push(frame.frame_id);
                }
            }
        }
        // The decode sequence is strictly increasing (never replays or
        // reorders) regardless of arrival order.
        for w in decoded.windows(2) {
            prop_assert!(w[0] < w[1], "decode order violated: {decoded:?}");
        }
        // If the keyframe arrived before any delta, the whole chain must
        // decode; otherwise the buffer abandons the pre-keyframe chain and
        // asks the sender for a fresh keyframe (tested in unit tests).
        if ids[0] == 0 {
            prop_assert_eq!(decoded, (0..n_frames).collect::<Vec<_>>());
        }
    }
}

// ---------- quality model ----------

proptest! {
    #[test]
    fn qp_and_psnr_move_oppositely(
        r1 in 100_000.0f64..50_000_000.0,
        r2 in 100_000.0f64..50_000_000.0,
    ) {
        use converge_video::{psnr_for_bitrate, qp_for_bitrate, VideoFormat};
        let f = VideoFormat::HD720;
        let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(qp_for_bitrate(f, lo) >= qp_for_bitrate(f, hi));
        prop_assert!(psnr_for_bitrate(f, lo) <= psnr_for_bitrate(f, hi));
    }
}

// ---------- scheduler assignments ----------

proptest! {
    #[test]
    fn schedulers_assign_every_packet_to_a_known_path(
        n_packets in 1usize..80,
        rate0 in 1u64..30_000_000,
        rate1 in 1u64..30_000_000,
    ) {
        use converge_core::{
            classify, ConvergeScheduler, ConvergeSchedulerConfig, MRtpScheduler,
            MTputScheduler, PathMetrics, Schedulable, Scheduler, SrttScheduler,
        };
        let paths = [
            PathMetrics::new(PathId(0), rate0, SimDuration::from_millis(40), 0.0),
            PathMetrics::new(PathId(1), rate1, SimDuration::from_millis(80), 0.0),
        ];
        let packets: Vec<Schedulable> = (0..n_packets)
            .map(|i| {
                let p = VideoPacket {
                    stream: StreamId(0),
                    sequence: i as u64,
                    frame_id: 0,
                    gop_id: 0,
                    frame_type: if i == 0 { FrameType::Key } else { FrameType::Delta },
                    kind: if i == 0 {
                        PacketKind::Pps
                    } else {
                        PacketKind::Media { index: i as u16, count: n_packets as u16 }
                    },
                    size: 1200,
                    capture_time: SimTime::ZERO,
                };
                Schedulable { packet: p, class: classify(&p) }
            })
            .collect();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(ConvergeScheduler::new(ConvergeSchedulerConfig::default())),
            Box::new(SrttScheduler::new(1250, SimDuration::from_micros(33_333))),
            Box::new(MTputScheduler::new()),
            Box::new(MRtpScheduler::new()),
        ];
        for sched in schedulers.iter_mut() {
            let out = sched.assign_batch(SimTime::ZERO, &packets, &paths);
            prop_assert_eq!(out.len(), packets.len(), "{}", sched.name());
            for a in &out {
                prop_assert!(a.path == PathId(0) || a.path == PathId(1));
            }
        }
    }
}
