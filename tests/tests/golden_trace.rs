//! Golden-trace snapshot: one small, fully pinned session is rendered to
//! JSONL and byte-compared against a checked-in fixture. Any change to
//! the control loop, the event vocabulary, the JSONL encoding, or the
//! emulator's RNG consumption shows up here as a diff — including the
//! silent kind where a refactor perturbs the RNG stream without failing
//! any behavioural test.
//!
//! To regenerate after an *intentional* change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p converge-integration --test golden_trace
//! ```
//!
//! then review the fixture diff like any other code change.

use std::sync::Arc;

use converge_net::SimDuration;
use converge_sim::{FecKind, ScenarioConfig, SchedulerKind, Session, SessionConfig};
use converge_trace::{jsonl, RingSink, TraceHandle};

/// Renders the pinned golden session: 3 s of the FEC trade-off scenario
/// (2% bursty loss, so the FEC controller, NACKs, and the loss process
/// all contribute events) under Converge scheduling, seed 7.
fn render_golden() -> String {
    let ring = Arc::new(RingSink::new(1 << 20));
    let cfg = SessionConfig::builder()
        .scenario(ScenarioConfig::fec_tradeoff(2.0))
        .scheduler(SchedulerKind::Converge)
        .fec(FecKind::Converge)
        .streams(1)
        .duration(SimDuration::from_secs(3))
        .seed(7)
        .trace(TraceHandle::new(ring.clone()))
        .build()
        .expect("golden config is valid");
    let report = Session::new(cfg).run();
    assert!(report.frames_decoded > 0, "golden run must decode frames");
    assert_eq!(ring.dropped(), 0, "ring must hold the whole timeline");
    jsonl::render("golden", &ring.drain())
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden_trace.jsonl")
}

#[test]
fn golden_trace_matches_checked_in_fixture() {
    let rendered = render_golden();
    let path = fixture_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &rendered).expect("write fixture");
        eprintln!("golden fixture regenerated at {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if rendered != expected {
        // A full-string assert_eq! would dump both multi-hundred-line
        // documents; point at the first divergent line instead.
        let diverged = rendered
            .lines()
            .zip(expected.lines())
            .position(|(a, b)| a != b)
            .map(|i| {
                let got = rendered.lines().nth(i).unwrap_or("<eof>");
                let want = expected.lines().nth(i).unwrap_or("<eof>");
                format!("first divergence at line {}:\n  got:  {got}\n  want: {want}", i + 1)
            })
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: got {}, want {}",
                    rendered.lines().count(),
                    expected.lines().count()
                )
            });
        panic!(
            "golden trace drifted from {} — {diverged}\n\
             If the change is intentional, regenerate with UPDATE_GOLDEN=1 \
             and review the fixture diff.",
            path.display()
        );
    }
}

/// The golden render itself is stable within a process: two back-to-back
/// renders agree byte-for-byte, so a fixture mismatch always means the
/// *code* changed, never that the run is nondeterministic.
#[test]
fn golden_render_is_self_consistent() {
    assert_eq!(render_golden(), render_golden());
}
