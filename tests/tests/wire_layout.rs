//! Golden wire-layout tests: pin the exact byte layout of the Converge
//! multipath extensions (paper Figs. 18–19) so refactors cannot silently
//! change the protocol.

use bytes::Bytes;
use converge_rtp::{
    MultipathExtension, PayloadType, QoeFeedback, ReceiverReport, ReportBlock, RtcpPacket,
    RtpPacket,
};

#[test]
fn rtp_multipath_extension_layout_fig18() {
    let pkt = RtpPacket {
        marker: false,
        payload_type: PayloadType::Video,
        sequence: 0x0102,
        timestamp: 0x0304_0506,
        ssrc: 0x0708_090A,
        extension: Some(MultipathExtension {
            path_id: 0xAB,
            mp_sequence: 0x1122,
            mp_transport_sequence: 0x3344,
        }),
        payload: Bytes::new(),
    };
    let wire = pkt.serialize();

    // RFC 3550 fixed header.
    assert_eq!(wire[0], 0b1001_0000, "V=2, P=0, X=1, CC=0");
    assert_eq!(wire[1] & 0x7F, 96, "video payload type");
    assert_eq!(&wire[2..4], &[0x01, 0x02], "sequence");
    assert_eq!(&wire[4..8], &[0x03, 0x04, 0x05, 0x06], "timestamp");
    assert_eq!(&wire[8..12], &[0x07, 0x08, 0x09, 0x0A], "ssrc");

    // RFC 5285 one-byte-form extension header.
    assert_eq!(&wire[12..14], &[0xBE, 0xDE], "profile 0xBEDE");
    assert_eq!(&wire[14..16], &[0x00, 0x02], "2 words of body");

    // Fig. 18 elements: PathID (id 1, 1 byte), MpSequenceNumber (id 2,
    // 2 bytes), MpTransportSequenceNumber (id 3, 2 bytes).
    assert_eq!(wire[16], 1 << 4, "path element header");
    assert_eq!(wire[17], 0xAB, "path id");
    assert_eq!(wire[18], (2 << 4) | 1, "mp-seq element header");
    assert_eq!(&wire[19..21], &[0x11, 0x22], "mp sequence");
    assert_eq!(wire[21], (3 << 4) | 1, "mp-transport-seq element header");
    assert_eq!(&wire[22..24], &[0x33, 0x44], "mp transport sequence");
    assert_eq!(wire.len(), 24, "no payload, no padding beyond alignment");
}

#[test]
fn rtcp_rr_layout_fig19() {
    let rr = RtcpPacket::ReceiverReport(ReceiverReport {
        path_id: 0x07,
        ssrc: 0x1111_2222,
        blocks: vec![ReportBlock {
            ssrc: 0x3333_4444,
            fraction_lost: 0x80,
            cumulative_lost: 0x00_0A0B,
            ext_highest_seq: 0x5555_6666,
            ext_highest_mp_seq: 0x7777_8888,
            jitter: 0x0000_0009,
            last_sr: 0x0000_0001,
            delay_since_last_sr: 0x0000_0002,
        }],
    });
    let wire = rr.serialize();

    assert_eq!(wire[0] >> 6, 2, "version");
    assert_eq!(wire[0] & 0x1F, 1, "one report block");
    assert_eq!(wire[1], 201, "PT=RR");
    // Fig. 19: the PathID word follows the header, before the SSRC.
    assert_eq!(&wire[4..8], &[0, 0, 0, 0x07], "PathID word");
    assert_eq!(&wire[8..12], &[0x11, 0x11, 0x22, 0x22], "reporter ssrc");
    // Block: ssrc, fraction+cumulative, ext highest seq, then the Fig. 19
    // addition — Extended Highest Mp-Sequence Received.
    assert_eq!(&wire[12..16], &[0x33, 0x33, 0x44, 0x44]);
    assert_eq!(wire[16], 0x80, "fraction lost");
    assert_eq!(&wire[17..20], &[0x00, 0x0A, 0x0B], "cumulative lost (24-bit)");
    assert_eq!(&wire[20..24], &[0x55, 0x55, 0x66, 0x66], "ext highest seq");
    assert_eq!(
        &wire[24..28],
        &[0x77, 0x77, 0x88, 0x88],
        "ext highest MP seq (the multipath extension)"
    );
}

#[test]
fn rtcp_qoe_feedback_layout() {
    let fb = RtcpPacket::QoeFeedback(QoeFeedback {
        path_id: 0x02,
        ssrc: 0xAABB_CCDD,
        alpha: -5,
        fcd_micros: 0x0000_0000_0001_0203,
    });
    let wire = fb.serialize();

    assert_eq!(wire[1], 204, "APP packet");
    assert_eq!(&wire[4..8], &[0xAA, 0xBB, 0xCC, 0xDD], "ssrc");
    assert_eq!(&wire[8..12], b"CVRG", "application name");
    assert_eq!(&wire[12..16], &[0, 0, 0, 0x02], "path id word");
    assert_eq!(
        &wire[16..20],
        &(-5i32).to_be_bytes(),
        "alpha (signed, two's complement)"
    );
    assert_eq!(
        &wire[20..28],
        &[0, 0, 0, 0, 0, 1, 0x02, 0x03],
        "FCD in microseconds"
    );
}

#[test]
fn layouts_are_stable_across_roundtrips() {
    // Serialize → parse → serialize must be byte-identical (canonical
    // encoding, no degrees of freedom).
    let packets = vec![
        RtcpPacket::QoeFeedback(QoeFeedback {
            path_id: 1,
            ssrc: 42,
            alpha: 17,
            fcd_micros: 99_999,
        }),
        RtcpPacket::ReceiverReport(ReceiverReport {
            path_id: 0,
            ssrc: 7,
            blocks: vec![],
        }),
    ];
    for p in packets {
        let first = p.serialize();
        let reparsed = RtcpPacket::parse(first.clone()).unwrap();
        assert_eq!(reparsed.serialize(), first);
    }
}
