//! Property-based tests over the transport-adjacent modules: SRTP
//! protection, the pacer, and the connection monitor.

// With the offline proptest stand-in the `proptest!` bodies vanish,
// leaving strategies and imports used only inside them looking unused.
#![allow(dead_code, unused_imports)]

use proptest::prelude::*;

use converge_net::{PathId, SimDuration, SimTime};
use converge_rtp::{SrtpContext, SrtpError};
use converge_signal::{ConnectionMonitor, MonitorConfig, PathState};

// ---------- SRTP ----------

proptest! {
    #[test]
    fn srtp_roundtrips_any_payload(
        key in any::<u64>(),
        ssrc in any::<u32>(),
        seq in 0u64..1_000_000,
        path in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
    ) {
        let tx = SrtpContext::new(key);
        let mut rx = SrtpContext::new(key);
        let wire = tx.protect(ssrc, seq, path, &payload);
        let plain = rx.unprotect(ssrc, seq, path, &wire).expect("roundtrip");
        prop_assert_eq!(&plain[..], &payload[..]);
    }

    #[test]
    fn srtp_rejects_any_single_bit_flip(
        key in any::<u64>(),
        seq in 0u64..10_000,
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let tx = SrtpContext::new(key);
        let mut rx = SrtpContext::new(key);
        let wire = tx.protect(1, seq, 0, &payload);
        let mut bad = wire.to_vec();
        let idx = flip_byte.index(bad.len());
        bad[idx] ^= 1 << flip_bit;
        prop_assert_eq!(
            rx.unprotect(1, seq, 0, &bad),
            Err(SrtpError::AuthenticationFailed)
        );
    }

    #[test]
    fn srtp_replay_always_detected_in_window(
        key in any::<u64>(),
        seqs in proptest::collection::vec(0u64..60, 2..40),
    ) {
        let tx = SrtpContext::new(key);
        let mut rx = SrtpContext::new(key);
        let mut seen = std::collections::BTreeSet::new();
        for &seq in &seqs {
            let wire = tx.protect(1, seq, 0, b"payload");
            let result = rx.unprotect(1, seq, 0, &wire);
            // All sequences are within 60 of each other, inside the 64-wide
            // window, so acceptance is exactly first-time-seen.
            if seen.insert(seq) {
                prop_assert!(result.is_ok(), "fresh seq {seq} rejected");
            } else {
                prop_assert_eq!(result, Err(SrtpError::Replayed));
            }
        }
    }

    #[test]
    fn srtp_keystreams_differ_across_nonce_fields(
        key in any::<u64>(),
        seq in 0u64..1_000_000,
        path in 0u8..254,
    ) {
        let tx = SrtpContext::new(key);
        let payload = [0u8; 64];
        let a = tx.protect(1, seq, path, &payload);
        let b = tx.protect(1, seq + 1, path, &payload);
        let c = tx.protect(1, seq, path + 1, &payload);
        let d = tx.protect(2, seq, path, &payload);
        prop_assert_ne!(&a, &b, "sequence must alter the keystream");
        prop_assert_ne!(&a, &c, "path must alter the keystream");
        prop_assert_ne!(&a, &d, "ssrc must alter the keystream");
    }
}

// ---------- connection monitor ----------

proptest! {
    #[test]
    fn monitor_state_consistent_under_any_activity_pattern(
        events in proptest::collection::vec((0u64..20_000, 0u8..2), 1..200),
    ) {
        let mut sorted = events.clone();
        sorted.sort();
        let mut m = ConnectionMonitor::new(MonitorConfig::default(), &[PathId(0), PathId(1)]);
        let mut last_heard: std::collections::BTreeMap<u8, u64> = Default::default();
        last_heard.insert(0, 0);
        last_heard.insert(1, 0);
        for &(at_ms, path) in &sorted {
            let t = SimTime::from_millis(at_ms);
            m.poll(t);
            m.on_activity(t, PathId(path));
            last_heard.insert(path, at_ms);
            // Invariant: a path heard from within the suspect window is Up.
            for (&p, &heard) in &last_heard {
                let silence = at_ms.saturating_sub(heard);
                let state = m.state(PathId(p)).expect("known path");
                if silence < 1_500 {
                    prop_assert_eq!(state, PathState::Up, "path{} silent {}ms", p, silence);
                }
                if silence >= 5_000 {
                    // poll() before the activity above may not have run at
                    // this exact instant for the other path; force it.
                    m.poll(t);
                    prop_assert_eq!(m.state(PathId(p)).unwrap(), PathState::Down);
                }
            }
        }
    }
}

// ---------- pacer ----------

proptest! {
    #[test]
    fn pacer_conserves_packets(
        sizes in proptest::collection::vec(100usize..1500, 1..100),
        rate in 500_000u64..20_000_000,
    ) {
        use converge_core::PacketClass;
        use converge_sim::payload::{NetPayload, RtpKind, SimRtp};
        use converge_sim::sender::OutboundPacket;
        use converge_sim::{Pacer, PacerConfig};
        use converge_video::{FrameType, PacketKind, StreamId, VideoPacket};

        let mut pacer = Pacer::new(PacerConfig::default());
        pacer.set_rate(PathId(0), rate as f64);
        let n = sizes.len();
        let packets: Vec<OutboundPacket> = sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| OutboundPacket {
                payload: NetPayload::Rtp(SimRtp {
                    kind: RtpKind::Media(VideoPacket {
                        stream: StreamId(0),
                        sequence: i as u64,
                        frame_id: 0,
                        gop_id: 0,
                        frame_type: FrameType::Delta,
                        kind: PacketKind::Media { index: i as u16, count: n as u16 },
                        size,
                        capture_time: SimTime::ZERO,
                    }),
                    path: PathId(0),
                    transport_seq: i as u64,
                    sent_at: SimTime::ZERO,
                }),
                path: PathId(0),
                class: PacketClass::DeltaMedia,
            })
            .collect();
        pacer.enqueue(SimTime::ZERO, packets);

        // Drain by repeatedly jumping to next_release; every packet must
        // come out exactly once, in order, within the force-flush horizon.
        let mut released = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..(n * 4 + 8) {
            released.extend(pacer.poll(now));
            if pacer.is_empty() {
                break;
            }
            now = pacer
                .next_release()
                .expect("pending packets imply a next release")
                .max(now + SimDuration::from_micros(1));
        }
        prop_assert_eq!(released.len(), n, "conservation");
        for (i, out) in released.iter().enumerate() {
            if let NetPayload::Rtp(r) = &out.payload {
                prop_assert_eq!(r.transport_seq, i as u64, "FIFO order");
            }
        }
    }
}
