//! Cross-crate integration tests: full conference sessions exercising the
//! emulator, RTP stack, video pipeline, GCC, schedulers, FEC, and metrics
//! together.

use converge_integration::clean_scenario;
use converge_net::{PathId, SimDuration};
use converge_sim::{FecKind, ScenarioConfig, SchedulerKind, Session, SessionConfig};

fn run(
    scenario: ScenarioConfig,
    scheduler: SchedulerKind,
    fec: FecKind,
    streams: u8,
    secs: u64,
    seed: u64,
) -> converge_sim::CallReport {
    let config = SessionConfig::builder()
        .scenario(scenario)
        .scheduler(scheduler)
        .fec(fec)
        .streams(streams)
        .duration(SimDuration::from_secs(secs))
        .seed(seed)
        .build()
        .expect("valid session config");
    Session::new(config).run()
}

#[test]
fn every_scheduler_completes_a_call() {
    for scheduler in [
        SchedulerKind::Converge,
        SchedulerKind::ConvergeNoFeedback,
        SchedulerKind::SinglePath(0),
        SchedulerKind::SinglePath(1),
        SchedulerKind::ConnectionMigration(0),
        SchedulerKind::Srtt,
        SchedulerKind::MTput,
        SchedulerKind::MRtp,
    ] {
        let r = run(clean_scenario(), scheduler, FecKind::WebRtcTable, 1, 10, 5);
        assert!(
            r.frames_decoded > 100,
            "{}: only {} frames decoded",
            scheduler.label(),
            r.frames_decoded
        );
    }
}

#[test]
fn report_invariants_hold() {
    for (scenario, loss) in [
        (ScenarioConfig::fec_tradeoff(0.0), false),
        (ScenarioConfig::fec_tradeoff(5.0), true),
        (ScenarioConfig::driving(SimDuration::from_secs(20), 3), true),
    ] {
        let r = run(
            scenario,
            SchedulerKind::Converge,
            FecKind::Converge,
            2,
            20,
            3,
        );
        // Frame conservation: what was decoded or dropped cannot exceed
        // what was encoded (dropped counts receiver-side abandonments).
        assert!(r.frames_decoded <= r.frames_encoded);
        // FEC pipeline ordering.
        assert!(r.fec_packets_used <= r.fec_packets_received);
        assert!(r.fec_packets_received <= r.fec_packets_sent);
        // Path conservation: received + lost <= sent (late in-flight
        // packets at call end account for the slack).
        for (path, c) in &r.paths {
            assert!(
                c.packets_received + c.packets_lost <= c.packets_sent,
                "{path}: {c:?}"
            );
        }
        // Normalizations are fractions of sane magnitude.
        assert!(r.normalized_throughput() >= 0.0 && r.normalized_throughput() <= 1.5);
        assert!(r.normalized_fps() >= 0.0 && r.normalized_fps() <= 1.5);
        if loss {
            assert!(r.fec_packets_sent > 0, "lossy run should generate FEC");
        }
        // Time series covers the call duration.
        assert_eq!(r.bins.len(), 20);
    }
}

#[test]
fn determinism_across_identical_runs() {
    let a = run(
        ScenarioConfig::driving(SimDuration::from_secs(15), 9),
        SchedulerKind::Converge,
        FecKind::Converge,
        2,
        15,
        9,
    );
    let b = run(
        ScenarioConfig::driving(SimDuration::from_secs(15), 9),
        SchedulerKind::Converge,
        FecKind::Converge,
        2,
        15,
        9,
    );
    assert_eq!(a.frames_decoded, b.frames_decoded);
    assert_eq!(a.frames_dropped, b.frames_dropped);
    assert_eq!(a.fec_packets_sent, b.fec_packets_sent);
    assert_eq!(a.nacks_sent, b.nacks_sent);
    assert_eq!(a.throughput_bps, b.throughput_bps);
    assert_eq!(a.e2e_mean_ms, b.e2e_mean_ms);
}

#[test]
fn different_seeds_change_the_run() {
    let a = run(
        ScenarioConfig::driving(SimDuration::from_secs(15), 1),
        SchedulerKind::Converge,
        FecKind::Converge,
        1,
        15,
        1,
    );
    let b = run(
        ScenarioConfig::driving(SimDuration::from_secs(15), 2),
        SchedulerKind::Converge,
        FecKind::Converge,
        1,
        15,
        2,
    );
    assert_ne!(a.throughput_bps, b.throughput_bps);
}

#[test]
fn single_path_schedulers_respect_their_pin() {
    for pin in [0u8, 1] {
        let r = run(
            clean_scenario(),
            SchedulerKind::SinglePath(pin),
            FecKind::WebRtcTable,
            1,
            10,
            2,
        );
        let other = PathId(1 - pin);
        assert_eq!(
            r.paths.get(&other).map(|c| c.packets_sent).unwrap_or(0),
            0,
            "pinned to {pin} but sent on {other}"
        );
    }
}

#[test]
fn multipath_uses_both_paths() {
    let r = run(
        clean_scenario(),
        SchedulerKind::Converge,
        FecKind::Converge,
        1,
        20,
        4,
    );
    let p0 = r.paths[&PathId(0)].packets_sent;
    let p1 = r.paths[&PathId(1)].packets_sent;
    assert!(
        p0 > 0 && p1 > 0,
        "both paths should carry packets: {p0}/{p1}"
    );
    // Equal paths: neither should be starved below 10% of the other's load.
    let (lo, hi) = (p0.min(p1) as f64, p0.max(p1) as f64);
    assert!(lo / hi > 0.1, "pathological imbalance: {p0}/{p1}");
}

#[test]
fn loss_generates_nacks_retransmissions_and_recovery() {
    let r = run(
        ScenarioConfig::fec_tradeoff(5.0),
        SchedulerKind::Converge,
        FecKind::Converge,
        1,
        20,
        8,
    );
    assert!(r.nacks_sent > 0, "5% loss must trigger NACKs");
    assert!(r.retransmissions > 0, "NACKs must trigger retransmissions");
    assert!(r.fec_packets_used > 0, "FEC must recover some losses");
    // Despite 5% loss, the call should still deliver most frames.
    assert!(
        r.frames_decoded as f64 / r.frames_encoded as f64 > 0.8,
        "{}/{} frames survived",
        r.frames_decoded,
        r.frames_encoded
    );
}

#[test]
fn fec_none_ablation_sends_no_fec() {
    let r = run(
        ScenarioConfig::fec_tradeoff(3.0),
        SchedulerKind::Converge,
        FecKind::None,
        1,
        10,
        6,
    );
    assert_eq!(r.fec_packets_sent, 0);
    assert_eq!(r.fec_packets_used, 0);
    // Loss recovery must fall back to NACK alone.
    assert!(r.nacks_sent > 0);
}

#[test]
fn clean_network_has_near_zero_overheads() {
    let r = run(
        clean_scenario(),
        SchedulerKind::Converge,
        FecKind::Converge,
        1,
        20,
        10,
    );
    assert!(
        r.fec_overhead_pct() < 2.0,
        "clean paths need no FEC: {:.2}%",
        r.fec_overhead_pct()
    );
    assert_eq!(r.keyframe_requests, 0, "no PLI on a clean network");
    assert!(
        r.freeze_total_ms < 1_500.0,
        "freezes {}ms",
        r.freeze_total_ms
    );
}

#[test]
fn e2e_latency_reflects_propagation_floor() {
    // One-way 50 ms + 20 ms decode pipeline: no frame can beat ~70 ms.
    let r = run(
        clean_scenario(),
        SchedulerKind::Converge,
        FecKind::Converge,
        1,
        10,
        11,
    );
    assert!(
        r.e2e_p50_ms >= 70.0,
        "median E2E {} below physical floor",
        r.e2e_p50_ms
    );
    assert!(
        r.e2e_p50_ms < 250.0,
        "median E2E {} absurdly high",
        r.e2e_p50_ms
    );
}

#[test]
fn three_streams_triple_the_frame_flow() {
    let one = run(
        clean_scenario(),
        SchedulerKind::Converge,
        FecKind::Converge,
        1,
        15,
        12,
    );
    let three = run(
        clean_scenario(),
        SchedulerKind::Converge,
        FecKind::Converge,
        3,
        15,
        12,
    );
    assert!(
        three.frames_encoded > one.frames_encoded * 2,
        "3 streams should encode ~3x the frames: {} vs {}",
        three.frames_encoded,
        one.frames_encoded
    );
}

#[test]
fn signalling_negotiation_feeds_session_setup() {
    use converge_signal::SessionDescription;
    // Multipath peer meets multipath peer: run Converge on the agreed path
    // set. Legacy peer: fall back to single path.
    let offer = SessionDescription::offer("alice", 7, 1, &[0, 1]);
    let answer_mp = SessionDescription::offer("bob", 8, 1, &[0, 1]);
    let answer_legacy = SessionDescription::offer("carol", 9, 1, &[]);

    let agreed = offer.negotiated_paths(&answer_mp);
    assert_eq!(agreed, vec![0, 1]);
    let r = run(
        clean_scenario(),
        SchedulerKind::Converge,
        FecKind::Converge,
        1,
        10,
        13,
    );
    assert!(r.frames_decoded > 200);

    let agreed = offer.negotiated_paths(&answer_legacy);
    assert!(agreed.is_empty());
    let r = run(
        clean_scenario(),
        SchedulerKind::SinglePath(0),
        FecKind::WebRtcTable,
        1,
        10,
        13,
    );
    assert!(r.frames_decoded > 200);
}

#[test]
fn wire_formats_round_trip_session_traffic() {
    // Everything the session exchanges must serialize and parse on the real
    // wire formats (the sim exchanges typed forms for speed; the formats
    // themselves are the contract).
    use converge_rtp::*;

    let packets = vec![
        RtcpPacket::SenderReport(SenderReport {
            path_id: 0,
            ssrc: 1,
            ntp_micros: 1_000_000,
            rtp_timestamp: 90_000,
            packet_count: 100,
            octet_count: 120_000,
        }),
        RtcpPacket::ReceiverReport(ReceiverReport {
            path_id: 1,
            ssrc: 2,
            blocks: vec![ReportBlock {
                ssrc: 1,
                fraction_lost: 12,
                cumulative_lost: 34,
                ext_highest_seq: 5_000,
                ext_highest_mp_seq: 2_600,
                jitter: 3,
                last_sr: 77,
                delay_since_last_sr: 88,
            }],
        }),
        RtcpPacket::Nack(Nack {
            path_id: 0,
            ssrc: 1,
            lost: vec![10, 11, 25],
        }),
        RtcpPacket::Pli(Pli {
            path_id: 1,
            ssrc: 1,
        }),
        RtcpPacket::QoeFeedback(QoeFeedback {
            path_id: 1,
            ssrc: 0,
            alpha: -4,
            fcd_micros: 45_000,
        }),
        RtcpPacket::Sdes(Sdes {
            ssrc: 0,
            cname: "cam0".into(),
            frame_rate: Some(30),
        }),
        RtcpPacket::TransportFeedback(TransportFeedback {
            path_id: 0,
            ssrc: 0,
            arrivals: vec![(100, 123_456), (101, 124_000)],
        }),
    ];
    for p in packets {
        let wire = p.serialize();
        let back = RtcpPacket::parse(wire).expect("parse");
        assert_eq!(p, back);
    }

    let rtp = RtpPacket {
        marker: true,
        payload_type: PayloadType::Video,
        sequence: 4242,
        timestamp: 3_600_000,
        ssrc: 7,
        extension: Some(MultipathExtension {
            path_id: 1,
            mp_sequence: 900,
            mp_transport_sequence: 1_900,
        }),
        payload: bytes::Bytes::from_static(&[0xAB; 1200]),
    };
    let back = RtpPacket::parse(rtp.serialize()).expect("parse");
    assert_eq!(rtp, back);
}
