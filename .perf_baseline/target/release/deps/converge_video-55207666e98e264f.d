/root/repo/.perf_baseline/target/release/deps/converge_video-55207666e98e264f.d: crates/converge-video/src/lib.rs crates/converge-video/src/codec.rs crates/converge-video/src/frame_buffer.rs crates/converge-video/src/packet_buffer.rs crates/converge-video/src/packetize.rs crates/converge-video/src/quality.rs crates/converge-video/src/types.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_video-55207666e98e264f.rlib: crates/converge-video/src/lib.rs crates/converge-video/src/codec.rs crates/converge-video/src/frame_buffer.rs crates/converge-video/src/packet_buffer.rs crates/converge-video/src/packetize.rs crates/converge-video/src/quality.rs crates/converge-video/src/types.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_video-55207666e98e264f.rmeta: crates/converge-video/src/lib.rs crates/converge-video/src/codec.rs crates/converge-video/src/frame_buffer.rs crates/converge-video/src/packet_buffer.rs crates/converge-video/src/packetize.rs crates/converge-video/src/quality.rs crates/converge-video/src/types.rs

crates/converge-video/src/lib.rs:
crates/converge-video/src/codec.rs:
crates/converge-video/src/frame_buffer.rs:
crates/converge-video/src/packet_buffer.rs:
crates/converge-video/src/packetize.rs:
crates/converge-video/src/quality.rs:
crates/converge-video/src/types.rs:
