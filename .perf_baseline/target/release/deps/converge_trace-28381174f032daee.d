/root/repo/.perf_baseline/target/release/deps/converge_trace-28381174f032daee.d: crates/converge-trace/src/lib.rs crates/converge-trace/src/invariant.rs crates/converge-trace/src/jsonl.rs crates/converge-trace/src/timeline.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_trace-28381174f032daee.rlib: crates/converge-trace/src/lib.rs crates/converge-trace/src/invariant.rs crates/converge-trace/src/jsonl.rs crates/converge-trace/src/timeline.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_trace-28381174f032daee.rmeta: crates/converge-trace/src/lib.rs crates/converge-trace/src/invariant.rs crates/converge-trace/src/jsonl.rs crates/converge-trace/src/timeline.rs

crates/converge-trace/src/lib.rs:
crates/converge-trace/src/invariant.rs:
crates/converge-trace/src/jsonl.rs:
crates/converge-trace/src/timeline.rs:
