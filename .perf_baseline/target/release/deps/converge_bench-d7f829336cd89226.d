/root/repo/.perf_baseline/target/release/deps/converge_bench-d7f829336cd89226.d: crates/converge-bench/src/lib.rs crates/converge-bench/src/experiments/mod.rs crates/converge-bench/src/experiments/ablations.rs crates/converge-bench/src/experiments/chaos.rs crates/converge-bench/src/experiments/fec_tradeoff.rs crates/converge-bench/src/experiments/fig1.rs crates/converge-bench/src/experiments/fig11_table4.rs crates/converge-bench/src/experiments/fig14_15.rs crates/converge-bench/src/experiments/fig3_table1.rs crates/converge-bench/src/experiments/fig9_10_table3.rs crates/converge-bench/src/experiments/stationary.rs crates/converge-bench/src/experiments/traces.rs crates/converge-bench/src/runner.rs crates/converge-bench/src/stats.rs crates/converge-bench/src/sweep.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_bench-d7f829336cd89226.rlib: crates/converge-bench/src/lib.rs crates/converge-bench/src/experiments/mod.rs crates/converge-bench/src/experiments/ablations.rs crates/converge-bench/src/experiments/chaos.rs crates/converge-bench/src/experiments/fec_tradeoff.rs crates/converge-bench/src/experiments/fig1.rs crates/converge-bench/src/experiments/fig11_table4.rs crates/converge-bench/src/experiments/fig14_15.rs crates/converge-bench/src/experiments/fig3_table1.rs crates/converge-bench/src/experiments/fig9_10_table3.rs crates/converge-bench/src/experiments/stationary.rs crates/converge-bench/src/experiments/traces.rs crates/converge-bench/src/runner.rs crates/converge-bench/src/stats.rs crates/converge-bench/src/sweep.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_bench-d7f829336cd89226.rmeta: crates/converge-bench/src/lib.rs crates/converge-bench/src/experiments/mod.rs crates/converge-bench/src/experiments/ablations.rs crates/converge-bench/src/experiments/chaos.rs crates/converge-bench/src/experiments/fec_tradeoff.rs crates/converge-bench/src/experiments/fig1.rs crates/converge-bench/src/experiments/fig11_table4.rs crates/converge-bench/src/experiments/fig14_15.rs crates/converge-bench/src/experiments/fig3_table1.rs crates/converge-bench/src/experiments/fig9_10_table3.rs crates/converge-bench/src/experiments/stationary.rs crates/converge-bench/src/experiments/traces.rs crates/converge-bench/src/runner.rs crates/converge-bench/src/stats.rs crates/converge-bench/src/sweep.rs

crates/converge-bench/src/lib.rs:
crates/converge-bench/src/experiments/mod.rs:
crates/converge-bench/src/experiments/ablations.rs:
crates/converge-bench/src/experiments/chaos.rs:
crates/converge-bench/src/experiments/fec_tradeoff.rs:
crates/converge-bench/src/experiments/fig1.rs:
crates/converge-bench/src/experiments/fig11_table4.rs:
crates/converge-bench/src/experiments/fig14_15.rs:
crates/converge-bench/src/experiments/fig3_table1.rs:
crates/converge-bench/src/experiments/fig9_10_table3.rs:
crates/converge-bench/src/experiments/stationary.rs:
crates/converge-bench/src/experiments/traces.rs:
crates/converge-bench/src/runner.rs:
crates/converge-bench/src/stats.rs:
crates/converge-bench/src/sweep.rs:
