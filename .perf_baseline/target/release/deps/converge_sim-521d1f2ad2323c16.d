/root/repo/.perf_baseline/target/release/deps/converge_sim-521d1f2ad2323c16.d: crates/converge-sim/src/lib.rs crates/converge-sim/src/duplex.rs crates/converge-sim/src/metrics.rs crates/converge-sim/src/pacer.rs crates/converge-sim/src/payload.rs crates/converge-sim/src/receiver.rs crates/converge-sim/src/scenarios.rs crates/converge-sim/src/sender.rs crates/converge-sim/src/session.rs crates/converge-sim/src/wire.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_sim-521d1f2ad2323c16.rlib: crates/converge-sim/src/lib.rs crates/converge-sim/src/duplex.rs crates/converge-sim/src/metrics.rs crates/converge-sim/src/pacer.rs crates/converge-sim/src/payload.rs crates/converge-sim/src/receiver.rs crates/converge-sim/src/scenarios.rs crates/converge-sim/src/sender.rs crates/converge-sim/src/session.rs crates/converge-sim/src/wire.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_sim-521d1f2ad2323c16.rmeta: crates/converge-sim/src/lib.rs crates/converge-sim/src/duplex.rs crates/converge-sim/src/metrics.rs crates/converge-sim/src/pacer.rs crates/converge-sim/src/payload.rs crates/converge-sim/src/receiver.rs crates/converge-sim/src/scenarios.rs crates/converge-sim/src/sender.rs crates/converge-sim/src/session.rs crates/converge-sim/src/wire.rs

crates/converge-sim/src/lib.rs:
crates/converge-sim/src/duplex.rs:
crates/converge-sim/src/metrics.rs:
crates/converge-sim/src/pacer.rs:
crates/converge-sim/src/payload.rs:
crates/converge-sim/src/receiver.rs:
crates/converge-sim/src/scenarios.rs:
crates/converge-sim/src/sender.rs:
crates/converge-sim/src/session.rs:
crates/converge-sim/src/wire.rs:
