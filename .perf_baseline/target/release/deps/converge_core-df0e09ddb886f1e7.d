/root/repo/.perf_baseline/target/release/deps/converge_core-df0e09ddb886f1e7.d: crates/converge-core/src/lib.rs crates/converge-core/src/fastpath.rs crates/converge-core/src/fec_controller.rs crates/converge-core/src/feedback.rs crates/converge-core/src/metrics.rs crates/converge-core/src/priority.rs crates/converge-core/src/scheduler/mod.rs crates/converge-core/src/scheduler/baselines.rs crates/converge-core/src/scheduler/converge.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_core-df0e09ddb886f1e7.rlib: crates/converge-core/src/lib.rs crates/converge-core/src/fastpath.rs crates/converge-core/src/fec_controller.rs crates/converge-core/src/feedback.rs crates/converge-core/src/metrics.rs crates/converge-core/src/priority.rs crates/converge-core/src/scheduler/mod.rs crates/converge-core/src/scheduler/baselines.rs crates/converge-core/src/scheduler/converge.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_core-df0e09ddb886f1e7.rmeta: crates/converge-core/src/lib.rs crates/converge-core/src/fastpath.rs crates/converge-core/src/fec_controller.rs crates/converge-core/src/feedback.rs crates/converge-core/src/metrics.rs crates/converge-core/src/priority.rs crates/converge-core/src/scheduler/mod.rs crates/converge-core/src/scheduler/baselines.rs crates/converge-core/src/scheduler/converge.rs

crates/converge-core/src/lib.rs:
crates/converge-core/src/fastpath.rs:
crates/converge-core/src/fec_controller.rs:
crates/converge-core/src/feedback.rs:
crates/converge-core/src/metrics.rs:
crates/converge-core/src/priority.rs:
crates/converge-core/src/scheduler/mod.rs:
crates/converge-core/src/scheduler/baselines.rs:
crates/converge-core/src/scheduler/converge.rs:
