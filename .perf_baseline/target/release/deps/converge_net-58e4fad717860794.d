/root/repo/.perf_baseline/target/release/deps/converge_net-58e4fad717860794.d: crates/converge-net/src/lib.rs crates/converge-net/src/aqm.rs crates/converge-net/src/emulator.rs crates/converge-net/src/event.rs crates/converge-net/src/impairment.rs crates/converge-net/src/link.rs crates/converge-net/src/loss.rs crates/converge-net/src/path.rs crates/converge-net/src/time.rs crates/converge-net/src/trace.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_net-58e4fad717860794.rlib: crates/converge-net/src/lib.rs crates/converge-net/src/aqm.rs crates/converge-net/src/emulator.rs crates/converge-net/src/event.rs crates/converge-net/src/impairment.rs crates/converge-net/src/link.rs crates/converge-net/src/loss.rs crates/converge-net/src/path.rs crates/converge-net/src/time.rs crates/converge-net/src/trace.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_net-58e4fad717860794.rmeta: crates/converge-net/src/lib.rs crates/converge-net/src/aqm.rs crates/converge-net/src/emulator.rs crates/converge-net/src/event.rs crates/converge-net/src/impairment.rs crates/converge-net/src/link.rs crates/converge-net/src/loss.rs crates/converge-net/src/path.rs crates/converge-net/src/time.rs crates/converge-net/src/trace.rs

crates/converge-net/src/lib.rs:
crates/converge-net/src/aqm.rs:
crates/converge-net/src/emulator.rs:
crates/converge-net/src/event.rs:
crates/converge-net/src/impairment.rs:
crates/converge-net/src/link.rs:
crates/converge-net/src/loss.rs:
crates/converge-net/src/path.rs:
crates/converge-net/src/time.rs:
crates/converge-net/src/trace.rs:
