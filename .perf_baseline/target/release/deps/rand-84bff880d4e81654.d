/root/repo/.perf_baseline/target/release/deps/rand-84bff880d4e81654.d: vendor/rand/src/lib.rs

/root/repo/.perf_baseline/target/release/deps/librand-84bff880d4e81654.rlib: vendor/rand/src/lib.rs

/root/repo/.perf_baseline/target/release/deps/librand-84bff880d4e81654.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
