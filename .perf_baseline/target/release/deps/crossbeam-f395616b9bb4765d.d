/root/repo/.perf_baseline/target/release/deps/crossbeam-f395616b9bb4765d.d: vendor/crossbeam/src/lib.rs

/root/repo/.perf_baseline/target/release/deps/libcrossbeam-f395616b9bb4765d.rlib: vendor/crossbeam/src/lib.rs

/root/repo/.perf_baseline/target/release/deps/libcrossbeam-f395616b9bb4765d.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
