/root/repo/.perf_baseline/target/release/deps/converge_gcc-44ce451bdde26f8b.d: crates/converge-gcc/src/lib.rs crates/converge-gcc/src/aimd.rs crates/converge-gcc/src/arrival.rs crates/converge-gcc/src/controller.rs crates/converge-gcc/src/loss_based.rs crates/converge-gcc/src/trendline.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_gcc-44ce451bdde26f8b.rlib: crates/converge-gcc/src/lib.rs crates/converge-gcc/src/aimd.rs crates/converge-gcc/src/arrival.rs crates/converge-gcc/src/controller.rs crates/converge-gcc/src/loss_based.rs crates/converge-gcc/src/trendline.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_gcc-44ce451bdde26f8b.rmeta: crates/converge-gcc/src/lib.rs crates/converge-gcc/src/aimd.rs crates/converge-gcc/src/arrival.rs crates/converge-gcc/src/controller.rs crates/converge-gcc/src/loss_based.rs crates/converge-gcc/src/trendline.rs

crates/converge-gcc/src/lib.rs:
crates/converge-gcc/src/aimd.rs:
crates/converge-gcc/src/arrival.rs:
crates/converge-gcc/src/controller.rs:
crates/converge-gcc/src/loss_based.rs:
crates/converge-gcc/src/trendline.rs:
