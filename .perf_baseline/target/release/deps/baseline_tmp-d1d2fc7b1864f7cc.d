/root/repo/.perf_baseline/target/release/deps/baseline_tmp-d1d2fc7b1864f7cc.d: crates/converge-bench/src/bin/baseline_tmp.rs

/root/repo/.perf_baseline/target/release/deps/baseline_tmp-d1d2fc7b1864f7cc: crates/converge-bench/src/bin/baseline_tmp.rs

crates/converge-bench/src/bin/baseline_tmp.rs:
