/root/repo/.perf_baseline/target/release/deps/converge_signal-4ad86517395cad1b.d: crates/converge-signal/src/lib.rs crates/converge-signal/src/ice.rs crates/converge-signal/src/monitor.rs crates/converge-signal/src/sdp.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_signal-4ad86517395cad1b.rlib: crates/converge-signal/src/lib.rs crates/converge-signal/src/ice.rs crates/converge-signal/src/monitor.rs crates/converge-signal/src/sdp.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_signal-4ad86517395cad1b.rmeta: crates/converge-signal/src/lib.rs crates/converge-signal/src/ice.rs crates/converge-signal/src/monitor.rs crates/converge-signal/src/sdp.rs

crates/converge-signal/src/lib.rs:
crates/converge-signal/src/ice.rs:
crates/converge-signal/src/monitor.rs:
crates/converge-signal/src/sdp.rs:
