/root/repo/.perf_baseline/target/release/deps/converge_rtp-f803119e2c967d8c.d: crates/converge-rtp/src/lib.rs crates/converge-rtp/src/extension.rs crates/converge-rtp/src/fec.rs crates/converge-rtp/src/packet.rs crates/converge-rtp/src/rtcp.rs crates/converge-rtp/src/srtp.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_rtp-f803119e2c967d8c.rlib: crates/converge-rtp/src/lib.rs crates/converge-rtp/src/extension.rs crates/converge-rtp/src/fec.rs crates/converge-rtp/src/packet.rs crates/converge-rtp/src/rtcp.rs crates/converge-rtp/src/srtp.rs

/root/repo/.perf_baseline/target/release/deps/libconverge_rtp-f803119e2c967d8c.rmeta: crates/converge-rtp/src/lib.rs crates/converge-rtp/src/extension.rs crates/converge-rtp/src/fec.rs crates/converge-rtp/src/packet.rs crates/converge-rtp/src/rtcp.rs crates/converge-rtp/src/srtp.rs

crates/converge-rtp/src/lib.rs:
crates/converge-rtp/src/extension.rs:
crates/converge-rtp/src/fec.rs:
crates/converge-rtp/src/packet.rs:
crates/converge-rtp/src/rtcp.rs:
crates/converge-rtp/src/srtp.rs:
