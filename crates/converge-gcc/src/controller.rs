//! The per-path GCC controller: combines the delay-based pipeline
//! (inter-arrival filter → trendline estimator → AIMD) with the loss-based
//! controller and RTT tracking. Converge runs one instance per path
//! (uncoupled congestion control, paper §4.1).

use converge_net::{PathId, SimDuration, SimTime};
use converge_trace::{GccUsage, TraceEvent, TraceHandle};

use crate::aimd::{AimdConfig, AimdController};
use crate::arrival::{InterArrival, PacketTiming};
use crate::loss_based::{LossBasedConfig, LossBasedController};
use crate::trendline::{BandwidthUsage, TrendlineConfig, TrendlineEstimator};

/// Configuration of one per-path controller.
#[derive(Debug, Clone, Copy)]
pub struct GccConfig {
    /// Starting estimate, bps.
    pub initial_rate_bps: f64,
    /// Trendline/overuse detector settings.
    pub trendline: TrendlineConfig,
    /// AIMD settings.
    pub aimd: AimdConfig,
    /// Loss-based settings.
    pub loss: LossBasedConfig,
    /// Window over which the incoming rate is measured.
    pub rate_window: SimDuration,
}

impl Default for GccConfig {
    fn default() -> Self {
        GccConfig {
            initial_rate_bps: 1_000_000.0,
            trendline: TrendlineConfig::default(),
            aimd: AimdConfig::default(),
            loss: LossBasedConfig::default(),
            rate_window: SimDuration::from_millis(1_000),
        }
    }
}

/// Per-path Google Congestion Control.
#[derive(Debug)]
pub struct GccController {
    config: GccConfig,
    arrival: InterArrival,
    trendline: TrendlineEstimator,
    aimd: AimdController,
    loss: LossBasedController,
    /// (arrival time, bytes) of recent packets for goodput measurement.
    recent: std::collections::VecDeque<(SimTime, usize)>,
    srtt: Option<SimDuration>,
    last_fraction_lost: f64,
    trace: TraceHandle,
    /// Path this controller instance governs (for trace labelling).
    trace_path: PathId,
    last_traced_usage: Option<BandwidthUsage>,
    last_traced_rate: Option<u64>,
}

impl GccController {
    /// Creates a controller.
    pub fn new(config: GccConfig) -> Self {
        GccController {
            config,
            arrival: InterArrival::new(),
            trendline: TrendlineEstimator::new(config.trendline),
            aimd: AimdController::new(config.aimd, config.initial_rate_bps),
            loss: LossBasedController::new(config.loss, config.initial_rate_bps),
            recent: std::collections::VecDeque::new(),
            srtt: None,
            last_fraction_lost: 0.0,
            trace: TraceHandle::disabled(),
            trace_path: PathId(0),
            last_traced_usage: None,
            last_traced_rate: None,
        }
    }

    /// Installs a trace handle and the path this controller governs; the
    /// controller then emits detector-state and target-rate change events.
    pub fn set_trace(&mut self, trace: TraceHandle, path: PathId) {
        self.trace = trace;
        self.trace_path = path;
    }

    /// Smoothed RTT of the path, if measured.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Most recent loss fraction reported for the path.
    pub fn fraction_lost(&self) -> f64 {
        self.last_fraction_lost
    }

    /// The controller's current target rate: the minimum of the delay-based
    /// and loss-based estimates (the GCC combination rule).
    pub fn target_rate_bps(&self) -> u64 {
        self.aimd.estimate_bps().min(self.loss.estimate_bps()) as u64
    }

    /// Measured incoming goodput over the rate window ending at `now`.
    ///
    /// Early in a path's life the window is shortened to the span actually
    /// observed (floored at 100 ms) so start-up is not under-measured.
    pub fn incoming_rate_bps(&self, now: SimTime) -> f64 {
        let window_start = SimTime::from_micros(
            now.as_micros()
                .saturating_sub(self.config.rate_window.as_micros()),
        );
        let Some(&(first_at, _)) = self.recent.front() else {
            return 0.0;
        };
        let effective_start = window_start.max(first_at);
        let span = now
            .saturating_since(effective_start)
            .max(SimDuration::from_millis(100));
        let bytes: usize = self
            .recent
            .iter()
            .filter(|(at, _)| *at >= effective_start)
            .map(|(_, b)| *b)
            .sum();
        bytes as f64 * 8.0 / span.as_secs_f64()
    }

    /// Feeds an RTT sample (from SR/RR or probe timing).
    pub fn on_rtt_sample(&mut self, rtt: SimDuration) {
        self.srtt = Some(match self.srtt {
            None => rtt,
            // srtt = 7/8 srtt + 1/8 sample, in integer microseconds.
            Some(prev) => SimDuration::from_micros((prev.as_micros() * 7 + rtt.as_micros()) / 8),
        });
    }

    /// Feeds transport feedback: the send/arrival timing of packets that
    /// reached the receiver on this path. `now` is the feedback processing
    /// time at the sender.
    pub fn on_transport_feedback(&mut self, now: SimTime, packets: &[PacketTiming]) {
        for p in packets {
            self.recent.push_back((p.arrival_time, p.size));
            if let Some(sample) = self.arrival.on_packet(*p) {
                self.trendline.on_sample(sample);
            }
        }
        // Trim the goodput window.
        let keep_from = SimTime::from_micros(
            now.as_micros()
                .saturating_sub(self.config.rate_window.as_micros() * 2),
        );
        while let Some(&(at, _)) = self.recent.front() {
            if at < keep_from {
                self.recent.pop_front();
            } else {
                break;
            }
        }

        let incoming = self.incoming_rate_bps(now);
        let rtt_ms = self
            .srtt
            .map(|d| d.as_micros() as f64 / 1_000.0)
            .unwrap_or(100.0);
        let delay_estimate = self
            .aimd
            .update(now, self.trendline.state(), incoming, rtt_ms);
        // Keep the loss-based side from floating far above the delay side.
        self.loss.cap_to(delay_estimate * 2.0);

        if self.trace.is_enabled() {
            let usage = self.trendline.state();
            if self.last_traced_usage != Some(usage) {
                self.last_traced_usage = Some(usage);
                let mapped = match usage {
                    BandwidthUsage::Underusing => GccUsage::Underuse,
                    BandwidthUsage::Normal => GccUsage::Normal,
                    BandwidthUsage::Overusing => GccUsage::Overuse,
                };
                self.trace.emit(
                    now,
                    TraceEvent::GccStateChanged {
                        path: self.trace_path,
                        usage: mapped,
                    },
                );
            }
            // Rate changes are continuous under AIMD; record only moves of
            // ≥5 % so the timeline captures the envelope, not every step.
            let rate = self.target_rate_bps();
            let moved = match self.last_traced_rate {
                Some(prev) => rate.abs_diff(prev) * 20 >= prev.max(1),
                None => true,
            };
            if moved {
                self.last_traced_rate = Some(rate);
                self.trace.emit(
                    now,
                    TraceEvent::GccRateChanged {
                        path: self.trace_path,
                        rate_bps: rate,
                    },
                );
            }
        }
    }

    /// Sets the AIMD growth-step scale (coupled congestion control).
    pub fn set_increase_scale(&mut self, scale: f64) {
        self.aimd.set_increase_scale(scale);
    }

    /// Current delay-based estimate (exposed for coupling computations).
    pub fn delay_estimate_bps(&self) -> f64 {
        self.aimd.estimate_bps()
    }

    /// Pulls both estimates down to at most `bps`. Called while a path is
    /// administratively disabled: no media flows, so the delay/loss signals
    /// go silent and the estimate would otherwise stay stale-high, causing
    /// a burst when the path is re-enabled (Eq. 3).
    pub fn cap_estimate(&mut self, bps: f64) {
        self.aimd.cap_to(bps);
        self.loss.cap_to(bps);
    }

    /// Feeds a receiver-report loss fraction (0..=1).
    pub fn on_loss_report(&mut self, fraction_lost: f64) {
        self.on_loss_report_protected(fraction_lost, 0.0);
    }

    /// Feeds a loss report together with the sender's current FEC
    /// protection ratio (repair/media). The raw loss is kept for path
    /// statistics (and drives the FEC rate), but the loss-based rate
    /// controller sees only the loss that protection cannot absorb —
    /// matching WebRTC's media optimizer, which discounts protected loss
    /// so FEC-covered paths are not starved by the rate controller.
    pub fn on_loss_report_protected(&mut self, fraction_lost: f64, protection_ratio: f64) {
        self.last_fraction_lost = fraction_lost.clamp(0.0, 1.0);
        let effective = (self.last_fraction_lost - protection_ratio.max(0.0)).max(0.0);
        self.loss.on_loss_report(effective);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feedback_at_rate(
        ctl: &mut GccController,
        start_ms: u64,
        duration_ms: u64,
        rate_bps: f64,
        queue_growth_ms_per_pkt: f64,
    ) {
        // Simulate packets of 1200 bytes arriving at `rate_bps`, optionally
        // with growing one-way delay.
        let pkt_interval_us = (1200.0 * 8.0 / rate_bps * 1e6) as u64;
        let n = (duration_ms * 1_000 / pkt_interval_us.max(1)) as usize;
        let mut batch = Vec::new();
        for i in 0..n {
            let send = SimTime::from_micros(start_ms * 1_000 + i as u64 * pkt_interval_us);
            let delay_us = 30_000 + (i as f64 * queue_growth_ms_per_pkt * 1_000.0) as u64;
            batch.push(PacketTiming {
                send_time: send,
                arrival_time: send + SimDuration::from_micros(delay_us),
                size: 1200,
            });
            if batch.len() == 10 {
                let now = batch.last().unwrap().arrival_time;
                ctl.on_transport_feedback(now, &batch);
                batch.clear();
            }
        }
    }

    #[test]
    fn starts_at_initial_rate() {
        let ctl = GccController::new(GccConfig::default());
        assert_eq!(ctl.target_rate_bps(), 1_000_000);
    }

    #[test]
    fn ramps_up_on_clean_path() {
        let mut ctl = GccController::new(GccConfig::default());
        ctl.on_rtt_sample(SimDuration::from_millis(60));
        // 10 seconds of clean 8 Mbps arrivals, stable delay, with
        // loss-free receiver reports every 100 ms as RTCP would deliver.
        for sec in 0..10 {
            feedback_at_rate(&mut ctl, sec * 1_000, 1_000, 8_000_000.0, 0.0);
            for _ in 0..10 {
                ctl.on_loss_report(0.0);
            }
        }
        assert!(
            ctl.target_rate_bps() > 3_000_000,
            "rate {}",
            ctl.target_rate_bps()
        );
    }

    #[test]
    fn backs_off_when_queues_grow() {
        let mut ctl = GccController::new(GccConfig::default());
        ctl.on_rtt_sample(SimDuration::from_millis(60));
        for sec in 0..5 {
            feedback_at_rate(&mut ctl, sec * 1_000, 1_000, 5_000_000.0, 0.0);
            for _ in 0..10 {
                ctl.on_loss_report(0.0);
            }
        }
        let before = ctl.target_rate_bps();
        // Now delay grows steadily — bottleneck overloaded.
        feedback_at_rate(&mut ctl, 5_000, 3_000, 5_000_000.0, 0.5);
        let after = ctl.target_rate_bps();
        assert!(after < before, "before {before} after {after}");
    }

    #[test]
    fn heavy_loss_cuts_rate() {
        let mut ctl = GccController::new(GccConfig::default());
        feedback_at_rate(&mut ctl, 0, 3_000, 5_000_000.0, 0.0);
        let before = ctl.target_rate_bps();
        for _ in 0..5 {
            ctl.on_loss_report(0.3);
        }
        assert!(ctl.target_rate_bps() < before);
        assert!((ctl.fraction_lost() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn target_is_min_of_estimates() {
        let mut ctl = GccController::new(GccConfig::default());
        // Grow delay-based estimate high.
        feedback_at_rate(&mut ctl, 0, 10_000, 9_000_000.0, 0.0);
        // Then crush the loss-based one.
        for _ in 0..30 {
            ctl.on_loss_report(0.5);
        }
        let target = ctl.target_rate_bps();
        assert!(target <= 1_000_000, "target {target}");
    }

    #[test]
    fn srtt_smooths() {
        let mut ctl = GccController::new(GccConfig::default());
        ctl.on_rtt_sample(SimDuration::from_millis(100));
        ctl.on_rtt_sample(SimDuration::from_millis(200));
        let srtt = ctl.srtt().unwrap().as_millis();
        // 7/8*100 + 1/8*200 = 112.5
        assert_eq!(srtt, 112);
    }

    #[test]
    fn incoming_rate_measures_window() {
        let mut ctl = GccController::new(GccConfig::default());
        let pkts: Vec<PacketTiming> = (0..100)
            .map(|i| PacketTiming {
                send_time: SimTime::from_millis(i * 10),
                arrival_time: SimTime::from_millis(i * 10 + 30),
                size: 1250,
            })
            .collect();
        ctl.on_transport_feedback(SimTime::from_millis(1_030), &pkts);
        // 100 pkts * 1250 B over the last second window: 1 Mbps.
        let rate = ctl.incoming_rate_bps(SimTime::from_millis(1_030));
        assert!((rate - 1_000_000.0).abs() < 30_000.0, "rate {rate}");
    }
}
