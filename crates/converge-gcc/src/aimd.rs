//! AIMD remote-rate controller: converts overuse-detector signals into a
//! delay-based bitrate estimate (the rate-control state machine of the GCC
//! design: Hold / Increase / Decrease).

use converge_net::SimTime;

use crate::trendline::BandwidthUsage;

/// Rate-controller state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateState {
    /// Keep the current estimate.
    Hold,
    /// Probe upward (multiplicative far from convergence, additive near).
    Increase,
    /// Back off below the measured incoming rate.
    Decrease,
}

/// Configuration of the AIMD controller.
#[derive(Debug, Clone, Copy)]
pub struct AimdConfig {
    /// Multiplicative increase per second (1.08 = +8 %/s).
    pub eta_per_sec: f64,
    /// Backoff factor applied to the measured incoming rate on overuse.
    pub beta: f64,
    /// Additive increase: fraction of one average packet per response time.
    pub additive_bps_min: f64,
    /// Floor for the estimate, bps.
    pub min_rate_bps: f64,
    /// Ceiling for the estimate, bps.
    pub max_rate_bps: f64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            eta_per_sec: 1.08,
            beta: 0.85,
            additive_bps_min: 4_000.0,
            min_rate_bps: 50_000.0,
            max_rate_bps: 30_000_000.0,
        }
    }
}

/// The AIMD rate controller.
#[derive(Debug)]
pub struct AimdController {
    config: AimdConfig,
    state: RateState,
    estimate_bps: f64,
    /// Exponential average/variance of the incoming rate at decrease time,
    /// used to tell "near convergence" (additive) from "far" (multiplicative).
    avg_max_bps: Option<f64>,
    var_max: f64,
    last_update: Option<SimTime>,
    /// Scale applied to growth steps (1.0 = uncoupled). Coupled congestion
    /// control dampens each subflow's increase so the aggregate grows like
    /// a single flow (LIA-style coupling).
    increase_scale: f64,
}

impl AimdController {
    /// Creates a controller starting from `initial_bps`.
    pub fn new(config: AimdConfig, initial_bps: f64) -> Self {
        AimdController {
            config,
            state: RateState::Increase,
            estimate_bps: initial_bps.clamp(config.min_rate_bps, config.max_rate_bps),
            avg_max_bps: None,
            var_max: 0.4,
            last_update: None,
            increase_scale: 1.0,
        }
    }

    /// Current delay-based estimate, bps.
    pub fn estimate_bps(&self) -> f64 {
        self.estimate_bps
    }

    /// Current state (for telemetry/tests).
    pub fn state(&self) -> RateState {
        self.state
    }

    /// Sets the growth-step scale in (0, 1]; used by coupled congestion
    /// control to dampen per-subflow increases.
    pub fn set_increase_scale(&mut self, scale: f64) {
        self.increase_scale = scale.clamp(0.01, 1.0);
    }

    /// Pulls the estimate down to at most `bps` (never below the configured
    /// floor). Used when a path stops carrying traffic and its estimate
    /// would otherwise go stale-high.
    pub fn cap_to(&mut self, bps: f64) {
        self.estimate_bps = self.estimate_bps.min(bps).max(self.config.min_rate_bps);
    }

    /// Updates the estimate from the detector signal and the measured
    /// incoming rate (receiver goodput), returning the new estimate.
    pub fn update(
        &mut self,
        now: SimTime,
        signal: BandwidthUsage,
        incoming_rate_bps: f64,
        rtt_ms: f64,
    ) -> f64 {
        self.transition(signal);
        let dt_s = match self.last_update {
            Some(prev) => (now.saturating_since(prev).as_micros() as f64 / 1e6).min(1.0),
            None => 0.2,
        };
        self.last_update = Some(now);

        match self.state {
            RateState::Hold => {}
            RateState::Increase => {
                // Capacity obviously changed (e.g. a coverage gap ended):
                // the incoming rate left the remembered convergence region
                // upward, so forget it and ramp multiplicatively again —
                // the GCC design's link-capacity reset.
                if let Some(avg) = self.avg_max_bps {
                    let sigma = (self.var_max * avg).sqrt().max(1.0);
                    if incoming_rate_bps > avg + 3.0 * sigma && incoming_rate_bps > 1.5 * avg {
                        self.avg_max_bps = None;
                    }
                }
                let near_convergence = self.avg_max_bps.is_some_and(|avg| {
                    let sigma = (self.var_max * avg).sqrt().max(1.0);
                    (incoming_rate_bps - avg).abs() < 3.0 * sigma
                });
                let grown = if near_convergence {
                    // Additive: about one packet per response time.
                    let response_ms = 100.0 + rtt_ms;
                    let additive = (1000.0 / response_ms) * 1200.0 * 8.0 * dt_s * 5.0;
                    self.estimate_bps
                        + additive.max(self.config.additive_bps_min * dt_s) * self.increase_scale
                } else if self.avg_max_bps.is_none() {
                    // Start-up: no congestion has ever been observed, so
                    // probe aggressively (WebRTC's initial BWE probing
                    // doubles the rate until the first backoff).
                    self.estimate_bps * 2.0f64.powf(dt_s.min(1.0) * self.increase_scale)
                } else {
                    self.estimate_bps
                        * self
                            .config
                            .eta_per_sec
                            .powf(dt_s.min(1.0) * self.increase_scale)
                };
                // Growth is gated at 1.5x of what actually arrives, but the
                // cap never pulls an existing estimate down: when the sender
                // is application-limited (encoder below the estimate), the
                // incoming rate says nothing about the path's capacity, and
                // pulling the estimate toward it deadlocks the rate at the
                // floor. Decreases come only from overuse/loss signals.
                let growth_cap = 1.5 * incoming_rate_bps.max(self.config.min_rate_bps);
                self.estimate_bps = grown.min(growth_cap).max(self.estimate_bps);
            }
            RateState::Decrease => {
                self.update_max_stats(incoming_rate_bps);
                self.estimate_bps = self.config.beta * incoming_rate_bps;
                // After decreasing, hold until the detector recovers.
                self.state = RateState::Hold;
            }
        }
        self.estimate_bps = self
            .estimate_bps
            .clamp(self.config.min_rate_bps, self.config.max_rate_bps);
        self.estimate_bps
    }

    /// State machine of the GCC design: overuse forces Decrease, underuse
    /// forces Hold (queues draining — don't push), normal moves toward
    /// Increase.
    fn transition(&mut self, signal: BandwidthUsage) {
        self.state = match (self.state, signal) {
            (_, BandwidthUsage::Overusing) => RateState::Decrease,
            (_, BandwidthUsage::Underusing) => RateState::Hold,
            (RateState::Hold, BandwidthUsage::Normal) => RateState::Increase,
            (RateState::Increase, BandwidthUsage::Normal) => RateState::Increase,
            (RateState::Decrease, BandwidthUsage::Normal) => RateState::Hold,
        };
    }

    fn update_max_stats(&mut self, incoming_rate_bps: f64) {
        const ALPHA: f64 = 0.05;
        match self.avg_max_bps {
            None => self.avg_max_bps = Some(incoming_rate_bps),
            Some(avg) => {
                let new_avg = (1.0 - ALPHA) * avg + ALPHA * incoming_rate_bps;
                let norm = avg.max(1.0);
                self.var_max = (1.0 - ALPHA) * self.var_max
                    + ALPHA * ((incoming_rate_bps - avg) / norm).powi(2) * norm;
                self.avg_max_bps = Some(new_avg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_millis(s * 200)
    }

    #[test]
    fn increases_under_normal_signal() {
        let mut c = AimdController::new(AimdConfig::default(), 1_000_000.0);
        let start = c.estimate_bps();
        for i in 0..50 {
            c.update(t(i), BandwidthUsage::Normal, 10_000_000.0, 50.0);
        }
        assert!(c.estimate_bps() > start);
    }

    #[test]
    fn decrease_backs_off_below_incoming_rate() {
        let mut c = AimdController::new(AimdConfig::default(), 5_000_000.0);
        let est = c.update(t(0), BandwidthUsage::Overusing, 4_000_000.0, 50.0);
        assert!((est - 0.85 * 4_000_000.0).abs() < 1.0);
        assert_eq!(c.state(), RateState::Hold);
    }

    #[test]
    fn underuse_holds() {
        let mut c = AimdController::new(AimdConfig::default(), 2_000_000.0);
        let before = c.estimate_bps();
        c.update(t(0), BandwidthUsage::Underusing, 3_000_000.0, 50.0);
        assert_eq!(c.estimate_bps(), before);
        assert_eq!(c.state(), RateState::Hold);
    }

    #[test]
    fn growth_gated_but_estimate_never_pulled_down() {
        // Starting above 1.5x the incoming rate: growth is blocked but the
        // existing estimate stays (app-limited senders must not deadlock).
        let mut c = AimdController::new(AimdConfig::default(), 8_000_000.0);
        for i in 0..100 {
            c.update(t(i), BandwidthUsage::Normal, 2_000_000.0, 50.0);
        }
        assert!((c.estimate_bps() - 8_000_000.0).abs() < 1.0);
        // Starting below the gate: growth proceeds up to the gate.
        let mut c = AimdController::new(AimdConfig::default(), 1_000_000.0);
        for i in 0..100 {
            c.update(t(i), BandwidthUsage::Normal, 2_000_000.0, 50.0);
        }
        assert!(c.estimate_bps() <= 1.5 * 2_000_000.0 + 1.0);
        assert!(c.estimate_bps() > 2_000_000.0);
    }

    #[test]
    fn increase_scale_dampens_growth() {
        let grow = |scale: f64| -> f64 {
            let mut c = AimdController::new(AimdConfig::default(), 1_000_000.0);
            c.set_increase_scale(scale);
            for i in 0..25 {
                c.update(t(i), BandwidthUsage::Normal, 20_000_000.0, 50.0);
            }
            c.estimate_bps()
        };
        let full = grow(1.0);
        let half = grow(0.5);
        assert!(half < full, "dampened {half} must trail undampened {full}");
        assert!(half > 1_000_000.0, "still grows");
    }

    #[test]
    fn recovers_from_app_limited_floor() {
        // The deadlock scenario: estimate at the floor, sender app-limited
        // so incoming equals the floor; the estimate must still climb.
        let cfg = AimdConfig::default();
        let mut c = AimdController::new(cfg, cfg.min_rate_bps);
        // Incoming tracks the (tiny) estimate — the app-limited loop.
        for i in 0..200 {
            let incoming = c.estimate_bps();
            c.update(t(i), BandwidthUsage::Normal, incoming, 50.0);
        }
        assert!(
            c.estimate_bps() > cfg.min_rate_bps * 10.0,
            "stuck at {}",
            c.estimate_bps()
        );
    }

    #[test]
    fn estimate_respects_bounds() {
        let cfg = AimdConfig::default();
        let mut c = AimdController::new(cfg, 100.0);
        assert!(c.estimate_bps() >= cfg.min_rate_bps);
        for i in 0..1000 {
            c.update(t(i), BandwidthUsage::Normal, 1e12, 50.0);
        }
        assert!(c.estimate_bps() <= cfg.max_rate_bps);
    }

    #[test]
    fn recovers_after_decrease() {
        let mut c = AimdController::new(AimdConfig::default(), 5_000_000.0);
        c.update(t(0), BandwidthUsage::Overusing, 4_000_000.0, 50.0);
        let low = c.estimate_bps();
        // Normal signals: Hold → Increase, then growth.
        for i in 1..50 {
            c.update(t(i), BandwidthUsage::Normal, 6_000_000.0, 50.0);
        }
        assert!(c.estimate_bps() > low);
    }

    #[test]
    fn near_convergence_switches_to_additive() {
        let mut c = AimdController::new(AimdConfig::default(), 5_000_000.0);
        // Two decreases at similar incoming rates establish avg_max.
        c.update(t(0), BandwidthUsage::Overusing, 5_000_000.0, 50.0);
        for i in 1..10 {
            c.update(t(i), BandwidthUsage::Normal, 5_000_000.0, 50.0);
        }
        let before = c.estimate_bps();
        c.update(t(10), BandwidthUsage::Normal, 5_000_000.0, 50.0);
        let growth = c.estimate_bps() - before;
        // Additive growth in 200 ms is far below 8%/s multiplicative (which
        // would be ~66 kbps at 4.25 Mbps); additive is ~100 kbps max. Accept
        // growth but bounded.
        assert!(growth > 0.0 && growth < 200_000.0, "growth {growth}");
    }
}
