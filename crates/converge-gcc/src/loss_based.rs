//! Loss-based rate controller.
//!
//! The sender-side half of GCC: adjusts its estimate from the fraction of
//! packets lost reported in RTCP receiver reports. Below 2 % loss the rate
//! grows 5 % per update; above 10 % it backs off proportionally to the loss
//! level; in between it holds.

/// Configuration of the loss-based controller.
#[derive(Debug, Clone, Copy)]
pub struct LossBasedConfig {
    /// Loss fraction below which the rate may grow.
    pub low_loss: f64,
    /// Loss fraction above which the rate must shrink.
    pub high_loss: f64,
    /// Multiplicative growth applied below `low_loss`.
    pub growth: f64,
    /// Floor for the estimate, bps.
    pub min_rate_bps: f64,
    /// Ceiling for the estimate, bps.
    pub max_rate_bps: f64,
}

impl Default for LossBasedConfig {
    fn default() -> Self {
        LossBasedConfig {
            low_loss: 0.02,
            high_loss: 0.10,
            growth: 1.05,
            min_rate_bps: 50_000.0,
            max_rate_bps: 30_000_000.0,
        }
    }
}

/// The loss-based controller for one path.
#[derive(Debug)]
pub struct LossBasedController {
    config: LossBasedConfig,
    estimate_bps: f64,
}

impl LossBasedController {
    /// Creates a controller starting from `initial_bps`.
    pub fn new(config: LossBasedConfig, initial_bps: f64) -> Self {
        LossBasedController {
            config,
            estimate_bps: initial_bps.clamp(config.min_rate_bps, config.max_rate_bps),
        }
    }

    /// Current loss-based estimate, bps.
    pub fn estimate_bps(&self) -> f64 {
        self.estimate_bps
    }

    /// Feeds one loss report (`fraction_lost` in 0..=1) and returns the new
    /// estimate.
    pub fn on_loss_report(&mut self, fraction_lost: f64) -> f64 {
        let p = fraction_lost.clamp(0.0, 1.0);
        if p < self.config.low_loss {
            self.estimate_bps *= self.config.growth;
        } else if p > self.config.high_loss {
            self.estimate_bps *= 1.0 - 0.5 * p;
        }
        self.estimate_bps = self
            .estimate_bps
            .clamp(self.config.min_rate_bps, self.config.max_rate_bps);
        self.estimate_bps
    }

    /// Allows the delay-based side to pull the loss estimate down with it so
    /// the two do not diverge (WebRTC clamps similarly).
    pub fn cap_to(&mut self, bps: f64) {
        self.estimate_bps = self
            .estimate_bps
            .min(bps.max(self.config.min_rate_bps))
            .max(self.config.min_rate_bps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_under_low_loss() {
        let mut c = LossBasedController::new(LossBasedConfig::default(), 1_000_000.0);
        let e1 = c.on_loss_report(0.0);
        assert!((e1 - 1_050_000.0).abs() < 1.0);
        let e2 = c.on_loss_report(0.01);
        assert!(e2 > e1);
    }

    #[test]
    fn holds_in_middle_band() {
        let mut c = LossBasedController::new(LossBasedConfig::default(), 1_000_000.0);
        let e = c.on_loss_report(0.05);
        assert_eq!(e, 1_000_000.0);
    }

    #[test]
    fn shrinks_under_high_loss() {
        let mut c = LossBasedController::new(LossBasedConfig::default(), 1_000_000.0);
        let e = c.on_loss_report(0.20);
        assert!((e - 900_000.0).abs() < 1.0); // 1 - 0.5*0.2 = 0.9
    }

    #[test]
    fn extreme_loss_halves() {
        let mut c = LossBasedController::new(LossBasedConfig::default(), 1_000_000.0);
        let e = c.on_loss_report(1.0);
        assert!((e - 500_000.0).abs() < 1.0);
    }

    #[test]
    fn clamps_to_bounds() {
        let cfg = LossBasedConfig::default();
        let mut c = LossBasedController::new(cfg, cfg.min_rate_bps);
        for _ in 0..100 {
            c.on_loss_report(1.0);
        }
        assert_eq!(c.estimate_bps(), cfg.min_rate_bps);
        for _ in 0..500 {
            c.on_loss_report(0.0);
        }
        assert_eq!(c.estimate_bps(), cfg.max_rate_bps);
    }

    #[test]
    fn cap_pulls_down_not_up() {
        let mut c = LossBasedController::new(LossBasedConfig::default(), 5_000_000.0);
        c.cap_to(2_000_000.0);
        assert_eq!(c.estimate_bps(), 2_000_000.0);
        c.cap_to(10_000_000.0);
        assert_eq!(c.estimate_bps(), 2_000_000.0);
    }

    #[test]
    fn garbage_loss_fraction_clamped() {
        let mut c = LossBasedController::new(LossBasedConfig::default(), 1_000_000.0);
        let e = c.on_loss_report(5.0); // clamped to 1.0
        assert!((e - 500_000.0).abs() < 1.0);
        let before = c.estimate_bps();
        let e = c.on_loss_report(-2.0); // clamped to 0.0 → grow
        assert!(e > before);
    }
}
