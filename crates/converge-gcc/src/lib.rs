//! # converge-gcc
//!
//! A from-scratch implementation of Google Congestion Control (GCC), the
//! rate controller WebRTC uses, following the published design (Carlucci
//! et al., "Analysis and Design of the Google Congestion Control for Web
//! Real-Time Communication", MMSys 2016):
//!
//! - [`arrival`]: inter-arrival filter grouping packets and emitting
//!   one-way delay-variation samples.
//! - [`trendline`]: trendline estimator + adaptive-threshold overuse
//!   detector (underuse / normal / overuse).
//! - [`aimd`]: the Hold/Increase/Decrease remote-rate AIMD controller.
//! - [`loss_based`]: the loss-report-driven sender-side controller.
//! - [`controller`]: the per-path combination (target = min of the two),
//!   plus RTT and goodput tracking.
//!
//! Converge extends GCC "for every available path" (paper section 4.1);
//! the scheduler in `converge-core` instantiates one [`GccController`]
//! per path — uncoupled congestion control.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aimd;
pub mod arrival;
pub mod controller;
pub mod loss_based;
pub mod trendline;

pub use aimd::{AimdConfig, AimdController, RateState};
pub use arrival::{DelaySample, InterArrival, PacketTiming};
pub use controller::{GccConfig, GccController};
pub use loss_based::{LossBasedConfig, LossBasedController};
pub use trendline::{BandwidthUsage, TrendlineConfig, TrendlineEstimator};
