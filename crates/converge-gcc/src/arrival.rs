//! Inter-arrival filter: turns per-packet (send, arrival) timestamps into
//! inter-group delay-variation samples, the raw input of the delay-based
//! controller (Carlucci et al., MMSys '16, §3).
//!
//! Packets sent within a short burst window form a "group"; for each pair
//! of consecutive groups the filter emits
//! `d = (arrival_j − arrival_i) − (send_j − send_i)`, the one-way delay
//! gradient accumulated while the groups crossed the bottleneck.

use converge_net::{SimDuration, SimTime};

/// One packet's timing as reported by transport feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketTiming {
    /// When the sender put it on the wire.
    pub send_time: SimTime,
    /// When the receiver saw it.
    pub arrival_time: SimTime,
    /// Wire size, bytes.
    pub size: usize,
}

/// A delay-variation sample between two packet groups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelaySample {
    /// Arrival time of the later group (sample timestamp).
    pub at: SimTime,
    /// Delay variation in milliseconds (positive = queues growing).
    pub delta_ms: f64,
    /// Send-time gap between the groups, milliseconds.
    pub send_gap_ms: f64,
}

#[derive(Debug, Clone, Copy)]
struct Group {
    first_send: SimTime,
    last_send: SimTime,
    last_arrival: SimTime,
}

/// Groups packets and emits delay-variation samples.
#[derive(Debug, Default)]
pub struct InterArrival {
    current: Option<Group>,
    previous: Option<Group>,
}

impl InterArrival {
    /// Burst window: packets sent within this span belong to one group.
    pub const BURST_WINDOW: SimDuration = SimDuration::from_millis(5);

    /// Creates an empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one packet (must be offered in arrival order); returns a
    /// sample whenever a group boundary is crossed.
    pub fn on_packet(&mut self, p: PacketTiming) -> Option<DelaySample> {
        match self.current {
            None => {
                self.current = Some(Group {
                    first_send: p.send_time,
                    last_send: p.send_time,
                    last_arrival: p.arrival_time,
                });
                None
            }
            Some(ref mut g) => {
                let in_burst = p.send_time.saturating_since(g.first_send) <= Self::BURST_WINDOW;
                if in_burst {
                    g.last_send = g.last_send.max(p.send_time);
                    g.last_arrival = g.last_arrival.max(p.arrival_time);
                    return None;
                }
                // Close the current group, start a new one.
                let finished = *g;
                let sample = self.previous.map(|prev| {
                    let arrival_gap = finished
                        .last_arrival
                        .saturating_since(prev.last_arrival)
                        .as_micros() as f64;
                    let send_gap = finished
                        .last_send
                        .saturating_since(prev.last_send)
                        .as_micros() as f64;
                    DelaySample {
                        at: finished.last_arrival,
                        delta_ms: (arrival_gap - send_gap) / 1_000.0,
                        send_gap_ms: send_gap / 1_000.0,
                    }
                });
                self.previous = Some(finished);
                self.current = Some(Group {
                    first_send: p.send_time,
                    last_send: p.send_time,
                    last_arrival: p.arrival_time,
                });
                sample
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn pkt(send_ms: u64, arrival_ms: u64) -> PacketTiming {
        PacketTiming {
            send_time: t(send_ms),
            arrival_time: t(arrival_ms),
            size: 1200,
        }
    }

    #[test]
    fn constant_delay_gives_zero_samples() {
        let mut f = InterArrival::new();
        let mut samples = Vec::new();
        for i in 0..10 {
            if let Some(s) = f.on_packet(pkt(i * 20, i * 20 + 30)) {
                samples.push(s);
            }
        }
        assert!(!samples.is_empty());
        for s in samples {
            assert_eq!(s.delta_ms, 0.0);
        }
    }

    #[test]
    fn growing_queue_gives_positive_samples() {
        let mut f = InterArrival::new();
        let mut samples = Vec::new();
        // Arrival delay grows 2 ms per packet.
        for i in 0..10u64 {
            if let Some(s) = f.on_packet(pkt(i * 20, i * 20 + 30 + i * 2)) {
                samples.push(s);
            }
        }
        assert!(samples.iter().all(|s| s.delta_ms > 0.0), "{samples:?}");
    }

    #[test]
    fn draining_queue_gives_negative_samples() {
        let mut f = InterArrival::new();
        let mut samples = Vec::new();
        for i in 0..10u64 {
            let extra = 20u64.saturating_sub(i * 2);
            if let Some(s) = f.on_packet(pkt(i * 20, i * 20 + 30 + extra)) {
                samples.push(s);
            }
        }
        assert!(samples.iter().all(|s| s.delta_ms < 0.0), "{samples:?}");
    }

    #[test]
    fn burst_packets_grouped() {
        let mut f = InterArrival::new();
        // Three packets sent within 5 ms: one group; no sample until the
        // next group closes, so the first boundary yields nothing (needs a
        // previous group), the second yields one.
        assert!(f.on_packet(pkt(0, 30)).is_none());
        assert!(f.on_packet(pkt(2, 31)).is_none());
        assert!(f.on_packet(pkt(4, 32)).is_none());
        assert!(f.on_packet(pkt(20, 50)).is_none()); // closes group 1
        let s = f.on_packet(pkt(40, 70)); // closes group 2 → sample
        assert!(s.is_some());
    }

    #[test]
    fn sample_measures_group_gap() {
        let mut f = InterArrival::new();
        f.on_packet(pkt(0, 100));
        f.on_packet(pkt(20, 125)); // gap send 20, arrival 25 → +5
        let s = f.on_packet(pkt(40, 145)).unwrap();
        assert_eq!(s.delta_ms, 5.0);
        assert_eq!(s.send_gap_ms, 20.0);
        assert_eq!(s.at, t(125));
    }
}
