//! Trendline estimator and adaptive-threshold overuse detector.
//!
//! The delay-based controller smooths the delay-variation samples, fits a
//! line through the recent window, and compares the (scaled) slope against
//! an adaptive threshold to classify the path as underused, normal, or
//! overused — the structure of WebRTC's `TrendlineEstimator`.

use converge_net::SimTime;

use crate::arrival::DelaySample;

/// Bandwidth usage signal produced by the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandwidthUsage {
    /// Queues draining: the path can take more.
    Underusing,
    /// Stable delay.
    Normal,
    /// Queues building: back off.
    Overusing,
}

/// Configuration of the estimator/detector.
#[derive(Debug, Clone, Copy)]
pub struct TrendlineConfig {
    /// Exponential smoothing factor for accumulated delay.
    pub smoothing: f64,
    /// Samples in the regression window.
    pub window: usize,
    /// Gain applied to the fitted slope before thresholding.
    pub threshold_gain: f64,
    /// Initial adaptive threshold, ms.
    pub initial_threshold_ms: f64,
    /// Threshold adaptation rate when |trend| is above it.
    pub k_up: f64,
    /// Threshold adaptation rate when |trend| is below it.
    pub k_down: f64,
    /// Time the trend must stay above threshold before declaring overuse, ms.
    pub overuse_time_ms: f64,
}

impl Default for TrendlineConfig {
    fn default() -> Self {
        TrendlineConfig {
            smoothing: 0.9,
            window: 20,
            threshold_gain: 4.0,
            initial_threshold_ms: 12.5,
            k_up: 0.0087,
            k_down: 0.039,
            overuse_time_ms: 10.0,
        }
    }
}

/// Sliding-window trendline estimator with adaptive-threshold detection.
#[derive(Debug)]
pub struct TrendlineEstimator {
    config: TrendlineConfig,
    /// (arrival ms since first sample, smoothed accumulated delay ms)
    history: std::collections::VecDeque<(f64, f64)>,
    first_arrival: Option<SimTime>,
    accumulated_delay_ms: f64,
    smoothed_delay_ms: f64,
    threshold_ms: f64,
    last_update: Option<SimTime>,
    time_over_using_ms: f64,
    overuse_count: u32,
    prev_trend: f64,
    state: BandwidthUsage,
    num_samples: usize,
}

impl TrendlineEstimator {
    /// Creates an estimator with the given configuration.
    pub fn new(config: TrendlineConfig) -> Self {
        TrendlineEstimator {
            config,
            history: std::collections::VecDeque::new(),
            first_arrival: None,
            accumulated_delay_ms: 0.0,
            smoothed_delay_ms: 0.0,
            threshold_ms: config.initial_threshold_ms,
            last_update: None,
            time_over_using_ms: -1.0,
            overuse_count: 0,
            prev_trend: 0.0,
            state: BandwidthUsage::Normal,
            num_samples: 0,
        }
    }

    /// Current detector state.
    pub fn state(&self) -> BandwidthUsage {
        self.state
    }

    /// Current adaptive threshold (exposed for tests/telemetry).
    pub fn threshold_ms(&self) -> f64 {
        self.threshold_ms
    }

    /// Feeds one delay sample; returns the (possibly updated) state.
    pub fn on_sample(&mut self, sample: DelaySample) -> BandwidthUsage {
        self.num_samples += 1;
        let first = *self.first_arrival.get_or_insert(sample.at);
        let t_ms = sample.at.saturating_since(first).as_micros() as f64 / 1_000.0;

        self.accumulated_delay_ms += sample.delta_ms;
        self.smoothed_delay_ms = self.config.smoothing * self.smoothed_delay_ms
            + (1.0 - self.config.smoothing) * self.accumulated_delay_ms;

        self.history.push_back((t_ms, self.smoothed_delay_ms));
        while self.history.len() > self.config.window {
            self.history.pop_front();
        }
        let trend = if self.history.len() >= 2 {
            linear_slope(self.history.iter().copied())
        } else {
            0.0
        };
        self.detect(trend, sample);
        self.state
    }

    /// The WebRTC-style overuse detector with adaptive threshold.
    fn detect(&mut self, trend: f64, sample: DelaySample) {
        let modified_trend = trend * (self.num_samples.min(60) as f64) * self.config.threshold_gain;

        if modified_trend > self.threshold_ms {
            // Require the trend to persist before declaring overuse.
            if self.time_over_using_ms < 0.0 {
                self.time_over_using_ms = sample.send_gap_ms / 2.0;
            } else {
                self.time_over_using_ms += sample.send_gap_ms;
            }
            self.overuse_count += 1;
            if self.time_over_using_ms > self.config.overuse_time_ms
                && self.overuse_count > 1
                && trend >= self.prev_trend
            {
                self.time_over_using_ms = 0.0;
                self.overuse_count = 0;
                self.state = BandwidthUsage::Overusing;
            }
        } else if modified_trend < -self.threshold_ms {
            self.time_over_using_ms = -1.0;
            self.overuse_count = 0;
            self.state = BandwidthUsage::Underusing;
        } else {
            self.time_over_using_ms = -1.0;
            self.overuse_count = 0;
            self.state = BandwidthUsage::Normal;
        }
        self.prev_trend = trend;
        self.adapt_threshold(modified_trend, sample.at);
    }

    /// Threshold adaptation: tracks |trend| slowly so that a persistent
    /// offset (e.g. a competing flow) does not starve the controller.
    fn adapt_threshold(&mut self, modified_trend: f64, now: SimTime) {
        let dt_ms = match self.last_update {
            Some(prev) => (now.saturating_since(prev).as_micros() as f64 / 1_000.0).min(100.0),
            None => 100.0,
        };
        self.last_update = Some(now);
        // Ignore wild outliers entirely (WebRTC: 15 ms beyond threshold).
        if modified_trend.abs() > self.threshold_ms + 15.0 {
            return;
        }
        let k = if modified_trend.abs() < self.threshold_ms {
            self.config.k_down
        } else {
            self.config.k_up
        };
        self.threshold_ms += k * (modified_trend.abs() - self.threshold_ms) * dt_ms;
        self.threshold_ms = self.threshold_ms.clamp(6.0, 600.0);
    }
}

/// Ordinary least-squares slope of `(x, y)` points.
fn linear_slope(points: impl Iterator<Item = (f64, f64)> + Clone) -> f64 {
    let n = points.clone().count() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mean_x = points.clone().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = points.clone().map(|(_, y)| y).sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in points {
        num += (x - mean_x) * (y - mean_y);
        den += (x - mean_x) * (x - mean_x);
    }
    if den.abs() < 1e-12 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_ms: u64, delta_ms: f64) -> DelaySample {
        DelaySample {
            at: SimTime::from_millis(at_ms),
            delta_ms,
            send_gap_ms: 20.0,
        }
    }

    #[test]
    fn stable_delay_stays_normal() {
        let mut e = TrendlineEstimator::new(TrendlineConfig::default());
        for i in 0..100 {
            e.on_sample(sample(i * 20, 0.0));
        }
        assert_eq!(e.state(), BandwidthUsage::Normal);
    }

    #[test]
    fn sustained_positive_gradient_detects_overuse() {
        let mut e = TrendlineEstimator::new(TrendlineConfig::default());
        let mut saw_overuse = false;
        for i in 0..100 {
            if e.on_sample(sample(i * 20, 2.0)) == BandwidthUsage::Overusing {
                saw_overuse = true;
            }
        }
        assert!(saw_overuse);
    }

    #[test]
    fn sustained_negative_gradient_detects_underuse() {
        let mut e = TrendlineEstimator::new(TrendlineConfig::default());
        // Build a queue first, then drain it.
        for i in 0..30 {
            e.on_sample(sample(i * 20, 2.0));
        }
        let mut saw_underuse = false;
        for i in 30..90 {
            if e.on_sample(sample(i * 20, -2.5)) == BandwidthUsage::Underusing {
                saw_underuse = true;
            }
        }
        assert!(saw_underuse);
    }

    #[test]
    fn noise_within_threshold_stays_normal() {
        let mut e = TrendlineEstimator::new(TrendlineConfig::default());
        for i in 0..200u64 {
            let jitter = if i % 2 == 0 { 0.3 } else { -0.3 };
            e.on_sample(sample(i * 20, jitter));
        }
        assert_eq!(e.state(), BandwidthUsage::Normal);
    }

    #[test]
    fn threshold_adapts_upward_under_persistent_trend() {
        let mut e = TrendlineEstimator::new(TrendlineConfig::default());
        let initial = e.threshold_ms();
        for i in 0..60 {
            // A slope strong enough that the modified trend sits above the
            // threshold (but under the outlier cutoff), pushing it upward.
            e.on_sample(sample(i * 20, 1.5));
        }
        assert!(
            e.threshold_ms() > initial,
            "{} <= {initial}",
            e.threshold_ms()
        );
    }

    #[test]
    fn slope_of_line_is_exact() {
        let pts = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0));
        assert!((linear_slope(pts) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_constant_is_zero() {
        let pts = (0..10).map(|i| (i as f64, 5.0));
        assert_eq!(linear_slope(pts), 0.0);
    }

    #[test]
    fn single_point_slope_zero() {
        assert_eq!(linear_slope([(1.0, 1.0)].into_iter()), 0.0);
    }
}
