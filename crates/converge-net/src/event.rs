//! Deterministic discrete-event queue.
//!
//! Events are ordered by firing time with insertion-order tie-breaks, so two
//! runs with the same inputs pop events in exactly the same sequence. The
//! heap itself only holds small `Copy` keys; event payloads sit in a
//! generational [`Arena`], so heap sifts never move payload bytes and a
//! batch drain touches each payload exactly once.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::arena::{Arena, SlotKey};
use crate::time::SimTime;

/// The heap-resident key for one scheduled event: firing time, FIFO
/// tie-break sequence, and the arena slot holding the payload.
#[derive(Debug, Clone, Copy)]
struct HeapKey {
    at: SimTime,
    seq: u64,
    slot: SlotKey,
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapKey {}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then the first
        // inserted) event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A FIFO-tie-breaking discrete-event queue.
///
/// # Examples
///
/// ```
/// use converge_net::event::EventQueue;
/// use converge_net::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "late");
/// q.schedule(SimTime::from_millis(1), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_millis(), e), (1, "early"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapKey>,
    events: Arena<E>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            events: Arena::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.events.insert(event);
        self.heap.push(HeapKey { at, seq, slot });
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let key = self.heap.pop()?;
        let event = self
            .events
            .remove(key.slot)
            .expect("heap key must resolve to a live arena slot");
        Some((key.at, event))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Appends every event due at or before `now` to `out`, in pop order.
    ///
    /// Equivalent to calling [`pop_due`] in a loop, but the whole batch is
    /// drained in one pass: only the small `Copy` heap keys take part in
    /// the heap rebalances and each payload is moved out of the arena once.
    ///
    /// [`pop_due`]: EventQueue::pop_due
    pub fn drain_due_into(&mut self, now: SimTime, out: &mut Vec<(SimTime, E)>) {
        while let Some(key) = self.heap.peek() {
            if key.at > now {
                break;
            }
            let key = *key;
            self.heap.pop();
            let event = self
                .events
                .remove(key.slot)
                .expect("heap key must resolve to a live arena slot");
            out.push((key.at, event));
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The deepest the queue has ever been over its lifetime.
    ///
    /// Occupancy telemetry for fleet debugging: a shard reusing one queue
    /// across thousands of sessions can assert its depth tracks in-flight
    /// events, not session count. Survives [`clear`](EventQueue::clear).
    pub fn high_water(&self) -> usize {
        self.events.high_water()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.pop_due(t(5)).is_none());
        assert_eq!(q.pop_due(t(10)).unwrap().1, "a");
        assert!(q.pop_due(t(15)).is_none());
        assert_eq!(q.pop_due(t(25)).unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(t(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn drain_due_matches_pop_due_loop() {
        let mut batch = EventQueue::new();
        let mut single = EventQueue::new();
        // Interleave times, including heavy same-timestamp batches.
        for i in 0..200u32 {
            let at = t(u64::from(i % 7) * 10);
            batch.schedule(at, i);
            single.schedule(at, i);
        }
        let now = t(30);
        let mut drained = Vec::new();
        batch.drain_due_into(now, &mut drained);
        let mut popped = Vec::new();
        while let Some(item) = single.pop_due(now) {
            popped.push(item);
        }
        assert_eq!(drained, popped);
        assert!(!drained.is_empty());
        assert_eq!(batch.len(), single.len());
    }

    #[test]
    fn drain_due_appends_without_clearing() {
        let mut q = EventQueue::new();
        q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        let mut out = vec![(t(0), "pre")];
        q.drain_due_into(t(5), &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].1, "pre");
        assert_eq!(out[1].1, "a");
        assert_eq!(out[2].1, "b");
    }

    #[test]
    fn slot_reuse_keeps_fifo_order() {
        let mut q = EventQueue::new();
        // Churn slots so the arena free list is exercised, then check
        // ordering still follows (time, insertion seq).
        for round in 0..5u64 {
            for i in 0..10u64 {
                q.schedule(t(100 - round * 10), round * 10 + i);
            }
            if round % 2 == 0 {
                let mut sink = Vec::new();
                q.drain_due_into(t(100 - round * 10), &mut sink);
            }
        }
        let mut last = None;
        while let Some((at, _)) = q.pop() {
            if let Some(prev) = last {
                assert!(at >= prev);
            }
            last = Some(at);
        }
    }
}
