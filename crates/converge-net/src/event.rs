//! Deterministic discrete-event queue.
//!
//! A thin wrapper over a binary heap that orders events by firing time and
//! breaks ties by insertion order, so two runs with the same inputs pop
//! events in exactly the same sequence.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled to fire at a specific simulation instant.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then the first
        // inserted) event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A FIFO-tie-breaking discrete-event queue.
///
/// # Examples
///
/// ```
/// use converge_net::event::EventQueue;
/// use converge_net::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "late");
/// q.schedule(SimTime::from_millis(1), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_millis(), e), (1, "early"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.pop_due(t(5)).is_none());
        assert_eq!(q.pop_due(t(10)).unwrap().1, "a");
        assert!(q.pop_due(t(15)).is_none());
        assert_eq!(q.pop_due(t(25)).unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(t(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
