//! Composable per-direction fault injection for emulated links.
//!
//! The base [`Link`](crate::link::Link) models the *nominal* behaviour of a
//! cellular path: a disciplined queue, a trace-driven bottleneck, propagation
//! delay, bounded jitter, and stochastic loss. Real multi-carrier paths
//! misbehave in ways none of those stages express: carrier handovers black
//! the radio out for seconds, handover flaps toggle it on and off, the air
//! interface reorders far beyond the scheduling-jitter bound, middleboxes
//! duplicate packets, and the *feedback* direction can be lossy or slow
//! while media flows fine. [`ImpairmentConfig`] adds those faults as an
//! explicit stage, one config per link direction, so asymmetric impairment
//! (e.g. RTCP feedback loss with clean media) is directly expressible.
//!
//! Every impairment draws from the owning link's seeded RNG, so a run
//! remains a pure function of configuration × seed. A default (no-op)
//! config draws nothing at all, leaving the RNG stream — and therefore
//! every existing scenario — bit-for-bit unchanged.

use crate::time::{SimDuration, SimTime};

/// A deterministic on/off outage schedule for one link direction.
///
/// Models carrier-handover blackouts: from `start`, the link is dark for
/// `off`; with a `period`, the outage repeats every `period` (a handover
/// *flap*), otherwise it happens once. Packets offered while the link is
/// dark are dropped at entry with [`Transmit::Blackout`].
///
/// [`Transmit::Blackout`]: crate::link::Transmit::Blackout
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlackoutSchedule {
    /// Start of the first outage window.
    pub start: SimTime,
    /// Length of each outage window.
    pub off: SimDuration,
    /// Interval between consecutive outage starts; `None` means the
    /// outage happens exactly once.
    pub period: Option<SimDuration>,
}

impl BlackoutSchedule {
    /// A single outage: dark during `[start, start + off)`.
    pub fn single(start: SimTime, off: SimDuration) -> Self {
        BlackoutSchedule {
            start,
            off,
            period: None,
        }
    }

    /// A repeating flap: dark during `[start + k·period, start + k·period
    /// + off)` for every `k ≥ 0`.
    ///
    /// # Panics
    /// Panics unless `period > off` (the link must come back up between
    /// outages) and `off` is positive.
    pub fn flapping(start: SimTime, off: SimDuration, period: SimDuration) -> Self {
        assert!(off > SimDuration::ZERO, "flap outage must be positive");
        assert!(period > off, "flap period must exceed the outage length");
        BlackoutSchedule {
            start,
            off,
            period: Some(period),
        }
    }

    /// Whether the link is dark at `now`.
    pub fn contains(&self, now: SimTime) -> bool {
        if now < self.start {
            return false;
        }
        let since = now.saturating_since(self.start);
        match self.period {
            None => since < self.off,
            Some(period) => {
                let into_cycle = since.as_micros() % period.as_micros();
                into_cycle < self.off.as_micros()
            }
        }
    }
}

/// Fault-injection settings for one link direction. The default is a
/// no-op: nothing is dropped, delayed, reordered, or duplicated, and no
/// random draws are made.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpairmentConfig {
    /// Extra independent loss probability applied at link entry, before
    /// the queue (0..=1). This is how feedback-channel loss is modelled:
    /// set it on the reverse direction only and media stays clean while
    /// RTCP feedback starves.
    pub loss: f64,
    /// Fixed extra one-way delay added to every delivered packet (models
    /// a slow feedback channel, or a detour through a distant PoP).
    pub delay: SimDuration,
    /// Probability that a delivered packet is held back by an extra
    /// uniform delay in `[1 µs, reorder_horizon]`, reordering it behind
    /// later packets (0..=1).
    pub reorder_prob: f64,
    /// Maximum hold-back applied to a reordered packet.
    pub reorder_horizon: SimDuration,
    /// Probability that a delivered packet arrives twice (0..=1). The
    /// copy trails the original by a uniform delay in
    /// `[0, duplicate_spread]`.
    pub duplicate_prob: f64,
    /// Maximum lag of a duplicated copy behind its original.
    pub duplicate_spread: SimDuration,
    /// Outage schedule; packets offered while dark are dropped.
    pub blackout: Option<BlackoutSchedule>,
}

impl Default for ImpairmentConfig {
    fn default() -> Self {
        ImpairmentConfig {
            loss: 0.0,
            delay: SimDuration::ZERO,
            reorder_prob: 0.0,
            reorder_horizon: SimDuration::ZERO,
            duplicate_prob: 0.0,
            duplicate_spread: SimDuration::ZERO,
            blackout: None,
        }
    }
}

impl ImpairmentConfig {
    /// Whether this config changes nothing (the default).
    pub fn is_noop(&self) -> bool {
        self.loss <= 0.0
            && self.delay == SimDuration::ZERO
            && (self.reorder_prob <= 0.0 || self.reorder_horizon == SimDuration::ZERO)
            && self.duplicate_prob <= 0.0
            && self.blackout.is_none()
    }

    /// Reordering only: each packet is held back with probability `prob`
    /// by up to `horizon`.
    pub fn reordering(prob: f64, horizon: SimDuration) -> Self {
        ImpairmentConfig {
            reorder_prob: prob,
            reorder_horizon: horizon,
            ..ImpairmentConfig::default()
        }
    }

    /// Duplication only: each packet arrives twice with probability
    /// `prob`, the copy trailing by up to `spread`.
    pub fn duplication(prob: f64, spread: SimDuration) -> Self {
        ImpairmentConfig {
            duplicate_prob: prob,
            duplicate_spread: spread,
            ..ImpairmentConfig::default()
        }
    }

    /// An outage schedule only.
    pub fn blackout(schedule: BlackoutSchedule) -> Self {
        ImpairmentConfig {
            blackout: Some(schedule),
            ..ImpairmentConfig::default()
        }
    }

    /// A degraded control channel: extra independent loss plus a fixed
    /// extra delay. Intended for the reverse (feedback) direction.
    pub fn degraded(loss: f64, delay: SimDuration) -> Self {
        ImpairmentConfig {
            loss,
            delay,
            ..ImpairmentConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noop() {
        assert!(ImpairmentConfig::default().is_noop());
        assert!(!ImpairmentConfig::reordering(0.5, SimDuration::from_millis(10)).is_noop());
        assert!(!ImpairmentConfig::duplication(0.1, SimDuration::ZERO).is_noop());
        assert!(!ImpairmentConfig::degraded(0.3, SimDuration::ZERO).is_noop());
        assert!(!ImpairmentConfig::blackout(BlackoutSchedule::single(
            SimTime::ZERO,
            SimDuration::from_secs(1)
        ))
        .is_noop());
        // Reordering with a zero horizon cannot move anything.
        assert!(ImpairmentConfig::reordering(0.5, SimDuration::ZERO).is_noop());
    }

    #[test]
    fn single_blackout_window() {
        let b = BlackoutSchedule::single(SimTime::from_secs(10), SimDuration::from_secs(5));
        assert!(!b.contains(SimTime::from_secs(9)));
        assert!(b.contains(SimTime::from_secs(10)));
        assert!(b.contains(SimTime::from_micros(14_999_999)));
        assert!(!b.contains(SimTime::from_secs(15)));
        assert!(!b.contains(SimTime::from_secs(100)));
    }

    #[test]
    fn flapping_blackout_repeats() {
        let b = BlackoutSchedule::flapping(
            SimTime::from_secs(5),
            SimDuration::from_secs(1),
            SimDuration::from_secs(4),
        );
        assert!(!b.contains(SimTime::from_secs(4)));
        // Cycle k: dark during [5 + 4k, 6 + 4k).
        for k in 0..5u64 {
            let dark = SimTime::from_secs(5 + 4 * k) + SimDuration::from_millis(500);
            let up = SimTime::from_secs(5 + 4 * k) + SimDuration::from_millis(1_500);
            assert!(b.contains(dark), "cycle {k} should be dark");
            assert!(!b.contains(up), "cycle {k} should be up again");
        }
    }

    #[test]
    #[should_panic(expected = "period must exceed")]
    fn flap_period_must_exceed_off() {
        BlackoutSchedule::flapping(
            SimTime::ZERO,
            SimDuration::from_secs(2),
            SimDuration::from_secs(2),
        );
    }
}
