//! Active queue management disciplines for the bottleneck queue.
//!
//! The emulated link defaults to drop-tail, but real-time congestion
//! control behaves very differently under AQM (the GCC literature the
//! paper builds on studies exactly this interplay). [`Codel`] implements
//! the controlled-delay algorithm: when packets have been sitting longer
//! than `target` for at least `interval`, drop, and keep dropping at an
//! increasing rate (`interval / sqrt(count)`) until sojourn falls below
//! target.

use crate::time::{SimDuration, SimTime};

/// Queue discipline of a link's bottleneck queue.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum QueueDiscipline {
    /// Plain drop-tail: accept until the byte limit, then drop arrivals.
    DropTail,
    /// CoDel (controlled delay) on top of the byte limit.
    Codel {
        /// Acceptable standing sojourn time (CoDel default: 5 ms).
        target: SimDuration,
        /// Window over which sojourn must exceed target before dropping
        /// (CoDel default: 100 ms).
        interval: SimDuration,
    },
}

impl QueueDiscipline {
    /// The standard CoDel parameterization (5 ms / 100 ms).
    pub fn codel_default() -> Self {
        QueueDiscipline::Codel {
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
        }
    }
}

/// CoDel drop-decision state, consulted by the link at each enqueue with
/// the sojourn time the arriving packet is about to experience.
#[derive(Debug, Clone)]
pub struct Codel {
    target: SimDuration,
    interval: SimDuration,
    /// Start of the current above-target episode.
    first_above_time: Option<SimTime>,
    /// Whether we are in the dropping state.
    dropping: bool,
    /// Drops in the current dropping episode.
    count: u32,
    /// Next scheduled drop time while dropping.
    drop_next: SimTime,
}

impl Codel {
    /// Creates a CoDel instance.
    pub fn new(target: SimDuration, interval: SimDuration) -> Self {
        Codel {
            target,
            interval,
            first_above_time: None,
            dropping: false,
            count: 0,
            drop_next: SimTime::ZERO,
        }
    }

    /// Control-law spacing: `interval / sqrt(count)`.
    fn control_law(&self, from: SimTime) -> SimTime {
        let spacing = SimDuration::from_micros(
            (self.interval.as_micros() as f64 / (self.count.max(1) as f64).sqrt()) as u64,
        );
        from + spacing
    }

    /// Decides the fate of a packet arriving at `now` whose queue sojourn
    /// would be `sojourn`. Returns `true` to drop.
    pub fn should_drop(&mut self, now: SimTime, sojourn: SimDuration) -> bool {
        // Track how long sojourn has continuously exceeded target.
        let ok_to_drop = if sojourn < self.target {
            self.first_above_time = None;
            false
        } else {
            match self.first_above_time {
                None => {
                    self.first_above_time = Some(now + self.interval);
                    false
                }
                Some(at) => now >= at,
            }
        };

        if self.dropping {
            if !ok_to_drop {
                self.dropping = false;
                return false;
            }
            if now >= self.drop_next {
                self.count += 1;
                self.drop_next = self.control_law(self.drop_next);
                return true;
            }
            false
        } else if ok_to_drop {
            self.dropping = true;
            // Restart near the previous rate if we dropped recently
            // (standard CoDel count carry-over, simplified).
            self.count = if self.count > 2 { self.count - 2 } else { 1 };
            self.drop_next = self.control_law(now);
            // Drop on entry to the dropping state.
            self.count = self.count.max(1);
            true
        } else {
            false
        }
    }

    /// Whether the controller is currently in its dropping state.
    pub fn is_dropping(&self) -> bool {
        self.dropping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codel() -> Codel {
        Codel::new(SimDuration::from_millis(5), SimDuration::from_millis(100))
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn no_drops_below_target() {
        let mut c = codel();
        for i in 0..1_000 {
            assert!(!c.should_drop(t(i), d(2)), "sojourn under target");
        }
        assert!(!c.is_dropping());
    }

    #[test]
    fn transient_burst_tolerated() {
        let mut c = codel();
        // 50 ms of above-target sojourn — shorter than the 100 ms interval.
        for i in 0..50 {
            assert!(!c.should_drop(t(i), d(20)));
        }
        // Sojourn recovers: no drops ever fired.
        for i in 50..200 {
            assert!(!c.should_drop(t(i), d(1)));
        }
    }

    #[test]
    fn persistent_queue_triggers_dropping() {
        let mut c = codel();
        let mut drops = 0;
        for i in 0..1_000 {
            if c.should_drop(t(i), d(50)) {
                drops += 1;
            }
        }
        assert!(drops > 0, "persistent standing queue must drop");
        assert!(c.is_dropping());
    }

    #[test]
    fn drop_rate_escalates() {
        let mut c = codel();
        // Persistently bad queue for 2 s; drops should cluster closer
        // together over time (control law interval/sqrt(count)).
        let mut drop_times = Vec::new();
        for i in 0..2_000 {
            if c.should_drop(t(i), d(50)) {
                drop_times.push(i);
            }
        }
        assert!(drop_times.len() >= 3, "need several drops: {drop_times:?}");
        let first_gap = drop_times[1] - drop_times[0];
        let last_gap = drop_times[drop_times.len() - 1] - drop_times[drop_times.len() - 2];
        assert!(
            last_gap <= first_gap,
            "drop spacing must shrink: first {first_gap} last {last_gap}"
        );
    }

    #[test]
    fn recovery_exits_dropping_state() {
        let mut c = codel();
        for i in 0..500 {
            c.should_drop(t(i), d(50));
        }
        assert!(c.is_dropping());
        assert!(!c.should_drop(t(500), d(1)));
        assert!(!c.is_dropping());
        // And stays calm afterward.
        for i in 501..600 {
            assert!(!c.should_drop(t(i), d(2)));
        }
    }
}
