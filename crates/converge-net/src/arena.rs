//! Generational slab arena for in-flight payloads.
//!
//! The event-loop hot path used to move whole payloads through the binary
//! heap on every sift. [`Arena`] decouples storage from ordering: payloads
//! live in stable slots and the heap orders small `Copy` keys that carry a
//! [`SlotKey`]. A slot is reused after [`remove`], but its generation is
//! bumped, so a stale key can never silently alias a newer occupant.
//!
//! [`remove`]: Arena::remove

/// A generational index into an [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotKey {
    slot: u32,
    generation: u32,
}

#[derive(Debug)]
struct Entry<T> {
    generation: u32,
    value: Option<T>,
}

/// A slab with generational slot reuse.
///
/// Freed slots go on a free list and are handed back LIFO; each reuse bumps
/// the slot's generation so keys from a previous occupancy are rejected.
///
/// # Examples
///
/// ```
/// use converge_net::arena::Arena;
///
/// let mut arena = Arena::new();
/// let key = arena.insert("payload");
/// assert_eq!(arena.get(key), Some(&"payload"));
/// assert_eq!(arena.remove(key), Some("payload"));
/// assert_eq!(arena.remove(key), None); // stale key
/// ```
#[derive(Debug)]
pub struct Arena<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
    high_water: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
            high_water: 0,
        }
    }

    /// Creates an empty arena with room for `capacity` slots.
    pub fn with_capacity(capacity: usize) -> Self {
        Arena {
            entries: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
            high_water: 0,
        }
    }

    /// Stores `value`, returning the key that retrieves it.
    pub fn insert(&mut self, value: T) -> SlotKey {
        self.len += 1;
        self.high_water = self.high_water.max(self.len);
        if let Some(slot) = self.free.pop() {
            let entry = &mut self.entries[slot as usize];
            debug_assert!(entry.value.is_none());
            entry.value = Some(value);
            SlotKey {
                slot,
                generation: entry.generation,
            }
        } else {
            let slot = u32::try_from(self.entries.len()).expect("arena slot overflow");
            self.entries.push(Entry {
                generation: 0,
                value: Some(value),
            });
            SlotKey {
                slot,
                generation: 0,
            }
        }
    }

    /// Borrows the value behind `key`, if the key is still live.
    pub fn get(&self, key: SlotKey) -> Option<&T> {
        let entry = self.entries.get(key.slot as usize)?;
        if entry.generation != key.generation {
            return None;
        }
        entry.value.as_ref()
    }

    /// Removes and returns the value behind `key`, freeing its slot.
    ///
    /// Returns `None` for a stale key (slot already freed or reused).
    pub fn remove(&mut self, key: SlotKey) -> Option<T> {
        let entry = self.entries.get_mut(key.slot as usize)?;
        if entry.generation != key.generation {
            return None;
        }
        let value = entry.value.take()?;
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(key.slot);
        self.len -= 1;
        Some(value)
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no values are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The most values ever live at once over the arena's lifetime.
    ///
    /// Cheap occupancy telemetry: lets a long-running engine confirm that
    /// memory stays proportional to in-flight payloads, not to how many
    /// sessions have ever scheduled through the arena. Survives
    /// [`clear`](Arena::clear) so a reused arena reports its true peak.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Drops all values and recycles every slot.
    ///
    /// Generations advance for occupied slots so keys issued before the
    /// clear cannot resolve afterwards.
    pub fn clear(&mut self) {
        for (slot, entry) in self.entries.iter_mut().enumerate() {
            if entry.value.take().is_some() {
                entry.generation = entry.generation.wrapping_add(1);
                self.free.push(slot as u32);
            }
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut arena = Arena::new();
        let a = arena.insert(10);
        let b = arena.insert(20);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), Some(&10));
        assert_eq!(arena.remove(b), Some(20));
        assert_eq!(arena.remove(a), Some(10));
        assert!(arena.is_empty());
    }

    #[test]
    fn stale_key_rejected_after_reuse() {
        let mut arena = Arena::new();
        let a = arena.insert("first");
        assert_eq!(arena.remove(a), Some("first"));
        let b = arena.insert("second");
        // The slot is reused but the generation moved on.
        assert_eq!(b.slot, a.slot);
        assert_ne!(b.generation, a.generation);
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.remove(a), None);
        assert_eq!(arena.get(b), Some(&"second"));
    }

    #[test]
    fn free_slots_are_recycled() {
        let mut arena = Arena::new();
        let keys: Vec<_> = (0..8).map(|i| arena.insert(i)).collect();
        for key in &keys {
            arena.remove(*key);
        }
        for i in 0..8 {
            arena.insert(100 + i);
        }
        // No new slots were grown for the second wave.
        assert_eq!(arena.entries.len(), 8);
        assert_eq!(arena.len(), 8);
    }

    #[test]
    fn clear_invalidates_outstanding_keys() {
        let mut arena = Arena::new();
        let a = arena.insert(1);
        let b = arena.insert(2);
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.get(b), None);
        let c = arena.insert(3);
        assert_eq!(arena.get(c), Some(&3));
    }
}
