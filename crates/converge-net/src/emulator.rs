//! Multipath network emulator.
//!
//! [`NetworkEmulator`] wires a set of [`Path`]s between two endpoints and
//! stores in-flight payloads so callers work in terms of "send payload on
//! path N, poll for arrivals" rather than raw delivery times. Payloads are
//! generic; the emulator never inspects them.

use crate::event::EventQueue;
use crate::link::Transmit;
use crate::path::{Direction, Path, PathId};
use crate::time::SimTime;

/// A payload delivered by the emulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<P> {
    /// Path the payload travelled on.
    pub path: PathId,
    /// Direction it travelled.
    pub direction: Direction,
    /// Instant it arrived at the far end.
    pub at: SimTime,
    /// Instant it was sent.
    pub sent_at: SimTime,
    /// The payload itself.
    pub payload: P,
}

/// Fate of a send as reported to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Accepted; it will appear in a later [`NetworkEmulator::poll`].
    Enqueued,
    /// Dropped by the drop-tail queue.
    QueueDrop,
    /// Lost stochastically in flight.
    RandomLoss,
    /// Dropped because the link was inside an impairment blackout window.
    Blackout,
}

impl SendOutcome {
    /// Whether the packet was lost (either way).
    pub fn is_lost(self) -> bool {
        !matches!(self, SendOutcome::Enqueued)
    }
}

struct InFlight<P> {
    path: PathId,
    direction: Direction,
    sent_at: SimTime,
    payload: P,
}

/// A multipath emulator between two endpoints.
pub struct NetworkEmulator<P> {
    paths: Vec<Path>,
    queue: EventQueue<InFlight<P>>,
}

impl<P> NetworkEmulator<P> {
    /// Creates an emulator over the given paths.
    ///
    /// # Panics
    /// Panics if paths have duplicate IDs.
    pub fn new(paths: Vec<Path>) -> Self {
        for (i, a) in paths.iter().enumerate() {
            for b in &paths[i + 1..] {
                assert!(a.id() != b.id(), "duplicate path id {}", a.id());
            }
        }
        NetworkEmulator {
            paths,
            queue: EventQueue::new(),
        }
    }

    /// Number of configured paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// IDs of all configured paths.
    pub fn path_ids(&self) -> Vec<PathId> {
        self.paths.iter().map(|p| p.id()).collect()
    }

    /// Borrows a path by ID.
    pub fn path(&self, id: PathId) -> Option<&Path> {
        self.paths.iter().find(|p| p.id() == id)
    }

    /// Mutably borrows a path by ID.
    pub fn path_mut(&mut self, id: PathId) -> Option<&mut Path> {
        self.paths.iter_mut().find(|p| p.id() == id)
    }

    /// Sends `payload` of `bytes` over `path` in `direction` at `now`.
    ///
    /// On loss the payload is returned to the caller inside the outcome so
    /// tests can assert on what was lost. If the link's impairment stage
    /// duplicates the packet, a clone of the payload is scheduled for the
    /// copy's (later) arrival time.
    pub fn send(
        &mut self,
        path: PathId,
        direction: Direction,
        now: SimTime,
        bytes: usize,
        payload: P,
    ) -> (SendOutcome, Option<P>)
    where
        P: Clone,
    {
        let Some(p) = self.paths.iter_mut().find(|p| p.id() == path) else {
            panic!("send on unknown {path}");
        };
        let offer = p.offer(direction, now, bytes);
        match offer.fate {
            Transmit::Delivered(at) => {
                let copy = offer.duplicate.map(|copy_at| {
                    (
                        copy_at,
                        InFlight {
                            path,
                            direction,
                            sent_at: now,
                            payload: payload.clone(),
                        },
                    )
                });
                // Schedule the original before the copy so the FIFO
                // tie-break keeps the original first on equal times.
                self.queue.schedule(
                    at,
                    InFlight {
                        path,
                        direction,
                        sent_at: now,
                        payload,
                    },
                );
                if let Some((copy_at, dup)) = copy {
                    self.queue.schedule(copy_at, dup);
                }
                (SendOutcome::Enqueued, None)
            }
            Transmit::QueueDrop => (SendOutcome::QueueDrop, Some(payload)),
            Transmit::RandomLoss => (SendOutcome::RandomLoss, Some(payload)),
            Transmit::Blackout => (SendOutcome::Blackout, Some(payload)),
        }
    }

    /// The arrival time of the next pending delivery, if any.
    pub fn next_arrival(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops every delivery due at or before `now`, in arrival order.
    pub fn poll(&mut self, now: SimTime) -> Vec<Delivery<P>> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// Appends every delivery due at or before `now` to `out`, in arrival
    /// order. Allocation-free once `out` has warmed up; the event loop
    /// clears and reuses one buffer across iterations.
    pub fn poll_into(&mut self, now: SimTime, out: &mut Vec<Delivery<P>>) {
        while let Some((at, f)) = self.queue.pop_due(now) {
            out.push(Delivery {
                path: f.path,
                direction: f.direction,
                at,
                sent_at: f.sent_at,
                payload: f.payload,
            });
        }
    }

    /// Whether any payloads remain in flight.
    pub fn idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::time::SimDuration;
    use crate::trace::RateTrace;

    fn two_path_emu() -> NetworkEmulator<u32> {
        let fast = LinkConfig {
            rate: RateTrace::constant(10_000_000),
            propagation: SimDuration::from_millis(10),
            queue_capacity_bytes: 1_000_000,
            loss: crate::loss::LossModel::None,
            jitter: SimDuration::ZERO,
            discipline: crate::aqm::QueueDiscipline::DropTail,
            seed: 1,
            impairment: crate::impairment::ImpairmentConfig::default(),
            drive: None,
        };
        let slow = LinkConfig {
            rate: RateTrace::constant(1_000_000),
            propagation: SimDuration::from_millis(50),
            queue_capacity_bytes: 1_000_000,
            loss: crate::loss::LossModel::None,
            jitter: SimDuration::ZERO,
            discipline: crate::aqm::QueueDiscipline::DropTail,
            seed: 2,
            impairment: crate::impairment::ImpairmentConfig::default(),
            drive: None,
        };
        NetworkEmulator::new(vec![
            Path::symmetric(PathId(0), fast),
            Path::symmetric(PathId(1), slow),
        ])
    }

    #[test]
    fn delivers_in_arrival_order_across_paths() {
        let mut emu = two_path_emu();
        // Slow path first chronologically, but fast path arrives earlier.
        emu.send(PathId(1), Direction::Forward, SimTime::ZERO, 1250, 11);
        emu.send(PathId(0), Direction::Forward, SimTime::ZERO, 1250, 22);
        let all = emu.poll(SimTime::from_secs(1));
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].payload, 22); // fast: 1ms + 10ms = 11ms
        assert_eq!(all[1].payload, 11); // slow: 10ms + 50ms = 60ms
        assert_eq!(all[0].at.as_millis(), 11);
        assert_eq!(all[1].at.as_millis(), 60);
    }

    #[test]
    fn poll_only_returns_due_deliveries() {
        let mut emu = two_path_emu();
        emu.send(PathId(0), Direction::Forward, SimTime::ZERO, 1250, 1);
        assert!(emu.poll(SimTime::from_millis(5)).is_empty());
        assert_eq!(emu.poll(SimTime::from_millis(11)).len(), 1);
        assert!(emu.idle());
    }

    #[test]
    fn lost_payload_returned_to_caller() {
        let cfg = LinkConfig {
            rate: RateTrace::constant(1_000_000),
            propagation: SimDuration::ZERO,
            queue_capacity_bytes: 1_000,
            loss: crate::loss::LossModel::None,
            jitter: SimDuration::ZERO,
            discipline: crate::aqm::QueueDiscipline::DropTail,
            seed: 1,
            impairment: crate::impairment::ImpairmentConfig::default(),
            drive: None,
        };
        let mut emu: NetworkEmulator<&str> =
            NetworkEmulator::new(vec![Path::symmetric(PathId(0), cfg)]);
        emu.send(PathId(0), Direction::Forward, SimTime::ZERO, 1_000, "kept");
        let (outcome, returned) = emu.send(
            PathId(0),
            Direction::Forward,
            SimTime::ZERO,
            1_000,
            "dropped",
        );
        assert_eq!(outcome, SendOutcome::QueueDrop);
        assert_eq!(returned, Some("dropped"));
        assert!(outcome.is_lost());
    }

    #[test]
    fn reverse_direction_flows_independently() {
        let mut emu = two_path_emu();
        emu.send(PathId(0), Direction::Reverse, SimTime::ZERO, 100, 9);
        let all = emu.poll(SimTime::from_secs(1));
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].direction, Direction::Reverse);
        assert_eq!(all[0].sent_at, SimTime::ZERO);
    }

    #[test]
    fn next_arrival_peeks() {
        let mut emu = two_path_emu();
        assert_eq!(emu.next_arrival(), None);
        emu.send(PathId(0), Direction::Forward, SimTime::ZERO, 1250, 1);
        assert_eq!(emu.next_arrival().unwrap().as_millis(), 11);
    }

    #[test]
    #[should_panic(expected = "duplicate path id")]
    fn duplicate_ids_rejected() {
        let cfg = LinkConfig::default();
        let _ = NetworkEmulator::<()>::new(vec![
            Path::symmetric(PathId(0), cfg.clone()),
            Path::symmetric(PathId(0), cfg),
        ]);
    }

    #[test]
    #[should_panic(expected = "unknown path")]
    fn unknown_path_panics() {
        let mut emu = two_path_emu();
        emu.send(PathId(9), Direction::Forward, SimTime::ZERO, 1, 0);
    }

    #[test]
    fn blackout_returns_payload_to_caller() {
        use crate::impairment::{BlackoutSchedule, ImpairmentConfig};
        let cfg = LinkConfig {
            impairment: ImpairmentConfig::blackout(BlackoutSchedule::single(
                SimTime::ZERO,
                SimDuration::from_secs(1),
            )),
            ..LinkConfig::default()
        };
        let mut emu: NetworkEmulator<&str> =
            NetworkEmulator::new(vec![Path::new(PathId(0), cfg, LinkConfig::default())]);
        let (outcome, returned) =
            emu.send(PathId(0), Direction::Forward, SimTime::ZERO, 100, "dark");
        assert_eq!(outcome, SendOutcome::Blackout);
        assert_eq!(returned, Some("dark"));
        assert!(outcome.is_lost());
        // The reverse direction is unimpaired and still flows.
        let (rev, _) = emu.send(PathId(0), Direction::Reverse, SimTime::ZERO, 100, "fb");
        assert_eq!(rev, SendOutcome::Enqueued);
    }

    #[test]
    fn duplicated_payloads_arrive_twice() {
        use crate::impairment::ImpairmentConfig;
        let cfg = LinkConfig {
            impairment: ImpairmentConfig::duplication(1.0, SimDuration::from_millis(3)),
            ..LinkConfig::default()
        };
        let mut emu: NetworkEmulator<u32> =
            NetworkEmulator::new(vec![Path::new(PathId(0), cfg, LinkConfig::default())]);
        let (outcome, _) = emu.send(PathId(0), Direction::Forward, SimTime::ZERO, 100, 7);
        assert_eq!(outcome, SendOutcome::Enqueued);
        let all = emu.poll(SimTime::from_secs(1));
        assert_eq!(all.len(), 2, "copy must arrive as a second delivery");
        assert_eq!(all[0].payload, 7);
        assert_eq!(all[1].payload, 7);
        assert!(all[0].at <= all[1].at, "original first");
    }
}
