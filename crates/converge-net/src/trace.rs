//! Time-varying bandwidth traces.
//!
//! The paper replays cellular bandwidth traces collected while stationary,
//! walking, and driving (its Figs. 20–22). We do not have those captures, so
//! this module provides (a) a piecewise-constant trace container with CSV
//! load/save, and (b) seeded synthetic generators calibrated to the dynamics
//! those figures describe: a stable high-rate WiFi-like trace, a mildly
//! varying walking trace with short coverage dips, and a violently varying
//! driving trace with deep coverage gaps.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::{SimDuration, SimTime};

/// A piecewise-constant bandwidth trace: the rate at segment `i` holds from
/// `i * step` until `(i + 1) * step`. After the last segment the trace wraps
/// around, so any call duration can be simulated from a finite trace.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RateTrace {
    /// Duration of each segment.
    step: SimDuration,
    /// Rate per segment, bits per second.
    rates_bps: Vec<u64>,
}

impl RateTrace {
    /// Builds a trace from explicit per-segment rates.
    ///
    /// # Panics
    /// Panics if `rates_bps` is empty or `step` is zero.
    pub fn new(step: SimDuration, rates_bps: Vec<u64>) -> Self {
        assert!(
            !rates_bps.is_empty(),
            "trace must have at least one segment"
        );
        assert!(step > SimDuration::ZERO, "trace step must be positive");
        RateTrace { step, rates_bps }
    }

    /// A trace with one constant rate.
    pub fn constant(bits_per_sec: u64) -> Self {
        RateTrace::new(SimDuration::from_secs(1), vec![bits_per_sec])
    }

    /// Segment duration.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// Per-segment rates in bits per second.
    pub fn rates(&self) -> &[u64] {
        &self.rates_bps
    }

    /// Total duration before the trace wraps.
    pub fn span(&self) -> SimDuration {
        self.step * self.rates_bps.len() as u64
    }

    /// The rate in effect at `at`, wrapping past the end of the trace.
    pub fn rate_at(&self, at: SimTime) -> u64 {
        let idx = (at.as_micros() / self.step.as_micros()) as usize % self.rates_bps.len();
        self.rates_bps[idx]
    }

    /// Simulation time remaining until the rate may next change.
    pub fn until_next_change(&self, at: SimTime) -> SimDuration {
        let step = self.step.as_micros();
        let into = at.as_micros() % step;
        SimDuration::from_micros(step - into)
    }

    /// Mean rate over one full trace span.
    pub fn mean_rate(&self) -> u64 {
        let sum: u128 = self.rates_bps.iter().map(|&r| r as u128).sum();
        (sum / self.rates_bps.len() as u128) as u64
    }

    /// Serializes as `seconds,bits_per_sec` CSV lines.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (i, r) in self.rates_bps.iter().enumerate() {
            let t = self.step.as_secs_f64() * i as f64;
            out.push_str(&format!("{t:.3},{r}\n"));
        }
        out
    }

    /// Parses the CSV produced by [`RateTrace::to_csv`]. Requires at least
    /// two rows with a uniform time step (or one row, treated as constant).
    pub fn from_csv(text: &str) -> Result<Self, TraceParseError> {
        let mut times = Vec::new();
        let mut rates = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (t, r) = line
                .split_once(',')
                .ok_or(TraceParseError::BadLine(lineno + 1))?;
            let t: f64 = t
                .trim()
                .parse()
                .map_err(|_| TraceParseError::BadLine(lineno + 1))?;
            // `f64::parse` happily accepts "NaN"/"inf"; a timestamp that is
            // not a finite non-negative number is a malformed row, reported
            // with its 1-based line number like any other parse failure.
            if !t.is_finite() || t < 0.0 {
                return Err(TraceParseError::BadLine(lineno + 1));
            }
            let r: u64 = r
                .trim()
                .parse()
                .map_err(|_| TraceParseError::BadLine(lineno + 1))?;
            times.push((t, lineno + 1));
            rates.push(r);
        }
        if rates.is_empty() {
            return Err(TraceParseError::Empty);
        }
        let step = if times.len() >= 2 {
            let dt = times[1].0 - times[0].0;
            if dt <= 0.0 {
                return Err(TraceParseError::NonUniformStep(times[1].1));
            }
            for w in times.windows(2) {
                if ((w[1].0 - w[0].0) - dt).abs() > 1e-6 {
                    return Err(TraceParseError::NonUniformStep(w[1].1));
                }
            }
            SimDuration::from_secs_f64(dt)
        } else {
            SimDuration::from_secs(1)
        };
        Ok(RateTrace::new(step, rates))
    }
}

/// Errors from [`RateTrace::from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// The file had no data rows.
    Empty,
    /// The row at this 1-based line was not `seconds,bits_per_sec` with a
    /// finite non-negative timestamp.
    BadLine(usize),
    /// The row at this 1-based line broke the uniform time spacing
    /// established by the first two rows.
    NonUniformStep(usize),
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::Empty => write!(f, "trace file has no data rows"),
            TraceParseError::BadLine(n) => write!(f, "malformed trace row at line {n}"),
            TraceParseError::NonUniformStep(n) => {
                write!(f, "trace row at line {n} is not uniformly spaced")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

/// Mobility scenario of a synthetic trace, matching the paper's appendix D.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Scenario {
    /// Fig. 20: stable rates, rare shallow dips.
    Stationary,
    /// Fig. 21: moderate variation, occasional dips below the required rate.
    Walking,
    /// Fig. 22: heavy variation with deep coverage gaps.
    Driving,
}

/// Network archetype being emulated by a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Carrier {
    /// Home/office WiFi: high and stable when in range.
    Wifi,
    /// "T-Mobile"-like mid-band cellular.
    CellularA,
    /// "Verizon"-like cellular with different gap timing.
    CellularB,
}

/// Generates a synthetic trace for a carrier in a scenario.
///
/// Traces are produced by a mean-reverting random walk (AR(1)) around a
/// carrier-specific base rate, with scenario-dependent variance, plus
/// randomly placed coverage gaps whose depth and frequency grow with
/// mobility. The seed fully determines the trace.
pub fn synthesize(
    scenario: Scenario,
    carrier: Carrier,
    duration: SimDuration,
    seed: u64,
) -> RateTrace {
    let step = SimDuration::from_millis(500);
    let n = (duration.as_micros() / step.as_micros()).max(1) as usize;
    let mut rng = SmallRng::seed_from_u64(seed ^ hash_params(scenario, carrier));

    let (base_mbps, sigma_mbps, gap_per_min, gap_len_s, gap_floor_mbps): (f64, f64, f64, f64, f64) =
        match (scenario, carrier) {
            (Scenario::Stationary, Carrier::Wifi) => (40.0, 2.0, 0.3, 3.0, 2.0),
            (Scenario::Stationary, Carrier::CellularA) => (12.0, 2.0, 0.5, 2.0, 4.0),
            (Scenario::Stationary, Carrier::CellularB) => (14.0, 2.0, 0.5, 2.0, 4.0),
            (Scenario::Walking, Carrier::Wifi) => (30.0, 5.0, 1.5, 6.0, 0.5),
            (Scenario::Walking, Carrier::CellularA) => (15.0, 4.0, 1.0, 4.0, 1.0),
            (Scenario::Walking, Carrier::CellularB) => (16.0, 4.0, 1.0, 4.0, 1.0),
            (Scenario::Driving, Carrier::Wifi) => (5.0, 3.0, 3.0, 6.0, 0.5),
            (Scenario::Driving, Carrier::CellularA) => (14.0, 6.0, 1.5, 5.0, 1.5),
            (Scenario::Driving, Carrier::CellularB) => (12.0, 6.0, 1.5, 5.0, 1.5),
        };

    // AR(1) around base with reversion strength phi.
    let phi = 0.85f64;
    let mut level = base_mbps;
    let mut rates = Vec::with_capacity(n);

    // Pre-place coverage gaps.
    let minutes = duration.as_secs_f64() / 60.0;
    let n_gaps = poisson_like(&mut rng, gap_per_min * minutes);
    let gap_len_steps = ((gap_len_s / step.as_secs_f64()).round() as usize).max(1);
    let mut gap_mask = vec![false; n];
    for _ in 0..n_gaps {
        let start = rng.gen_range(0..n);
        let len = rng.gen_range(gap_len_steps / 2..=gap_len_steps.max(1) * 2);
        for slot in gap_mask.iter_mut().skip(start).take(len) {
            *slot = true;
        }
    }

    for &in_gap in gap_mask.iter().take(n) {
        let noise: f64 = rng.gen_range(-1.0..1.0) * sigma_mbps;
        level = phi * level + (1.0 - phi) * base_mbps + noise * (1.0 - phi).sqrt();
        let mbps = if in_gap {
            // Inside a coverage gap the achievable rate collapses toward the
            // floor with some residual jitter.
            (gap_floor_mbps * rng.gen_range(0.2..1.0)).max(0.0)
        } else {
            level.max(0.5)
        };
        rates.push((mbps * 1e6) as u64);
    }

    RateTrace::new(step, rates)
}

fn hash_params(scenario: Scenario, carrier: Carrier) -> u64 {
    let s = match scenario {
        Scenario::Stationary => 1u64,
        Scenario::Walking => 2,
        Scenario::Driving => 3,
    };
    let c = match carrier {
        Carrier::Wifi => 10u64,
        Carrier::CellularA => 20,
        Carrier::CellularB => 30,
    };
    s.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(c)
}

/// Draws an approximately Poisson-distributed count with the given mean,
/// using the inversion method capped for sanity.
fn poisson_like(rng: &mut SmallRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_always_same_rate() {
        let t = RateTrace::constant(10_000_000);
        assert_eq!(t.rate_at(SimTime::ZERO), 10_000_000);
        assert_eq!(t.rate_at(SimTime::from_secs(1000)), 10_000_000);
        assert_eq!(t.mean_rate(), 10_000_000);
    }

    #[test]
    fn rate_at_indexes_segments_and_wraps() {
        let t = RateTrace::new(SimDuration::from_secs(1), vec![1, 2, 3]);
        assert_eq!(t.rate_at(SimTime::from_millis(0)), 1);
        assert_eq!(t.rate_at(SimTime::from_millis(999)), 1);
        assert_eq!(t.rate_at(SimTime::from_millis(1000)), 2);
        assert_eq!(t.rate_at(SimTime::from_millis(2500)), 3);
        assert_eq!(t.rate_at(SimTime::from_millis(3000)), 1); // wrap
    }

    #[test]
    fn until_next_change_counts_down() {
        let t = RateTrace::new(SimDuration::from_millis(500), vec![1, 2]);
        assert_eq!(
            t.until_next_change(SimTime::from_millis(100)).as_millis(),
            400
        );
        assert_eq!(
            t.until_next_change(SimTime::from_millis(500)).as_millis(),
            500
        );
    }

    #[test]
    fn csv_roundtrip() {
        let t = RateTrace::new(SimDuration::from_millis(500), vec![5_000_000, 7_000_000, 0]);
        let csv = t.to_csv();
        let back = RateTrace::from_csv(&csv).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert_eq!(RateTrace::from_csv(""), Err(TraceParseError::Empty));
        assert_eq!(
            RateTrace::from_csv("a,b\n"),
            Err(TraceParseError::BadLine(1))
        );
        assert_eq!(
            RateTrace::from_csv("0.0,5\n1.0,5\n3.0,5\n"),
            Err(TraceParseError::NonUniformStep(3))
        );
    }

    #[test]
    fn csv_empty_variants() {
        // Whitespace and comments alone are still "no data rows".
        assert_eq!(RateTrace::from_csv("\n\n"), Err(TraceParseError::Empty));
        assert_eq!(
            RateTrace::from_csv("# only a header\n  \n"),
            Err(TraceParseError::Empty)
        );
    }

    #[test]
    fn csv_malformed_rows_report_their_file_line() {
        // The offending line number counts comments and blanks (1-based).
        assert_eq!(
            RateTrace::from_csv("# header\n0.0,100\nbogus\n"),
            Err(TraceParseError::BadLine(3))
        );
        assert_eq!(
            RateTrace::from_csv("0.0,100\n0.5,-3\n"),
            Err(TraceParseError::BadLine(2))
        );
        assert_eq!(
            RateTrace::from_csv("0.0,100\n0.5,1.5\n"),
            Err(TraceParseError::BadLine(2))
        );
        assert_eq!(
            RateTrace::from_csv("0.0,100,extra\n"),
            Err(TraceParseError::BadLine(1))
        );
    }

    #[test]
    fn csv_rejects_nan_and_inf_timestamps() {
        // f64::parse accepts these spellings; the trace parser must not.
        for bad in ["NaN,100\n", "inf,100\n", "-inf,100\n", "-1.0,100\n"] {
            assert_eq!(
                RateTrace::from_csv(bad),
                Err(TraceParseError::BadLine(1)),
                "{bad:?}"
            );
        }
        assert_eq!(
            RateTrace::from_csv("0.0,100\nNaN,100\n"),
            Err(TraceParseError::BadLine(2))
        );
    }

    #[test]
    fn csv_non_uniform_step_names_the_offending_row() {
        // Backwards time shows up on the second row...
        assert_eq!(
            RateTrace::from_csv("1.0,5\n0.5,5\n"),
            Err(TraceParseError::NonUniformStep(2))
        );
        // ...while a late spacing break names the row that broke it, even
        // with comment lines shifting the file line numbers.
        assert_eq!(
            RateTrace::from_csv("# gen\n0.0,5\n0.5,5\n1.0,5\n1.7,5\n"),
            Err(TraceParseError::NonUniformStep(5))
        );
    }

    #[test]
    fn csv_skips_comments_and_blank_lines() {
        let t = RateTrace::from_csv("# header\n\n0.0,100\n0.5,200\n").unwrap();
        assert_eq!(t.rates(), &[100, 200]);
        assert_eq!(t.step().as_millis(), 500);
    }

    #[test]
    fn synthetic_traces_are_deterministic() {
        let a = synthesize(
            Scenario::Driving,
            Carrier::CellularA,
            SimDuration::from_secs(60),
            1,
        );
        let b = synthesize(
            Scenario::Driving,
            Carrier::CellularA,
            SimDuration::from_secs(60),
            1,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthesize(
            Scenario::Driving,
            Carrier::CellularA,
            SimDuration::from_secs(60),
            1,
        );
        let b = synthesize(
            Scenario::Driving,
            Carrier::CellularA,
            SimDuration::from_secs(60),
            2,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn driving_is_more_variable_than_stationary() {
        let dur = SimDuration::from_secs(180);
        let stat = synthesize(Scenario::Stationary, Carrier::CellularA, dur, 3);
        let driv = synthesize(Scenario::Driving, Carrier::CellularA, dur, 3);
        let cv = |t: &RateTrace| {
            let mean = t.mean_rate() as f64;
            let var: f64 = t
                .rates()
                .iter()
                .map(|&r| (r as f64 - mean).powi(2))
                .sum::<f64>()
                / t.rates().len() as f64;
            var.sqrt() / mean
        };
        assert!(
            cv(&driv) > cv(&stat) * 1.5,
            "driving CV {} vs stationary CV {}",
            cv(&driv),
            cv(&stat)
        );
    }

    #[test]
    fn driving_has_deep_gaps() {
        let t = synthesize(
            Scenario::Driving,
            Carrier::CellularA,
            SimDuration::from_secs(180),
            5,
        );
        let min = *t.rates().iter().min().unwrap();
        assert!(min < 1_000_000, "expected sub-1Mbps gaps, min was {min}");
    }

    #[test]
    fn stationary_wifi_stays_high() {
        let t = synthesize(
            Scenario::Stationary,
            Carrier::Wifi,
            SimDuration::from_secs(180),
            7,
        );
        assert!(t.mean_rate() > 25_000_000, "mean {}", t.mean_rate());
    }

    #[test]
    fn trace_span() {
        let t = RateTrace::new(SimDuration::from_millis(500), vec![0; 10]);
        assert_eq!(t.span().as_secs_f64(), 5.0);
    }
}
