//! Bidirectional network paths.
//!
//! A [`Path`] is a pair of [`Link`]s — forward (sender→receiver) and reverse
//! (receiver→sender, used for RTCP feedback). Paths are the unit over which
//! the Converge scheduler makes decisions; each carries a stable [`PathId`].

use crate::link::{Link, LinkConfig, LinkStats, Offer, Transmit};
use crate::time::{SimDuration, SimTime};

/// Identifier of a network path within a session (matches the path ID field
/// of the paper's RTP/RTCP multipath header extensions).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct PathId(pub u8);

impl std::fmt::Display for PathId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "path{}", self.0)
    }
}

/// Direction of travel over a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Sender → receiver (media).
    Forward,
    /// Receiver → sender (feedback).
    Reverse,
}

/// A bidirectional emulated path.
#[derive(Debug, Clone)]
pub struct Path {
    id: PathId,
    forward: Link,
    reverse: Link,
}

impl Path {
    /// Creates a path from two link configurations.
    pub fn new(id: PathId, forward: LinkConfig, reverse: LinkConfig) -> Self {
        Path {
            id,
            forward: Link::new(forward),
            reverse: Link::new(reverse),
        }
    }

    /// Creates a path whose reverse direction mirrors the forward
    /// configuration but with an effectively uncongested queue — feedback
    /// traffic is tiny relative to media.
    pub fn symmetric(id: PathId, forward: LinkConfig) -> Self {
        let mut reverse = forward.clone();
        reverse.queue_capacity_bytes = reverse.queue_capacity_bytes.max(1_000_000);
        reverse.seed = forward.seed.wrapping_add(0x5EED);
        Path::new(id, forward, reverse)
    }

    /// This path's identifier.
    pub fn id(&self) -> PathId {
        self.id
    }

    /// Borrows the link for a direction.
    pub fn link(&self, dir: Direction) -> &Link {
        match dir {
            Direction::Forward => &self.forward,
            Direction::Reverse => &self.reverse,
        }
    }

    /// Mutably borrows the link for a direction.
    pub fn link_mut(&mut self, dir: Direction) -> &mut Link {
        match dir {
            Direction::Forward => &mut self.forward,
            Direction::Reverse => &mut self.reverse,
        }
    }

    /// Offers a packet to one direction of the path.
    pub fn transmit(&mut self, dir: Direction, now: SimTime, bytes: usize) -> Transmit {
        self.link_mut(dir).transmit(now, bytes)
    }

    /// Offers a packet to one direction of the path, including any
    /// impairment-injected duplicate.
    pub fn offer(&mut self, dir: Direction, now: SimTime, bytes: usize) -> Offer {
        self.link_mut(dir).offer(now, bytes)
    }

    /// Ground-truth round-trip propagation delay (no queuing), useful for
    /// test assertions.
    pub fn base_rtt(&self) -> SimDuration {
        self.forward.propagation() + self.reverse.propagation()
    }

    /// Stats for one direction.
    pub fn stats(&self, dir: Direction) -> LinkStats {
        self.link(dir).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RateTrace;

    fn cfg(rate_bps: u64, prop_ms: u64) -> LinkConfig {
        LinkConfig {
            rate: RateTrace::constant(rate_bps),
            propagation: SimDuration::from_millis(prop_ms),
            queue_capacity_bytes: 1_000_000,
            loss: crate::loss::LossModel::None,
            jitter: SimDuration::ZERO,
            discipline: crate::aqm::QueueDiscipline::DropTail,
            seed: 9,
            impairment: crate::impairment::ImpairmentConfig::default(),
            drive: None,
        }
    }

    #[test]
    fn directions_are_independent() {
        let mut p = Path::new(PathId(0), cfg(10_000_000, 10), cfg(1_000_000, 10));
        let f = p.transmit(Direction::Forward, SimTime::ZERO, 1250);
        let r = p.transmit(Direction::Reverse, SimTime::ZERO, 1250);
        // Forward: 1 ms serialize + 10 ms prop; reverse: 10 ms serialize + 10 ms prop.
        assert_eq!(f, Transmit::Delivered(SimTime::from_millis(11)));
        assert_eq!(r, Transmit::Delivered(SimTime::from_millis(20)));
    }

    #[test]
    fn base_rtt_sums_propagation() {
        let p = Path::new(PathId(1), cfg(1, 30), cfg(1, 20));
        assert_eq!(p.base_rtt().as_millis(), 50);
    }

    #[test]
    fn symmetric_path_keeps_forward_rate() {
        let mut p = Path::symmetric(PathId(2), cfg(10_000_000, 5));
        assert_eq!(
            p.link(Direction::Reverse).rate_at(SimTime::ZERO),
            10_000_000
        );
        // Different seeds on each direction keep loss draws independent.
        let f = p.link_mut(Direction::Forward).config().seed;
        let r = p.link_mut(Direction::Reverse).config().seed;
        assert_ne!(f, r);
    }

    #[test]
    fn path_id_displays() {
        assert_eq!(PathId(3).to_string(), "path3");
    }
}
