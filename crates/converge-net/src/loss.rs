//! Packet loss models for emulated links.
//!
//! Two models cover the evaluation's needs: independent (Bernoulli) loss for
//! the controlled FEC sweeps (§6.2 of the paper uses fixed 0–10 % loss), and
//! a two-state Gilbert–Elliott model for bursty cellular-like loss in the
//! mobility scenarios.

use rand::rngs::SmallRng;
use rand::Rng;

/// A stochastic packet-loss process.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LossModel {
    /// No loss.
    None,
    /// Each packet is lost independently with probability `p` (0..=1).
    Bernoulli {
        /// Per-packet loss probability.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst-loss model.
    ///
    /// The chain moves good→bad with `p_gb` and bad→good with `p_bg` per
    /// packet; packets drop with `loss_good` / `loss_bad` in the respective
    /// states.
    GilbertElliott {
        /// Transition probability good → bad, per packet.
        p_gb: f64,
        /// Transition probability bad → good, per packet.
        p_bg: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Convenience constructor: independent loss at `percent` (e.g. `5.0` for
    /// 5 %). Values are clamped to `[0, 100]`.
    pub fn bernoulli_percent(percent: f64) -> Self {
        LossModel::Bernoulli {
            p: (percent / 100.0).clamp(0.0, 1.0),
        }
    }

    /// A bursty model tuned so the long-run average loss is roughly
    /// `percent`, with bursts a few packets long — a reasonable stand-in for
    /// cellular handover loss.
    pub fn bursty_percent(percent: f64) -> Self {
        let avg = (percent / 100.0).clamp(0.0, 1.0);
        // Bad state drops half its packets; dwell ~8 packets in bad state.
        let loss_bad = 0.5;
        let p_bg = 1.0 / 8.0;
        // Stationary fraction of time in bad state needed for target average:
        // avg = pi_bad * loss_bad  =>  pi_bad = avg / loss_bad
        let pi_bad = (avg / loss_bad).min(0.9);
        // pi_bad = p_gb / (p_gb + p_bg)  =>  p_gb = pi_bad * p_bg / (1 - pi_bad)
        let p_gb = pi_bad * p_bg / (1.0 - pi_bad);
        LossModel::GilbertElliott {
            p_gb,
            p_bg,
            loss_good: 0.0,
            loss_bad,
        }
    }

    /// Long-run expected loss fraction of the model.
    pub fn mean_loss(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => p,
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => {
                if p_gb + p_bg == 0.0 {
                    loss_good
                } else {
                    let pi_bad = p_gb / (p_gb + p_bg);
                    (1.0 - pi_bad) * loss_good + pi_bad * loss_bad
                }
            }
        }
    }
}

/// The running state of a loss process bound to one link direction.
#[derive(Debug, Clone)]
pub struct LossProcess {
    model: LossModel,
    in_bad_state: bool,
}

impl LossProcess {
    /// Creates a process in the good state.
    pub fn new(model: LossModel) -> Self {
        LossProcess {
            model,
            in_bad_state: false,
        }
    }

    /// The model this process draws from.
    pub fn model(&self) -> &LossModel {
        &self.model
    }

    /// Replaces the model, keeping burst state where meaningful.
    pub fn set_model(&mut self, model: LossModel) {
        if !matches!(model, LossModel::GilbertElliott { .. }) {
            self.in_bad_state = false;
        }
        self.model = model;
    }

    /// Draws the fate of one packet: `true` means the packet is lost.
    pub fn should_drop(&mut self, rng: &mut SmallRng) -> bool {
        match self.model {
            LossModel::None => false,
            LossModel::Bernoulli { p } => p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0)),
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => {
                // Transition first, then sample loss in the new state.
                if self.in_bad_state {
                    if rng.gen_bool(p_bg.clamp(0.0, 1.0)) {
                        self.in_bad_state = false;
                    }
                } else if p_gb > 0.0 && rng.gen_bool(p_gb.clamp(0.0, 1.0)) {
                    self.in_bad_state = true;
                }
                let p = if self.in_bad_state {
                    loss_bad
                } else {
                    loss_good
                };
                p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn measure(model: LossModel, n: usize) -> f64 {
        let mut p = LossProcess::new(model);
        let mut r = rng();
        let lost = (0..n).filter(|_| p.should_drop(&mut r)).count();
        lost as f64 / n as f64
    }

    #[test]
    fn none_never_drops() {
        assert_eq!(measure(LossModel::None, 10_000), 0.0);
    }

    #[test]
    fn bernoulli_matches_rate() {
        let rate = measure(LossModel::bernoulli_percent(5.0), 200_000);
        assert!((rate - 0.05).abs() < 0.005, "measured {rate}");
    }

    #[test]
    fn bernoulli_zero_and_full() {
        assert_eq!(measure(LossModel::bernoulli_percent(0.0), 1_000), 0.0);
        assert_eq!(measure(LossModel::bernoulli_percent(100.0), 1_000), 1.0);
    }

    #[test]
    fn bursty_long_run_average_close_to_target() {
        let rate = measure(LossModel::bursty_percent(5.0), 400_000);
        assert!((rate - 0.05).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn bursty_produces_bursts() {
        // Consecutive losses should appear far more often than under
        // independent loss at the same average rate.
        let mut p = LossProcess::new(LossModel::bursty_percent(5.0));
        let mut r = rng();
        let draws: Vec<bool> = (0..200_000).map(|_| p.should_drop(&mut r)).collect();
        let pairs = draws.windows(2).filter(|w| w[0] && w[1]).count();
        let losses = draws.iter().filter(|&&l| l).count().max(1);
        let p_loss_after_loss = pairs as f64 / losses as f64;
        assert!(
            p_loss_after_loss > 0.2,
            "burstiness too low: {p_loss_after_loss}"
        );
    }

    #[test]
    fn mean_loss_formula() {
        assert_eq!(LossModel::None.mean_loss(), 0.0);
        assert!((LossModel::bernoulli_percent(7.0).mean_loss() - 0.07).abs() < 1e-12);
        let m = LossModel::bursty_percent(4.0);
        assert!((m.mean_loss() - 0.04).abs() < 1e-9, "{}", m.mean_loss());
    }

    #[test]
    fn set_model_resets_burst_state() {
        let mut p = LossProcess::new(LossModel::GilbertElliott {
            p_gb: 1.0,
            p_bg: 0.0,
            loss_good: 0.0,
            loss_bad: 1.0,
        });
        let mut r = rng();
        assert!(p.should_drop(&mut r)); // forced into bad state, always drops
        p.set_model(LossModel::None);
        assert!(!p.should_drop(&mut r));
        assert!(!p.in_bad_state);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<bool> = {
            let mut p = LossProcess::new(LossModel::bernoulli_percent(10.0));
            let mut r = SmallRng::seed_from_u64(7);
            (0..1000).map(|_| p.should_drop(&mut r)).collect()
        };
        let b: Vec<bool> = {
            let mut p = LossProcess::new(LossModel::bernoulli_percent(10.0));
            let mut r = SmallRng::seed_from_u64(7);
            (0..1000).map(|_| p.should_drop(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
