//! Selective-forwarding-unit bottleneck node.
//!
//! Conferencing at fleet scale terminates many sessions on one forwarding
//! node: every member's uplink fans *in* over a shared ingress bottleneck,
//! and the node fans each accepted media packet *out* to the other members
//! over a shared egress bottleneck. [`SfuNode`] models exactly that pair of
//! disciplined links plus the member registry and per-member downlink
//! selection; it deliberately knows nothing about RTP, so the session layer
//! decides *what* to forward and the node decides *when it gets through*.
//!
//! Both internal links are configured loss-free and jitter-free: an SFU is
//! a wired box, and keeping its links RNG-free means the node never
//! perturbs the seeded randomness of the access paths around it.

use crate::aqm::QueueDiscipline;
use crate::impairment::ImpairmentConfig;
use crate::link::{Link, LinkConfig, LinkStats, Transmit};
use crate::loss::LossModel;
use crate::path::PathId;
use crate::time::{SimDuration, SimTime};
use crate::trace::RateTrace;

/// A member's index within one SFU conference.
pub type MemberId = u16;

/// One forwarded media packet descriptor.
///
/// Deliberately `Copy` and payload-free: a fan-out to `N−1` viewers clones
/// this descriptor, never the media bytes, so forwarding cost is O(viewers)
/// pointer-free words rather than O(viewers × payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardPacket {
    /// Member whose uplink produced the packet.
    pub origin: MemberId,
    /// Camera stream index within the origin's session.
    pub stream: u8,
    /// Frame the packet belongs to (origin's frame counter).
    pub frame_id: u64,
    /// Packet index within the frame.
    pub index: u16,
    /// Total packets in the frame (0 for packets that carry no frame
    /// slice, e.g. parameter sets).
    pub count: u16,
    /// Wire size in bytes (what the egress bottleneck serializes).
    pub size: u32,
    /// When the origin captured/sent the packet (end-to-end latency base).
    pub sent_at: SimTime,
    /// Whether the frame is a keyframe.
    pub keyframe: bool,
}

/// Static configuration of one SFU node.
#[derive(Debug, Clone)]
pub struct SfuConfig {
    /// Shared ingress (fan-in) bottleneck rate, bits per second.
    pub ingress_rate_bps: u64,
    /// Shared egress (fan-out) bottleneck rate, bits per second.
    pub egress_rate_bps: u64,
    /// Ingress queue capacity in bytes.
    pub ingress_queue_bytes: usize,
    /// Egress queue capacity in bytes.
    pub egress_queue_bytes: usize,
    /// One-way latency through the node itself (switching fabric).
    pub forward_delay: SimDuration,
}

impl SfuConfig {
    /// A config sized from the bottleneck rate: egress scaled for fan-out,
    /// queues at roughly 40 ms of their own drain rate.
    pub fn for_bottleneck(ingress_rate_bps: u64, fanout: usize) -> Self {
        let egress_rate_bps = ingress_rate_bps * (fanout.max(1) as u64);
        let queue_for = |rate_bps: u64| ((rate_bps / 8) / 25).max(64_000) as usize;
        SfuConfig {
            ingress_rate_bps,
            egress_rate_bps,
            ingress_queue_bytes: queue_for(ingress_rate_bps),
            egress_queue_bytes: queue_for(egress_rate_bps),
            forward_delay: SimDuration::from_micros(200),
        }
    }
}

/// Counters an SFU keeps about its own behaviour (LinkStats-style).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SfuStats {
    /// Ingress link counters (fan-in bottleneck).
    pub ingress: LinkStats,
    /// Egress link counters (fan-out bottleneck).
    pub egress: LinkStats,
    /// Fan-out copies offered to the egress link.
    pub fanout_pkts: u64,
    /// Fan-out bytes offered to the egress link.
    pub fanout_bytes: u64,
}

#[derive(Debug, Clone)]
struct Member {
    downlink: PathId,
    uplink_pkts: u64,
    uplink_bytes: u64,
}

/// One SFU node: a member registry over a shared ingress/egress link pair.
///
/// # Examples
///
/// ```
/// use converge_net::path::PathId;
/// use converge_net::sfu::{SfuConfig, SfuNode};
/// use converge_net::time::SimTime;
/// use converge_net::link::Transmit;
///
/// let mut sfu = SfuNode::new(SfuConfig::for_bottleneck(10_000_000, 3));
/// let a = sfu.register_member(&[PathId(0), PathId(1)]);
/// let b = sfu.register_member(&[PathId(0), PathId(1)]);
/// assert_ne!(a, b);
/// assert!(matches!(
///     sfu.offer_ingress(a, SimTime::ZERO, 1200),
///     Transmit::Delivered(_)
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct SfuNode {
    ingress: Link,
    egress: Link,
    members: Vec<Member>,
    stats: SfuStats,
}

impl SfuNode {
    /// Creates a node from a configuration. Both links are deterministic:
    /// drop-tail, loss-free, jitter-free, no RNG draws.
    pub fn new(config: SfuConfig) -> Self {
        let quiet_link = |rate_bps: u64, queue_bytes: usize| {
            Link::new(LinkConfig {
                rate: RateTrace::constant(rate_bps),
                propagation: config.forward_delay,
                queue_capacity_bytes: queue_bytes,
                loss: LossModel::None,
                jitter: SimDuration::ZERO,
                discipline: QueueDiscipline::DropTail,
                impairment: ImpairmentConfig::default(),
                seed: 0,
                drive: None,
            })
        };
        SfuNode {
            ingress: quiet_link(config.ingress_rate_bps, config.ingress_queue_bytes),
            egress: quiet_link(config.egress_rate_bps, config.egress_queue_bytes),
            members: Vec::new(),
            stats: SfuStats::default(),
        }
    }

    /// Registers a session terminating at this node and selects its
    /// downlink from `candidates` (deterministic spread: members round-robin
    /// over the candidate list). Returns the member's id.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn register_member(&mut self, candidates: &[PathId]) -> MemberId {
        assert!(!candidates.is_empty(), "a member needs at least one downlink");
        let id = MemberId::try_from(self.members.len()).expect("too many SFU members");
        let downlink = candidates[id as usize % candidates.len()];
        self.members.push(Member {
            downlink,
            uplink_pkts: 0,
            uplink_bytes: 0,
        });
        id
    }

    /// Number of registered members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The downlink path selected for `member` at registration.
    pub fn downlink_of(&self, member: MemberId) -> PathId {
        self.members[member as usize].downlink
    }

    /// Offers one uplink packet from `member` to the shared ingress
    /// bottleneck. Monotone `now` required, as for [`Link::offer`].
    pub fn offer_ingress(&mut self, member: MemberId, now: SimTime, bytes: usize) -> Transmit {
        let fate = self.ingress.offer(now, bytes).fate;
        if matches!(fate, Transmit::Delivered(_)) {
            let m = &mut self.members[member as usize];
            m.uplink_pkts += 1;
            m.uplink_bytes += bytes as u64;
        }
        self.stats.ingress = self.ingress.stats();
        fate
    }

    /// Offers one fan-out copy to the shared egress bottleneck.
    pub fn offer_egress(&mut self, now: SimTime, bytes: usize) -> Transmit {
        self.stats.fanout_pkts += 1;
        self.stats.fanout_bytes += bytes as u64;
        let fate = self.egress.offer(now, bytes).fate;
        self.stats.egress = self.egress.stats();
        fate
    }

    /// Queuing delay a packet would currently see at the ingress.
    pub fn ingress_queue_delay(&self, now: SimTime) -> SimDuration {
        self.ingress.queue_delay(now)
    }

    /// Queuing delay a packet would currently see at the egress.
    pub fn egress_queue_delay(&self, now: SimTime) -> SimDuration {
        self.egress.queue_delay(now)
    }

    /// Uplink packets/bytes the node has accepted from `member`.
    pub fn member_uplink(&self, member: MemberId) -> (u64, u64) {
        let m = &self.members[member as usize];
        (m.uplink_pkts, m.uplink_bytes)
    }

    /// Accumulated node counters.
    pub fn stats(&self) -> SfuStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(rate: u64, fanout: usize) -> SfuNode {
        SfuNode::new(SfuConfig::for_bottleneck(rate, fanout))
    }

    #[test]
    fn downlink_selection_round_robins_candidates() {
        let mut sfu = node(10_000_000, 3);
        let paths = [PathId(0), PathId(1)];
        let a = sfu.register_member(&paths);
        let b = sfu.register_member(&paths);
        let c = sfu.register_member(&paths);
        assert_eq!(sfu.downlink_of(a), PathId(0));
        assert_eq!(sfu.downlink_of(b), PathId(1));
        assert_eq!(sfu.downlink_of(c), PathId(0));
    }

    #[test]
    fn shared_ingress_serializes_members_behind_each_other() {
        // 10 Mbps ingress: two 1250 B packets offered at t=0 finish at
        // 1 ms and 2 ms (+forward delay), regardless of which member sent
        // them — that is what makes the bottleneck shared.
        let mut sfu = SfuNode::new(SfuConfig {
            ingress_rate_bps: 10_000_000,
            egress_rate_bps: 30_000_000,
            ingress_queue_bytes: 1_000_000,
            egress_queue_bytes: 1_000_000,
            forward_delay: SimDuration::ZERO,
        });
        let a = sfu.register_member(&[PathId(0)]);
        let b = sfu.register_member(&[PathId(0)]);
        let first = sfu.offer_ingress(a, SimTime::ZERO, 1250);
        let second = sfu.offer_ingress(b, SimTime::ZERO, 1250);
        assert_eq!(first, Transmit::Delivered(SimTime::from_millis(1)));
        assert_eq!(second, Transmit::Delivered(SimTime::from_millis(2)));
        assert_eq!(sfu.member_uplink(a), (1, 1250));
        assert_eq!(sfu.member_uplink(b), (1, 1250));
    }

    #[test]
    fn overload_drops_at_the_ingress_queue() {
        let mut sfu = SfuNode::new(SfuConfig {
            ingress_rate_bps: 1_000_000,
            egress_rate_bps: 3_000_000,
            ingress_queue_bytes: 2_500,
            egress_queue_bytes: 1_000_000,
            forward_delay: SimDuration::ZERO,
        });
        let m = sfu.register_member(&[PathId(0)]);
        assert!(matches!(
            sfu.offer_ingress(m, SimTime::ZERO, 1250),
            Transmit::Delivered(_)
        ));
        assert!(matches!(
            sfu.offer_ingress(m, SimTime::ZERO, 1250),
            Transmit::Delivered(_)
        ));
        assert_eq!(sfu.offer_ingress(m, SimTime::ZERO, 1250), Transmit::QueueDrop);
        assert_eq!(sfu.stats().ingress.queue_drops, 1);
        // Drops do not count toward the member's accepted uplink.
        assert_eq!(sfu.member_uplink(m), (2, 2500));
    }

    #[test]
    fn egress_counts_fanout_copies() {
        let mut sfu = node(10_000_000, 4);
        for _ in 0..3 {
            assert!(matches!(
                sfu.offer_egress(SimTime::ZERO, 1000),
                Transmit::Delivered(_)
            ));
        }
        let stats = sfu.stats();
        assert_eq!(stats.fanout_pkts, 3);
        assert_eq!(stats.fanout_bytes, 3000);
        assert_eq!(stats.egress.delivered_pkts, 3);
    }

    #[test]
    fn node_is_rng_free_and_deterministic() {
        let run = || {
            let mut sfu = node(5_000_000, 3);
            let m = sfu.register_member(&[PathId(0), PathId(1)]);
            (0..200u64)
                .map(|i| sfu.offer_ingress(m, SimTime::from_micros(i * 700), 1200))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn for_bottleneck_scales_egress_with_fanout() {
        let cfg = SfuConfig::for_bottleneck(8_000_000, 5);
        assert_eq!(cfg.egress_rate_bps, 40_000_000);
        assert!(cfg.ingress_queue_bytes >= 64_000);
    }
}
