//! A single emulated unidirectional link.
//!
//! The link models the path a packet takes through one network direction:
//! a drop-tail queue ahead of a rate-shaped bottleneck (bandwidth from a
//! [`RateTrace`]), followed by a fixed propagation delay and a stochastic
//! loss stage. This mirrors the cellmulator-style setups the paper uses for
//! its emulated experiments.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::aqm::{Codel, QueueDiscipline};
use crate::drive::DriveTrace;
use crate::impairment::ImpairmentConfig;
use crate::loss::{LossModel, LossProcess};
use crate::time::{SimDuration, SimTime};
use crate::trace::RateTrace;

/// Static configuration of one link direction.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Bottleneck bandwidth over time.
    pub rate: RateTrace,
    /// One-way propagation delay added after the bottleneck.
    pub propagation: SimDuration,
    /// Maximum bytes the bottleneck queue may hold (drop-tail beyond).
    pub queue_capacity_bytes: usize,
    /// Stochastic loss applied after the queue (models air-interface loss).
    pub loss: LossModel,
    /// Maximum random per-packet delay added after the bottleneck
    /// (air-interface scheduling jitter). Drawn uniformly in [0, jitter];
    /// can reorder packets, which multipath receivers must tolerate.
    pub jitter: SimDuration,
    /// Queue discipline at the bottleneck (drop-tail or CoDel).
    pub discipline: QueueDiscipline,
    /// Fault injection for this direction (blackout/flap windows, extra
    /// loss and delay, reordering, duplication). No-op by default.
    pub impairment: ImpairmentConfig,
    /// Seed for this link's private RNG.
    pub seed: u64,
    /// Replayed drive capture. When set it overrides `rate` (bottleneck
    /// serialization), `propagation` (per-packet one-way delay from the
    /// sample in effect at send time), and adds a time-varying Bernoulli
    /// loss stage from the capture's `loss_pct` column. `None` leaves the
    /// static/trace-driven behaviour untouched.
    pub drive: Option<DriveTrace>,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            rate: RateTrace::constant(10_000_000),
            propagation: SimDuration::from_millis(25),
            // Roughly one bandwidth-delay product of a 10 Mbps / 100 ms path.
            queue_capacity_bytes: 125_000,
            loss: LossModel::None,
            jitter: SimDuration::ZERO,
            discipline: QueueDiscipline::DropTail,
            impairment: ImpairmentConfig::default(),
            seed: 0,
            drive: None,
        }
    }
}

/// Outcome of offering one packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmit {
    /// The packet will arrive at the far end at the given instant.
    Delivered(SimTime),
    /// The packet was dropped by the queue discipline (congestion loss:
    /// drop-tail overflow or a CoDel controlled-delay drop).
    QueueDrop,
    /// The packet was lost by the stochastic loss stage (random loss).
    RandomLoss,
    /// The packet was offered while the link was inside a blackout/flap
    /// window of its [`ImpairmentConfig`] (carrier handover outage).
    Blackout,
}

/// Full outcome of offering one packet through the impairment stage: the
/// primary fate plus the arrival time of a duplicated copy, if the
/// impairment stage produced one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Offer {
    /// Fate of the packet itself.
    pub fate: Transmit,
    /// Arrival time of the duplicate copy, when one was injected.
    pub duplicate: Option<SimTime>,
}

/// Counters a link keeps about its own behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted and delivered.
    pub delivered_pkts: u64,
    /// Bytes accepted and delivered.
    pub delivered_bytes: u64,
    /// Packets dropped at the queue.
    pub queue_drops: u64,
    /// Packets lost stochastically.
    pub random_losses: u64,
    /// Packets dropped inside a blackout/flap window.
    pub blackout_drops: u64,
    /// Packets dropped by the impairment stage's extra loss.
    pub impairment_losses: u64,
    /// Packets the impairment stage duplicated.
    pub duplicated_pkts: u64,
    /// Packets the impairment stage held back past the reorder horizon.
    pub reordered_pkts: u64,
}

/// One unidirectional emulated link.
///
/// Packets are offered with [`Link::transmit`], which immediately returns the
/// packet's fate and (if delivered) its arrival time at the far end. The link
/// tracks the virtual finish time of its bottleneck serializer, so back-to-
/// back packets queue behind each other; queue occupancy is derived from the
/// serializer backlog.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    loss: LossProcess,
    codel: Option<Codel>,
    rng: SmallRng,
    /// Virtual time at which the bottleneck finishes the last accepted packet.
    busy_until: SimTime,
    /// Bytes currently queued (not yet through the bottleneck), tracked as
    /// (finish_time, bytes) pairs pruned lazily.
    in_flight: std::collections::VecDeque<(SimTime, usize)>,
    queued_bytes: usize,
    stats: LinkStats,
}

impl Link {
    /// Creates a link from a configuration.
    pub fn new(config: LinkConfig) -> Self {
        let loss = LossProcess::new(config.loss.clone());
        let rng = SmallRng::seed_from_u64(config.seed);
        let codel = match config.discipline {
            QueueDiscipline::DropTail => None,
            QueueDiscipline::Codel { target, interval } => Some(Codel::new(target, interval)),
        };
        Link {
            config,
            loss,
            codel,
            rng,
            busy_until: SimTime::ZERO,
            in_flight: std::collections::VecDeque::new(),
            queued_bytes: 0,
            stats: LinkStats::default(),
        }
    }

    /// The link's configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Replaces the bandwidth trace (e.g. to switch scenarios mid-run).
    pub fn set_rate(&mut self, rate: RateTrace) {
        self.config.rate = rate;
    }

    /// Replaces the loss model.
    pub fn set_loss(&mut self, loss: LossModel) {
        self.loss.set_model(loss.clone());
        self.config.loss = loss;
    }

    /// The instantaneous bottleneck rate at `now`, bits per second.
    pub fn rate_at(&self, now: SimTime) -> u64 {
        match &self.config.drive {
            Some(drive) => drive.rate_at(now),
            None => self.config.rate.rate_at(now),
        }
    }

    /// One-way propagation delay.
    pub fn propagation(&self) -> SimDuration {
        self.config.propagation
    }

    /// Bytes currently waiting in or being serialized by the bottleneck.
    pub fn backlog_bytes(&mut self, now: SimTime) -> usize {
        self.prune(now);
        self.queued_bytes
    }

    /// Queuing delay a newly arriving packet would currently experience.
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Accumulated behaviour counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Offers one packet of `bytes` to the link at time `now`, returning
    /// just the primary fate. Equivalent to [`Link::offer`] with any
    /// injected duplicate discarded.
    ///
    /// # Panics
    /// Panics if called with a `now` earlier than a previous call — the link
    /// requires monotonically non-decreasing send times.
    pub fn transmit(&mut self, now: SimTime, bytes: usize) -> Transmit {
        self.offer(now, bytes).fate
    }

    /// Offers one packet of `bytes` to the link at time `now`.
    ///
    /// Returns the fate of the packet plus any impairment-injected
    /// duplicate. Delivery time accounts for queuing behind previously
    /// accepted packets, serialization at the (possibly time-varying)
    /// bottleneck rate, propagation delay, and the impairment stage
    /// (reorder hold-back and fixed extra delay).
    ///
    /// # Panics
    /// Panics if called with a `now` earlier than a previous call — the link
    /// requires monotonically non-decreasing send times.
    pub fn offer(&mut self, now: SimTime, bytes: usize) -> Offer {
        use rand::Rng;
        self.prune(now);
        let imp = self.config.impairment;

        // Blackout/flap windows: the radio is simply off. Checked before
        // the queue — a dark link accepts nothing.
        if let Some(blackout) = imp.blackout {
            if blackout.contains(now) {
                self.stats.blackout_drops += 1;
                return Offer {
                    fate: Transmit::Blackout,
                    duplicate: None,
                };
            }
        }

        // Impairment extra loss (e.g. a starved feedback channel),
        // independent of the base loss model below.
        if imp.loss > 0.0 && self.rng.gen_bool(imp.loss.clamp(0.0, 1.0)) {
            self.stats.impairment_losses += 1;
            return Offer {
                fate: Transmit::RandomLoss,
                duplicate: None,
            };
        }

        // Byte-limit check (applies under every discipline).
        if self.queued_bytes + bytes > self.config.queue_capacity_bytes {
            self.stats.queue_drops += 1;
            return Offer {
                fate: Transmit::QueueDrop,
                duplicate: None,
            };
        }

        // CoDel: consult the controller with the sojourn this packet is
        // about to experience (current backlog drain time).
        if let Some(codel) = &mut self.codel {
            let sojourn = self.busy_until.saturating_since(now);
            if codel.should_drop(now, sojourn) {
                self.stats.queue_drops += 1;
                return Offer {
                    fate: Transmit::QueueDrop,
                    duplicate: None,
                };
            }
        }

        // Stochastic loss stage. Applied on entry for simplicity; the
        // bandwidth it would have consumed is not charged, approximating
        // loss on the air interface after the bottleneck.
        if self.loss.should_drop(&mut self.rng) {
            self.stats.random_losses += 1;
            return Offer {
                fate: Transmit::RandomLoss,
                duplicate: None,
            };
        }

        // Drive-replay loss: a time-varying Bernoulli stage from the
        // capture's loss column. Guarded so loss-free segments make zero
        // RNG draws and leave the jitter/reorder streams untouched.
        if let Some(drive) = &self.config.drive {
            let p = (drive.loss_at(now) / 100.0).clamp(0.0, 1.0);
            if p > 0.0 && self.rng.gen_bool(p) {
                self.stats.random_losses += 1;
                return Offer {
                    fate: Transmit::RandomLoss,
                    duplicate: None,
                };
            }
        }

        // Serialize through the bottleneck, honouring rate changes at trace
        // segment boundaries.
        let start = self.busy_until.max(now);
        let finish = self.serialize_from(start, bytes);
        self.busy_until = finish;
        self.in_flight.push_back((finish, bytes));
        self.queued_bytes += bytes;

        self.stats.delivered_pkts += 1;
        self.stats.delivered_bytes += bytes as u64;
        let jitter = if self.config.jitter > SimDuration::ZERO {
            SimDuration::from_micros(self.rng.gen_range(0..=self.config.jitter.as_micros()))
        } else {
            SimDuration::ZERO
        };

        // Impairment reorder stage: hold selected packets back well past
        // the jitter bound so they land behind later packets.
        let holdback = if imp.reorder_prob > 0.0
            && imp.reorder_horizon > SimDuration::ZERO
            && self.rng.gen_bool(imp.reorder_prob.clamp(0.0, 1.0))
        {
            self.stats.reordered_pkts += 1;
            SimDuration::from_micros(self.rng.gen_range(1..=imp.reorder_horizon.as_micros()))
        } else {
            SimDuration::ZERO
        };

        // Under drive replay the one-way delay tracks the sample in effect
        // at send time (handover OWD spikes); otherwise it is static.
        let propagation = match &self.config.drive {
            Some(drive) => drive.owd_at(now),
            None => self.config.propagation,
        };
        let deliver = finish + propagation + jitter + holdback + imp.delay;

        // Impairment duplication stage: the copy trails the original.
        let duplicate = if imp.duplicate_prob > 0.0
            && self.rng.gen_bool(imp.duplicate_prob.clamp(0.0, 1.0))
        {
            self.stats.duplicated_pkts += 1;
            let lag = if imp.duplicate_spread > SimDuration::ZERO {
                SimDuration::from_micros(self.rng.gen_range(0..=imp.duplicate_spread.as_micros()))
            } else {
                SimDuration::ZERO
            };
            Some(deliver + lag)
        } else {
            None
        };

        Offer {
            fate: Transmit::Delivered(deliver),
            duplicate,
        }
    }

    /// Computes when `bytes` finish serializing if started at `start`,
    /// walking trace segments as the rate changes.
    fn serialize_from(&self, start: SimTime, bytes: usize) -> SimTime {
        if let Some(drive) = &self.config.drive {
            return Self::serialize_over_drive(drive, start, bytes);
        }
        let mut remaining_bits = bytes as u128 * 8;
        let mut t = start;
        // Bound the walk: if the link is stalled (rate 0) for the entire
        // trace, bail out with a far-future finish time.
        let mut zero_segments = 0usize;
        let max_zero = self.config.rate.rates().len() + 1;
        while remaining_bits > 0 {
            let rate = self.config.rate.rate_at(t);
            let window = self.config.rate.until_next_change(t);
            if rate == 0 {
                zero_segments += 1;
                if zero_segments > max_zero {
                    return SimTime::MAX;
                }
                t += window;
                continue;
            }
            zero_segments = 0;
            // Bits we can push within this trace segment.
            let window_bits = rate as u128 * window.as_micros() as u128 / 1_000_000;
            if window_bits >= remaining_bits {
                let us = (remaining_bits * 1_000_000).div_ceil(rate as u128);
                return t + SimDuration::from_micros(us as u64);
            }
            remaining_bits -= window_bits;
            t += window;
        }
        t
    }

    /// The drive-replay serialization walk. Drive traces hold their last
    /// sample forever instead of wrapping, so the walk visits finitely many
    /// boundaries: inside the final hold segment a zero rate means the link
    /// is stalled for good ([`SimTime::MAX`]) and a positive rate finishes
    /// directly.
    fn serialize_over_drive(drive: &DriveTrace, start: SimTime, bytes: usize) -> SimTime {
        let mut remaining_bits = bytes as u128 * 8;
        let mut t = start;
        loop {
            let rate = drive.rate_at(t);
            match drive.until_next_change(t) {
                Some(window) => {
                    if rate == 0 {
                        t += window;
                        continue;
                    }
                    let window_bits = rate as u128 * window.as_micros() as u128 / 1_000_000;
                    if window_bits >= remaining_bits {
                        let us = (remaining_bits * 1_000_000).div_ceil(rate as u128);
                        return t + SimDuration::from_micros(us as u64);
                    }
                    remaining_bits -= window_bits;
                    t += window;
                }
                None => {
                    if rate == 0 {
                        return SimTime::MAX;
                    }
                    let us = (remaining_bits * 1_000_000).div_ceil(rate as u128);
                    return t + SimDuration::from_micros(us as u64);
                }
            }
        }
    }

    /// Forgets packets that have cleared the bottleneck by `now`.
    fn prune(&mut self, now: SimTime) {
        while let Some(&(finish, bytes)) = self.in_flight.front() {
            if finish <= now {
                self.in_flight.pop_front();
                self.queued_bytes -= bytes;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link_cfg(rate_bps: u64, prop_ms: u64, queue: usize) -> LinkConfig {
        LinkConfig {
            rate: RateTrace::constant(rate_bps),
            propagation: SimDuration::from_millis(prop_ms),
            queue_capacity_bytes: queue,
            loss: LossModel::None,
            jitter: SimDuration::ZERO,
            discipline: QueueDiscipline::DropTail,
            seed: 1,
            impairment: ImpairmentConfig::default(),
            drive: None,
        }
    }

    fn drive(samples: Vec<(u64, u64, u64, f64)>) -> DriveTrace {
        DriveTrace::new(
            samples
                .into_iter()
                .map(|(t_ms, rate, owd_ms, loss)| crate::drive::DriveSample {
                    at: SimTime::from_millis(t_ms),
                    rate_bps: rate,
                    owd: SimDuration::from_millis(owd_ms),
                    loss_pct: loss,
                })
                .collect(),
        )
        .expect("valid drive")
    }

    #[test]
    fn single_packet_delay_is_serialization_plus_propagation() {
        // 1250 bytes at 10 Mbps = 1 ms serialization; +20 ms propagation.
        let mut l = Link::new(link_cfg(10_000_000, 20, 100_000));
        match l.transmit(SimTime::ZERO, 1250) {
            Transmit::Delivered(at) => assert_eq!(at.as_millis(), 21),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut l = Link::new(link_cfg(10_000_000, 0, 1_000_000));
        let a = l.transmit(SimTime::ZERO, 1250);
        let b = l.transmit(SimTime::ZERO, 1250);
        assert_eq!(a, Transmit::Delivered(SimTime::from_millis(1)));
        assert_eq!(b, Transmit::Delivered(SimTime::from_millis(2)));
    }

    #[test]
    fn queue_drains_over_time() {
        let mut l = Link::new(link_cfg(10_000_000, 0, 1_000_000));
        l.transmit(SimTime::ZERO, 1250);
        assert_eq!(l.backlog_bytes(SimTime::ZERO), 1250);
        assert_eq!(l.backlog_bytes(SimTime::from_millis(1)), 0);
    }

    #[test]
    fn drop_tail_when_queue_full() {
        let mut l = Link::new(link_cfg(1_000_000, 0, 2_500));
        assert!(matches!(
            l.transmit(SimTime::ZERO, 1250),
            Transmit::Delivered(_)
        ));
        assert!(matches!(
            l.transmit(SimTime::ZERO, 1250),
            Transmit::Delivered(_)
        ));
        assert_eq!(l.transmit(SimTime::ZERO, 1250), Transmit::QueueDrop);
        assert_eq!(l.stats().queue_drops, 1);
    }

    #[test]
    fn random_loss_drops_some_packets() {
        let mut cfg = link_cfg(100_000_000, 0, 10_000_000);
        cfg.loss = LossModel::bernoulli_percent(50.0);
        let mut l = Link::new(cfg);
        let mut lost = 0;
        for i in 0..1000 {
            if l.transmit(SimTime::from_millis(i), 100) == Transmit::RandomLoss {
                lost += 1;
            }
        }
        assert!((300..700).contains(&lost), "lost {lost}");
        assert_eq!(l.stats().random_losses, lost);
    }

    #[test]
    fn rate_change_mid_packet_respected() {
        // 1 Mbps for 1 s then 10 Mbps. A 250-byte packet sent at t=999.5ms:
        // 0.5ms at 1Mbps pushes 500 bits; remaining 1500 bits at 10 Mbps
        // takes 150 us. Finish = 1000ms + 150us = 1000.15 ms.
        let trace = RateTrace::new(SimDuration::from_secs(1), vec![1_000_000, 10_000_000]);
        let mut cfg = link_cfg(0, 0, 1_000_000);
        cfg.rate = trace;
        let mut l = Link::new(cfg);
        match l.transmit(SimTime::from_micros(999_500), 250) {
            Transmit::Delivered(at) => assert_eq!(at.as_micros(), 1_000_150),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_rate_trace_stalls_forever() {
        let mut cfg = link_cfg(0, 0, 1_000_000);
        cfg.rate = RateTrace::constant(0);
        let mut l = Link::new(cfg);
        match l.transmit(SimTime::ZERO, 100) {
            Transmit::Delivered(at) => assert_eq!(at, SimTime::MAX),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn queue_delay_reflects_backlog() {
        let mut l = Link::new(link_cfg(10_000_000, 0, 1_000_000));
        assert_eq!(l.queue_delay(SimTime::ZERO), SimDuration::ZERO);
        l.transmit(SimTime::ZERO, 12_500); // 10 ms of serialization
        assert_eq!(l.queue_delay(SimTime::ZERO).as_millis(), 10);
        assert_eq!(l.queue_delay(SimTime::from_millis(4)).as_millis(), 6);
    }

    #[test]
    fn stats_accumulate() {
        let mut l = Link::new(link_cfg(10_000_000, 0, 1_000_000));
        l.transmit(SimTime::ZERO, 100);
        l.transmit(SimTime::ZERO, 200);
        let s = l.stats();
        assert_eq!(s.delivered_pkts, 2);
        assert_eq!(s.delivered_bytes, 300);
    }

    #[test]
    fn jitter_spreads_delivery_times() {
        let mut cfg = link_cfg(100_000_000, 10, 10_000_000);
        cfg.jitter = SimDuration::from_millis(20);
        let mut l = Link::new(cfg);
        let mut extras = Vec::new();
        for i in 0..200u64 {
            let now = SimTime::from_millis(i * 10);
            if let Transmit::Delivered(at) = l.transmit(now, 100) {
                // serialization is ~8 us at 100 Mbps; extra over prop is jitter.
                extras.push(
                    at.saturating_since(now + SimDuration::from_millis(10))
                        .as_micros(),
                );
            }
        }
        let min = *extras.iter().min().unwrap();
        let max = *extras.iter().max().unwrap();
        assert!(
            max > 10_000,
            "some packets should see >10 ms jitter: max {max}"
        );
        assert!(
            min < 5_000,
            "some packets should see little jitter: min {min}"
        );
    }

    #[test]
    fn jitter_can_reorder_deliveries() {
        let mut cfg = link_cfg(100_000_000, 10, 10_000_000);
        cfg.jitter = SimDuration::from_millis(30);
        let mut l = Link::new(cfg);
        let mut times = Vec::new();
        for i in 0..100u64 {
            if let Transmit::Delivered(at) = l.transmit(SimTime::from_millis(i * 5), 100) {
                times.push(at);
            }
        }
        assert!(
            times.windows(2).any(|w| w[1] < w[0]),
            "30 ms jitter on 5 ms spacing must reorder sometimes"
        );
    }

    #[test]
    fn codel_discipline_bounds_standing_queue() {
        // Offer 2x the link rate continuously; drop-tail holds the queue
        // pinned at the byte limit, CoDel caps the standing delay instead.
        let run = |discipline: QueueDiscipline| -> (u64, SimDuration) {
            let mut cfg = link_cfg(5_000_000, 10, 10_000_000);
            cfg.discipline = discipline;
            let mut l = Link::new(cfg);
            // 2x offered load for 20 s: one 1250 B packet per ms. CoDel's
            // control law (interval/sqrt(count)) needs time to escalate to
            // a large overload, so the horizon must be generous.
            for i in 0..20_000u64 {
                let _ = l.transmit(SimTime::from_millis(i), 1250);
            }
            let drops = l.stats().queue_drops;
            let delay = l.queue_delay(SimTime::from_millis(20_000));
            (drops, delay)
        };
        let (dt_drops, dt_delay) = run(QueueDiscipline::DropTail);
        let (codel_drops, codel_delay) = run(QueueDiscipline::codel_default());
        assert!(
            codel_drops > dt_drops,
            "CoDel must shed load before the byte limit"
        );
        assert!(
            codel_delay < dt_delay / 2,
            "CoDel standing delay {codel_delay} must be well below drop-tail {dt_delay}"
        );
        assert!(
            codel_delay < SimDuration::from_secs(5),
            "CoDel bounds the standing queue: {codel_delay}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut cfg = link_cfg(5_000_000, 10, 50_000);
            cfg.loss = LossModel::bernoulli_percent(10.0);
            let mut l = Link::new(cfg);
            (0..500)
                .map(|i| l.transmit(SimTime::from_micros(i * 200), 1200))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn blackout_window_delivers_nothing() {
        use crate::impairment::BlackoutSchedule;
        let mut cfg = link_cfg(100_000_000, 10, 10_000_000);
        cfg.impairment = ImpairmentConfig::blackout(BlackoutSchedule::single(
            SimTime::from_secs(1),
            SimDuration::from_secs(2),
        ));
        let mut l = Link::new(cfg);
        let mut dark = 0u64;
        for i in 0..400u64 {
            let now = SimTime::from_millis(i * 10); // 0..4 s
            let offer = l.offer(now, 500);
            let in_window = (1_000..3_000).contains(&now.as_millis());
            if in_window {
                assert_eq!(offer.fate, Transmit::Blackout, "t={now}");
                assert!(offer.duplicate.is_none());
                dark += 1;
            } else {
                assert!(matches!(offer.fate, Transmit::Delivered(_)), "t={now}");
            }
        }
        assert_eq!(l.stats().blackout_drops, dark);
        assert_eq!(dark, 200);
    }

    #[test]
    fn reorder_holdback_shuffles_but_preserves_packets() {
        let mut cfg = link_cfg(100_000_000, 10, 10_000_000);
        cfg.impairment = ImpairmentConfig::reordering(0.3, SimDuration::from_millis(50));
        let mut l = Link::new(cfg);
        let mut times = Vec::new();
        for i in 0..500u64 {
            match l.offer(SimTime::from_millis(i * 5), 100).fate {
                Transmit::Delivered(at) => times.push(at),
                other => panic!("no-loss link must deliver, got {other:?}"),
            }
        }
        assert_eq!(times.len(), 500, "reordering must not lose packets");
        assert!(
            times.windows(2).any(|w| w[1] < w[0]),
            "50 ms holdback on 5 ms spacing must reorder"
        );
        assert!(l.stats().reordered_pkts > 50);
        assert!(l.stats().reordered_pkts < 250);
    }

    #[test]
    fn duplicates_trail_their_original() {
        let mut cfg = link_cfg(100_000_000, 10, 10_000_000);
        cfg.impairment = ImpairmentConfig::duplication(0.5, SimDuration::from_millis(5));
        let mut l = Link::new(cfg);
        let mut dups = 0u64;
        for i in 0..400u64 {
            let offer = l.offer(SimTime::from_millis(i * 10), 100);
            let Transmit::Delivered(primary) = offer.fate else {
                panic!("no-loss link must deliver");
            };
            if let Some(copy) = offer.duplicate {
                assert!(copy >= primary, "copy {copy} must not beat original {primary}");
                assert!(copy <= primary + SimDuration::from_millis(5));
                dups += 1;
            }
        }
        assert!((120..280).contains(&dups), "dup count {dups}");
        assert_eq!(l.stats().duplicated_pkts, dups);
    }

    #[test]
    fn impairment_loss_and_delay_compose() {
        let mut cfg = link_cfg(100_000_000, 10, 10_000_000);
        cfg.impairment = ImpairmentConfig::degraded(0.4, SimDuration::from_millis(30));
        let mut l = Link::new(cfg);
        let mut lost = 0u64;
        for i in 0..1000u64 {
            let now = SimTime::from_millis(i * 10);
            match l.offer(now, 100).fate {
                Transmit::RandomLoss => lost += 1,
                Transmit::Delivered(at) => {
                    // serialization is 8 us at 100 Mbps; prop 10 ms + extra 30 ms.
                    assert!(at >= now + SimDuration::from_millis(40));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!((250..550).contains(&lost), "lost {lost}");
        assert_eq!(l.stats().impairment_losses, lost);
        assert_eq!(l.stats().random_losses, 0);
    }

    #[test]
    fn noop_impairment_preserves_rng_stream() {
        // A default ImpairmentConfig must make zero RNG draws so existing
        // seeded scenarios stay bit-identical.
        let run = |imp: ImpairmentConfig| {
            let mut cfg = link_cfg(5_000_000, 10, 50_000);
            cfg.loss = LossModel::bernoulli_percent(10.0);
            cfg.jitter = SimDuration::from_millis(5);
            cfg.impairment = imp;
            let mut l = Link::new(cfg);
            (0..500)
                .map(|i| l.transmit(SimTime::from_micros(i * 200), 1200))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(ImpairmentConfig::default()), run(ImpairmentConfig::default()));
        // And a no-op schedule outside the horizon changes nothing either.
        let past = ImpairmentConfig::blackout(crate::impairment::BlackoutSchedule::single(
            SimTime::MAX,
            SimDuration::from_micros(1),
        ));
        assert_eq!(run(ImpairmentConfig::default()), run(past));
    }

    #[test]
    fn drive_overrides_rate_owd_and_survives_gaps() {
        // 10 Mbps / 40 ms, then a 2 s coverage gap (rate 0, OWD inflated),
        // then recovery at 20 Mbps / 30 ms.
        let mut cfg = link_cfg(999, 999, 10_000_000);
        cfg.drive = Some(drive(vec![
            (0, 10_000_000, 40, 0.0),
            (1_000, 0, 120, 0.0),
            (3_000, 20_000_000, 30, 0.0),
        ]));
        let mut l = Link::new(cfg);
        // 1250 B at 10 Mbps = 1 ms serialization, +40 ms drive OWD; the
        // static `rate`/`propagation` fields (garbage here) are ignored.
        match l.transmit(SimTime::ZERO, 1250) {
            Transmit::Delivered(at) => assert_eq!(at.as_millis(), 41),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l.rate_at(SimTime::from_millis(1_500)), 0);
        // A packet offered inside the gap serializes only once coverage
        // returns at t=3 s (finish 3 s + 500 us at 20 Mbps) and carries the
        // in-gap OWD of 120 ms from its send instant.
        match l.transmit(SimTime::from_millis(2_000), 1250) {
            Transmit::Delivered(at) => assert_eq!(at.as_micros(), 3_000_500 + 120_000),
            other => panic!("unexpected {other:?}"),
        }
        // After the gap the link is NOT wedged: recovery rate and OWD apply.
        match l.transmit(SimTime::from_millis(4_000), 1250) {
            Transmit::Delivered(at) => assert_eq!(at.as_micros(), 4_000_500 + 30_000),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drive_zero_rate_final_hold_stalls_forever() {
        let mut cfg = link_cfg(10_000_000, 10, 1_000_000);
        cfg.drive = Some(drive(vec![(0, 5_000_000, 20, 0.0), (1_000, 0, 20, 0.0)]));
        let mut l = Link::new(cfg);
        match l.transmit(SimTime::from_secs(2), 100) {
            Transmit::Delivered(at) => assert_eq!(at, SimTime::MAX),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drive_loss_column_drops_packets_only_in_lossy_segments() {
        // 50% loss for the first second, clean afterwards.
        let mut cfg = link_cfg(999, 999, 10_000_000);
        cfg.drive = Some(drive(vec![
            (0, 100_000_000, 10, 50.0),
            (1_000, 100_000_000, 10, 0.0),
        ]));
        let mut l = Link::new(cfg);
        let mut lost_early = 0u64;
        for i in 0..500u64 {
            if l.transmit(SimTime::from_micros(i * 2_000), 100) == Transmit::RandomLoss {
                lost_early += 1;
            }
        }
        assert!((150..350).contains(&lost_early), "lost {lost_early}");
        let mut lost_late = 0u64;
        for i in 0..500u64 {
            let now = SimTime::from_millis(1_000) + SimDuration::from_micros(i * 2_000);
            if l.transmit(now, 100) == Transmit::RandomLoss {
                lost_late += 1;
            }
        }
        assert_eq!(lost_late, 0, "clean segment must not drop");
        assert_eq!(l.stats().random_losses, lost_early);
    }

    #[test]
    fn drive_link_is_deterministic_given_seed() {
        let run = || {
            let mut cfg = link_cfg(999, 999, 50_000);
            cfg.jitter = SimDuration::from_millis(5);
            cfg.drive = Some(drive(vec![
                (0, 8_000_000, 30, 2.0),
                (2_000, 500_000, 90, 8.0),
                (4_000, 12_000_000, 25, 0.0),
            ]));
            let mut l = Link::new(cfg);
            (0..2_000)
                .map(|i| l.transmit(SimTime::from_micros(i * 3_000), 1200))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn impaired_link_is_deterministic_given_seed() {
        use crate::impairment::BlackoutSchedule;
        let run = || {
            let mut cfg = link_cfg(5_000_000, 10, 50_000);
            cfg.loss = LossModel::bernoulli_percent(5.0);
            cfg.impairment = ImpairmentConfig {
                loss: 0.05,
                delay: SimDuration::from_millis(2),
                reorder_prob: 0.2,
                reorder_horizon: SimDuration::from_millis(40),
                duplicate_prob: 0.1,
                duplicate_spread: SimDuration::from_millis(5),
                blackout: Some(BlackoutSchedule::flapping(
                    SimTime::from_millis(20),
                    SimDuration::from_millis(10),
                    SimDuration::from_millis(50),
                )),
            };
            let mut l = Link::new(cfg);
            (0..500)
                .map(|i| l.offer(SimTime::from_micros(i * 200), 1200))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
