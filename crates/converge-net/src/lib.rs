//! # converge-net
//!
//! Deterministic discrete-event multipath network emulation — the substrate
//! under the Converge (SIGCOMM 2023) reproduction. The paper evaluates on
//! emulated cellular paths driven by bandwidth traces; this crate provides
//! the same capability on one machine:
//!
//! - [`time`]: fixed-point microsecond simulation clock.
//! - [`event`]: deterministic FIFO-tie-breaking event queue.
//! - [`trace`]: piecewise-constant bandwidth traces + synthetic generators
//!   for the stationary / walking / driving scenarios of the paper's
//!   Figs. 20-22.
//! - [`drive`]: file-driven drive replay — non-uniform `t → (rate, OWD,
//!   loss)` captures with hold semantics, CSV/JSONL codecs.
//! - [`loss`]: Bernoulli and Gilbert-Elliott loss models.
//! - [`aqm`]: queue disciplines — drop-tail and CoDel controlled delay.
//! - [`link`]: one link direction — disciplined queue, trace-driven
//!   bottleneck, propagation delay, jitter, loss stage.
//! - [`impairment`]: composable per-direction fault injection — blackout /
//!   flap schedules, reordering, duplication, feedback loss and delay.
//! - [`path`]: bidirectional path with a stable [`path::PathId`].
//! - [`emulator`]: multipath emulator holding payloads in flight.
//! - [`timer`]: hierarchical timer wheel for fleet-scale periodic ticks.
//! - [`sfu`]: selective-forwarding-unit bottleneck node (fan-in/fan-out
//!   over a shared link pair, per-member downlink selection).
//!
//! Everything is seeded and synchronous: a run is a pure function of its
//! configuration, which is what makes the paper's experiments reproducible
//! bit-for-bit here.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aqm;
pub mod arena;
pub mod drive;
pub mod emulator;
pub mod event;
pub mod impairment;
pub mod link;
pub mod loss;
pub mod path;
pub mod sfu;
pub mod time;
pub mod timer;
pub mod trace;

pub use aqm::{Codel, QueueDiscipline};
pub use arena::{Arena, SlotKey};
pub use drive::{DriveParseError, DriveSample, DriveTrace};
pub use emulator::{Delivery, NetworkEmulator, SendOutcome};
pub use impairment::{BlackoutSchedule, ImpairmentConfig};
pub use link::{Link, LinkConfig, LinkStats, Offer, Transmit};
pub use loss::{LossModel, LossProcess};
pub use path::{Direction, Path, PathId};
pub use sfu::{ForwardPacket, MemberId, SfuConfig, SfuNode, SfuStats};
pub use time::{SimDuration, SimTime};
pub use timer::{TimerWheel, TimerWheelStats};
pub use trace::{Carrier, RateTrace, Scenario};
