//! File-driven cellular drive replay.
//!
//! The paper's headline experiments replay bandwidth/latency/loss captures
//! recorded while driving through T-Mobile and Verizon coverage (its
//! Figs. 20–22). A [`DriveTrace`] is the reproduction's container for such
//! a capture: a sequence of non-uniformly spaced samples, each pinning the
//! path's achievable **rate**, one-way **delay**, and random **loss** from
//! that instant on. Unlike [`crate::trace::RateTrace`] — uniform-step,
//! rate-only, wrapping past the end — a drive trace:
//!
//! - carries all three impairment axes per sample (LoLa observes that
//!   multi-carrier paths diverge in rate *and* RTT *and* loss
//!   simultaneously during handoffs);
//! - allows arbitrary strictly-increasing timestamps, so sparse captures
//!   and dense handover bursts coexist in one file;
//! - uses **hold semantics**: before the first sample the first sample's
//!   values apply, each sample takes effect exactly at its timestamp, and
//!   after the last sample the final values hold forever (a capture that
//!   ends healthy stays healthy — it does not wrap back into its gaps).
//!
//! Two serializations are supported: single-path CSV
//! (`t_s,rate_bps,owd_ms,loss_pct` rows) and multi-path JSONL (one object
//! per line with an optional `"path"` field), the format of the committed
//! fixtures under `tests/tests/fixtures/drives/`.

use crate::time::{SimDuration, SimTime};

/// One sample of a drive capture: the path's behaviour from [`DriveSample::at`]
/// until the next sample (or forever, for the last one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriveSample {
    /// Instant this sample takes effect.
    pub at: SimTime,
    /// Achievable bottleneck rate, bits per second (0 = coverage gap).
    pub rate_bps: u64,
    /// One-way delay of the path.
    pub owd: SimDuration,
    /// Random loss in percent (0–100).
    pub loss_pct: f64,
}

/// A drive capture for one path: strictly time-ordered [`DriveSample`]s
/// with hold semantics (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct DriveTrace {
    samples: Vec<DriveSample>,
}

impl DriveTrace {
    /// Builds a trace from samples, validating non-emptiness, strictly
    /// increasing timestamps, and finite in-range loss values. Error line
    /// numbers are 1-based sample indices.
    pub fn new(samples: Vec<DriveSample>) -> Result<Self, DriveParseError> {
        if samples.is_empty() {
            return Err(DriveParseError::Empty);
        }
        for (i, s) in samples.iter().enumerate() {
            if !s.loss_pct.is_finite() || !(0.0..=100.0).contains(&s.loss_pct) {
                return Err(DriveParseError::BadValue(i + 1));
            }
            if i > 0 && s.at <= samples[i - 1].at {
                return Err(DriveParseError::NonMonotoneTime(i + 1));
            }
        }
        Ok(DriveTrace { samples })
    }

    /// The samples, in time order.
    pub fn samples(&self) -> &[DriveSample] {
        &self.samples
    }

    /// Timestamp of the first sample.
    pub fn start(&self) -> SimTime {
        self.samples[0].at
    }

    /// Timestamp of the last sample — the start of the final hold segment.
    pub fn end(&self) -> SimTime {
        self.samples[self.samples.len() - 1].at
    }

    /// The sample in effect at `at` under hold semantics: the last sample
    /// with `sample.at <= at`, or the first sample before the trace starts.
    pub fn sample_at(&self, at: SimTime) -> &DriveSample {
        let idx = self.samples.partition_point(|s| s.at <= at);
        &self.samples[idx.saturating_sub(1)]
    }

    /// Achievable rate at `at`, bits per second.
    pub fn rate_at(&self, at: SimTime) -> u64 {
        self.sample_at(at).rate_bps
    }

    /// One-way delay at `at`.
    pub fn owd_at(&self, at: SimTime) -> SimDuration {
        self.sample_at(at).owd
    }

    /// Random loss at `at`, percent.
    pub fn loss_at(&self, at: SimTime) -> f64 {
        self.sample_at(at).loss_pct
    }

    /// Time until the next sample boundary after `at`, or `None` once `at`
    /// is in the final hold segment (the values never change again).
    pub fn until_next_change(&self, at: SimTime) -> Option<SimDuration> {
        let idx = self.samples.partition_point(|s| s.at <= at);
        self.samples.get(idx).map(|s| s.at.saturating_since(at))
    }

    /// Mean rate across samples (unweighted — a summary statistic for
    /// reports, not a capacity model).
    pub fn mean_rate(&self) -> u64 {
        let sum: u128 = self.samples.iter().map(|s| s.rate_bps as u128).sum();
        (sum / self.samples.len() as u128) as u64
    }

    /// Serializes as `t_s,rate_bps,owd_ms,loss_pct` CSV rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("# t_s,rate_bps,owd_ms,loss_pct\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{:.6},{},{:.3},{}\n",
                s.at.as_micros() as f64 / 1e6,
                s.rate_bps,
                s.owd.as_micros() as f64 / 1e3,
                s.loss_pct
            ));
        }
        out
    }

    /// Parses the CSV produced by [`DriveTrace::to_csv`]. Blank lines and
    /// `#` comments are skipped; errors carry 1-based line numbers.
    pub fn from_csv(text: &str) -> Result<Self, DriveParseError> {
        let mut samples = Vec::new();
        let mut last: Option<(SimTime, usize)> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = lineno + 1;
            let mut fields = line.split(',');
            let mut next = || fields.next().map(str::trim);
            let (Some(t), Some(rate), Some(owd), Some(loss)) = (next(), next(), next(), next())
            else {
                return Err(DriveParseError::BadLine(lineno));
            };
            if next().is_some() {
                return Err(DriveParseError::BadLine(lineno));
            }
            let sample = DriveSample {
                at: parse_time_secs(t, lineno)?,
                rate_bps: rate.parse().map_err(|_| DriveParseError::BadLine(lineno))?,
                owd: parse_duration_ms(owd, lineno)?,
                loss_pct: parse_loss_pct(loss, lineno)?,
            };
            if let Some((prev, _)) = last {
                if sample.at <= prev {
                    return Err(DriveParseError::NonMonotoneTime(lineno));
                }
            }
            last = Some((sample.at, lineno));
            samples.push(sample);
        }
        if samples.is_empty() {
            return Err(DriveParseError::Empty);
        }
        // Loss range/monotonicity already validated with file line numbers.
        Ok(DriveTrace { samples })
    }

    /// Serializes as the multi-path JSONL row format, tagging every row
    /// with `path`.
    pub fn to_jsonl(&self, path: u8) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&format!(
                "{{\"t\":{:.6},\"path\":{},\"rate_bps\":{},\"owd_ms\":{:.3},\"loss_pct\":{}}}\n",
                s.at.as_micros() as f64 / 1e6,
                path,
                s.rate_bps,
                s.owd.as_micros() as f64 / 1e3,
                s.loss_pct
            ));
        }
        out
    }

    /// Parses a multi-path JSONL drive file: one object per line with
    /// numeric fields `t` (seconds), `rate_bps`, `owd_ms`, `loss_pct`, and
    /// an optional `path` (default 0). Returns one trace per path, indexed
    /// by path ID; path IDs must form a contiguous `0..n`. Blank lines and
    /// `#` comments are skipped; errors carry 1-based line numbers.
    pub fn parse_jsonl(text: &str) -> Result<Vec<DriveTrace>, DriveParseError> {
        let mut per_path: Vec<(u8, Vec<DriveSample>, SimTime)> = Vec::new();
        let mut any = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = lineno + 1;
            if !line.starts_with('{') || !line.ends_with('}') {
                return Err(DriveParseError::BadLine(lineno));
            }
            let field = |key: &str| json_number_field(line, key);
            let t = field("t").ok_or(DriveParseError::BadLine(lineno))?;
            let rate = field("rate_bps").ok_or(DriveParseError::BadLine(lineno))?;
            let owd = field("owd_ms").ok_or(DriveParseError::BadLine(lineno))?;
            let loss = field("loss_pct").ok_or(DriveParseError::BadLine(lineno))?;
            let path: u8 = match field("path") {
                Some(p) => p.parse().map_err(|_| DriveParseError::BadLine(lineno))?,
                None => 0,
            };
            let sample = DriveSample {
                at: parse_time_secs(t, lineno)?,
                rate_bps: rate.parse().map_err(|_| DriveParseError::BadLine(lineno))?,
                owd: parse_duration_ms(owd, lineno)?,
                loss_pct: parse_loss_pct(loss, lineno)?,
            };
            any = true;
            let slot = match per_path.iter_mut().find(|(id, ..)| *id == path) {
                Some(slot) => slot,
                None => {
                    per_path.push((path, Vec::new(), SimTime::ZERO));
                    per_path.last_mut().expect("just pushed")
                }
            };
            if !slot.1.is_empty() && sample.at <= slot.2 {
                return Err(DriveParseError::NonMonotoneTime(lineno));
            }
            slot.2 = sample.at;
            slot.1.push(sample);
        }
        if !any {
            return Err(DriveParseError::Empty);
        }
        per_path.sort_by_key(|(id, ..)| *id);
        for (i, (id, ..)) in per_path.iter().enumerate() {
            if *id as usize != i {
                return Err(DriveParseError::MissingPath(i as u8));
            }
        }
        per_path
            .into_iter()
            .map(|(_, samples, _)| DriveTrace::new(samples))
            .collect()
    }
}

/// Parses a finite non-negative seconds value into a [`SimTime`].
fn parse_time_secs(text: &str, lineno: usize) -> Result<SimTime, DriveParseError> {
    let secs: f64 = text.parse().map_err(|_| DriveParseError::BadLine(lineno))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(DriveParseError::BadValue(lineno));
    }
    Ok(SimTime::from_micros((secs * 1e6).round() as u64))
}

/// Parses a finite non-negative milliseconds value into a [`SimDuration`].
fn parse_duration_ms(text: &str, lineno: usize) -> Result<SimDuration, DriveParseError> {
    let ms: f64 = text.parse().map_err(|_| DriveParseError::BadLine(lineno))?;
    if !ms.is_finite() || ms < 0.0 {
        return Err(DriveParseError::BadValue(lineno));
    }
    Ok(SimDuration::from_micros((ms * 1e3).round() as u64))
}

/// Parses a finite loss percentage in `[0, 100]`.
fn parse_loss_pct(text: &str, lineno: usize) -> Result<f64, DriveParseError> {
    let pct: f64 = text.parse().map_err(|_| DriveParseError::BadLine(lineno))?;
    if !pct.is_finite() || !(0.0..=100.0).contains(&pct) {
        return Err(DriveParseError::BadValue(lineno));
    }
    Ok(pct)
}

/// Extracts the raw text of a numeric field from a single-line JSON object.
/// The drive row format has no string values, so scanning for `"key":` is
/// unambiguous.
fn json_number_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    let value = rest[..end].trim();
    (!value.is_empty()).then_some(value)
}

/// Errors from the drive-trace parsers and [`DriveTrace::new`]. All line
/// numbers are 1-based (file lines for the parsers, sample indices for
/// the constructor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriveParseError {
    /// The input had no data rows.
    Empty,
    /// A row was structurally malformed (wrong field count, unparsable
    /// number, missing required JSON field).
    BadLine(usize),
    /// A numeric value was non-finite (NaN/inf) or out of its legal range.
    BadValue(usize),
    /// A row's timestamp did not strictly increase within its path.
    NonMonotoneTime(usize),
    /// Multi-path input skipped a path ID (IDs must form `0..n`).
    MissingPath(u8),
}

impl std::fmt::Display for DriveParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveParseError::Empty => write!(f, "drive trace has no data rows"),
            DriveParseError::BadLine(n) => write!(f, "malformed drive row at line {n}"),
            DriveParseError::BadValue(n) => {
                write!(f, "non-finite or out-of-range value at line {n}")
            }
            DriveParseError::NonMonotoneTime(n) => {
                write!(f, "timestamp at line {n} does not increase within its path")
            }
            DriveParseError::MissingPath(p) => {
                write!(f, "multi-path drive file skips path {p} (IDs must be 0..n)")
            }
        }
    }
}

impl std::error::Error for DriveParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_ms: u64, rate: u64, owd_ms: u64, loss: f64) -> DriveSample {
        DriveSample {
            at: SimTime::from_millis(t_ms),
            rate_bps: rate,
            owd: SimDuration::from_millis(owd_ms),
            loss_pct: loss,
        }
    }

    fn trace() -> DriveTrace {
        DriveTrace::new(vec![
            sample(0, 10_000_000, 40, 0.0),
            sample(2_000, 2_000_000, 80, 2.5),
            sample(5_000, 15_000_000, 35, 0.0),
        ])
        .expect("valid")
    }

    #[test]
    fn hold_semantics_at_boundaries() {
        let t = trace();
        // Before the first sample: hold-first.
        assert_eq!(t.rate_at(SimTime::ZERO), 10_000_000);
        // Exactly at a boundary the new sample applies.
        assert_eq!(t.rate_at(SimTime::from_millis(2_000)), 2_000_000);
        assert_eq!(t.owd_at(SimTime::from_millis(2_000)).as_millis(), 80);
        // Between boundaries the previous sample holds (no interpolation).
        assert_eq!(t.rate_at(SimTime::from_millis(4_999)), 2_000_000);
        // After the last sample: hold-last forever.
        assert_eq!(t.rate_at(SimTime::from_secs(10_000)), 15_000_000);
        assert_eq!(t.loss_at(SimTime::from_secs(10_000)), 0.0);
    }

    #[test]
    fn hold_first_before_start() {
        let t = DriveTrace::new(vec![sample(3_000, 7_000_000, 50, 1.0)]).unwrap();
        assert_eq!(t.rate_at(SimTime::ZERO), 7_000_000);
        assert_eq!(t.owd_at(SimTime::from_millis(1)).as_millis(), 50);
        assert_eq!(t.loss_at(SimTime::ZERO), 1.0);
    }

    #[test]
    fn until_next_change_counts_to_boundary_then_none() {
        let t = trace();
        assert_eq!(
            t.until_next_change(SimTime::from_millis(500)),
            Some(SimDuration::from_millis(1_500))
        );
        // Exactly at a boundary the countdown targets the *next* one.
        assert_eq!(
            t.until_next_change(SimTime::from_millis(2_000)),
            Some(SimDuration::from_millis(3_000))
        );
        // Final hold segment never changes again.
        assert_eq!(t.until_next_change(SimTime::from_millis(5_000)), None);
        assert_eq!(t.until_next_change(SimTime::from_secs(99)), None);
    }

    #[test]
    fn rejects_empty_and_non_monotone_and_bad_loss() {
        assert_eq!(DriveTrace::new(vec![]), Err(DriveParseError::Empty));
        assert_eq!(
            DriveTrace::new(vec![sample(1_000, 1, 1, 0.0), sample(1_000, 2, 1, 0.0)]),
            Err(DriveParseError::NonMonotoneTime(2))
        );
        assert_eq!(
            DriveTrace::new(vec![sample(0, 1, 1, f64::NAN)]),
            Err(DriveParseError::BadValue(1))
        );
        assert_eq!(
            DriveTrace::new(vec![sample(0, 1, 1, 101.0)]),
            Err(DriveParseError::BadValue(1))
        );
    }

    #[test]
    fn csv_roundtrip() {
        let t = trace();
        assert_eq!(DriveTrace::from_csv(&t.to_csv()), Ok(t));
    }

    #[test]
    fn csv_errors_carry_line_numbers() {
        assert_eq!(DriveTrace::from_csv(""), Err(DriveParseError::Empty));
        assert_eq!(
            DriveTrace::from_csv("# header only\n\n"),
            Err(DriveParseError::Empty)
        );
        assert_eq!(
            DriveTrace::from_csv("0.0,5,40,0\nnot-a-row\n"),
            Err(DriveParseError::BadLine(2))
        );
        assert_eq!(
            DriveTrace::from_csv("0.0,5,40,0\n1.0,5,40\n"),
            Err(DriveParseError::BadLine(2))
        );
        assert_eq!(
            DriveTrace::from_csv("# c\n0.0,5,40,0\n1.0,5,NaN,0\n"),
            Err(DriveParseError::BadValue(3))
        );
        assert_eq!(
            DriveTrace::from_csv("0.0,5,40,0\n1.0,5,40,inf\n"),
            Err(DriveParseError::BadValue(2))
        );
        assert_eq!(
            DriveTrace::from_csv("0.0,5,40,0\n2.0,5,40,0\n1.0,5,40,0\n"),
            Err(DriveParseError::NonMonotoneTime(3))
        );
    }

    #[test]
    fn jsonl_roundtrip_and_multi_path() {
        let t = trace();
        let parsed = DriveTrace::parse_jsonl(&t.to_jsonl(0)).expect("parses");
        assert_eq!(parsed, vec![t.clone()]);
        // Interleaved rows for two paths demultiplex cleanly.
        let mut interleaved = String::new();
        for (a, b) in t.to_jsonl(1).lines().zip(t.to_jsonl(0).lines()) {
            interleaved.push_str(a);
            interleaved.push('\n');
            interleaved.push_str(b);
            interleaved.push('\n');
        }
        let both = DriveTrace::parse_jsonl(&interleaved).expect("parses");
        assert_eq!(both.len(), 2);
        assert_eq!(both[0], t);
        assert_eq!(both[1], t);
    }

    #[test]
    fn jsonl_rejects_gaps_in_path_ids_and_bad_rows() {
        let row = |p: u8| format!("{{\"t\":0.0,\"path\":{p},\"rate_bps\":1,\"owd_ms\":1,\"loss_pct\":0}}\n");
        let text = format!("{}{}", row(0), row(2));
        assert_eq!(
            DriveTrace::parse_jsonl(&text),
            Err(DriveParseError::MissingPath(1))
        );
        assert_eq!(
            DriveTrace::parse_jsonl("{\"t\":0.0,\"rate_bps\":1}\n"),
            Err(DriveParseError::BadLine(1))
        );
        assert_eq!(
            DriveTrace::parse_jsonl("plain text\n"),
            Err(DriveParseError::BadLine(1))
        );
        // Per-path monotonicity: a repeated timestamp on the same path is
        // rejected even with other paths interleaved between the rows.
        let text = format!(
            "{}{}{}",
            "{\"t\":1.0,\"path\":0,\"rate_bps\":1,\"owd_ms\":1,\"loss_pct\":0}\n",
            "{\"t\":2.0,\"path\":1,\"rate_bps\":1,\"owd_ms\":1,\"loss_pct\":0}\n",
            "{\"t\":1.0,\"path\":0,\"rate_bps\":2,\"owd_ms\":1,\"loss_pct\":0}\n",
        );
        assert_eq!(
            DriveTrace::parse_jsonl(&text),
            Err(DriveParseError::NonMonotoneTime(3))
        );
    }

    #[test]
    fn mean_rate_and_span() {
        let t = trace();
        assert_eq!(t.mean_rate(), 9_000_000);
        assert_eq!(t.start(), SimTime::ZERO);
        assert_eq!(t.end(), SimTime::from_secs(5));
    }
}
