//! Fixed-point simulation clock.
//!
//! The emulator keeps time as an integer number of microseconds. Integer time
//! makes every experiment bit-reproducible: there is no floating-point drift
//! between runs, and event ordering ties are broken deterministically by the
//! event queue.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in microseconds since the start of the
/// simulation.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start, truncated.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e6).round().min(u64::MAX as f64) as u64)
    }

    /// Whole microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds, truncated.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration needed to serialize `bytes` at `bits_per_sec`, rounded up.
    ///
    /// A zero rate yields [`SimDuration::MAX`]: the link is stalled.
    pub fn for_bytes_at_rate(bytes: usize, bits_per_sec: u64) -> Self {
        if bits_per_sec == 0 {
            return SimDuration::MAX;
        }
        let bits = bytes as u128 * 8;
        let us = (bits * 1_000_000).div_ceil(bits_per_sec as u128);
        SimDuration(us.min(u64::MAX as u128) as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// `self * num / den`, computed without overflow in 128-bit space.
    pub fn mul_div(self, num: u64, den: u64) -> SimDuration {
        assert!(den != 0, "mul_div by zero");
        let v = self.0 as u128 * num as u128 / den as u128;
        SimDuration(v.min(u64::MAX as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, earlier: SimTime) -> SimDuration {
        assert!(
            self >= earlier,
            "SimTime subtraction underflow: {self} - {earlier}"
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        assert!(
            self >= other,
            "SimDuration subtraction underflow: {self} - {other}"
        );
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(10)).as_millis(), 5);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_subtraction_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_millis(), 1);
    }

    #[test]
    fn serialization_delay_rounds_up() {
        // 1500 bytes at 12 Mbps = 1 ms exactly.
        assert_eq!(
            SimDuration::for_bytes_at_rate(1500, 12_000_000).as_micros(),
            1_000
        );
        // 1 byte at 1 Gbps = 8 ns, rounds up to 1 us.
        assert_eq!(
            SimDuration::for_bytes_at_rate(1, 1_000_000_000).as_micros(),
            1
        );
    }

    #[test]
    fn zero_rate_stalls() {
        assert_eq!(SimDuration::for_bytes_at_rate(100, 0), SimDuration::MAX);
    }

    #[test]
    fn mul_div_avoids_overflow() {
        let d = SimDuration::from_secs(1_000_000);
        assert_eq!(d.mul_div(7, 8).as_micros(), 875_000_000_000);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.001).as_micros(), 1_000);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }
}
