//! Hierarchical timer wheel for periodic session ticks.
//!
//! A fleet of thousands of sessions schedules the same few periodic timers
//! (frame capture, RTCP cadences, pacer polls) over and over. Keeping those
//! in the main binary-heap event queue makes every insert `O(log n)` in the
//! *total* number of pending timers; a [`TimerWheel`] makes insert and
//! cancel-free expiry `O(1)` amortized, and — crucially for the fleet — an
//! idle stretch costs one occupancy-bitmap probe per 256 ticks instead of
//! per-timer work, so sessions with nothing due cost zero work.
//!
//! The wheel has two levels of 256 slots. Level 0 covers the next
//! ~262 ms at ~1 ms granularity (one 1024 µs tick per slot); level 1 covers
//! the next ~67 s at ~262 ms per slot, cascading into level 0 as the cursor
//! crosses window boundaries. Timers beyond the level-1 horizon sit in an
//! overflow list that is reswept at each cascade.
//!
//! Determinism: every entry carries an insertion sequence number, and each
//! drain batch is sorted by `(fire time, insertion order)` before it is
//! handed back — the same total order a FIFO-tie-breaking event queue would
//! produce, independent of slot layout or cascade timing.

use crate::time::SimTime;

/// log2 of the tick granularity in microseconds (1024 µs ≈ 1 ms).
const TICK_SHIFT: u32 = 10;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 8;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS as u64) - 1;

#[derive(Debug)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

/// Cheap load counters a wheel keeps about itself (LinkStats-style).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerWheelStats {
    /// Timers currently pending.
    pub pending: u64,
    /// The most timers ever pending at once (survives [`TimerWheel::clear`]).
    pub high_water: u64,
    /// Level-1 → level-0 cascade operations performed.
    pub cascades: u64,
    /// Timers that ever landed in the overflow list (beyond the ~67 s
    /// level-1 horizon).
    pub overflowed: u64,
}

/// A two-level hierarchical timer wheel with deterministic drain order.
///
/// # Examples
///
/// ```
/// use converge_net::time::SimTime;
/// use converge_net::timer::TimerWheel;
///
/// let mut wheel = TimerWheel::new();
/// wheel.schedule(SimTime::from_millis(40), "rtcp");
/// wheel.schedule(SimTime::from_millis(33), "frame");
/// let mut due = Vec::new();
/// wheel.pop_due_into(SimTime::from_millis(50), &mut due);
/// assert_eq!(due, vec![(SimTime::from_millis(33), "frame"),
///                      (SimTime::from_millis(40), "rtcp")]);
/// ```
#[derive(Debug)]
pub struct TimerWheel<T> {
    l0: Vec<Vec<Entry<T>>>,
    l0_occ: [u64; 4],
    l1: Vec<Vec<Entry<T>>>,
    l1_occ: [u64; 4],
    overflow: Vec<Entry<T>>,
    /// Absolute tick (micros >> TICK_SHIFT) the cursor has advanced to.
    cursor: u64,
    next_seq: u64,
    len: usize,
    stats: TimerWheelStats,
    /// Reusable drain scratch, kept to avoid per-call allocation.
    scratch: Vec<Entry<T>>,
}

fn set_bit(occ: &mut [u64; 4], i: usize) {
    occ[i >> 6] |= 1u64 << (i & 63);
}

fn clear_bit(occ: &mut [u64; 4], i: usize) {
    occ[i >> 6] &= !(1u64 << (i & 63));
}

fn test_bit(occ: &[u64; 4], i: usize) -> bool {
    occ[i >> 6] & (1u64 << (i & 63)) != 0
}

/// First occupied slot index `>= from`, if any.
fn next_occupied(occ: &[u64; 4], from: usize) -> Option<usize> {
    if from >= SLOTS {
        return None;
    }
    let mut word = from >> 6;
    let mut bits = occ[word] & (!0u64 << (from & 63));
    loop {
        if bits != 0 {
            return Some((word << 6) + bits.trailing_zeros() as usize);
        }
        word += 1;
        if word == 4 {
            return None;
        }
        bits = occ[word];
    }
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel positioned at time zero.
    pub fn new() -> Self {
        TimerWheel {
            l0: (0..SLOTS).map(|_| Vec::new()).collect(),
            l0_occ: [0; 4],
            l1: (0..SLOTS).map(|_| Vec::new()).collect(),
            l1_occ: [0; 4],
            overflow: Vec::new(),
            cursor: 0,
            next_seq: 0,
            len: 0,
            stats: TimerWheelStats::default(),
            scratch: Vec::new(),
        }
    }

    /// Schedules `item` to fire at `at`. Times at or before the cursor fire
    /// on the next drain.
    pub fn schedule(&mut self, at: SimTime, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.place(Entry { at, seq, item });
        self.len += 1;
        self.stats.pending = self.len as u64;
        self.stats.high_water = self.stats.high_water.max(self.len as u64);
    }

    fn place(&mut self, entry: Entry<T>) {
        let tick = entry.at.as_micros() >> TICK_SHIFT;
        if tick <= self.cursor {
            // Overdue (or due this tick): park in the cursor slot so the
            // next drain picks it up.
            let idx = (self.cursor & SLOT_MASK) as usize;
            self.l0[idx].push(entry);
            set_bit(&mut self.l0_occ, idx);
        } else if tick >> SLOT_BITS == self.cursor >> SLOT_BITS {
            let idx = (tick & SLOT_MASK) as usize;
            self.l0[idx].push(entry);
            set_bit(&mut self.l0_occ, idx);
        } else if (tick >> SLOT_BITS) - (self.cursor >> SLOT_BITS) < SLOTS as u64 {
            let idx = ((tick >> SLOT_BITS) & SLOT_MASK) as usize;
            self.l1[idx].push(entry);
            set_bit(&mut self.l1_occ, idx);
        } else {
            self.stats.overflowed += 1;
            self.overflow.push(entry);
        }
    }

    /// The earliest pending fire time, if any timers are pending.
    pub fn next_deadline(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        // Level 0 holds strictly earlier deadlines than level 1 (same
        // window vs. later windows), so the first occupied L0 slot wins.
        if let Some(idx) = next_occupied(&self.l0_occ, (self.cursor & SLOT_MASK) as usize) {
            return self.l0[idx].iter().map(|e| e.at).min();
        }
        // Level 1: probe windows in cascade order (the wrap means slot
        // indexes are not time-ordered on their own).
        let base = self.cursor >> SLOT_BITS;
        for off in 1..SLOTS as u64 {
            let idx = ((base + off) & SLOT_MASK) as usize;
            if test_bit(&self.l1_occ, idx) {
                return self.l1[idx].iter().map(|e| e.at).min();
            }
        }
        self.overflow.iter().map(|e| e.at).min()
    }

    /// Appends every timer due at or before `now` to `out`, ordered by
    /// `(fire time, insertion order)`, and advances the cursor to `now`.
    pub fn pop_due_into(&mut self, now: SimTime, out: &mut Vec<(SimTime, T)>) {
        let now_tick = now.as_micros() >> TICK_SHIFT;
        if now_tick < self.cursor {
            return;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        loop {
            let window_end = self.cursor | SLOT_MASK;
            let stop_tick = now_tick.min(window_end);
            let mut from = (self.cursor & SLOT_MASK) as usize;
            let stop_idx = (stop_tick & SLOT_MASK) as usize;
            while let Some(idx) = next_occupied(&self.l0_occ, from) {
                if idx > stop_idx {
                    break;
                }
                let slot_tick = (self.cursor & !SLOT_MASK) | idx as u64;
                let slot = &mut self.l0[idx];
                if slot_tick < now_tick {
                    // Entirely in the past: take the whole slot.
                    self.len -= slot.len();
                    scratch.append(slot);
                    clear_bit(&mut self.l0_occ, idx);
                } else {
                    // The boundary tick may straddle `now`: filter by time.
                    let mut j = 0;
                    while j < slot.len() {
                        if slot[j].at <= now {
                            scratch.push(slot.swap_remove(j));
                            self.len -= 1;
                        } else {
                            j += 1;
                        }
                    }
                    if slot.is_empty() {
                        clear_bit(&mut self.l0_occ, idx);
                    }
                }
                from = idx + 1;
            }
            if now_tick > window_end {
                self.cursor = window_end + 1;
                self.cascade();
            } else {
                self.cursor = now_tick;
                break;
            }
        }
        // One total order regardless of slot layout or cascade history.
        scratch.sort_unstable_by_key(|e| (e.at, e.seq));
        out.extend(scratch.drain(..).map(|e| (e.at, e.item)));
        self.scratch = scratch;
        self.stats.pending = self.len as u64;
    }

    /// Moves the level-1 slot for the window the cursor just entered down
    /// into level 0, and pulls overflow entries that are now within the
    /// level-1 horizon.
    fn cascade(&mut self) {
        self.stats.cascades += 1;
        let idx = ((self.cursor >> SLOT_BITS) & SLOT_MASK) as usize;
        if test_bit(&self.l1_occ, idx) {
            let entries = std::mem::take(&mut self.l1[idx]);
            clear_bit(&mut self.l1_occ, idx);
            for entry in entries {
                self.place(entry);
            }
        }
        if !self.overflow.is_empty() {
            let horizon = self.cursor >> SLOT_BITS;
            let mut j = 0;
            while j < self.overflow.len() {
                let tick = self.overflow[j].at.as_micros() >> TICK_SHIFT;
                if (tick >> SLOT_BITS) - horizon < SLOTS as u64 {
                    let entry = self.overflow.swap_remove(j);
                    self.place(entry);
                } else {
                    j += 1;
                }
            }
        }
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Load counters (pending, high-water, cascades, overflow).
    pub fn stats(&self) -> TimerWheelStats {
        self.stats
    }

    /// Drops all pending timers and rewinds the cursor to time zero so the
    /// wheel can be reused for another run. High-water and cascade counters
    /// survive; `pending` resets.
    pub fn clear(&mut self) {
        for (i, slot) in self.l0.iter_mut().enumerate() {
            slot.clear();
            clear_bit(&mut self.l0_occ, i);
        }
        for (i, slot) in self.l1.iter_mut().enumerate() {
            slot.clear();
            clear_bit(&mut self.l1_occ, i);
        }
        self.overflow.clear();
        self.cursor = 0;
        self.next_seq = 0;
        self.len = 0;
        self.stats.pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn fires_in_time_then_insertion_order() {
        let mut w = TimerWheel::new();
        w.schedule(us(5_000), "b");
        w.schedule(us(1_000), "a");
        w.schedule(us(5_000), "c");
        let mut due = Vec::new();
        w.pop_due_into(us(10_000), &mut due);
        assert_eq!(
            due,
            vec![(us(1_000), "a"), (us(5_000), "b"), (us(5_000), "c")]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn not_due_yet_stays() {
        let mut w = TimerWheel::new();
        w.schedule(us(2_100), 1);
        let mut due = Vec::new();
        w.pop_due_into(us(2_000), &mut due);
        assert!(due.is_empty());
        assert_eq!(w.len(), 1);
        w.pop_due_into(us(2_100), &mut due);
        assert_eq!(due, vec![(us(2_100), 1)]);
    }

    #[test]
    fn same_tick_straddle_respects_exact_micros() {
        // Two timers inside the same ~1 ms tick: only the earlier fires.
        let mut w = TimerWheel::new();
        w.schedule(us(2_050), "late");
        w.schedule(us(2_010), "early");
        let mut due = Vec::new();
        w.pop_due_into(us(2_020), &mut due);
        assert_eq!(due, vec![(us(2_010), "early")]);
        w.pop_due_into(us(2_050), &mut due);
        assert_eq!(due.last(), Some(&(us(2_050), "late")));
    }

    #[test]
    fn overdue_schedule_fires_on_next_drain() {
        let mut w = TimerWheel::new();
        let mut due = Vec::new();
        w.pop_due_into(us(500_000), &mut due);
        w.schedule(us(100), "past");
        w.pop_due_into(us(500_000), &mut due);
        assert_eq!(due, vec![(us(100), "past")]);
    }

    #[test]
    fn cascades_across_level_one() {
        let mut w = TimerWheel::new();
        // ~40 s out: beyond level 0 (262 ms) but inside level 1 (67 s).
        w.schedule(SimTime::from_secs(40), "far");
        w.schedule(us(10_000), "near");
        assert_eq!(w.next_deadline(), Some(us(10_000)));
        let mut due = Vec::new();
        w.pop_due_into(SimTime::from_secs(1), &mut due);
        assert_eq!(due, vec![(us(10_000), "near")]);
        assert_eq!(w.next_deadline(), Some(SimTime::from_secs(40)));
        w.pop_due_into(SimTime::from_secs(39), &mut due);
        assert_eq!(due.len(), 1);
        w.pop_due_into(SimTime::from_secs(41), &mut due);
        assert_eq!(due.last(), Some(&(SimTime::from_secs(40), "far")));
        assert!(w.stats().cascades > 0);
    }

    #[test]
    fn overflow_beyond_level_one_horizon() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_secs(120), "way-out");
        assert_eq!(w.stats().overflowed, 1);
        assert_eq!(w.next_deadline(), Some(SimTime::from_secs(120)));
        let mut due = Vec::new();
        w.pop_due_into(SimTime::from_secs(119), &mut due);
        assert!(due.is_empty());
        w.pop_due_into(SimTime::from_secs(121), &mut due);
        assert_eq!(due, vec![(SimTime::from_secs(120), "way-out")]);
    }

    #[test]
    fn matches_naive_reference_over_dense_grid() {
        // Deterministic pseudo-random workload vs. a sorted-Vec reference.
        let mut w = TimerWheel::new();
        let mut reference: Vec<(SimTime, u64, u32)> = Vec::new();
        let mut state = 0x9E37_79B9u64;
        let mut now = SimTime::ZERO;
        let mut wheel_out = Vec::new();
        for step in 0..2_000u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(step as u64);
            let delay = state % 900_000; // up to 0.9 s ahead
            let at = now + SimDuration::from_micros(delay);
            w.schedule(at, step);
            // Schedule order (the FIFO tie-break key) is just `step` here.
            reference.push((at, step as u64, step));
            if step % 3 == 0 {
                now += SimDuration::from_micros(state % 50_000);
                wheel_out.clear();
                w.pop_due_into(now, &mut wheel_out);
                reference.sort_by_key(|&(at, s, _)| (at, s));
                let mut expect = Vec::new();
                let mut k = 0;
                while k < reference.len() {
                    if reference[k].0 <= now {
                        let (at, _, v) = reference.remove(k);
                        expect.push((at, v));
                    } else {
                        k += 1;
                    }
                }
                assert_eq!(wheel_out, expect, "mismatch at step {step}");
            }
        }
        assert_eq!(w.len(), reference.len());
    }

    #[test]
    fn idle_jump_is_cheap_and_correct() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_secs(30), 1);
        let mut due = Vec::new();
        // One giant idle jump over ~29 s of empty slots.
        w.pop_due_into(SimTime::from_secs(29), &mut due);
        assert!(due.is_empty());
        w.pop_due_into(SimTime::from_secs(31), &mut due);
        assert_eq!(due, vec![(SimTime::from_secs(30), 1)]);
    }

    #[test]
    fn clear_rewinds_for_reuse_but_keeps_high_water() {
        let mut w = TimerWheel::new();
        for i in 0..10u64 {
            w.schedule(us(i * 1_000), i);
        }
        assert_eq!(w.stats().high_water, 10);
        let mut due = Vec::new();
        w.pop_due_into(us(100_000), &mut due);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.next_deadline(), None);
        // Reuse from time zero.
        w.schedule(us(5), 99);
        due.clear();
        w.pop_due_into(us(10), &mut due);
        assert_eq!(due, vec![(us(5), 99)]);
        assert_eq!(w.stats().high_water, 10);
    }

    #[test]
    fn stats_track_pending() {
        let mut w = TimerWheel::new();
        w.schedule(us(1_000), ());
        w.schedule(us(2_000), ());
        assert_eq!(w.stats().pending, 2);
        let mut due = Vec::new();
        w.pop_due_into(us(1_500), &mut due);
        assert_eq!(w.stats().pending, 1);
    }
}
