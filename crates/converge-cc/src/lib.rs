//! # converge-cc
//!
//! The pluggable congestion-control boundary of the Converge reproduction.
//!
//! The paper takes its per-path rate signal from GCC, but nothing in the
//! scheduler/FEC loop depends on *how* that signal is produced — only on
//! the surface the sender drives: packet-timing ingestion from transport
//! feedback, RTT and loss-report ingestion, a target rate to read back,
//! and structured trace emission. [`CongestionController`] captures
//! exactly that surface; the sender holds one boxed controller per path
//! and stays agnostic to the algorithm behind it.
//!
//! Three implementations ship here:
//!
//! - [`converge_gcc::GccController`] — the paper's controller (delay
//!   trendline + loss, AIMD), adapted onto the trait below. Its trace
//!   output is unchanged (`gcc_state_changed`/`gcc_rate_changed`), so
//!   existing GCC timelines stay byte-identical.
//! - [`NadaController`] — NADA per RFC 8698: a unified congestion signal
//!   `x_curr = d_queue + DLOSS_REF · (p_loss/PLR_REF)²`, accelerated
//!   ramp-up bounded by γ, and a PI gradual-update mode.
//! - [`MpBbrController`] — a multipath-tuned BBR: windowed-max bandwidth
//!   and min-RTT probing with per-path staggered pacing-gain cycling.
//!
//! Callers select a controller with [`ControllerKind`] and tune it via
//! [`ControllerConfig`]; [`ControllerConfig::build`] produces the boxed
//! per-path instance.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod mpbbr;
pub mod nada;
pub mod sbd;

use converge_gcc::{GccConfig, GccController, PacketTiming};
use converge_net::{PathId, SimDuration, SimTime};
use converge_trace::TraceHandle;

pub use converge_trace::{CcAlgorithm, CcPhase};
pub use mpbbr::{MpBbrConfig, MpBbrController};
pub use nada::{NadaConfig, NadaController};
pub use sbd::{FlowSignature, SbdConfig, SbdDetector};

/// The rate-control surface the conference sender drives, one instance
/// per path (uncoupled congestion control, paper §4.1).
///
/// The trait is the exact set of calls the sender makes today: feedback
/// ingestion (`on_transport_feedback`, `on_rtt_sample`,
/// `on_loss_report_protected`), the target-rate/statistics read-back the
/// scheduler consumes, and the estimate-shaping hooks the session uses
/// for disabled paths (`cap_estimate`) and LIA-style coupling
/// (`set_increase_scale`, `delay_estimate_bps`).
pub trait CongestionController: Send + std::fmt::Debug {
    /// Which algorithm this controller implements (trace tagging).
    fn algorithm(&self) -> CcAlgorithm;

    /// Installs a trace handle and the path this controller governs; the
    /// controller then emits state- and rate-change events.
    fn set_trace(&mut self, trace: TraceHandle, path: PathId);

    /// Feeds transport feedback: the send/arrival timing of packets that
    /// reached the receiver on this path. `now` is the feedback
    /// processing time at the sender.
    fn on_transport_feedback(&mut self, now: SimTime, packets: &[PacketTiming]);

    /// Feeds an RTT sample (from SR/RR echo or probe timing).
    fn on_rtt_sample(&mut self, rtt: SimDuration);

    /// Feeds a receiver-report loss fraction together with the sender's
    /// current FEC protection ratio (repair/media); the controller keeps
    /// the raw loss for path statistics but reacts only to the loss that
    /// protection cannot absorb.
    fn on_loss_report_protected(&mut self, fraction_lost: f64, protection_ratio: f64);

    /// The controller's current target sending rate for the path.
    fn target_rate_bps(&self) -> u64;

    /// Smoothed RTT of the path, if measured.
    fn srtt(&self) -> Option<SimDuration>;

    /// Most recent loss fraction reported for the path.
    fn fraction_lost(&self) -> f64;

    /// Pulls the estimate down to at most `bps`. Called while a path is
    /// administratively disabled: no media flows, so the congestion
    /// signals go silent and the estimate would otherwise stay
    /// stale-high, bursting when the path is re-enabled.
    fn cap_estimate(&mut self, bps: f64);

    /// Sets the growth-step scale in (0, 1] (coupled congestion control:
    /// each subflow grows by its share of the aggregate).
    fn set_increase_scale(&mut self, scale: f64);

    /// The raw bandwidth estimate used for coupling computations (for
    /// GCC, the delay-based estimate; for NADA/BBR, the rate/bandwidth
    /// state itself).
    fn delay_estimate_bps(&self) -> f64;
}

/// GCC is the first implementor: the trait methods map one-to-one onto
/// the inherent `GccController` surface, so a GCC-driven session behaves
/// — and traces — exactly as it did before the trait existed.
impl CongestionController for GccController {
    fn algorithm(&self) -> CcAlgorithm {
        CcAlgorithm::Gcc
    }

    fn set_trace(&mut self, trace: TraceHandle, path: PathId) {
        GccController::set_trace(self, trace, path);
    }

    fn on_transport_feedback(&mut self, now: SimTime, packets: &[PacketTiming]) {
        GccController::on_transport_feedback(self, now, packets);
    }

    fn on_rtt_sample(&mut self, rtt: SimDuration) {
        GccController::on_rtt_sample(self, rtt);
    }

    fn on_loss_report_protected(&mut self, fraction_lost: f64, protection_ratio: f64) {
        GccController::on_loss_report_protected(self, fraction_lost, protection_ratio);
    }

    fn target_rate_bps(&self) -> u64 {
        GccController::target_rate_bps(self)
    }

    fn srtt(&self) -> Option<SimDuration> {
        GccController::srtt(self)
    }

    fn fraction_lost(&self) -> f64 {
        GccController::fraction_lost(self)
    }

    fn cap_estimate(&mut self, bps: f64) {
        GccController::cap_estimate(self, bps);
    }

    fn set_increase_scale(&mut self, scale: f64) {
        GccController::set_increase_scale(self, scale);
    }

    fn delay_estimate_bps(&self) -> f64 {
        GccController::delay_estimate_bps(self)
    }
}

/// Which congestion-control algorithm drives each path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControllerKind {
    /// Google Congestion Control — the paper's controller and the
    /// default.
    Gcc,
    /// NADA (RFC 8698).
    Nada,
    /// Multipath-tuned BBR.
    MpBbr,
}

impl ControllerKind {
    /// Every selectable controller, in shootout order.
    pub const ALL: [ControllerKind; 3] =
        [ControllerKind::Gcc, ControllerKind::Nada, ControllerKind::MpBbr];

    /// Canonical lowercase identifier (fingerprints, CLI arguments).
    pub fn id(self) -> &'static str {
        match self {
            ControllerKind::Gcc => "gcc",
            ControllerKind::Nada => "nada",
            ControllerKind::MpBbr => "mp-bbr",
        }
    }

    /// Human-readable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            ControllerKind::Gcc => "GCC",
            ControllerKind::Nada => "NADA",
            ControllerKind::MpBbr => "mp-BBR",
        }
    }

    /// Parses a CLI identifier (`gcc`, `nada`, `mp-bbr`/`mpbbr`/`bbr`).
    pub fn parse(s: &str) -> Option<ControllerKind> {
        match s {
            "gcc" => Some(ControllerKind::Gcc),
            "nada" => Some(ControllerKind::Nada),
            "mp-bbr" | "mpbbr" | "bbr" => Some(ControllerKind::MpBbr),
            _ => None,
        }
    }
}

/// Full controller selection: the kind plus per-algorithm tuning. The
/// session builder carries one of these; only the selected kind's config
/// is consulted at build time.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Which algorithm to instantiate per path.
    pub kind: ControllerKind,
    /// GCC tuning (used when `kind == Gcc`).
    pub gcc: GccConfig,
    /// NADA tuning (used when `kind == Nada`).
    pub nada: NadaConfig,
    /// mp-BBR tuning (used when `kind == MpBbr`).
    pub mpbbr: MpBbrConfig,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig::for_kind(ControllerKind::Gcc)
    }
}

impl ControllerConfig {
    /// Default tuning for the given kind.
    pub fn for_kind(kind: ControllerKind) -> Self {
        ControllerConfig {
            kind,
            gcc: GccConfig::default(),
            nada: NadaConfig::default(),
            mpbbr: MpBbrConfig::default(),
        }
    }

    /// Builds the boxed per-path controller instance. `path` lets
    /// path-aware controllers (mp-BBR's staggered gain cycling)
    /// desynchronize across the multipath set.
    pub fn build(&self, path: PathId) -> Box<dyn CongestionController> {
        match self.kind {
            ControllerKind::Gcc => Box::new(GccController::new(self.gcc)),
            ControllerKind::Nada => Box::new(NadaController::new(self.nada)),
            ControllerKind::MpBbr => Box::new(MpBbrController::new(self.mpbbr, path)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcc_adapter_preserves_inherent_behavior() {
        let mut boxed: Box<dyn CongestionController> =
            ControllerConfig::default().build(PathId(0));
        let mut inherent = GccController::new(GccConfig::default());
        assert_eq!(boxed.algorithm(), CcAlgorithm::Gcc);
        assert_eq!(boxed.target_rate_bps(), inherent.target_rate_bps());
        // The same input sequence drives both to the same state.
        let timings: Vec<PacketTiming> = (0..50)
            .map(|i| PacketTiming {
                send_time: SimTime::from_millis(i * 10),
                arrival_time: SimTime::from_millis(i * 10 + 30),
                size: 1200,
            })
            .collect();
        boxed.on_rtt_sample(SimDuration::from_millis(60));
        inherent.on_rtt_sample(SimDuration::from_millis(60));
        boxed.on_transport_feedback(SimTime::from_millis(530), &timings);
        inherent.on_transport_feedback(SimTime::from_millis(530), &timings);
        boxed.on_loss_report_protected(0.02, 0.01);
        inherent.on_loss_report_protected(0.02, 0.01);
        assert_eq!(boxed.target_rate_bps(), inherent.target_rate_bps());
        assert_eq!(boxed.srtt(), inherent.srtt());
        assert_eq!(boxed.fraction_lost(), inherent.fraction_lost());
        assert_eq!(boxed.delay_estimate_bps(), inherent.delay_estimate_bps());
    }

    #[test]
    fn kinds_build_matching_algorithms() {
        for kind in ControllerKind::ALL {
            let ctl = ControllerConfig::for_kind(kind).build(PathId(1));
            let expected = match kind {
                ControllerKind::Gcc => CcAlgorithm::Gcc,
                ControllerKind::Nada => CcAlgorithm::Nada,
                ControllerKind::MpBbr => CcAlgorithm::MpBbr,
            };
            assert_eq!(ctl.algorithm(), expected);
            assert!(ctl.target_rate_bps() > 0, "{}", kind.id());
        }
    }

    #[test]
    fn kind_ids_round_trip() {
        for kind in ControllerKind::ALL {
            assert_eq!(ControllerKind::parse(kind.id()), Some(kind));
            assert!(!kind.label().is_empty());
        }
        assert_eq!(ControllerKind::parse("bbr"), Some(ControllerKind::MpBbr));
        assert_eq!(ControllerKind::parse("cubic"), None);
    }
}
