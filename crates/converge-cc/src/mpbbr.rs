//! Multipath-tuned BBR congestion control.
//!
//! A model-based controller in the BBR family: it estimates the path's
//! bottleneck bandwidth (windowed max of delivery-rate samples) and its
//! propagation RTT (min filter with periodic re-probing), and derives the
//! sending rate as `pacing_gain · btl_bw` while walking the classic phase
//! machine:
//!
//! ```text
//! Startup ──(bw plateau)──▶ Drain ──(queue drained)──▶ ProbeBw ⟲
//!                                                        │ ▲
//!                                         (min-RTT stale) ▼ │ (probe done)
//!                                                      ProbeRtt
//! ```
//!
//! The multipath tuning is in `ProbeBw`: each path starts its pacing-gain
//! cycle at an offset derived from its [`PathId`], so concurrent subflows
//! of one call never probe (gain 1.25) the same instant — staggering the
//! extra in-flight data that probing injects instead of stacking it onto
//! a potentially shared bottleneck.

use std::collections::VecDeque;

use converge_gcc::PacketTiming;
use converge_net::{PathId, SimDuration, SimTime};
use converge_trace::{CcAlgorithm, CcPhase, TraceEvent, TraceHandle};

/// mp-BBR tuning. Gains and thresholds follow the BBR v1 draft; the
/// cycle offset is the multipath addition.
#[derive(Debug, Clone, Copy)]
pub struct MpBbrConfig {
    /// Target rate before any delivery-rate sample exists, bps.
    pub initial_rate_bps: f64,
    /// Rate floor, bps.
    pub min_rate_bps: f64,
    /// Rate ceiling, bps.
    pub max_rate_bps: f64,
    /// Pacing gain while searching for the bottleneck (2/ln 2).
    pub startup_gain: f64,
    /// Pacing gain while draining the startup queue.
    pub drain_gain: f64,
    /// The ProbeBw pacing-gain cycle (probe up, drain down, then cruise).
    pub probe_gains: [f64; 8],
    /// Window over which the bandwidth max-filter looks back.
    pub bw_window: SimDuration,
    /// Startup exits when bandwidth grew by less than this factor...
    pub full_bw_thresh: f64,
    /// ...for this many consecutive feedback rounds.
    pub full_bw_rounds: u32,
    /// How long a min-RTT sample stays fresh before ProbeRtt re-probes.
    pub probe_rtt_interval: SimDuration,
    /// How long ProbeRtt holds the rate down.
    pub probe_rtt_duration: SimDuration,
}

impl Default for MpBbrConfig {
    fn default() -> Self {
        MpBbrConfig {
            initial_rate_bps: 1_000_000.0,
            min_rate_bps: 150_000.0,
            max_rate_bps: 30_000_000.0,
            startup_gain: 2.885,
            drain_gain: 0.35,
            probe_gains: [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            bw_window: SimDuration::from_millis(2_500),
            full_bw_thresh: 1.25,
            full_bw_rounds: 3,
            probe_rtt_interval: SimDuration::from_millis(10_000),
            probe_rtt_duration: SimDuration::from_millis(200),
        }
    }
}

/// Per-path mp-BBR controller.
#[derive(Debug)]
pub struct MpBbrController {
    config: MpBbrConfig,
    /// Where this path starts in the ProbeBw gain cycle (staggers
    /// concurrent subflows; see module docs).
    cycle_offset: usize,
    /// Recent delivery-rate samples for the windowed max, (sampled-at,
    /// bps).
    bw_samples: VecDeque<(SimTime, f64)>,
    /// Current windowed-max bottleneck-bandwidth estimate, bps.
    bw_bps: f64,
    min_rtt: Option<SimDuration>,
    /// When the current min-RTT was last validated.
    min_rtt_at: SimTime,
    /// Latest feedback time; timestamps RTT samples, which arrive without
    /// a clock.
    last_now: SimTime,
    srtt: Option<SimDuration>,
    last_fraction_lost: f64,
    phase: CcPhase,
    /// Best bandwidth seen while checking for the startup plateau.
    full_bw: f64,
    full_bw_count: u32,
    cycle_index: usize,
    cycle_advanced_at: SimTime,
    drain_until: SimTime,
    probe_rtt_until: SimTime,
    increase_scale: f64,
    target_bps: f64,
    trace: TraceHandle,
    trace_path: PathId,
    last_traced_phase: Option<CcPhase>,
    last_traced_rate: Option<u64>,
}

impl MpBbrController {
    /// Creates a controller for `path`; the path id seeds the gain-cycle
    /// offset.
    pub fn new(config: MpBbrConfig, path: PathId) -> Self {
        let cycle_offset = path.0 as usize % config.probe_gains.len();
        MpBbrController {
            config,
            cycle_offset,
            bw_samples: VecDeque::new(),
            bw_bps: 0.0,
            min_rtt: None,
            min_rtt_at: SimTime::ZERO,
            last_now: SimTime::ZERO,
            srtt: None,
            last_fraction_lost: 0.0,
            phase: CcPhase::Startup,
            full_bw: 0.0,
            full_bw_count: 0,
            cycle_index: cycle_offset,
            cycle_advanced_at: SimTime::ZERO,
            drain_until: SimTime::ZERO,
            probe_rtt_until: SimTime::ZERO,
            increase_scale: 1.0,
            target_bps: config
                .initial_rate_bps
                .clamp(config.min_rate_bps, config.max_rate_bps),
            trace: TraceHandle::disabled(),
            trace_path: path,
            last_traced_phase: None,
            last_traced_rate: None,
        }
    }

    /// Current phase of the BBR state machine.
    pub fn phase(&self) -> CcPhase {
        self.phase
    }

    /// Current windowed-max bottleneck-bandwidth estimate, bps (0 before
    /// the first delivery-rate sample).
    pub fn bottleneck_bw_bps(&self) -> f64 {
        self.bw_bps
    }

    /// Where this path starts in the ProbeBw gain cycle.
    pub fn cycle_offset(&self) -> usize {
        self.cycle_offset
    }

    fn min_rtt_or_default(&self) -> SimDuration {
        self.min_rtt.unwrap_or(SimDuration::from_millis(100))
    }

    fn refresh_bw(&mut self, now: SimTime) {
        let horizon = SimTime::from_micros(
            now.as_micros().saturating_sub(self.config.bw_window.as_micros()),
        );
        while let Some(&(at, _)) = self.bw_samples.front() {
            if at < horizon {
                self.bw_samples.pop_front();
            } else {
                break;
            }
        }
        self.bw_bps = self
            .bw_samples
            .iter()
            .map(|&(_, bw)| bw)
            .fold(0.0, f64::max);
    }

    fn set_phase(&mut self, now: SimTime, phase: CcPhase) {
        self.phase = phase;
        if self.trace.is_enabled() && self.last_traced_phase != Some(phase) {
            self.last_traced_phase = Some(phase);
            self.trace.emit(
                now,
                TraceEvent::CcStateChanged {
                    path: self.trace_path,
                    algorithm: CcAlgorithm::MpBbr,
                    phase,
                },
            );
        }
    }

    fn trace_rate(&mut self, now: SimTime) {
        if !self.trace.is_enabled() {
            return;
        }
        let rate = self.target_bps as u64;
        // Only moves of ≥5 % land in the trace (same hysteresis as GCC),
        // so gain-cycling shows as a rate envelope, not a sawtooth spam.
        let moved = match self.last_traced_rate {
            Some(prev) => rate.abs_diff(prev) * 20 >= prev.max(1),
            None => true,
        };
        if moved {
            self.last_traced_rate = Some(rate);
            self.trace.emit(
                now,
                TraceEvent::CcRateChanged {
                    path: self.trace_path,
                    algorithm: CcAlgorithm::MpBbr,
                    rate_bps: rate,
                },
            );
        }
    }

    fn step_phase_machine(&mut self, now: SimTime) {
        match self.phase {
            CcPhase::Startup => {
                // Exit on a bandwidth plateau: growth under
                // full_bw_thresh for full_bw_rounds consecutive rounds.
                if self.bw_bps >= self.full_bw * self.config.full_bw_thresh {
                    self.full_bw = self.bw_bps;
                    self.full_bw_count = 0;
                } else {
                    self.full_bw_count += 1;
                    if self.full_bw_count >= self.config.full_bw_rounds {
                        self.drain_until = now + self.min_rtt_or_default();
                        self.set_phase(now, CcPhase::Drain);
                    }
                }
            }
            CcPhase::Drain => {
                if now >= self.drain_until {
                    self.cycle_index = self.cycle_offset;
                    self.cycle_advanced_at = now;
                    self.set_phase(now, CcPhase::ProbeBw);
                }
            }
            CcPhase::ProbeBw => {
                let min_rtt_stale = now.saturating_since(self.min_rtt_at)
                    >= self.config.probe_rtt_interval;
                if self.min_rtt.is_some() && min_rtt_stale {
                    self.probe_rtt_until = now + self.config.probe_rtt_duration;
                    self.set_phase(now, CcPhase::ProbeRtt);
                } else {
                    let cycle_len = self.min_rtt_or_default().max(SimDuration::from_millis(50));
                    if now.saturating_since(self.cycle_advanced_at) >= cycle_len {
                        self.cycle_index = (self.cycle_index + 1) % self.config.probe_gains.len();
                        self.cycle_advanced_at = now;
                    }
                }
            }
            CcPhase::ProbeRtt => {
                if now >= self.probe_rtt_until {
                    // Whatever RTT floor we saw while the queue was held
                    // down is the fresh propagation estimate.
                    self.min_rtt_at = now;
                    self.cycle_advanced_at = now;
                    self.set_phase(now, CcPhase::ProbeBw);
                }
            }
            // Not part of the BBR machine; unreachable for this
            // controller.
            CcPhase::RampUp | CcPhase::Gradual => {}
        }
    }

    fn update_target(&mut self) {
        if self.bw_samples.is_empty() {
            return;
        }
        let gain = match self.phase {
            CcPhase::Startup => self.config.startup_gain,
            CcPhase::Drain => self.config.drain_gain,
            CcPhase::ProbeBw => self.config.probe_gains[self.cycle_index],
            CcPhase::ProbeRtt => 0.5,
            CcPhase::RampUp | CcPhase::Gradual => 1.0,
        };
        // Coupled mode damps only the growth side (gains above 1), the
        // same asymmetry LIA applies to GCC's increase step.
        let gain = if gain > 1.0 {
            1.0 + (gain - 1.0) * self.increase_scale
        } else {
            gain
        };
        self.target_bps =
            (gain * self.bw_bps).clamp(self.config.min_rate_bps, self.config.max_rate_bps);
    }
}

impl crate::CongestionController for MpBbrController {
    fn algorithm(&self) -> CcAlgorithm {
        CcAlgorithm::MpBbr
    }

    fn set_trace(&mut self, trace: TraceHandle, path: PathId) {
        self.trace = trace;
        self.trace_path = path;
    }

    fn on_transport_feedback(&mut self, now: SimTime, packets: &[PacketTiming]) {
        self.last_now = now;
        // Delivery-rate sample: bytes delivered over the batch's arrival
        // span. One packet spans no time, so it cannot form a sample.
        if packets.len() >= 2 {
            let first = packets
                .iter()
                .map(|p| p.arrival_time)
                .min()
                .expect("non-empty batch");
            let last = packets
                .iter()
                .map(|p| p.arrival_time)
                .max()
                .expect("non-empty batch");
            let span = last.saturating_since(first);
            if span > SimDuration::ZERO {
                let bytes: usize = packets.iter().map(|p| p.size).sum();
                let sample = bytes as f64 * 8.0 / span.as_secs_f64();
                self.bw_samples.push_back((now, sample));
            }
        }
        // Min-RTT from one-way delays doubles as a freshness signal: any
        // packet at the observed floor revalidates the propagation
        // estimate.
        for p in packets {
            let owd = p.arrival_time.saturating_since(p.send_time);
            let rtt_proxy = owd + owd;
            match self.min_rtt {
                Some(cur) if rtt_proxy > cur => {}
                _ => {
                    self.min_rtt = Some(rtt_proxy);
                    self.min_rtt_at = now;
                }
            }
        }
        self.refresh_bw(now);
        if self.bw_samples.is_empty() {
            return;
        }
        self.step_phase_machine(now);
        self.update_target();
        self.trace_rate(now);
    }

    fn on_rtt_sample(&mut self, rtt: SimDuration) {
        self.srtt = Some(match self.srtt {
            None => rtt,
            Some(prev) => SimDuration::from_micros((prev.as_micros() * 7 + rtt.as_micros()) / 8),
        });
        match self.min_rtt {
            Some(cur) if rtt > cur => {}
            _ => {
                self.min_rtt = Some(rtt);
                self.min_rtt_at = self.last_now;
            }
        }
    }

    fn on_loss_report_protected(&mut self, fraction_lost: f64, _protection_ratio: f64) {
        self.last_fraction_lost = fraction_lost.clamp(0.0, 1.0);
    }

    fn target_rate_bps(&self) -> u64 {
        self.target_bps as u64
    }

    fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    fn fraction_lost(&self) -> f64 {
        self.last_fraction_lost
    }

    fn cap_estimate(&mut self, bps: f64) {
        // A disabled path's bandwidth model is stale: clamp both the
        // estimate and the retained samples so the window cannot re-grow
        // the old value the moment the path returns.
        self.bw_bps = self.bw_bps.min(bps);
        for (_, s) in self.bw_samples.iter_mut() {
            *s = s.min(bps);
        }
        self.target_bps = self.target_bps.min(bps).max(self.config.min_rate_bps);
    }

    fn set_increase_scale(&mut self, scale: f64) {
        self.increase_scale = scale.clamp(0.01, 1.0);
    }

    fn delay_estimate_bps(&self) -> f64 {
        if self.bw_bps > 0.0 {
            self.bw_bps
        } else {
            self.target_bps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CongestionController;

    /// Drives `duration_ms` of feedback at a steady delivery rate with a
    /// fixed 30 ms one-way delay, batched every 50 ms, and records each
    /// (phase, target) step.
    fn drive(
        ctl: &mut MpBbrController,
        start_ms: u64,
        duration_ms: u64,
        rate_bps: f64,
    ) -> Vec<(CcPhase, u64)> {
        let mut out = Vec::new();
        let batch_ms = 50;
        let bytes_per_batch = (rate_bps / 8.0 * batch_ms as f64 / 1_000.0) as usize;
        let pkts = (bytes_per_batch / 1_200).max(2);
        for b in 0..(duration_ms / batch_ms) {
            let t0 = start_ms + b * batch_ms;
            let batch: Vec<PacketTiming> = (0..pkts)
                .map(|i| {
                    let send =
                        SimTime::from_micros(t0 * 1_000 + i as u64 * batch_ms * 1_000 / pkts as u64);
                    PacketTiming {
                        send_time: send,
                        arrival_time: send + SimDuration::from_millis(30),
                        size: bytes_per_batch / pkts,
                    }
                })
                .collect();
            let now = batch.last().unwrap().arrival_time;
            ctl.on_transport_feedback(now, &batch);
            out.push((ctl.phase(), ctl.target_rate_bps()));
        }
        out
    }

    #[test]
    fn walks_startup_drain_probe_bw() {
        let mut ctl = MpBbrController::new(MpBbrConfig::default(), PathId(0));
        assert_eq!(ctl.phase(), CcPhase::Startup);
        let steps = drive(&mut ctl, 0, 5_000, 8_000_000.0);
        let phases: Vec<CcPhase> = steps.iter().map(|&(p, _)| p).collect();
        assert!(phases.contains(&CcPhase::Startup));
        assert!(phases.contains(&CcPhase::Drain));
        assert!(phases.contains(&CcPhase::ProbeBw));
        // Once probing, the estimate models the 8 Mbps feed.
        assert!(
            (ctl.bottleneck_bw_bps() - 8_000_000.0).abs() / 8_000_000.0 < 0.25,
            "bw estimate off: {}",
            ctl.bottleneck_bw_bps()
        );
    }

    #[test]
    fn probe_bw_cycles_the_pacing_gain() {
        let cfg = MpBbrConfig::default();
        let mut ctl = MpBbrController::new(cfg, PathId(0));
        let steps = drive(&mut ctl, 0, 8_000, 8_000_000.0);
        let probe_targets: Vec<u64> = steps
            .iter()
            .filter(|&&(p, _)| p == CcPhase::ProbeBw)
            .map(|&(_, t)| t)
            .collect();
        assert!(probe_targets.len() > 10, "must spend time in ProbeBw");
        // The 1.25 / 0.75 / 1.0 cycle must show as at least three
        // distinct target levels.
        let mut levels: Vec<u64> = probe_targets.clone();
        levels.sort_unstable();
        levels.dedup_by(|a, b| a.abs_diff(*b) * 20 < (*b).max(1));
        assert!(
            levels.len() >= 3,
            "gain cycling must produce distinct rate levels: {levels:?}"
        );
        let max = *probe_targets.iter().max().unwrap() as f64;
        let min = *probe_targets.iter().min().unwrap() as f64;
        assert!(max / min > 1.3, "probe/drain spread too small: {min}..{max}");
    }

    #[test]
    fn probe_rtt_fires_when_min_rtt_goes_stale() {
        let mut ctl = MpBbrController::new(MpBbrConfig::default(), PathId(0));
        // 15 s of steady feed at a constant 30 ms delay floor: the floor
        // is revalidated continuously, so ProbeRtt must NOT fire.
        let steps = drive(&mut ctl, 0, 15_000, 8_000_000.0);
        assert!(steps.iter().all(|&(p, _)| p != CcPhase::ProbeRtt));
        // Now the delay floor rises (standing queue): the old min-RTT
        // ages out and ProbeRtt must fire within the next interval.
        let mut saw_probe_rtt = false;
        for b in 0..240u64 {
            let t0 = 15_000 + b * 50;
            let batch: Vec<PacketTiming> = (0..4)
                .map(|i| {
                    let send = SimTime::from_micros(t0 * 1_000 + i * 12_000);
                    PacketTiming {
                        send_time: send,
                        arrival_time: send + SimDuration::from_millis(60),
                        size: 1_200,
                    }
                })
                .collect();
            let now = batch.last().unwrap().arrival_time;
            ctl.on_transport_feedback(now, &batch);
            if ctl.phase() == CcPhase::ProbeRtt {
                saw_probe_rtt = true;
            }
        }
        assert!(saw_probe_rtt, "stale min-RTT must trigger ProbeRtt");
    }

    #[test]
    fn paths_start_the_gain_cycle_at_different_offsets() {
        let cfg = MpBbrConfig::default();
        let a = MpBbrController::new(cfg, PathId(0));
        let b = MpBbrController::new(cfg, PathId(1));
        assert_ne!(a.cycle_offset(), b.cycle_offset());
        assert_eq!(
            MpBbrController::new(cfg, PathId(8)).cycle_offset(),
            a.cycle_offset(),
            "offset wraps modulo the cycle length"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut ctl = MpBbrController::new(MpBbrConfig::default(), PathId(2));
            drive(&mut ctl, 0, 6_000, 5_000_000.0)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cap_estimate_suppresses_stale_bandwidth() {
        let mut ctl = MpBbrController::new(MpBbrConfig::default(), PathId(0));
        drive(&mut ctl, 0, 5_000, 8_000_000.0);
        assert!(ctl.target_rate_bps() > 1_000_000);
        ctl.cap_estimate(500_000.0);
        assert!(ctl.target_rate_bps() <= 500_000);
        assert!(ctl.bottleneck_bw_bps() <= 500_000.0);
    }
}
