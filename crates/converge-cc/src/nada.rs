//! NADA congestion control (RFC 8698), adapted to Converge's per-path
//! feedback loop.
//!
//! NADA folds every congestion signal into one scalar, the *aggregate
//! congestion signal* `x_curr`:
//!
//! ```text
//! x_curr = d_queue + DLOSS_REF · (p_loss / PLR_REF)²
//! ```
//!
//! where `d_queue` is the filtered queuing delay (one-way delay above the
//! per-path minimum baseline) and the quadratic term converts observed
//! loss into an equivalent delay penalty. The controller then runs in one
//! of two modes (RFC 8698 §4.2–4.3):
//!
//! - **Accelerated ramp-up** while the path shows no congestion (no loss,
//!   queuing delay under `qeps_ms`): the rate jumps to
//!   `(1 + γ) · r_recv`, with `γ ≤ γ_max` shrinking as the feedback loop
//!   slows (`γ = min(γ_max, qbound / (rtt + δ + d_filt))`), so the
//!   transient queue the jump can build stays bounded by `qbound`.
//! - **Gradual update** otherwise: a PI controller steps the rate against
//!   the offset of `x_curr` from a rate-inverse reference point
//!   (`x_offset`) and against the signal's slope (`x_diff`), giving
//!   proportional fairness between NADA flows.

use std::collections::VecDeque;

use converge_gcc::PacketTiming;
use converge_net::{PathId, SimDuration, SimTime};
use converge_trace::{CcAlgorithm, CcPhase, TraceEvent, TraceHandle};

/// NADA tuning; defaults follow RFC 8698 §6.2 where the simulator has an
/// equivalent knob.
#[derive(Debug, Clone, Copy)]
pub struct NadaConfig {
    /// Starting rate, bps.
    pub initial_rate_bps: f64,
    /// Rate floor (RMIN), bps.
    pub min_rate_bps: f64,
    /// Rate ceiling (RMAX), bps.
    pub max_rate_bps: f64,
    /// Reference congestion level XREF, ms.
    pub xref_ms: f64,
    /// Scaling parameter for gradual rate updates (κ).
    pub kappa: f64,
    /// Scaling parameter for the derivative term (η).
    pub eta: f64,
    /// Upper bound of the RTT in the gradual-update loop (τ), ms.
    pub tau_ms: f64,
    /// Queuing-delay gate for accelerated ramp-up, ms: above this the
    /// controller drops to gradual mode.
    pub qeps_ms: f64,
    /// Upper bound on self-inflicted queuing delay during ramp-up
    /// (QBOUND), ms.
    pub qbound_ms: f64,
    /// Maximum ramp-up step γ_max (fractional rate increase per update).
    pub gamma_max: f64,
    /// Delay-measurement filtering latency (DFILT), ms — part of the
    /// ramp-up feedback-loop delay budget.
    pub dfilt_ms: f64,
    /// Reference delay penalty for loss at the reference rate
    /// (DLOSS), ms.
    pub dloss_ref_ms: f64,
    /// Reference packet-loss ratio the quadratic penalty normalizes to.
    pub plr_ref: f64,
    /// Weight of the flow (priority, RFC 8698 §5.1).
    pub priority: f64,
    /// Window over which the receive rate is measured.
    pub rate_window: SimDuration,
}

impl Default for NadaConfig {
    fn default() -> Self {
        NadaConfig {
            initial_rate_bps: 1_000_000.0,
            min_rate_bps: 150_000.0,
            max_rate_bps: 30_000_000.0,
            xref_ms: 10.0,
            kappa: 0.5,
            eta: 2.0,
            tau_ms: 500.0,
            qeps_ms: 10.0,
            qbound_ms: 50.0,
            gamma_max: 0.5,
            dfilt_ms: 120.0,
            dloss_ref_ms: 10.0,
            plr_ref: 0.01,
            priority: 1.0,
            rate_window: SimDuration::from_millis(1_000),
        }
    }
}

/// Per-path NADA controller.
#[derive(Debug)]
pub struct NadaController {
    config: NadaConfig,
    rate_bps: f64,
    /// Minimum one-way delay observed on the path, µs (the delay
    /// baseline; queuing delay is measured above it).
    d_base_us: Option<u64>,
    /// Filtered queuing delay, ms.
    d_queue_ms: f64,
    seen_delay: bool,
    /// Previous aggregate congestion signal, ms.
    x_prev_ms: f64,
    /// Smoothed loss ratio the controller reacts to (protection-adjusted).
    p_loss: f64,
    last_update: Option<SimTime>,
    srtt: Option<SimDuration>,
    last_fraction_lost: f64,
    increase_scale: f64,
    /// (arrival time, bytes) of recent packets for receive-rate
    /// measurement.
    recent: VecDeque<(SimTime, usize)>,
    phase: CcPhase,
    trace: TraceHandle,
    trace_path: PathId,
    last_traced_phase: Option<CcPhase>,
    last_traced_rate: Option<u64>,
}

impl NadaController {
    /// Creates a controller.
    pub fn new(config: NadaConfig) -> Self {
        NadaController {
            config,
            rate_bps: config
                .initial_rate_bps
                .clamp(config.min_rate_bps, config.max_rate_bps),
            d_base_us: None,
            d_queue_ms: 0.0,
            seen_delay: false,
            x_prev_ms: 0.0,
            p_loss: 0.0,
            last_update: None,
            srtt: None,
            last_fraction_lost: 0.0,
            increase_scale: 1.0,
            recent: VecDeque::new(),
            phase: CcPhase::RampUp,
            trace: TraceHandle::disabled(),
            trace_path: PathId(0),
            last_traced_phase: None,
            last_traced_rate: None,
        }
    }

    /// Current operating mode (ramp-up vs gradual).
    pub fn phase(&self) -> CcPhase {
        self.phase
    }

    /// Current aggregate congestion signal `x_curr`, ms.
    pub fn congestion_signal_ms(&self) -> f64 {
        let loss_term =
            self.config.dloss_ref_ms * (self.p_loss / self.config.plr_ref).powi(2);
        (self.d_queue_ms + loss_term).min(10_000.0)
    }

    /// Measured receive rate over the rate window ending at `now`. Early
    /// in a path's life the window shrinks to the observed span (floored
    /// at 100 ms) so start-up is not under-measured.
    pub fn receive_rate_bps(&self, now: SimTime) -> f64 {
        let window_start = SimTime::from_micros(
            now.as_micros()
                .saturating_sub(self.config.rate_window.as_micros()),
        );
        let Some(&(first_at, _)) = self.recent.front() else {
            return 0.0;
        };
        let effective_start = window_start.max(first_at);
        let span = now
            .saturating_since(effective_start)
            .max(SimDuration::from_millis(100));
        let bytes: usize = self
            .recent
            .iter()
            .filter(|(at, _)| *at >= effective_start)
            .map(|(_, b)| *b)
            .sum();
        bytes as f64 * 8.0 / span.as_secs_f64()
    }

    fn set_phase(&mut self, now: SimTime, phase: CcPhase) {
        self.phase = phase;
        if self.trace.is_enabled() && self.last_traced_phase != Some(phase) {
            self.last_traced_phase = Some(phase);
            self.trace.emit(
                now,
                TraceEvent::CcStateChanged {
                    path: self.trace_path,
                    algorithm: CcAlgorithm::Nada,
                    phase,
                },
            );
        }
    }

    fn trace_rate(&mut self, now: SimTime) {
        if !self.trace.is_enabled() {
            return;
        }
        let rate = self.rate_bps as u64;
        // Record only moves of ≥5 % so the timeline captures the
        // envelope, not every PI step.
        let moved = match self.last_traced_rate {
            Some(prev) => rate.abs_diff(prev) * 20 >= prev.max(1),
            None => true,
        };
        if moved {
            self.last_traced_rate = Some(rate);
            self.trace.emit(
                now,
                TraceEvent::CcRateChanged {
                    path: self.trace_path,
                    algorithm: CcAlgorithm::Nada,
                    rate_bps: rate,
                },
            );
        }
    }
}

impl crate::CongestionController for NadaController {
    fn algorithm(&self) -> CcAlgorithm {
        CcAlgorithm::Nada
    }

    fn set_trace(&mut self, trace: TraceHandle, path: PathId) {
        self.trace = trace;
        self.trace_path = path;
    }

    fn on_transport_feedback(&mut self, now: SimTime, packets: &[PacketTiming]) {
        if packets.is_empty() {
            return;
        }
        // Delay baseline + per-batch minimum queuing delay (the batch
        // minimum approximates RFC 8698's min-filter over the feedback
        // interval and is robust to intra-batch jitter).
        let mut batch_queue_us: Option<u64> = None;
        for p in packets {
            self.recent.push_back((p.arrival_time, p.size));
            let owd_us = p.arrival_time.saturating_since(p.send_time).as_micros();
            let base = match self.d_base_us {
                Some(b) => b.min(owd_us),
                None => owd_us,
            };
            self.d_base_us = Some(base);
            let queued = owd_us - base.min(owd_us);
            batch_queue_us = Some(batch_queue_us.map_or(queued, |q| q.min(queued)));
        }
        // Trim the receive-rate window.
        let keep_from = SimTime::from_micros(
            now.as_micros()
                .saturating_sub(self.config.rate_window.as_micros() * 2),
        );
        while let Some(&(at, _)) = self.recent.front() {
            if at < keep_from {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        if let Some(q_us) = batch_queue_us {
            let q_ms = q_us as f64 / 1_000.0;
            self.d_queue_ms = if self.seen_delay {
                0.9 * self.d_queue_ms + 0.1 * q_ms
            } else {
                q_ms
            };
            self.seen_delay = true;
        }

        let x_curr = self.congestion_signal_ms();
        let delta_ms = match self.last_update {
            Some(prev) => (now.saturating_since(prev).as_micros() as f64 / 1_000.0)
                .clamp(10.0, 1_000.0),
            None => 100.0,
        };
        self.last_update = Some(now);
        let rtt_ms = self
            .srtt
            .map(|d| d.as_micros() as f64 / 1_000.0)
            .unwrap_or(100.0);

        if self.p_loss <= 1e-9 && self.d_queue_ms < self.config.qeps_ms {
            // Accelerated ramp-up: jump toward (1+γ)·r_recv, where γ
            // shrinks with the feedback-loop delay so the transient queue
            // the jump builds stays under qbound.
            self.set_phase(now, CcPhase::RampUp);
            let gamma = (self.config.qbound_ms / (rtt_ms + delta_ms + self.config.dfilt_ms))
                .min(self.config.gamma_max)
                * self.increase_scale;
            let recv = self.receive_rate_bps(now);
            if recv > 0.0 {
                self.rate_bps = self.rate_bps.max((1.0 + gamma) * recv);
            }
        } else {
            // Gradual update: PI step against the reference offset and
            // the signal slope.
            self.set_phase(now, CcPhase::Gradual);
            let x_offset = x_curr
                - self.config.priority * self.config.xref_ms * self.config.max_rate_bps
                    / self.rate_bps.max(self.config.min_rate_bps);
            let x_diff = x_curr - self.x_prev_ms;
            let tau = self.config.tau_ms;
            let step = self.config.kappa * (delta_ms / tau) * (x_offset / tau) * self.rate_bps
                + self.config.kappa * self.config.eta * (x_diff / tau) * self.rate_bps;
            self.rate_bps -= step;
        }
        self.rate_bps = self
            .rate_bps
            .clamp(self.config.min_rate_bps, self.config.max_rate_bps);
        self.x_prev_ms = x_curr;
        self.trace_rate(now);
    }

    fn on_rtt_sample(&mut self, rtt: SimDuration) {
        self.srtt = Some(match self.srtt {
            None => rtt,
            Some(prev) => SimDuration::from_micros((prev.as_micros() * 7 + rtt.as_micros()) / 8),
        });
    }

    fn on_loss_report_protected(&mut self, fraction_lost: f64, protection_ratio: f64) {
        self.last_fraction_lost = fraction_lost.clamp(0.0, 1.0);
        let effective = (self.last_fraction_lost - protection_ratio.max(0.0)).max(0.0);
        self.p_loss = 0.875 * self.p_loss + 0.125 * effective;
        // Snap the EWMA tail to zero so loss-free paths re-enter the
        // accelerated ramp-up instead of creeping asymptotically.
        if effective <= 0.0 && self.p_loss < 1e-4 {
            self.p_loss = 0.0;
        }
    }

    fn target_rate_bps(&self) -> u64 {
        self.rate_bps as u64
    }

    fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    fn fraction_lost(&self) -> f64 {
        self.last_fraction_lost
    }

    fn cap_estimate(&mut self, bps: f64) {
        self.rate_bps = self.rate_bps.min(bps).max(self.config.min_rate_bps);
    }

    fn set_increase_scale(&mut self, scale: f64) {
        self.increase_scale = scale.clamp(0.01, 1.0);
    }

    fn delay_estimate_bps(&self) -> f64 {
        self.rate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CongestionController;

    /// Feeds `duration_ms` of packets arriving at `rate_bps` with a fixed
    /// base delay plus `queue_ms` of standing queue, in 10-packet batches.
    fn feedback_at_rate(
        ctl: &mut NadaController,
        start_ms: u64,
        duration_ms: u64,
        rate_bps: f64,
        queue_ms: u64,
    ) {
        let pkt_interval_us = (1_200.0 * 8.0 / rate_bps * 1e6) as u64;
        let n = (duration_ms * 1_000 / pkt_interval_us.max(1)) as usize;
        let mut batch = Vec::new();
        for i in 0..n {
            let send = SimTime::from_micros(start_ms * 1_000 + i as u64 * pkt_interval_us);
            batch.push(PacketTiming {
                send_time: send,
                arrival_time: send + SimDuration::from_micros(30_000 + queue_ms * 1_000),
                size: 1_200,
            });
            if batch.len() == 10 {
                let now = batch.last().unwrap().arrival_time;
                ctl.on_transport_feedback(now, &batch);
                batch.clear();
            }
        }
    }

    #[test]
    fn ramp_up_is_bounded_by_gamma() {
        let cfg = NadaConfig::default();
        let mut ctl = NadaController::new(cfg);
        ctl.on_rtt_sample(SimDuration::from_millis(60));
        let mut prev = ctl.target_rate_bps() as f64;
        for sec in 0..5 {
            feedback_at_rate(&mut ctl, sec * 1_000, 1_000, 8_000_000.0, 0);
            for _ in 0..10 {
                ctl.on_loss_report_protected(0.0, 0.0);
            }
            let rate = ctl.target_rate_bps() as f64;
            assert!(rate >= prev, "ramp-up never decreases: {prev} -> {rate}");
            prev = rate;
        }
        assert_eq!(ctl.phase(), CcPhase::RampUp);
        let rate = ctl.target_rate_bps() as f64;
        assert!(rate > cfg.initial_rate_bps, "must ramp above start: {rate}");
        // The jump target is (1+γ)·r_recv with γ ≤ γ_max, so the rate can
        // never exceed the delivered rate by more than the γ_max factor.
        assert!(
            rate <= (1.0 + cfg.gamma_max) * 8_000_000.0 * 1.05,
            "ramp-up overshoots the γ bound: {rate}"
        );
    }

    #[test]
    fn pi_decreases_rate_under_queuing_delay() {
        let mut ctl = NadaController::new(NadaConfig::default());
        ctl.on_rtt_sample(SimDuration::from_millis(60));
        // Establish the delay baseline and a working rate.
        feedback_at_rate(&mut ctl, 0, 3_000, 8_000_000.0, 0);
        let before = ctl.target_rate_bps();
        // A standing 80 ms queue pushes x_curr far above the reference
        // point: the PI controller must back off.
        feedback_at_rate(&mut ctl, 3_000, 2_000, 8_000_000.0, 80);
        assert_eq!(ctl.phase(), CcPhase::Gradual);
        let after = ctl.target_rate_bps();
        assert!(after < before, "PI must back off: {before} -> {after}");
    }

    #[test]
    fn pi_increases_rate_when_signal_is_below_reference() {
        let mut ctl = NadaController::new(NadaConfig::default());
        ctl.on_rtt_sample(SimDuration::from_millis(60));
        feedback_at_rate(&mut ctl, 0, 1_000, 2_000_000.0, 0);
        // A trickle of loss keeps the controller in gradual mode, but at
        // a low rate the reference term dominates (x_offset < 0): the PI
        // sign pushes the rate up, not down.
        ctl.on_loss_report_protected(0.02, 0.0);
        let before = ctl.target_rate_bps();
        feedback_at_rate(&mut ctl, 1_000, 2_000, 2_000_000.0, 0);
        assert_eq!(ctl.phase(), CcPhase::Gradual);
        let after = ctl.target_rate_bps();
        assert!(after > before, "PI must grow below reference: {before} -> {after}");
    }

    #[test]
    fn heavy_loss_shows_in_signal_and_rate() {
        let mut ctl = NadaController::new(NadaConfig::default());
        ctl.on_rtt_sample(SimDuration::from_millis(60));
        feedback_at_rate(&mut ctl, 0, 3_000, 6_000_000.0, 0);
        let before = ctl.target_rate_bps();
        for _ in 0..10 {
            ctl.on_loss_report_protected(0.3, 0.0);
        }
        assert!(ctl.congestion_signal_ms() > 100.0);
        feedback_at_rate(&mut ctl, 3_000, 1_000, 6_000_000.0, 0);
        assert!(ctl.target_rate_bps() < before);
        assert!((ctl.fraction_lost() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn respects_floor_ceiling_and_cap() {
        let cfg = NadaConfig::default();
        let mut ctl = NadaController::new(cfg);
        ctl.cap_estimate(10_000.0);
        assert_eq!(ctl.target_rate_bps() as f64, cfg.min_rate_bps);
        // Sustained clean traffic cannot push past the ceiling.
        ctl.on_rtt_sample(SimDuration::from_millis(20));
        for sec in 0..20 {
            feedback_at_rate(&mut ctl, sec * 1_000, 1_000, 60_000_000.0, 0);
        }
        assert!(ctl.target_rate_bps() as f64 <= cfg.max_rate_bps);
    }
}
