//! Shared-bottleneck detection per RFC 8382 (skewness-based).
//!
//! When many flows traverse one queue, their one-way-delay processes share
//! a statistical fingerprint: the same skewness drift as the queue fills
//! and drains, a proportional variability, and correlated loss episodes.
//! RFC 8382 groups flows by comparing three per-flow summary statistics —
//! `skew_est`, `var_est` (mean absolute deviation), and `freq_est` (loss
//! frequency) — computed over a sliding window of fixed base intervals.
//!
//! The fleet engine samples each member's uplink OWD at the SFU, closes a
//! base interval every `T`, and asks [`SbdDetector::groups`] for the
//! current clustering; members that land in one group get their
//! controllers' additive-increase scaled by `1/group_size` (the same
//! coupling surface LIA uses), so a shared bottleneck is probed once, not
//! `N` times.
//!
//! Everything here is integer-time in, `f64` summary out, with a
//! deterministic greedy clustering (stable flow order, no RNG), so fleet
//! folds remain byte-identical across shard counts.

use converge_net::{SimDuration, SimTime};

/// Tuning for [`SbdDetector`]. Defaults follow RFC 8382 §2.2/§3.3
/// recommendations (T = 350 ms, N = 50, c_s = 0.1, p_v = 0.7).
#[derive(Debug, Clone, Copy)]
pub struct SbdConfig {
    /// Base interval `T` over which per-interval statistics are computed.
    pub interval: SimDuration,
    /// Number of base intervals `N` in the sliding summary window.
    pub window: usize,
    /// Skewness split threshold: flows whose `skew_est` differ by more
    /// than this never share a group (grouping axis 1).
    pub skew_tolerance: f64,
    /// Proportional MAD split threshold `p_v`: within a skewness cluster,
    /// flows whose `var_est` differ by more than this *fraction* of the
    /// larger one are split apart (grouping axis 2).
    pub mad_tolerance: f64,
    /// Loss-frequency split threshold (grouping axis 3).
    pub freq_tolerance: f64,
    /// Congestion gate `c_s` (RFC 8382 §3.3.1): a flow only participates
    /// in grouping while its `skew_est` is below this — a standing queue
    /// concentrates OWD samples above their mean, pulling `skew_est`
    /// toward −1, while an idle path shows no such left skew.
    pub congestion_skew_gate: f64,
    /// Minimum mean-absolute-deviation (µs) a flow needs to be grouped: a
    /// flow with essentially flat OWD carries no queue signal to cluster
    /// on, whatever its skewness says.
    pub min_mad_us: f64,
    /// Minimum OWD samples a flow needs in the window to be grouped.
    pub min_samples: u64,
}

impl Default for SbdConfig {
    fn default() -> Self {
        SbdConfig {
            interval: SimDuration::from_millis(350),
            window: 50,
            skew_tolerance: 0.1,
            mad_tolerance: 0.7,
            freq_tolerance: 0.1,
            congestion_skew_gate: 0.1,
            min_mad_us: 200.0,
            min_samples: 20,
        }
    }
}

/// The RFC 8382 summary statistics for one flow over the current window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSignature {
    /// Skewness estimate: mean over the window of
    /// `(samples below the window mean − samples above) / samples`.
    /// Negative while a queue is filling.
    pub skew_est: f64,
    /// Mean absolute deviation of OWD around each interval mean, µs.
    pub var_est: f64,
    /// Fraction of base intervals that saw at least one loss event.
    pub freq_est: f64,
    /// OWD samples contributing to the window.
    pub samples: u64,
}

/// Per-interval accumulator for one flow.
#[derive(Debug, Clone, Copy, Default)]
struct IntervalAcc {
    owd_sum_us: u128,
    count: u64,
    below_mean: u64,
    above_mean: u64,
    abs_dev_sum_us: u128,
    losses: u64,
}

/// Closed-interval summary kept in the sliding window.
#[derive(Debug, Clone, Copy, Default)]
struct IntervalStat {
    skew_base: f64,
    mad_us: f64,
    count: u64,
    had_loss: bool,
}

#[derive(Debug, Clone)]
struct Flow {
    current: IntervalAcc,
    /// Ring of the last `window` closed intervals.
    history: Vec<IntervalStat>,
    head: usize,
    filled: usize,
    /// Long-run mean OWD (µs) used as the skewness reference, updated at
    /// interval close from the window it summarizes (RFC 8382 computes
    /// skewness against `mean_delay` from the previous window).
    reference_mean_us: f64,
}

impl Flow {
    fn new(window: usize) -> Self {
        Flow {
            current: IntervalAcc::default(),
            history: vec![IntervalStat::default(); window],
            head: 0,
            filled: 0,
            reference_mean_us: 0.0,
        }
    }

    fn close_interval(&mut self) {
        let acc = std::mem::take(&mut self.current);
        let stat = if acc.count > 0 {
            let mean = acc.owd_sum_us as f64 / acc.count as f64;
            // Seed the reference on the very first populated interval, then
            // track it with an EWMA so skewness is judged against the
            // flow's recent history, not its lifetime average.
            if self.filled == 0 && self.reference_mean_us == 0.0 {
                self.reference_mean_us = mean;
            } else {
                self.reference_mean_us = 0.9 * self.reference_mean_us + 0.1 * mean;
            }
            IntervalStat {
                skew_base: (acc.below_mean as f64 - acc.above_mean as f64) / acc.count as f64,
                mad_us: acc.abs_dev_sum_us as f64 / acc.count as f64,
                count: acc.count,
                had_loss: acc.losses > 0,
            }
        } else {
            IntervalStat {
                skew_base: 0.0,
                mad_us: 0.0,
                count: 0,
                had_loss: acc.losses > 0,
            }
        };
        self.history[self.head] = stat;
        self.head = (self.head + 1) % self.history.len();
        self.filled = (self.filled + 1).min(self.history.len());
    }

    fn signature(&self) -> FlowSignature {
        let mut skew_sum = 0.0;
        let mut mad_weighted = 0.0;
        let mut samples = 0u64;
        let mut populated = 0usize;
        let mut lossy = 0usize;
        for stat in self.history.iter().take(self.filled) {
            if stat.count > 0 {
                skew_sum += stat.skew_base;
                mad_weighted += stat.mad_us * stat.count as f64;
                samples += stat.count;
                populated += 1;
            }
            if stat.had_loss {
                lossy += 1;
            }
        }
        FlowSignature {
            skew_est: if populated > 0 {
                skew_sum / populated as f64
            } else {
                0.0
            },
            var_est: if samples > 0 {
                mad_weighted / samples as f64
            } else {
                0.0
            },
            freq_est: if self.filled > 0 {
                lossy as f64 / self.filled as f64
            } else {
                0.0
            },
            samples,
        }
    }
}

/// Skewness-based shared-bottleneck detector over a fixed flow set.
///
/// Feed OWD samples and loss events as they happen, close base intervals
/// on a timer, and read back [`groups`](SbdDetector::groups): a
/// deterministic partition of the flow indices, singletons omitted.
#[derive(Debug, Clone)]
pub struct SbdDetector {
    config: SbdConfig,
    flows: Vec<Flow>,
    intervals_closed: u64,
}

impl SbdDetector {
    /// Creates a detector tracking `n_flows` flows.
    pub fn new(n_flows: usize, config: SbdConfig) -> Self {
        SbdDetector {
            config,
            flows: (0..n_flows).map(|_| Flow::new(config.window.max(1))).collect(),
            intervals_closed: 0,
        }
    }

    /// The configured base interval (callers drive the close cadence).
    pub fn interval(&self) -> SimDuration {
        self.config.interval
    }

    /// Records one one-way-delay sample for `flow`. `sent_at`/`arrived_at`
    /// come from the packet clock; only their difference is used, so a
    /// constant clock offset (which real OWD measurement suffers) cancels
    /// out of the skewness statistic exactly as RFC 8382 intends.
    pub fn on_owd_sample(&mut self, flow: usize, sent_at: SimTime, arrived_at: SimTime) {
        let owd_us = arrived_at.saturating_since(sent_at).as_micros();
        let f = &mut self.flows[flow];
        let acc = &mut f.current;
        acc.owd_sum_us += owd_us as u128;
        acc.count += 1;
        let reference = f.reference_mean_us;
        if reference > 0.0 {
            let owd = owd_us as f64;
            if owd < reference {
                acc.below_mean += 1;
            } else if owd > reference {
                acc.above_mean += 1;
            }
            acc.abs_dev_sum_us += (owd - reference).abs() as u128;
        }
    }

    /// Records a loss event for `flow` in the current interval.
    pub fn on_loss(&mut self, flow: usize) {
        self.flows[flow].current.losses += 1;
    }

    /// Closes the current base interval for every flow.
    pub fn close_interval(&mut self) {
        for flow in &mut self.flows {
            flow.close_interval();
        }
        self.intervals_closed += 1;
    }

    /// Base intervals closed so far.
    pub fn intervals_closed(&self) -> u64 {
        self.intervals_closed
    }

    /// The current per-flow summary statistics.
    pub fn signatures(&self) -> Vec<FlowSignature> {
        self.flows.iter().map(Flow::signature).collect()
    }

    /// Groups flows that currently share a bottleneck.
    ///
    /// Deterministic greedy clustering in flow-index order along the three
    /// RFC 8382 axes (skewness, proportional MAD, loss frequency), gated
    /// by the congestion test: only flows whose `skew_est` sits below
    /// `congestion_skew_gate` with enough samples participate. Singleton
    /// groups are omitted; returned groups list flow indices in ascending
    /// order and groups sort by their first member.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let sigs = self.signatures();
        let candidates: Vec<usize> = (0..sigs.len())
            .filter(|&i| {
                sigs[i].samples >= self.config.min_samples
                    && sigs[i].skew_est < self.config.congestion_skew_gate
                    && sigs[i].var_est >= self.config.min_mad_us
            })
            .collect();
        let mut assigned = vec![false; sigs.len()];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for &i in &candidates {
            if assigned[i] {
                continue;
            }
            let mut group = vec![i];
            assigned[i] = true;
            for &j in &candidates {
                if assigned[j] {
                    continue;
                }
                if self.same_bottleneck(&sigs[i], &sigs[j]) {
                    group.push(j);
                    assigned[j] = true;
                }
            }
            if group.len() > 1 {
                groups.push(group);
            }
        }
        groups
    }

    fn same_bottleneck(&self, a: &FlowSignature, b: &FlowSignature) -> bool {
        if (a.skew_est - b.skew_est).abs() > self.config.skew_tolerance {
            return false;
        }
        let larger_mad = a.var_est.max(b.var_est);
        if larger_mad > 0.0
            && (a.var_est - b.var_est).abs() > self.config.mad_tolerance * larger_mad
        {
            return false;
        }
        (a.freq_est - b.freq_est).abs() <= self.config.freq_tolerance
    }

    /// The coupled additive-increase scale for each flow given the current
    /// grouping: `1/group_size` for grouped flows, `1.0` for singletons.
    /// This is the value to pass to `CongestionController::set_increase_scale`.
    pub fn increase_scales(&self) -> Vec<f64> {
        let mut scales = vec![1.0; self.flows.len()];
        for group in self.groups() {
            let scale = 1.0 / group.len() as f64;
            for flow in group {
                scales[flow] = scale;
            }
        }
        scales
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SbdConfig {
        SbdConfig {
            window: 10,
            min_samples: 10,
            ..SbdConfig::default()
        }
    }

    /// Drives `detector` with a synthetic OWD process per flow: a shared
    /// sawtooth queue delay for flows in `shared`, flat noise for others.
    /// A congested bottleneck's OWD process: the queue fills quickly then
    /// stands near-full for most of each interval, so samples concentrate
    /// above the running mean and `skew_est` goes negative — the RFC 8382
    /// left-skew fingerprint.
    fn standing_queue_us(k: u64) -> u64 {
        (k * 4_000).min(30_000)
    }

    fn drive(detector: &mut SbdDetector, shared: &[usize], flat: &[usize]) {
        let mut t = SimTime::ZERO;
        for _ in 0..12u64 {
            for k in 0..35u64 {
                let sent = t + SimDuration::from_millis(k * 10);
                for &f in shared {
                    let arrival =
                        sent + SimDuration::from_micros(20_000 + standing_queue_us(k));
                    detector.on_owd_sample(f, sent, arrival);
                }
                for &f in flat {
                    let arrival = sent
                        + SimDuration::from_micros(30_000 + (k % 2) * 100);
                    detector.on_owd_sample(f, sent, arrival);
                }
            }
            t += SimDuration::from_millis(350);
            detector.close_interval();
        }
    }

    #[test]
    fn shared_queue_flows_group_together() {
        let mut d = SbdDetector::new(4, cfg());
        drive(&mut d, &[0, 2], &[1, 3]);
        let groups = d.groups();
        assert_eq!(groups, vec![vec![0, 2]], "signatures: {:?}", d.signatures());
    }

    #[test]
    fn flat_flows_stay_ungrouped() {
        let mut d = SbdDetector::new(3, cfg());
        drive(&mut d, &[], &[0, 1, 2]);
        assert!(
            d.groups().is_empty(),
            "uncongested flows must not group: {:?}",
            d.signatures()
        );
    }

    #[test]
    fn increase_scales_split_the_probe_budget() {
        let mut d = SbdDetector::new(4, cfg());
        drive(&mut d, &[0, 1, 3], &[2]);
        let scales = d.increase_scales();
        assert_eq!(scales.len(), 4);
        assert!((scales[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((scales[1] - 1.0 / 3.0).abs() < 1e-9);
        assert!((scales[2] - 1.0).abs() < 1e-9);
        assert!((scales[3] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn loss_frequency_separates_otherwise_similar_flows() {
        let mut d = SbdDetector::new(2, cfg());
        let mut t = SimTime::ZERO;
        for _ in 0..12u64 {
            for k in 0..35u64 {
                let sent = t + SimDuration::from_millis(k * 10);
                for f in 0..2 {
                    let arrival =
                        sent + SimDuration::from_micros(20_000 + standing_queue_us(k));
                    d.on_owd_sample(f, sent, arrival);
                }
            }
            // Flow 1 sees loss every interval, flow 0 never.
            d.on_loss(1);
            t += SimDuration::from_millis(350);
            d.close_interval();
        }
        assert!(
            d.groups().is_empty(),
            "divergent loss frequency must split: {:?}",
            d.signatures()
        );
    }

    #[test]
    fn too_few_samples_never_groups() {
        let mut d = SbdDetector::new(2, cfg());
        for f in 0..2 {
            d.on_owd_sample(f, SimTime::ZERO, SimTime::from_millis(50));
        }
        d.close_interval();
        assert!(d.groups().is_empty());
    }

    #[test]
    fn detector_is_deterministic() {
        let run = || {
            let mut d = SbdDetector::new(6, cfg());
            drive(&mut d, &[0, 1, 2], &[3, 4, 5]);
            (d.groups(), format!("{:?}", d.signatures()))
        };
        assert_eq!(run(), run());
    }
}
