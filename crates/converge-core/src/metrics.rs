//! Per-path state shared between the congestion controller and the
//! schedulers.

use converge_net::{PathId, SimDuration};

/// A snapshot of one path's transport-level state, as derived from per-path
//  GCC and RTCP statistics, consumed by every scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathMetrics {
    /// Path identity.
    pub id: PathId,
    /// GCC sending rate `S_i` for this path, bits per second.
    pub rate_bps: u64,
    /// Smoothed round-trip time.
    pub srtt: SimDuration,
    /// Most recent loss fraction (0..=1).
    pub loss: f64,
    /// Whether the path is currently usable for media. Disabled paths
    /// receive only probe duplicates (paper §4.2).
    pub enabled: bool,
}

impl PathMetrics {
    /// Convenience constructor for an enabled path.
    pub fn new(id: PathId, rate_bps: u64, srtt: SimDuration, loss: f64) -> Self {
        PathMetrics {
            id,
            rate_bps,
            srtt,
            loss,
            enabled: true,
        }
    }

    /// Effective goodput: the sending rate discounted by loss.
    pub fn goodput_bps(&self) -> f64 {
        self.rate_bps as f64 * (1.0 - self.loss.clamp(0.0, 1.0))
    }
}

/// Sum of sending rates over enabled paths (the aggregate rate
/// `Σ S_i` the encoder is driven by, §4.1).
pub fn aggregate_rate_bps(paths: &[PathMetrics]) -> u64 {
    paths.iter().filter(|p| p.enabled).map(|p| p.rate_bps).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm(id: u8, rate: u64, enabled: bool) -> PathMetrics {
        PathMetrics {
            id: PathId(id),
            rate_bps: rate,
            srtt: SimDuration::from_millis(50),
            loss: 0.0,
            enabled,
        }
    }

    #[test]
    fn aggregate_skips_disabled() {
        let paths = [
            pm(0, 5_000_000, true),
            pm(1, 3_000_000, false),
            pm(2, 2_000_000, true),
        ];
        assert_eq!(aggregate_rate_bps(&paths), 7_000_000);
    }

    #[test]
    fn goodput_discounts_loss() {
        let mut p = pm(0, 10_000_000, true);
        p.loss = 0.1;
        assert_eq!(p.goodput_bps(), 9_000_000.0);
    }

    #[test]
    fn goodput_clamps_bad_loss() {
        let mut p = pm(0, 10_000_000, true);
        p.loss = 2.0;
        assert_eq!(p.goodput_bps(), 0.0);
    }
}
