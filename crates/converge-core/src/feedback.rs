//! The video QoE feedback loop (paper §4.2).
//!
//! Receiver side: [`QoeMonitor`] watches frame construction. Per frame it
//! records, for every path, how many packets arrived after the fast path's
//! last packet (late) or comfortably before it (early). When the interframe
//! delay exceeds the expectation (`IFD > IFD_exp = 1/fps`), it emits a
//! feedback message `(path_id, α, FCD)`: negative α asks the sender to move
//! that many packets off the offending path; positive α offers headroom.
//!
//! Sender side: [`PathShare`] applies Eq. 2 to the per-path packet counts,
//! disables a path whose share reaches zero, and re-enables it when Eq. 3
//! holds: `(rtt_fast − rtt_i)/2 ≤ FCD`.

use std::collections::{BTreeMap, VecDeque};

use converge_net::{PathId, SimDuration, SimTime};
use converge_rtp::QoeFeedback;
use converge_trace::{TraceEvent, TraceHandle};

/// Per-frame, per-path arrival bookkeeping.
#[derive(Debug, Default)]
struct FrameArrivals {
    /// (path, arrival time) of every packet of the frame.
    packets: Vec<(PathId, SimTime)>,
}

/// Receiver-side QoE monitor for one stream.
#[derive(Debug)]
pub struct QoeMonitor {
    ssrc: u32,
    /// Expected IFD = 1 / advertised frame rate.
    expected_ifd: SimDuration,
    /// Arrival records for frames still being gathered, sorted by frame
    /// id. A key-sorted deque beats an ordered map here: the hot path is
    /// "append packet to the newest frame", which is a back() check, and
    /// the set never exceeds 64 entries.
    gathering: VecDeque<(u64, FrameArrivals)>,
    /// The path currently considered fast (reference for lateness).
    fast_path: PathId,
    /// Most recent FCD observed.
    last_fcd: SimDuration,
    /// Pending feedback to emit.
    pending: Vec<QoeFeedback>,
    /// Cooldown so one congestion event does not spray feedback every frame.
    last_feedback_at: Option<SimTime>,
    cooldown: SimDuration,
    trace: TraceHandle,
}

impl QoeMonitor {
    /// Creates a monitor expecting `fps` frames per second.
    pub fn new(ssrc: u32, fps: u32, fast_path: PathId) -> Self {
        QoeMonitor {
            ssrc,
            expected_ifd: SimDuration::from_micros(1_000_000 / fps.max(1) as u64),
            gathering: VecDeque::new(),
            fast_path,
            last_fcd: SimDuration::ZERO,
            pending: Vec::new(),
            last_feedback_at: None,
            cooldown: SimDuration::from_millis(50),
            trace: TraceHandle::disabled(),
        }
    }

    /// Installs a trace handle; the monitor then emits a
    /// [`TraceEvent::FeedbackEmitted`] per feedback message.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Updates the expected frame rate (from the sender's SDES message).
    pub fn set_frame_rate(&mut self, fps: u32) {
        self.expected_ifd = SimDuration::from_micros(1_000_000 / fps.max(1) as u64);
    }

    /// Updates which path the monitor treats as the fast reference.
    pub fn set_fast_path(&mut self, path: PathId) {
        self.fast_path = path;
    }

    /// Expected interframe delay.
    pub fn expected_ifd(&self) -> SimDuration {
        self.expected_ifd
    }

    /// Records a media/control packet arrival for `frame_id` via `path`.
    pub fn on_packet(&mut self, now: SimTime, path: PathId, frame_id: u64) {
        // Fast path: the packet belongs to the newest frame in flight.
        let slot = match self.gathering.back_mut() {
            Some((id, arrivals)) if *id == frame_id => Some(arrivals),
            Some((id, _)) if *id < frame_id => {
                self.gathering.push_back((frame_id, FrameArrivals::default()));
                self.gathering.back_mut().map(|(_, a)| a)
            }
            None => {
                self.gathering.push_back((frame_id, FrameArrivals::default()));
                self.gathering.back_mut().map(|(_, a)| a)
            }
            // Out-of-order arrival for an older frame: insert sorted.
            Some(_) => {
                let idx = match self.gathering.binary_search_by_key(&frame_id, |(id, _)| *id) {
                    Ok(idx) => idx,
                    Err(idx) => {
                        self.gathering.insert(idx, (frame_id, FrameArrivals::default()));
                        idx
                    }
                };
                self.gathering.get_mut(idx).map(|(_, a)| a)
            }
        };
        slot.expect("slot was just found or inserted")
            .packets
            .push((path, now));
        // Bound memory: forget very old frames.
        while self.gathering.len() > 64 {
            self.gathering.pop_front();
        }
    }

    /// Notifies that `frame_id` entered the frame buffer with the given IFD
    /// and FCD (from the packet/frame buffer events).
    pub fn on_frame_entered(
        &mut self,
        now: SimTime,
        frame_id: u64,
        ifd: Option<SimDuration>,
        fcd: SimDuration,
    ) {
        self.last_fcd = fcd;
        let Some(arrivals) = self
            .gathering
            .binary_search_by_key(&frame_id, |(id, _)| *id)
            .ok()
            .and_then(|idx| self.gathering.remove(idx))
            .map(|(_, a)| a)
        else {
            return;
        };
        let Some(ifd) = ifd else {
            return;
        };
        // Fire only on a clear violation: scheduling jitter makes IFD
        // fluctuate a few percent around the expectation every frame, and
        // reacting to that noise oscillates the sender's shares.
        if ifd.as_micros() * 2 <= self.expected_ifd.as_micros() * 3 {
            return;
        }
        // QoE is deteriorating. Rate-limit feedback.
        if let Some(last) = self.last_feedback_at {
            if now.saturating_since(last) < self.cooldown {
                return;
            }
        }

        // Reference: last arrival on the fast path for this frame.
        let reference = arrivals
            .packets
            .iter()
            .filter(|(p, _)| *p == self.fast_path)
            .map(|(_, t)| *t)
            .max();
        let Some(reference) = reference else {
            return; // no fast-path packets in this frame: no baseline
        };

        // Count late/early packets per non-fast path.
        let mut late: BTreeMap<PathId, i32> = BTreeMap::new();
        let mut early: BTreeMap<PathId, i32> = BTreeMap::new();
        for (path, at) in &arrivals.packets {
            if *path == self.fast_path {
                continue;
            }
            if *at > reference {
                *late.entry(*path).or_insert(0) += 1;
            } else {
                *early.entry(*path).or_insert(0) += 1;
            }
        }

        // Worst offender: the path with the most late packets → negative α.
        if let Some((&path, &count)) = late.iter().max_by_key(|(_, &c)| c) {
            self.pending.push(QoeFeedback {
                path_id: path.0,
                ssrc: self.ssrc,
                alpha: -count,
                fcd_micros: fcd.as_micros(),
            });
            self.last_feedback_at = Some(now);
            self.trace.emit(
                now,
                TraceEvent::FeedbackEmitted {
                    path,
                    alpha: i64::from(-count),
                    fcd_us: fcd.as_micros(),
                },
            );
            return;
        }
        // No late packets anywhere, yet IFD is high: some slow path
        // finished entirely before the fast path, so it has headroom —
        // positive α for the earliest-finishing one.
        if let Some((&path, &count)) = early.iter().max_by_key(|(_, &c)| c) {
            self.pending.push(QoeFeedback {
                path_id: path.0,
                ssrc: self.ssrc,
                alpha: count,
                fcd_micros: fcd.as_micros(),
            });
            self.last_feedback_at = Some(now);
            self.trace.emit(
                now,
                TraceEvent::FeedbackEmitted {
                    path,
                    alpha: i64::from(count),
                    fcd_us: fcd.as_micros(),
                },
            );
        }
    }

    /// Drains feedback messages ready to send.
    pub fn take_feedback(&mut self) -> Vec<QoeFeedback> {
        std::mem::take(&mut self.pending)
    }

    /// The most recent frame construction delay.
    pub fn last_fcd(&self) -> SimDuration {
        self.last_fcd
    }
}

/// Sender-side reaction to QoE feedback: per-path packet-share offsets
/// (Eq. 2) and path enable/disable with Eq. 3 re-enablement.
#[derive(Debug, Default)]
pub struct PathShare {
    /// Persistent α-driven offset per path, in packets.
    offsets: BTreeMap<PathId, i64>,
    /// Paths currently disabled by feedback.
    disabled: BTreeMap<PathId, DisabledState>,
}

#[derive(Debug, Clone, Copy)]
struct DisabledState {
    /// FCD from the feedback that disabled the path, for Eq. 3.
    fcd: SimDuration,
}

impl PathShare {
    /// Creates an empty state (no offsets, nothing disabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current offset for a path.
    pub fn offset(&self, path: PathId) -> i64 {
        self.offsets.get(&path).copied().unwrap_or(0)
    }

    /// Whether feedback has disabled the path.
    pub fn is_disabled(&self, path: PathId) -> bool {
        self.disabled.contains_key(&path)
    }

    /// The FCD recorded when `path` was disabled, if it currently is.
    pub fn disabled_fcd(&self, path: PathId) -> Option<SimDuration> {
        self.disabled.get(&path).map(|s| s.fcd)
    }

    /// Applies one feedback message (Eq. 2): adjusts the offset by α. The
    /// caller decides whether the resulting share bottomed out and, if so,
    /// calls [`PathShare::mark_disabled`] with the feedback's FCD.
    ///
    /// Offsets are clamped to a sane band: an unbounded accumulation would
    /// let a long streak of positive feedback drown the Eq. 1 baseline.
    pub fn apply_feedback(&mut self, path: PathId, alpha: i32, _fcd: SimDuration) {
        let off = self.offsets.entry(path).or_insert(0);
        *off = (*off + alpha as i64).clamp(-256, 64);
    }

    /// Decays every offset toward zero; called once per scheduled batch so
    /// stale feedback fades as conditions change (half-life ~1 s at 30 fps).
    pub fn decay_offsets(&mut self) {
        for off in self.offsets.values_mut() {
            *off -= off.signum() * ((off.abs() / 32) + i64::from(*off != 0));
        }
    }

    /// Marks a path disabled (its computed share reached zero), remembering
    /// the FCD that justified it.
    pub fn mark_disabled(&mut self, path: PathId, fcd: SimDuration) {
        self.disabled.insert(path, DisabledState { fcd });
    }

    /// Eq. 3 re-enable check: `(rtt_fast − rtt_i)/2 ≤ FCD`. `rtt_i` comes
    /// from probe packets duplicated onto the disabled path.
    pub fn try_reenable(
        &mut self,
        path: PathId,
        rtt_fast: SimDuration,
        rtt_path: SimDuration,
    ) -> bool {
        let Some(state) = self.disabled.get(&path) else {
            return false;
        };
        let gap_half = rtt_fast.as_micros().abs_diff(rtt_path.as_micros()) / 2;
        if SimDuration::from_micros(gap_half) <= state.fcd.max(SimDuration::from_millis(5)) {
            self.disabled.remove(&path);
            // Fresh start: clear the negative offset that killed the path.
            self.offsets.insert(path, 0);
            true
        } else {
            false
        }
    }

    /// Computes the per-path media packet counts for a batch of `n` packets
    /// (Eq. 1 proportional split, then Eq. 2 offsets, then the `P_max` cap).
    ///
    /// `paths` must carry current GCC rates. Returns `(path, count)` pairs
    /// covering exactly `n` packets across enabled paths. If every path is
    /// disabled, the offsets are ignored and the split is proportional.
    pub fn split(
        &mut self,
        n: usize,
        paths: &[crate::metrics::PathMetrics],
        p_max: &BTreeMap<PathId, usize>,
    ) -> Vec<(PathId, usize)> {
        let enabled: Vec<_> = paths
            .iter()
            .filter(|p| p.enabled && !self.is_disabled(p.id))
            .collect();
        let use_paths: Vec<_> = if enabled.is_empty() {
            paths.iter().collect()
        } else {
            enabled
        };
        let total_rate: u64 = use_paths.iter().map(|p| p.rate_bps).sum();
        if total_rate == 0 || n == 0 {
            // Degenerate: dump everything on the first path.
            return use_paths
                .first()
                .map(|p| vec![(p.id, n)])
                .unwrap_or_default();
        }

        // Eq. 1: proportional share, then Eq. 2 offset, then cap.
        let mut counts: Vec<(PathId, usize)> = Vec::with_capacity(use_paths.len());
        for p in &use_paths {
            let base = (p.rate_bps as f64 / total_rate as f64 * n as f64).round() as i64;
            let adjusted = base + self.offset(p.id);
            let cap = p_max
                .get(&p.id)
                .copied()
                .unwrap_or(usize::MAX)
                .min(i64::MAX as usize) as i64;
            counts.push((p.id, adjusted.clamp(0, cap) as usize));
        }

        // Re-balance so the counts sum to exactly n, preferring paths with
        // spare cap, highest rate first.
        let mut assigned: usize = counts.iter().map(|(_, c)| c).sum();
        let mut order: Vec<usize> = (0..counts.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(use_paths[i].rate_bps));
        // Add missing packets: fill the fastest path up to its cap before
        // touching slower ones, so a feedback-penalized path keeps its
        // reduced share (the paper's 4:2 → 5:1 example).
        if assigned < n {
            for &i in &order {
                if assigned >= n {
                    break;
                }
                let cap = p_max.get(&counts[i].0).copied().unwrap_or(usize::MAX);
                let room = cap.saturating_sub(counts[i].1);
                let add = room.min(n - assigned);
                counts[i].1 += add;
                assigned += add;
            }
            if assigned < n {
                // All caps hit: overflow onto the fastest path regardless.
                if let Some(&i) = order.first() {
                    counts[i].1 += n - assigned;
                }
                assigned = n;
            }
        }
        // Remove excess packets (from slowest paths first).
        while assigned > n {
            let mut progressed = false;
            for &i in order.iter().rev() {
                if assigned <= n {
                    break;
                }
                if counts[i].1 > 0 {
                    counts[i].1 -= 1;
                    assigned -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }

        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PathMetrics;

    const P1: PathId = PathId(1);
    const P2: PathId = PathId(2);

    fn monitor() -> QoeMonitor {
        QoeMonitor::new(7, 30, P1)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn no_feedback_when_ifd_ok() {
        let mut m = monitor();
        m.on_packet(t(0), P1, 0);
        m.on_packet(t(5), P2, 0);
        m.on_frame_entered(t(5), 0, Some(d(30)), d(5));
        assert!(m.take_feedback().is_empty());
    }

    #[test]
    fn late_packets_produce_negative_alpha() {
        let mut m = monitor();
        // Fast path P1 finishes at 10 ms; P2 delivers 2 packets at 40/45 ms.
        m.on_packet(t(5), P1, 0);
        m.on_packet(t(10), P1, 0);
        m.on_packet(t(40), P2, 0);
        m.on_packet(t(45), P2, 0);
        m.on_frame_entered(t(45), 0, Some(d(60)), d(40));
        let fb = m.take_feedback();
        assert_eq!(fb.len(), 1);
        assert_eq!(fb[0].path_id, 2);
        assert_eq!(fb[0].alpha, -2);
        assert_eq!(fb[0].fcd_micros, 40_000);
    }

    #[test]
    fn early_packets_produce_positive_alpha() {
        let mut m = monitor();
        // P2's packets all arrive before P1's last → headroom on P2 even
        // though the frame rate sagged (sender underfeeding).
        m.on_packet(t(2), P2, 0);
        m.on_packet(t(3), P2, 0);
        m.on_packet(t(10), P1, 0);
        m.on_frame_entered(t(10), 0, Some(d(60)), d(8));
        let fb = m.take_feedback();
        assert_eq!(fb.len(), 1);
        assert_eq!(fb[0].path_id, 2);
        assert_eq!(fb[0].alpha, 2);
    }

    #[test]
    fn feedback_rate_limited() {
        let mut m = monitor();
        for frame in 0..5u64 {
            let base = frame * 10;
            m.on_packet(t(base), P1, frame);
            m.on_packet(t(base + 5), P2, frame);
            m.on_frame_entered(t(base + 5), frame, Some(d(60)), d(5));
        }
        // Frames arrive 10 ms apart; cooldown is 50 ms → only the first
        // violation emits.
        assert_eq!(m.take_feedback().len(), 1);
    }

    #[test]
    fn first_frame_without_ifd_ignored() {
        let mut m = monitor();
        m.on_packet(t(0), P1, 0);
        m.on_frame_entered(t(0), 0, None, d(0));
        assert!(m.take_feedback().is_empty());
    }

    #[test]
    fn expected_ifd_from_fps() {
        let m = QoeMonitor::new(1, 30, P1);
        assert_eq!(m.expected_ifd().as_micros(), 33_333);
        let mut m = m;
        m.set_frame_rate(24);
        assert_eq!(m.expected_ifd().as_micros(), 41_666);
    }

    // ---- PathShare ----

    fn pm(id: PathId, rate_mbps: u64) -> PathMetrics {
        PathMetrics::new(id, rate_mbps * 1_000_000, d(50), 0.0)
    }

    fn no_caps() -> BTreeMap<PathId, usize> {
        BTreeMap::new()
    }

    #[test]
    fn split_matches_eq1_example() {
        // Paper's example: rate1=15 Mbps, rate2=5 Mbps, 40 packets →
        // 30 on P1, 10 on P2.
        let mut s = PathShare::new();
        let counts = s.split(40, &[pm(P1, 15), pm(P2, 5)], &no_caps());
        assert_eq!(counts, vec![(P1, 30), (P2, 10)]);
    }

    #[test]
    fn split_applies_alpha_offset() {
        // Paper's example continued: feedback α = −5 for P2 → 35 on P1,
        // 5 on P2.
        let mut s = PathShare::new();
        s.apply_feedback(P2, -5, d(20));
        let counts = s.split(40, &[pm(P1, 15), pm(P2, 5)], &no_caps());
        assert_eq!(counts, vec![(P1, 35), (P2, 5)]);
    }

    #[test]
    fn split_respects_pmax() {
        let mut s = PathShare::new();
        let mut caps = BTreeMap::new();
        caps.insert(P1, 25);
        caps.insert(P2, 100);
        let counts = s.split(40, &[pm(P1, 15), pm(P2, 5)], &caps);
        assert_eq!(counts.iter().map(|(_, c)| c).sum::<usize>(), 40);
        let p1 = counts.iter().find(|(p, _)| *p == P1).unwrap().1;
        assert!(p1 <= 25);
    }

    #[test]
    fn split_always_sums_to_n() {
        let mut s = PathShare::new();
        s.apply_feedback(P2, -3, d(10));
        for n in [0usize, 1, 7, 40, 100] {
            let counts = s.split(n, &[pm(P1, 7), pm(P2, 3)], &no_caps());
            assert_eq!(counts.iter().map(|(_, c)| c).sum::<usize>(), n, "n={n}");
        }
    }

    #[test]
    fn negative_offset_can_zero_a_path() {
        let mut s = PathShare::new();
        s.apply_feedback(P2, -100, d(10));
        let counts = s.split(40, &[pm(P1, 15), pm(P2, 5)], &no_caps());
        let p2 = counts.iter().find(|(p, _)| *p == P2).unwrap().1;
        assert_eq!(p2, 0);
    }

    #[test]
    fn disabled_path_excluded_from_split() {
        let mut s = PathShare::new();
        s.mark_disabled(P2, d(10));
        let counts = s.split(40, &[pm(P1, 15), pm(P2, 5)], &no_caps());
        assert_eq!(counts, vec![(P1, 40)]);
        assert!(s.is_disabled(P2));
    }

    #[test]
    fn reenable_follows_eq3() {
        let mut s = PathShare::new();
        s.apply_feedback(P2, -20, d(10));
        s.mark_disabled(P2, d(10));
        // RTT gap too large: (200−60)/2 = 70 ms > FCD 10 ms → stay disabled.
        assert!(!s.try_reenable(P2, d(60), d(200)));
        assert!(s.is_disabled(P2));
        // Path recovered: (70−60)/2 = 5 ms ≤ 10 ms → re-enable, offset reset.
        assert!(s.try_reenable(P2, d(60), d(70)));
        assert!(!s.is_disabled(P2));
        assert_eq!(s.offset(P2), 0);
    }

    #[test]
    fn reenable_noop_when_not_disabled() {
        let mut s = PathShare::new();
        assert!(!s.try_reenable(P1, d(50), d(50)));
    }

    #[test]
    fn offsets_decay_toward_zero() {
        let mut s = PathShare::new();
        s.apply_feedback(P2, -40, d(10));
        assert_eq!(s.offset(P2), -40);
        for _ in 0..200 {
            s.decay_offsets();
        }
        assert_eq!(s.offset(P2), 0, "offset must fully decay");
        // Positive offsets decay symmetrically.
        s.apply_feedback(P1, 30, d(10));
        let before = s.offset(P1);
        s.decay_offsets();
        assert!(s.offset(P1) < before && s.offset(P1) > 0);
    }

    #[test]
    fn offsets_clamped_to_band() {
        let mut s = PathShare::new();
        for _ in 0..100 {
            s.apply_feedback(P2, -100, d(10));
        }
        assert_eq!(s.offset(P2), -256, "negative clamp");
        let mut s = PathShare::new();
        for _ in 0..100 {
            s.apply_feedback(P2, 50, d(10));
        }
        assert_eq!(s.offset(P2), 64, "positive clamp");
    }

    #[test]
    fn all_paths_disabled_falls_back_to_proportional() {
        let mut s = PathShare::new();
        s.mark_disabled(P1, d(10));
        s.mark_disabled(P2, d(10));
        let counts = s.split(20, &[pm(P1, 10), pm(P2, 10)], &no_caps());
        assert_eq!(counts.iter().map(|(_, c)| c).sum::<usize>(), 20);
        assert_eq!(counts.len(), 2);
    }
}
