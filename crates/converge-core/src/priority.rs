//! Packet priority levels (paper Table 2).
//!
//! The encoder exposes packet types to the scheduler; the scheduler sends
//! prioritized packets over the fast path. Five levels exist, lower value =
//! higher priority: retransmissions, keyframe media, SPS, PPS, FEC. Delta
//! media has no priority level and is distributed by Eq. 1/2.

use converge_video::{FrameType, PacketKind, VideoPacket};

/// What a scheduled packet is, as the scheduler classifies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketClass {
    /// Retransmitted media packet answering a NACK.
    Retransmission,
    /// Media packet belonging to a keyframe.
    KeyframeMedia,
    /// Sequence Parameter Set (GOP-level decode parameters).
    Sps,
    /// Picture Parameter Set (frame-level decode parameters).
    Pps,
    /// XOR FEC repair packet.
    Fec,
    /// Media packet of a delta frame — no priority.
    DeltaMedia,
    /// Duplicate probe packet for a disabled path.
    Probe,
}

impl PacketClass {
    /// Priority level per Table 2 of the paper; `None` for non-priority
    /// packets (delta media, probes).
    pub fn priority(self) -> Option<u8> {
        match self {
            PacketClass::Retransmission => Some(1),
            PacketClass::KeyframeMedia => Some(2),
            PacketClass::Sps => Some(3),
            PacketClass::Pps => Some(4),
            PacketClass::Fec => Some(5),
            PacketClass::DeltaMedia | PacketClass::Probe => None,
        }
    }

    /// Whether the scheduler should steer this packet to the fast path.
    pub fn is_priority(self) -> bool {
        self.priority().is_some()
    }
}

/// Classifies a freshly packetized video packet (retransmissions and FEC
/// are classified at their creation sites, not here).
pub fn classify(packet: &VideoPacket) -> PacketClass {
    match packet.kind {
        PacketKind::Sps => PacketClass::Sps,
        PacketKind::Pps => PacketClass::Pps,
        PacketKind::Media { .. } => match packet.frame_type {
            FrameType::Key => PacketClass::KeyframeMedia,
            FrameType::Delta => PacketClass::DeltaMedia,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use converge_net::SimTime;
    use converge_video::StreamId;

    fn pkt(kind: PacketKind, ft: FrameType) -> VideoPacket {
        VideoPacket {
            stream: StreamId(0),
            sequence: 0,
            frame_id: 0,
            gop_id: 0,
            frame_type: ft,
            kind,
            size: 1200,
            capture_time: SimTime::ZERO,
        }
    }

    #[test]
    fn table2_ordering() {
        // Retransmission > keyframe > SPS > PPS > FEC.
        let order = [
            PacketClass::Retransmission,
            PacketClass::KeyframeMedia,
            PacketClass::Sps,
            PacketClass::Pps,
            PacketClass::Fec,
        ];
        for w in order.windows(2) {
            assert!(w[0].priority().unwrap() < w[1].priority().unwrap());
        }
    }

    #[test]
    fn delta_media_has_no_priority() {
        assert_eq!(PacketClass::DeltaMedia.priority(), None);
        assert!(!PacketClass::DeltaMedia.is_priority());
        assert_eq!(PacketClass::Probe.priority(), None);
    }

    #[test]
    fn classify_keyframe_media() {
        let p = pkt(PacketKind::Media { index: 0, count: 4 }, FrameType::Key);
        assert_eq!(classify(&p), PacketClass::KeyframeMedia);
    }

    #[test]
    fn classify_delta_media() {
        let p = pkt(PacketKind::Media { index: 0, count: 4 }, FrameType::Delta);
        assert_eq!(classify(&p), PacketClass::DeltaMedia);
    }

    #[test]
    fn classify_control_packets() {
        assert_eq!(
            classify(&pkt(PacketKind::Sps, FrameType::Key)),
            PacketClass::Sps
        );
        assert_eq!(
            classify(&pkt(PacketKind::Pps, FrameType::Delta)),
            PacketClass::Pps
        );
    }
}
