//! Fast-path selection (paper Algorithm 1).
//!
//! The fast path is the one that can deliver the current batch of packets
//! in the least time: `cpt_i = N*k / rate_i + rtt_i / 2`, where `N` is the
//! number of RTP packets to send, `k` the maximum RTP packet size, `rate_i`
//! the path's goodput-adjusted encoding rate in bytes/sec, and `rtt_i` its
//! measured round-trip time.

use converge_net::PathId;

use crate::metrics::PathMetrics;

/// How the fast path is chosen — Algorithm 1 uses completion time; the
/// alternatives exist for the ablation study of the design choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FastPathMetric {
    /// Algorithm 1: minimize `N·k/rate + rtt/2`.
    CompletionTime,
    /// The minRTT criterion of MPTCP/MPQUIC schedulers.
    MinRtt,
    /// Highest loss-discounted rate (throughput-first).
    MaxGoodput,
}

/// Selects the fast path under the given metric.
pub fn select_fast_path_by(
    metric: FastPathMetric,
    paths: &[PathMetrics],
    n_packets: usize,
    max_packet_bytes: usize,
) -> Option<PathId> {
    let usable = paths.iter().filter(|p| p.enabled);
    match metric {
        FastPathMetric::CompletionTime => select_fast_path(paths, n_packets, max_packet_bytes),
        FastPathMetric::MinRtt => usable.min_by_key(|p| p.srtt).map(|p| p.id),
        FastPathMetric::MaxGoodput => usable
            .max_by(|a, b| {
                a.goodput_bps()
                    .partial_cmp(&b.goodput_bps())
                    .expect("finite")
            })
            .map(|p| p.id),
    }
}

/// Completion time of sending `n_packets` of `max_packet_bytes` over `path`
/// (Algorithm 1, line 9), in seconds. Disabled or zero-rate paths return
/// infinity.
pub fn completion_time(path: &PathMetrics, n_packets: usize, max_packet_bytes: usize) -> f64 {
    if !path.enabled {
        return f64::INFINITY;
    }
    // Goodput-adjusted rate in bytes per second ("the measured goodput rate
    // (which accounts for packet loss)").
    let rate_bytes = path.goodput_bps() / 8.0;
    if rate_bytes <= 0.0 {
        return f64::INFINITY;
    }
    let serialization = (n_packets * max_packet_bytes) as f64 / rate_bytes;
    let half_rtt = path.srtt.as_secs_f64() / 2.0;
    serialization + half_rtt
}

/// Selects the fast path: argmin over completion times. Returns `None` when
/// no path is usable.
pub fn select_fast_path(
    paths: &[PathMetrics],
    n_packets: usize,
    max_packet_bytes: usize,
) -> Option<PathId> {
    paths
        .iter()
        .map(|p| (p.id, completion_time(p, n_packets, max_packet_bytes)))
        .filter(|(_, cpt)| cpt.is_finite())
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite cpts"))
        .map(|(id, _)| id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use converge_net::SimDuration;

    fn pm(id: u8, rate_mbps: u64, rtt_ms: u64, loss: f64) -> PathMetrics {
        PathMetrics {
            id: PathId(id),
            rate_bps: rate_mbps * 1_000_000,
            srtt: SimDuration::from_millis(rtt_ms),
            loss,
            enabled: true,
        }
    }

    #[test]
    fn completion_time_formula() {
        // 40 packets * 1250 B = 50 kB at 10 Mbps (1.25 MB/s) = 40 ms; +25 ms
        // half-RTT = 65 ms.
        let p = pm(0, 10, 50, 0.0);
        let cpt = completion_time(&p, 40, 1250);
        assert!((cpt - 0.065).abs() < 1e-9, "{cpt}");
    }

    #[test]
    fn higher_rate_wins_for_large_batches() {
        // Fat path with higher RTT beats thin path with low RTT when the
        // batch is large.
        let fat = pm(0, 20, 80, 0.0);
        let thin = pm(1, 2, 20, 0.0);
        assert_eq!(select_fast_path(&[fat, thin], 100, 1250), Some(PathId(0)));
    }

    #[test]
    fn lower_rtt_wins_for_tiny_batches() {
        let fat = pm(0, 20, 80, 0.0);
        let thin = pm(1, 10, 20, 0.0);
        assert_eq!(select_fast_path(&[fat, thin], 1, 1250), Some(PathId(1)));
    }

    #[test]
    fn loss_discounts_rate() {
        // Same nominal rate; the lossy path's goodput is lower.
        let clean = pm(0, 10, 50, 0.0);
        let lossy = pm(1, 10, 50, 0.3);
        assert_eq!(select_fast_path(&[lossy, clean], 50, 1250), Some(PathId(0)));
    }

    #[test]
    fn disabled_paths_skipped() {
        let mut a = pm(0, 100, 10, 0.0);
        a.enabled = false;
        let b = pm(1, 1, 200, 0.0);
        assert_eq!(select_fast_path(&[a, b], 10, 1250), Some(PathId(1)));
        assert_eq!(completion_time(&a, 10, 1250), f64::INFINITY);
    }

    #[test]
    fn no_usable_path_returns_none() {
        let mut a = pm(0, 10, 10, 0.0);
        a.enabled = false;
        let b = pm(1, 0, 10, 0.0);
        assert_eq!(select_fast_path(&[a, b], 10, 1250), None);
    }

    #[test]
    fn total_loss_is_unusable() {
        let p = pm(0, 10, 10, 1.0);
        assert_eq!(completion_time(&p, 10, 1250), f64::INFINITY);
    }

    #[test]
    fn metric_variants_differ_where_expected() {
        // Fat-but-far path vs thin-but-near path.
        let fat = pm(0, 30, 120, 0.0);
        let thin = pm(1, 3, 20, 0.0);
        let paths = [fat, thin];
        assert_eq!(
            select_fast_path_by(FastPathMetric::MinRtt, &paths, 50, 1250),
            Some(PathId(1))
        );
        assert_eq!(
            select_fast_path_by(FastPathMetric::MaxGoodput, &paths, 50, 1250),
            Some(PathId(0))
        );
        // Completion time prefers the fat path for large batches...
        assert_eq!(
            select_fast_path_by(FastPathMetric::CompletionTime, &paths, 100, 1250),
            Some(PathId(0))
        );
        // ...and the near path for tiny ones.
        assert_eq!(
            select_fast_path_by(FastPathMetric::CompletionTime, &paths, 1, 1250),
            Some(PathId(1))
        );
    }

    #[test]
    fn metric_variants_skip_disabled() {
        let mut a = pm(0, 100, 1, 0.0);
        a.enabled = false;
        let b = pm(1, 1, 500, 0.0);
        for m in [
            FastPathMetric::CompletionTime,
            FastPathMetric::MinRtt,
            FastPathMetric::MaxGoodput,
        ] {
            assert_eq!(select_fast_path_by(m, &[a, b], 10, 1250), Some(PathId(1)));
        }
    }
}
