//! # converge-core
//!
//! The primary contribution of the Converge (SIGCOMM 2023) reproduction:
//! the closed loop between a video-aware multipath scheduler, receiver-side
//! video QoE feedback, and path-specific packet protection.
//!
//! - [`metrics`]: the per-path transport snapshot every scheduler consumes.
//! - [`priority`]: packet priority levels (paper Table 2).
//! - [`fastpath`]: completion-time fast-path selection (Algorithm 1).
//! - [`scheduler`]: the [`scheduler::ConvergeScheduler`] (Eq. 1 split,
//!   Eq. 2 feedback adjustment, Eq. 3 path re-enablement) and the baseline
//!   schedulers: single-path WebRTC, WebRTC-CM, SRTT/minRTT, M-TPUT
//!   (Musher), M-RTP (MPRTP).
//! - [`feedback`]: the receiver-side QoE monitor (FCD/IFD tracking,
//!   late-packet attribution) and the sender-side path-share state.
//! - [`fec_controller`]: Converge's path-specific `l·P·β` FEC controller
//!   and WebRTC's static table-based FEC baseline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fastpath;
pub mod fec_controller;
pub mod feedback;
pub mod metrics;
pub mod priority;
pub mod scheduler;

pub use fastpath::{completion_time, select_fast_path, select_fast_path_by, FastPathMetric};
pub use fec_controller::{ConvergeFec, FecPolicy, WebRtcTableFec};
pub use feedback::{PathShare, QoeMonitor};
pub use metrics::{aggregate_rate_bps, PathMetrics};
pub use priority::{classify, PacketClass};
pub use scheduler::{
    Assignment, ConnectionMigration, ConvergeScheduler, ConvergeSchedulerConfig, MRtpScheduler,
    MTputScheduler, Schedulable, Scheduler, SinglePathScheduler, SrttScheduler,
};
