//! The Converge video-aware scheduler (paper §4.1).
//!
//! Per batch (one encoded frame's packets plus retransmissions and FEC):
//!
//! 1. Select the fast path by completion time (Algorithm 1).
//! 2. Send priority packets (Table 2 order) on the fast path, up to its
//!    `P_max`; overflow spills to the remaining paths in priority order,
//!    except FEC overflow, which stays on the path it protects.
//! 3. Split the non-priority media packets across enabled paths
//!    proportionally to their GCC rates (Eq. 1), adjusted by the α offsets
//!    accumulated from QoE feedback (Eq. 2), capped at `P_max`.
//! 4. Disable a path whose share reaches zero; duplicate probe packets on
//!    it and re-enable when Eq. 3 holds.

use std::collections::BTreeMap;

use converge_net::{PathId, SimDuration, SimTime};
use converge_rtp::QoeFeedback;
use converge_trace::{TraceEvent, TraceHandle};

use crate::feedback::PathShare;
use crate::metrics::PathMetrics;
use crate::scheduler::{interleave, p_max, Assignment, Schedulable, Scheduler};

/// Configuration of the Converge scheduler.
#[derive(Debug, Clone, Copy)]
pub struct ConvergeSchedulerConfig {
    /// Maximum RTP packet size `k` used by Algorithm 1 and `P_max`.
    pub max_packet_bytes: usize,
    /// Batch interval (one frame interval) for `P_max` computation.
    pub batch_interval: SimDuration,
    /// Whether QoE feedback adjusts shares (Eq. 2). Disabled for the
    /// feedback ablation of paper Fig. 11 / Table 4.
    pub use_feedback: bool,
    /// Whether packet priorities (Table 2) steer packets to the fast path.
    /// Disabled for the video-awareness ablation: every packet is then
    /// treated as plain media and split by Eq. 1 alone.
    pub use_priority: bool,
    /// Fast-path selection metric (Algorithm 1 by default; alternatives
    /// for the design-choice ablation).
    pub fast_path_metric: crate::fastpath::FastPathMetric,
    /// Minimum interval between probes of a disabled path.
    pub probe_interval: SimDuration,
}

impl Default for ConvergeSchedulerConfig {
    fn default() -> Self {
        ConvergeSchedulerConfig {
            max_packet_bytes: 1250,
            batch_interval: SimDuration::from_micros(33_333),
            use_feedback: true,
            use_priority: true,
            fast_path_metric: crate::fastpath::FastPathMetric::CompletionTime,
            probe_interval: SimDuration::from_millis(200),
        }
    }
}

/// The Converge scheduler.
#[derive(Debug)]
pub struct ConvergeScheduler {
    config: ConvergeSchedulerConfig,
    share: PathShare,
    last_probe: BTreeMap<PathId, SimTime>,
    /// FCD from the most recent feedback, used when marking disabled.
    last_feedback_fcd: SimDuration,
    /// Last time a path drew negative feedback — positive feedback inside
    /// the hysteresis window is ignored so the share does not oscillate
    /// back onto a path that just proved slow.
    last_negative: BTreeMap<PathId, SimTime>,
    trace: TraceHandle,
    /// Fast path of the previous batch, for switch-edge tracing.
    last_fast: Option<PathId>,
    /// Last traced per-path split counts, so the timeline records changes
    /// rather than one event per batch per path.
    last_split: BTreeMap<PathId, u32>,
}

impl ConvergeScheduler {
    /// Creates a scheduler.
    pub fn new(config: ConvergeSchedulerConfig) -> Self {
        ConvergeScheduler {
            config,
            share: PathShare::new(),
            last_probe: BTreeMap::new(),
            last_feedback_fcd: SimDuration::from_millis(10),
            last_negative: BTreeMap::new(),
            trace: TraceHandle::disabled(),
            last_fast: None,
            last_split: BTreeMap::new(),
        }
    }

    /// Read access to the share state (tests/telemetry).
    pub fn share(&self) -> &PathShare {
        &self.share
    }

    /// Attempts Eq. 3 re-enablement using fresh RTT measurements (fed by
    /// the sender when probe responses arrive).
    pub fn try_reenable(&mut self, path: PathId, rtt_fast: SimDuration, rtt_path: SimDuration) {
        self.share.try_reenable(path, rtt_fast, rtt_path);
    }
}

impl Scheduler for ConvergeScheduler {
    fn name(&self) -> &'static str {
        "converge"
    }

    fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    fn assign_batch(
        &mut self,
        now: SimTime,
        packets: &[Schedulable],
        paths: &[PathMetrics],
    ) -> Vec<Assignment> {
        if packets.is_empty() || paths.is_empty() {
            return Vec::new();
        }
        // Paths usable this batch: enabled at the transport level and not
        // disabled by feedback.
        let usable: Vec<PathMetrics> = paths
            .iter()
            .filter(|p| p.enabled && !self.share.is_disabled(p.id))
            .copied()
            .collect();
        let usable = if usable.is_empty() {
            paths.to_vec() // last resort: use everything rather than stall
        } else {
            usable
        };

        let fast = crate::fastpath::select_fast_path_by(
            self.config.fast_path_metric,
            &usable,
            packets.len(),
            self.config.max_packet_bytes,
        )
        .unwrap_or(usable[0].id);
        if self.trace.is_enabled() && self.last_fast != Some(fast) {
            self.last_fast = Some(fast);
            self.trace
                .emit(now, TraceEvent::FastPathSwitched { path: fast });
        }

        // Per-path budget for the batch.
        let mut budget: BTreeMap<PathId, usize> = usable
            .iter()
            .map(|p| {
                (
                    p.id,
                    p_max(
                        p.rate_bps,
                        self.config.batch_interval,
                        self.config.max_packet_bytes,
                    )
                    .max(1),
                )
            })
            .collect();

        let mut assignment: Vec<Option<PathId>> = vec![None; packets.len()];

        // --- Priority packets: fast path first, spill in priority order.
        // With the video-awareness ablation the priority set is empty and
        // everything falls through to the Eq. 1 split.
        let mut priority_idx: Vec<usize> = packets
            .iter()
            .enumerate()
            .filter(|(_, s)| self.config.use_priority && s.class.is_priority())
            .map(|(i, _)| i)
            .collect();
        priority_idx.sort_by_key(|&i| packets[i].class.priority().expect("priority"));

        // Spill order: paths by completion time (fast first). A path an
        // order of magnitude slower than the fast path is excluded — losing
        // or delaying a keyframe/control packet there costs far more QoE
        // than briefly bursting past the fast path's budget.
        let fast_cpt = usable
            .iter()
            .find(|p| p.id == fast)
            .map(|p| {
                crate::fastpath::completion_time(p, packets.len(), self.config.max_packet_bytes)
            })
            .unwrap_or(f64::INFINITY);
        let mut path_order: Vec<PathId> = {
            let mut v: Vec<&PathMetrics> = usable
                .iter()
                .filter(|p| {
                    p.id == fast
                        || crate::fastpath::completion_time(
                            p,
                            packets.len(),
                            self.config.max_packet_bytes,
                        ) <= fast_cpt * 3.0
                })
                .collect();
            v.sort_by(|a, b| {
                crate::fastpath::completion_time(a, packets.len(), self.config.max_packet_bytes)
                    .partial_cmp(&crate::fastpath::completion_time(
                        b,
                        packets.len(),
                        self.config.max_packet_bytes,
                    ))
                    .expect("finite or inf comparable")
            });
            v.into_iter().map(|p| p.id).collect()
        };
        if let Some(pos) = path_order.iter().position(|&p| p == fast) {
            path_order.remove(pos);
        }
        path_order.insert(0, fast);

        for &i in &priority_idx {
            let class = packets[i].class;
            let placed = path_order
                .iter()
                .copied()
                .find(|p| budget.get(p).copied().unwrap_or(0) > 0);
            let path = match (placed, class) {
                (Some(p), _) => p,
                // FEC that fits nowhere stays on the path it was generated
                // for — the sender encodes that as the packet's origin path
                // via round-robin below; here we fall back to fast.
                (None, _) => fast,
            };
            if let Some(b) = budget.get_mut(&path) {
                *b = b.saturating_sub(1);
            }
            assignment[i] = Some(path);
        }

        // --- Non-priority media: Eq. 1 + Eq. 2 split, interleaved.
        let media_idx: Vec<usize> = packets
            .iter()
            .enumerate()
            .filter(|(_, s)| !self.config.use_priority || !s.class.is_priority())
            .map(|(i, _)| i)
            .collect();
        if !media_idx.is_empty() {
            let counts = self.share.split(media_idx.len(), &usable, &budget);
            if self.trace.is_enabled() {
                for &(path, count) in &counts {
                    let count = count as u32;
                    if self.last_split.insert(path, count) != Some(count) {
                        self.trace.emit(
                            now,
                            TraceEvent::SplitDecision {
                                path,
                                packets: count,
                                offset: self.share.offset(path),
                            },
                        );
                    }
                }
            }
            // Stale feedback fades after it has influenced this batch.
            if self.config.use_feedback {
                self.share.decay_offsets();
            }
            // A path whose computed share is zero while its offset is
            // negative has been squeezed out: disable it (paper: "If the
            // number of packets becomes zero, the sender disables the
            // path").
            if self.config.use_feedback {
                for p in &usable {
                    let share_zero = counts
                        .iter()
                        .find(|(id, _)| *id == p.id)
                        .map(|(_, c)| *c == 0)
                        .unwrap_or(false);
                    if share_zero && self.share.offset(p.id) < 0 && usable.len() > 1 {
                        let newly = !self.share.is_disabled(p.id);
                        self.share.mark_disabled(p.id, self.last_feedback_fcd);
                        if newly {
                            self.trace.emit(
                                now,
                                TraceEvent::PathDisabled {
                                    path: p.id,
                                    fcd_us: self.last_feedback_fcd.as_micros(),
                                },
                            );
                        }
                    }
                }
            }
            let seq = interleave(&counts);
            for (slot, &i) in media_idx.iter().enumerate() {
                assignment[i] = Some(seq.get(slot).copied().unwrap_or(fast));
            }
        }

        assignment
            .into_iter()
            .map(|p| Assignment {
                path: p.unwrap_or(fast),
            })
            .collect()
    }

    fn on_qoe_feedback(&mut self, now: SimTime, fb: &QoeFeedback) {
        if !self.config.use_feedback {
            return;
        }
        let fcd = SimDuration::from_micros(fb.fcd_micros);
        self.last_feedback_fcd = fcd;
        let path = PathId(fb.path_id);
        if fb.alpha < 0 {
            self.last_negative.insert(path, now);
        } else if let Some(&neg_at) = self.last_negative.get(&path) {
            // Hysteresis: a path that was just reported slow must prove
            // itself before its share grows again.
            if now.saturating_since(neg_at) < SimDuration::from_secs(2) {
                return;
            }
        }
        self.share.apply_feedback(path, fb.alpha, fcd);
        self.trace.emit(
            now,
            TraceEvent::AlphaAdjusted {
                path,
                alpha: i64::from(fb.alpha),
                offset: self.share.offset(path),
            },
        );
    }

    fn probe_paths(&mut self, now: SimTime, paths: &[PathMetrics]) -> Vec<PathId> {
        let mut out = Vec::new();
        for p in paths {
            if self.share.is_disabled(p.id) {
                let due = match self.last_probe.get(&p.id) {
                    Some(&last) => now.saturating_since(last) >= self.config.probe_interval,
                    None => true,
                };
                if due {
                    self.last_probe.insert(p.id, now);
                    out.push(p.id);
                }
            }
        }
        out
    }

    fn disabled_paths(&self) -> Vec<PathId> {
        self.last_probe
            .keys()
            .copied()
            .filter(|p| self.share.is_disabled(*p))
            .collect()
    }

    fn on_probe_rtt(
        &mut self,
        now: SimTime,
        path: PathId,
        rtt_fast: SimDuration,
        rtt_path: SimDuration,
    ) {
        let threshold = self
            .share
            .disabled_fcd(path)
            .map(|fcd| fcd.max(SimDuration::from_millis(5)));
        if self.share.try_reenable(path, rtt_fast, rtt_path) {
            let margin = rtt_fast.as_micros().abs_diff(rtt_path.as_micros()) / 2;
            self.trace.emit(
                now,
                TraceEvent::PathReenabled {
                    path,
                    margin_us: margin,
                    threshold_us: threshold.map(|t| t.as_micros()).unwrap_or(0),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::PacketClass;
    use converge_video::{FrameType, PacketKind, StreamId, VideoPacket};

    const P1: PathId = PathId(1);
    const P2: PathId = PathId(2);

    fn pm(id: PathId, rate_mbps: u64, rtt_ms: u64) -> PathMetrics {
        PathMetrics::new(
            id,
            rate_mbps * 1_000_000,
            SimDuration::from_millis(rtt_ms),
            0.0,
        )
    }

    fn sched() -> ConvergeScheduler {
        ConvergeScheduler::new(ConvergeSchedulerConfig::default())
    }

    fn schedulable(class: PacketClass, seq: u64) -> Schedulable {
        let (kind, ft) = match class {
            PacketClass::Sps => (PacketKind::Sps, FrameType::Key),
            PacketClass::Pps => (PacketKind::Pps, FrameType::Key),
            PacketClass::KeyframeMedia => {
                (PacketKind::Media { index: 0, count: 1 }, FrameType::Key)
            }
            _ => (PacketKind::Media { index: 0, count: 1 }, FrameType::Delta),
        };
        Schedulable {
            packet: VideoPacket {
                stream: StreamId(0),
                sequence: seq,
                frame_id: 0,
                gop_id: 0,
                frame_type: ft,
                kind,
                size: 1200,
                capture_time: SimTime::ZERO,
            },
            class,
        }
    }

    fn batch(priority: usize, media: usize) -> Vec<Schedulable> {
        let mut v = Vec::new();
        for i in 0..priority {
            v.push(schedulable(PacketClass::KeyframeMedia, i as u64));
        }
        for i in 0..media {
            v.push(schedulable(PacketClass::DeltaMedia, (priority + i) as u64));
        }
        v
    }

    #[test]
    fn priority_packets_go_to_fast_path() {
        let mut s = sched();
        // P1 much faster: fast path. 4 keyframe-media packets.
        let pkts = batch(4, 0);
        let out = s.assign_batch(SimTime::ZERO, &pkts, &[pm(P1, 20, 20), pm(P2, 2, 200)]);
        assert!(out.iter().all(|a| a.path == P1), "{out:?}");
    }

    #[test]
    fn media_split_proportional_to_rate() {
        let mut s = sched();
        let pkts = batch(0, 40);
        let out = s.assign_batch(SimTime::ZERO, &pkts, &[pm(P1, 15, 50), pm(P2, 5, 50)]);
        let on_p1 = out.iter().filter(|a| a.path == P1).count();
        let on_p2 = out.iter().filter(|a| a.path == P2).count();
        assert_eq!(on_p1 + on_p2, 40);
        assert_eq!(on_p1, 30, "Eq.1: 15/20 × 40 = 30, got {on_p1}");
        assert_eq!(on_p2, 10);
    }

    #[test]
    fn feedback_shifts_media_away() {
        let mut s = sched();
        s.on_qoe_feedback(
            SimTime::ZERO,
            &QoeFeedback {
                path_id: P2.0,
                ssrc: 0,
                alpha: -5,
                fcd_micros: 20_000,
            },
        );
        let pkts = batch(0, 40);
        let out = s.assign_batch(SimTime::ZERO, &pkts, &[pm(P1, 15, 50), pm(P2, 5, 50)]);
        let on_p2 = out.iter().filter(|a| a.path == P2).count();
        assert_eq!(on_p2, 5, "paper example: 4:2 becomes 5:1 style shift");
    }

    #[test]
    fn feedback_ignored_when_disabled_in_config() {
        let cfg = ConvergeSchedulerConfig {
            use_feedback: false,
            ..Default::default()
        };
        let mut s = ConvergeScheduler::new(cfg);
        s.on_qoe_feedback(
            SimTime::ZERO,
            &QoeFeedback {
                path_id: P2.0,
                ssrc: 0,
                alpha: -100,
                fcd_micros: 1_000,
            },
        );
        let pkts = batch(0, 40);
        let out = s.assign_batch(SimTime::ZERO, &pkts, &[pm(P1, 15, 50), pm(P2, 5, 50)]);
        let on_p2 = out.iter().filter(|a| a.path == P2).count();
        assert_eq!(on_p2, 10, "ablated scheduler must not react to feedback");
    }

    #[test]
    fn repeated_negative_feedback_disables_path() {
        let mut s = sched();
        for _ in 0..10 {
            s.on_qoe_feedback(
                SimTime::ZERO,
                &QoeFeedback {
                    path_id: P2.0,
                    ssrc: 0,
                    alpha: -20,
                    fcd_micros: 10_000,
                },
            );
        }
        let pkts = batch(0, 40);
        let _ = s.assign_batch(SimTime::ZERO, &pkts, &[pm(P1, 15, 50), pm(P2, 5, 50)]);
        assert!(s.share().is_disabled(P2));
        // Disabled path must be probed.
        let probes = s.probe_paths(SimTime::from_millis(500), &[pm(P1, 15, 50), pm(P2, 5, 50)]);
        assert_eq!(probes, vec![P2]);
        // Probe rate-limited.
        let probes = s.probe_paths(SimTime::from_millis(510), &[pm(P1, 15, 50), pm(P2, 5, 50)]);
        assert!(probes.is_empty());
    }

    #[test]
    fn reenable_restores_path_usage() {
        let mut s = sched();
        for _ in 0..10 {
            s.on_qoe_feedback(
                SimTime::ZERO,
                &QoeFeedback {
                    path_id: P2.0,
                    ssrc: 0,
                    alpha: -20,
                    fcd_micros: 10_000,
                },
            );
        }
        let _ = s.assign_batch(
            SimTime::ZERO,
            &batch(0, 40),
            &[pm(P1, 15, 50), pm(P2, 5, 50)],
        );
        assert!(s.share().is_disabled(P2));
        s.try_reenable(
            P2,
            SimDuration::from_millis(50),
            SimDuration::from_millis(55),
        );
        assert!(!s.share().is_disabled(P2));
        let out = s.assign_batch(
            SimTime::ZERO,
            &batch(0, 40),
            &[pm(P1, 15, 50), pm(P2, 5, 50)],
        );
        assert!(out.iter().any(|a| a.path == P2));
    }

    #[test]
    fn mixed_batch_routes_priority_and_media_separately() {
        let mut s = sched();
        let mut pkts = vec![
            schedulable(PacketClass::Retransmission, 0),
            schedulable(PacketClass::Sps, 1),
            schedulable(PacketClass::Pps, 2),
        ];
        pkts.extend(batch(0, 30));
        let out = s.assign_batch(SimTime::ZERO, &pkts, &[pm(P1, 18, 30), pm(P2, 6, 30)]);
        // All three priority packets on the fast path (P1).
        assert!(out[..3].iter().all(|a| a.path == P1));
        // Media split across both.
        assert!(out[3..].iter().any(|a| a.path == P2));
    }

    #[test]
    fn positive_feedback_suppressed_after_negative() {
        let mut s = sched();
        // Negative feedback at t=0 for P2.
        s.on_qoe_feedback(
            SimTime::ZERO,
            &QoeFeedback {
                path_id: P2.0,
                ssrc: 0,
                alpha: -8,
                fcd_micros: 20_000,
            },
        );
        // Positive feedback 500 ms later (inside the 2 s hysteresis):
        // must be ignored so the share does not bounce back.
        s.on_qoe_feedback(
            SimTime::from_millis(500),
            &QoeFeedback {
                path_id: P2.0,
                ssrc: 0,
                alpha: 8,
                fcd_micros: 20_000,
            },
        );
        assert_eq!(s.share().offset(P2), -8, "positive inside window ignored");
        // After the window, positive feedback applies again.
        s.on_qoe_feedback(
            SimTime::from_secs(3),
            &QoeFeedback {
                path_id: P2.0,
                ssrc: 0,
                alpha: 8,
                fcd_micros: 20_000,
            },
        );
        assert_eq!(s.share().offset(P2), 0, "applied after the window");
    }

    #[test]
    fn offsets_fade_over_batches() {
        let mut s = sched();
        s.on_qoe_feedback(
            SimTime::ZERO,
            &QoeFeedback {
                path_id: P2.0,
                ssrc: 0,
                alpha: -10,
                fcd_micros: 20_000,
            },
        );
        let paths = [pm(P1, 10, 50), pm(P2, 10, 50)];
        let first: usize = {
            let out = s.assign_batch(SimTime::ZERO, &batch(0, 40), &paths);
            out.iter().filter(|a| a.path == P2).count()
        };
        // Many batches later the offset has decayed and P2's share recovers.
        for i in 1..120 {
            let _ = s.assign_batch(SimTime::from_millis(i * 33), &batch(0, 40), &paths);
        }
        let later: usize = {
            let out = s.assign_batch(SimTime::from_secs(5), &batch(0, 40), &paths);
            out.iter().filter(|a| a.path == P2).count()
        };
        assert!(later > first, "share must recover: {first} -> {later}");
        assert_eq!(later, 20, "fully recovered to the Eq. 1 split");
    }

    #[test]
    fn empty_inputs() {
        let mut s = sched();
        assert!(s
            .assign_batch(SimTime::ZERO, &[], &[pm(P1, 10, 50)])
            .is_empty());
        assert!(s.assign_batch(SimTime::ZERO, &batch(1, 1), &[]).is_empty());
    }

    #[test]
    fn assignment_length_matches_input() {
        let mut s = sched();
        let pkts = batch(3, 17);
        let out = s.assign_batch(SimTime::ZERO, &pkts, &[pm(P1, 10, 50), pm(P2, 10, 50)]);
        assert_eq!(out.len(), pkts.len());
    }
}
