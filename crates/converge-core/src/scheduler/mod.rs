//! Multipath packet schedulers: the Converge video-aware scheduler and the
//! baselines the paper compares against (single-path WebRTC, WebRTC-CM,
//! SRTT/minRTT, M-TPUT/Musher, M-RTP/MPRTP).

mod baselines;
mod converge;

pub use baselines::{
    ConnectionMigration, MRtpScheduler, MTputScheduler, SinglePathScheduler, SrttScheduler,
};
pub use converge::{ConvergeScheduler, ConvergeSchedulerConfig};

use converge_net::{PathId, SimDuration, SimTime};
use converge_rtp::QoeFeedback;
use converge_video::VideoPacket;

use crate::metrics::PathMetrics;
use crate::priority::PacketClass;

/// One packet offered to a scheduler, with its classification.
#[derive(Debug, Clone, Copy)]
pub struct Schedulable {
    /// The packet itself (metadata only; payloads are modelled by size).
    pub packet: VideoPacket,
    /// The scheduler-visible class (priority per Table 2).
    pub class: PacketClass,
}

/// The assignment a scheduler makes for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Which path carries the packet.
    pub path: PathId,
}

/// A multipath packet scheduler.
///
/// The sender calls [`Scheduler::assign_batch`] once per encoded frame with
/// every packet of that frame (media + control + FEC + pending
/// retransmissions), plus the current per-path metrics. The returned vector
/// is index-aligned with the input.
pub trait Scheduler: std::fmt::Debug + Send {
    /// Short name for reporting.
    fn name(&self) -> &'static str;

    /// Installs a trace handle. Schedulers that emit structured events
    /// ([`converge_trace::TraceEvent`]) store it; the default ignores it.
    fn set_trace(&mut self, _trace: converge_trace::TraceHandle) {}

    /// Assigns every packet in the batch to a path.
    fn assign_batch(
        &mut self,
        now: SimTime,
        packets: &[Schedulable],
        paths: &[PathMetrics],
    ) -> Vec<Assignment>;

    /// Feeds a QoE feedback message (Converge only; others ignore it).
    fn on_qoe_feedback(&mut self, _now: SimTime, _fb: &QoeFeedback) {}

    /// Paths the sender should duplicate a probe packet onto this batch
    /// (disabled paths being measured for Eq. 3 re-enablement).
    fn probe_paths(&mut self, _now: SimTime, _paths: &[PathMetrics]) -> Vec<PathId> {
        Vec::new()
    }

    /// Paths the scheduler has administratively disabled; the sim reports
    /// these and GCC stops being fed by them.
    fn disabled_paths(&self) -> Vec<PathId> {
        Vec::new()
    }

    /// Paths whose GCC rates feed the encoder's aggregate rate (`Σ S_i`
    /// over *active* paths, §4.1). Default: every enabled path not
    /// administratively disabled.
    fn used_paths(&self, paths: &[PathMetrics]) -> Vec<PathId> {
        let disabled = self.disabled_paths();
        paths
            .iter()
            .filter(|p| p.enabled && !disabled.contains(&p.id))
            .map(|p| p.id)
            .collect()
    }

    /// Whether the sender must drop this batch entirely (WebRTC-CM's
    /// re-connection blackout). Default: never.
    fn drop_batch(&self, _now: SimTime) -> bool {
        false
    }

    /// Delivers a probe RTT measurement for a (possibly disabled) path so
    /// the scheduler can evaluate Eq. 3 re-enablement. Default: ignored.
    fn on_probe_rtt(
        &mut self,
        _now: SimTime,
        _path: PathId,
        _rtt_fast: SimDuration,
        _rtt_path: SimDuration,
    ) {
    }
}

/// Shared helper: maximum packets allowed on a path per batch interval,
/// derived from the path's sending rate (`P_max`, §4.1). A 25 % headroom
/// keeps short bursts schedulable.
pub fn p_max(rate_bps: u64, batch_interval: SimDuration, max_packet_bytes: usize) -> usize {
    let bytes_per_interval = rate_bps as f64 / 8.0 * batch_interval.as_secs_f64();
    ((bytes_per_interval / max_packet_bytes as f64) * 1.25).ceil() as usize
}

/// Shared helper: weighted round-robin expansion of `(path, count)` pairs
/// into an interleaved assignment sequence. Interleaving (rather than block
/// assignment) matches how byte schedulers drain queues in practice and
/// exercises reordering at the receiver.
pub fn interleave(counts: &[(PathId, usize)]) -> Vec<PathId> {
    let total: usize = counts.iter().map(|(_, c)| c).sum();
    let mut out = Vec::with_capacity(total);
    let mut remaining: Vec<(PathId, usize)> = counts.to_vec();
    // Largest-remainder style: at each step pick the path with the highest
    // remaining fraction of its quota.
    let quotas: Vec<usize> = remaining.iter().map(|(_, c)| *c).collect();
    for _ in 0..total {
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .filter(|(_, (_, left))| *left > 0)
            .max_by(|(i, (_, a)), (j, (_, b))| {
                let fa = *a as f64 / quotas[*i].max(1) as f64;
                let fb = *b as f64 / quotas[*j].max(1) as f64;
                fa.partial_cmp(&fb)
                    .expect("finite")
                    .then(quotas[*i].cmp(&quotas[*j]))
            })
            .expect("total > 0 implies a path with remaining quota");
        out.push(remaining[idx].0);
        remaining[idx].1 -= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_max_scales_with_rate_and_interval() {
        // 12 Mbps over 33 ms at 1250 B/pkt: 12e6/8*0.033 = 49.5 kB → 39.6
        // packets → ×1.25 headroom ≈ 50.
        let p = p_max(12_000_000, SimDuration::from_millis(33), 1250);
        assert!((48..=52).contains(&p), "{p}");
        assert_eq!(p_max(0, SimDuration::from_millis(33), 1250), 0);
    }

    #[test]
    fn interleave_covers_counts() {
        let out = interleave(&[(PathId(0), 3), (PathId(1), 1)]);
        assert_eq!(out.len(), 4);
        assert_eq!(out.iter().filter(|p| p.0 == 0).count(), 3);
        assert_eq!(out.iter().filter(|p| p.0 == 1).count(), 1);
    }

    #[test]
    fn interleave_mixes_paths() {
        let out = interleave(&[(PathId(0), 5), (PathId(1), 5)]);
        // Strict alternation for equal quotas.
        let zeros: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, p)| p.0 == 0)
            .map(|(i, _)| i)
            .collect();
        assert!(
            zeros.windows(2).all(|w| w[1] - w[0] == 2),
            "expected alternation: {out:?}"
        );
    }

    #[test]
    fn interleave_handles_empty_and_zero() {
        assert!(interleave(&[]).is_empty());
        assert!(interleave(&[(PathId(0), 0)]).is_empty());
    }
}
