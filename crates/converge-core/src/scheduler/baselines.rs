//! Baseline schedulers the paper compares Converge against (§2.2/§5):
//!
//! - [`SinglePathScheduler`]: standard WebRTC pinned to one network.
//! - [`ConnectionMigration`]: WebRTC-CM — one network at a time, switching
//!   when the active path degrades.
//! - [`SrttScheduler`]: minRTT, the default of MPTCP/MPQUIC.
//! - [`MTputScheduler`]: Musher-style throughput-proportional splitting.
//! - [`MRtpScheduler`]: MPRTP-style splitting by loss-discounted rate.
//!
//! None of them is video-aware and none consumes QoE feedback.

use converge_net::{PathId, SimDuration, SimTime};

use crate::metrics::PathMetrics;
use crate::scheduler::{interleave, Assignment, Schedulable, Scheduler};

/// Standard single-path WebRTC: everything on one configured path.
#[derive(Debug)]
pub struct SinglePathScheduler {
    path: PathId,
}

impl SinglePathScheduler {
    /// Creates a scheduler pinned to `path`.
    pub fn new(path: PathId) -> Self {
        SinglePathScheduler { path }
    }
}

impl Scheduler for SinglePathScheduler {
    fn name(&self) -> &'static str {
        "webrtc-singlepath"
    }

    fn assign_batch(
        &mut self,
        _now: SimTime,
        packets: &[Schedulable],
        _paths: &[PathMetrics],
    ) -> Vec<Assignment> {
        packets
            .iter()
            .map(|_| Assignment { path: self.path })
            .collect()
    }

    fn used_paths(&self, _paths: &[PathMetrics]) -> Vec<PathId> {
        vec![self.path]
    }
}

/// WebRTC with connection migration: uses exactly one path, migrating to
/// the best other path when the current one has been bad for a while
/// ("dropping and then re-establishing connections in the event of a
/// connection failure", §6). Migration costs a blackout period during which
/// nothing is sent — the re-establishment cost of real CM.
#[derive(Debug)]
pub struct ConnectionMigration {
    active: PathId,
    /// Rate below which the active path counts as failing.
    failover_rate_bps: u64,
    /// How long the path must be bad before migrating.
    patience: SimDuration,
    bad_since: Option<SimTime>,
    /// Until when the post-migration blackout lasts.
    blackout_until: Option<SimTime>,
    /// Re-establishment delay applied on each migration.
    reconnect_delay: SimDuration,
}

impl ConnectionMigration {
    /// Creates a CM scheduler starting on `initial`.
    pub fn new(initial: PathId) -> Self {
        ConnectionMigration {
            active: initial,
            failover_rate_bps: 1_000_000,
            patience: SimDuration::from_millis(1_500),
            bad_since: None,
            blackout_until: None,
            reconnect_delay: SimDuration::from_millis(800),
        }
    }

    /// The currently active path.
    pub fn active_path(&self) -> PathId {
        self.active
    }

    /// Whether the scheduler is inside a migration blackout at `now`.
    pub fn in_blackout(&self, now: SimTime) -> bool {
        self.blackout_until.is_some_and(|t| now < t)
    }
}

impl Scheduler for ConnectionMigration {
    fn name(&self) -> &'static str {
        "webrtc-cm"
    }

    fn assign_batch(
        &mut self,
        now: SimTime,
        packets: &[Schedulable],
        paths: &[PathMetrics],
    ) -> Vec<Assignment> {
        let current = paths.iter().find(|p| p.id == self.active);
        let failing = current
            .map(|p| !p.enabled || p.rate_bps < self.failover_rate_bps || p.loss > 0.15)
            .unwrap_or(true);
        if failing {
            let since = *self.bad_since.get_or_insert(now);
            if now.saturating_since(since) >= self.patience {
                // Migrate to the best alternative by goodput.
                if let Some(best) = paths
                    .iter()
                    .filter(|p| p.id != self.active && p.enabled)
                    .max_by(|a, b| {
                        a.goodput_bps()
                            .partial_cmp(&b.goodput_bps())
                            .expect("finite")
                    })
                {
                    self.active = best.id;
                    self.bad_since = None;
                    self.blackout_until = Some(now + self.reconnect_delay);
                }
            }
        } else {
            self.bad_since = None;
        }
        // During the blackout the connection is re-establishing: the caller
        // sees assignments to the new path, but a real CM would drop them;
        // we model the cost by assigning to the (not yet connected) path —
        // the sim drops packets assigned during blackout via `in_blackout`.
        packets
            .iter()
            .map(|_| Assignment { path: self.active })
            .collect()
    }

    fn used_paths(&self, _paths: &[PathMetrics]) -> Vec<PathId> {
        vec![self.active]
    }

    fn drop_batch(&self, now: SimTime) -> bool {
        self.in_blackout(now)
    }
}

/// minRTT (SRTT): fill the lowest-RTT path to its congestion budget, then
/// the next — the default scheduler of MPTCP and MPQUIC.
#[derive(Debug)]
pub struct SrttScheduler {
    /// Max packet size for budget computation.
    max_packet_bytes: usize,
    /// Batch interval for budget computation.
    batch_interval: SimDuration,
}

impl SrttScheduler {
    /// Creates a minRTT scheduler.
    pub fn new(max_packet_bytes: usize, batch_interval: SimDuration) -> Self {
        SrttScheduler {
            max_packet_bytes,
            batch_interval,
        }
    }
}

impl Scheduler for SrttScheduler {
    fn name(&self) -> &'static str {
        "srtt"
    }

    fn assign_batch(
        &mut self,
        _now: SimTime,
        packets: &[Schedulable],
        paths: &[PathMetrics],
    ) -> Vec<Assignment> {
        let mut order: Vec<&PathMetrics> = paths.iter().filter(|p| p.enabled).collect();
        if order.is_empty() {
            order = paths.iter().collect();
        }
        order.sort_by_key(|p| p.srtt);
        let mut budgets: Vec<(PathId, usize)> = order
            .iter()
            .map(|p| {
                (
                    p.id,
                    crate::scheduler::p_max(p.rate_bps, self.batch_interval, self.max_packet_bytes),
                )
            })
            .collect();
        let mut out = Vec::with_capacity(packets.len());
        for _ in packets {
            // First path in RTT order with budget left; if all exhausted,
            // keep stuffing the lowest-RTT path (HoL behaviour of minRTT
            // under bursts).
            let slot = budgets
                .iter_mut()
                .find(|(_, b)| *b > 0)
                .map(|(id, b)| {
                    *b -= 1;
                    *id
                })
                .unwrap_or(order[0].id);
            out.push(Assignment { path: slot });
        }
        out
    }
}

/// Musher-style throughput-proportional splitting: packets distributed in
/// proportion to each path's current rate, no video awareness.
#[derive(Debug)]
pub struct MTputScheduler;

impl MTputScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        MTputScheduler
    }
}

impl Default for MTputScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for MTputScheduler {
    fn name(&self) -> &'static str {
        "m-tput"
    }

    fn assign_batch(
        &mut self,
        _now: SimTime,
        packets: &[Schedulable],
        paths: &[PathMetrics],
    ) -> Vec<Assignment> {
        split_by_weight(packets.len(), paths, |p| p.rate_bps as f64)
    }
}

/// MPRTP-style splitting: rate discounted by observed loss ("a scheduler
/// that sends packets using a loss-based estimated sending rate"), always
/// using all available paths.
#[derive(Debug)]
pub struct MRtpScheduler;

impl MRtpScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        MRtpScheduler
    }
}

impl Default for MRtpScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for MRtpScheduler {
    fn name(&self) -> &'static str {
        "m-rtp"
    }

    fn assign_batch(
        &mut self,
        _now: SimTime,
        packets: &[Schedulable],
        paths: &[PathMetrics],
    ) -> Vec<Assignment> {
        split_by_weight(packets.len(), paths, |p| p.goodput_bps().max(1.0))
    }
}

/// Shared weighted splitter for the multipath baselines.
fn split_by_weight(
    n: usize,
    paths: &[PathMetrics],
    weight: impl Fn(&PathMetrics) -> f64,
) -> Vec<Assignment> {
    let enabled: Vec<&PathMetrics> = paths.iter().filter(|p| p.enabled).collect();
    let use_paths: Vec<&PathMetrics> = if enabled.is_empty() {
        paths.iter().collect()
    } else {
        enabled
    };
    if use_paths.is_empty() || n == 0 {
        return Vec::new();
    }
    let total: f64 = use_paths.iter().map(|p| weight(p)).sum();
    let mut counts: Vec<(PathId, usize)> = use_paths
        .iter()
        .map(|p| {
            let share = if total > 0.0 {
                (weight(p) / total * n as f64).floor() as usize
            } else {
                0
            };
            (p.id, share)
        })
        .collect();
    // Distribute the remainder round-robin by weight order.
    let mut assigned: usize = counts.iter().map(|(_, c)| c).sum();
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by(|&a, &b| {
        weight(use_paths[b])
            .partial_cmp(&weight(use_paths[a]))
            .expect("finite")
    });
    let mut i = 0;
    while assigned < n {
        counts[order[i % order.len()]].1 += 1;
        assigned += 1;
        i += 1;
    }
    interleave(&counts)
        .into_iter()
        .map(|path| Assignment { path })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::PacketClass;
    use converge_video::{FrameType, PacketKind, StreamId, VideoPacket};

    const P1: PathId = PathId(1);
    const P2: PathId = PathId(2);

    fn pm(id: PathId, rate_mbps: u64, rtt_ms: u64, loss: f64) -> PathMetrics {
        PathMetrics::new(
            id,
            rate_mbps * 1_000_000,
            SimDuration::from_millis(rtt_ms),
            loss,
        )
    }

    fn pkts(n: usize) -> Vec<Schedulable> {
        (0..n)
            .map(|i| Schedulable {
                packet: VideoPacket {
                    stream: StreamId(0),
                    sequence: i as u64,
                    frame_id: 0,
                    gop_id: 0,
                    frame_type: FrameType::Delta,
                    kind: PacketKind::Media { index: 0, count: 1 },
                    size: 1200,
                    capture_time: SimTime::ZERO,
                },
                class: PacketClass::DeltaMedia,
            })
            .collect()
    }

    #[test]
    fn single_path_uses_only_its_path() {
        let mut s = SinglePathScheduler::new(P2);
        let out = s.assign_batch(
            SimTime::ZERO,
            &pkts(10),
            &[pm(P1, 100, 1, 0.0), pm(P2, 1, 500, 0.0)],
        );
        assert!(out.iter().all(|a| a.path == P2));
        assert_eq!(s.name(), "webrtc-singlepath");
    }

    #[test]
    fn srtt_prefers_low_rtt_until_budget_exhausts() {
        let mut s = SrttScheduler::new(1250, SimDuration::from_millis(33));
        // P2 has lower RTT but tiny rate (≈1 pkt/batch); spillover to P1.
        let out = s.assign_batch(
            SimTime::ZERO,
            &pkts(20),
            &[pm(P1, 20, 100, 0.0), pm(P2, 1, 10, 0.0)],
        );
        let on_p2 = out.iter().filter(|a| a.path == P2).count();
        let on_p1 = out.iter().filter(|a| a.path == P1).count();
        // P2's budget at 1 Mbps / 33 ms / 1250 B with 25 % headroom is ~5.
        assert!(
            (1..=6).contains(&on_p2),
            "low-RTT path filled first: {on_p2}"
        );
        assert_eq!(on_p1 + on_p2, 20);
        // Low-RTT path is used FIRST.
        assert_eq!(out[0].path, P2);
    }

    #[test]
    fn mtput_splits_by_rate() {
        let mut s = MTputScheduler::new();
        let out = s.assign_batch(
            SimTime::ZERO,
            &pkts(40),
            &[pm(P1, 15, 50, 0.0), pm(P2, 5, 50, 0.0)],
        );
        let on_p1 = out.iter().filter(|a| a.path == P1).count();
        assert_eq!(on_p1, 30);
    }

    #[test]
    fn mrtp_discounts_loss() {
        let mut s = MRtpScheduler::new();
        // Equal rates, but P2 at 50% loss → P2 gets ~1/3 of packets.
        let out = s.assign_batch(
            SimTime::ZERO,
            &pkts(30),
            &[pm(P1, 10, 50, 0.0), pm(P2, 10, 50, 0.5)],
        );
        let on_p2 = out.iter().filter(|a| a.path == P2).count();
        assert_eq!(on_p2, 10, "goodput split 10:5 → 20:10");
    }

    #[test]
    fn cm_migrates_after_patience() {
        let mut s = ConnectionMigration::new(P1);
        let bad_p1 = [pm(P1, 0, 50, 0.0), pm(P2, 10, 50, 0.0)];
        let t0 = SimTime::ZERO;
        s.assign_batch(t0, &pkts(5), &bad_p1);
        assert_eq!(s.active_path(), P1, "patience not yet exhausted");
        let t1 = SimTime::from_millis(2_000);
        s.assign_batch(t1, &pkts(5), &bad_p1);
        assert_eq!(s.active_path(), P2, "should have migrated");
        assert!(s.in_blackout(SimTime::from_millis(2_100)));
        assert!(!s.in_blackout(SimTime::from_millis(3_000)));
    }

    #[test]
    fn cm_stays_on_healthy_path() {
        let mut s = ConnectionMigration::new(P1);
        let good = [pm(P1, 10, 50, 0.0), pm(P2, 20, 10, 0.0)];
        for ms in [0u64, 1000, 5000] {
            s.assign_batch(SimTime::from_millis(ms), &pkts(5), &good);
        }
        assert_eq!(s.active_path(), P1);
    }

    #[test]
    fn multipath_baselines_ignore_feedback() {
        use converge_rtp::QoeFeedback;
        let mut s = MTputScheduler::new();
        s.on_qoe_feedback(
            SimTime::ZERO,
            &QoeFeedback {
                path_id: 2,
                ssrc: 0,
                alpha: -100,
                fcd_micros: 0,
            },
        );
        let out = s.assign_batch(
            SimTime::ZERO,
            &pkts(40),
            &[pm(P1, 15, 50, 0.0), pm(P2, 5, 50, 0.0)],
        );
        let on_p2 = out.iter().filter(|a| a.path == P2).count();
        assert_eq!(on_p2, 10, "baseline unaffected by feedback");
    }

    #[test]
    fn weighted_split_handles_zero_total() {
        let out = split_by_weight(10, &[pm(P1, 0, 50, 0.0), pm(P2, 0, 50, 0.0)], |p| {
            p.rate_bps as f64
        });
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn disabled_paths_excluded() {
        let mut a = pm(P1, 10, 50, 0.0);
        a.enabled = false;
        let out = split_by_weight(10, &[a, pm(P2, 10, 50, 0.0)], |p| p.rate_bps as f64);
        assert!(out.iter().all(|x| x.path == P2));
    }
}
