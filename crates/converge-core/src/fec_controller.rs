//! FEC policies: Converge's path-specific loss-based controller (§4.3) and
//! WebRTC's static table-based baseline.
//!
//! Converge computes `FEC_i = l_i × P_i × β` repair packets for the `P_i`
//! media packets destined to path `i` with loss `l_i`; `β` grows when NACKs
//! reveal the protection was insufficient:
//! `β = 1 + NACK_i / (P_i − FEC_i)`. WebRTC instead applies one
//! protection rate to all packets regardless of path, looked up from a
//! static loss→rate table (doubled for keyframes) — the behaviour the paper
//! shows wasting 40 %+ overhead at 1 % loss (Fig. 12).

use std::collections::BTreeMap;

use converge_net::{PathId, SimTime};
use converge_trace::{TraceEvent, TraceHandle};

/// A pluggable FEC rate policy.
pub trait FecPolicy: std::fmt::Debug + Send {
    /// Short name for reporting.
    fn name(&self) -> &'static str;

    /// Installs a trace handle. Policies that emit structured events store
    /// it; the default ignores it.
    fn set_trace(&mut self, _trace: TraceHandle) {}

    /// Number of repair packets to generate for `media_count` media packets
    /// destined to `path` whose current loss fraction is `loss`.
    fn repair_count(
        &mut self,
        now: SimTime,
        path: PathId,
        media_count: usize,
        loss: f64,
        is_keyframe: bool,
    ) -> usize;

    /// Notifies the policy that `nacked` packets on `path` needed
    /// retransmission despite protection (drives β for Converge).
    fn on_nack(&mut self, _path: PathId, _nacked: usize) {}

    /// Notifies the policy of the media/FEC counts actually sent in the
    /// last batch on `path` (β denominator bookkeeping).
    fn on_batch_sent(&mut self, _path: PathId, _media: usize, _fec: usize) {}
}

/// Converge's path-specific, NACK-adaptive FEC controller.
#[derive(Debug, Default)]
pub struct ConvergeFec {
    state: BTreeMap<PathId, PathFecState>,
    trace: TraceHandle,
    /// Last traced `(β‰, repair)` per path, to record changes only.
    last_traced: BTreeMap<PathId, (u32, u32)>,
}

#[derive(Debug)]
struct PathFecState {
    beta: f64,
    /// NACKs observed since the last β update.
    pending_nacks: usize,
    /// Media/FEC counts of the last sent batch.
    last_media: usize,
    last_fec: usize,
}

impl Default for PathFecState {
    fn default() -> Self {
        PathFecState {
            beta: 1.0,
            pending_nacks: 0,
            last_media: 0,
            last_fec: 0,
        }
    }
}

impl ConvergeFec {
    /// Creates the controller with β = 1 on every path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current β for a path (for telemetry/tests).
    pub fn beta(&self, path: PathId) -> f64 {
        self.state.get(&path).map(|s| s.beta).unwrap_or(1.0)
    }
}

impl FecPolicy for ConvergeFec {
    fn name(&self) -> &'static str {
        "converge-path-fec"
    }

    fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    fn repair_count(
        &mut self,
        now: SimTime,
        path: PathId,
        media_count: usize,
        loss: f64,
        _is_keyframe: bool,
    ) -> usize {
        let s = self.state.entry(path).or_default();
        // Fold pending NACK evidence into β:
        // β = 1 + NACK_i / (P_i − FEC_i).
        if s.pending_nacks > 0 {
            let denom = s.last_media.saturating_sub(s.last_fec).max(1);
            // Cap β: a burst of NACKs must not turn the protector into a
            // bandwidth hog worse than the table baseline.
            s.beta = (1.0 + s.pending_nacks as f64 / denom as f64).min(3.0);
            s.pending_nacks = 0;
        } else {
            // Decay β back toward 1 as the path behaves.
            s.beta = 1.0 + (s.beta - 1.0) * 0.9;
        }
        let l = loss.clamp(0.0, 1.0);
        // FEC_i = l_i × P_i × β, rounded up so any nonzero loss on a
        // nonzero batch yields at least one repair packet.
        let fec = (l * media_count as f64 * s.beta).ceil() as usize;
        let fec = fec.min(media_count);
        if self.trace.is_enabled() {
            let beta_milli = (self.beta(path) * 1000.0).round() as u32;
            let key = (beta_milli, fec as u32);
            if self.last_traced.insert(path, key) != Some(key) {
                self.trace.emit(
                    now,
                    TraceEvent::FecUpdated {
                        path,
                        beta_milli,
                        media: media_count as u32,
                        repair: fec as u32,
                    },
                );
            }
        }
        fec
    }

    fn on_nack(&mut self, path: PathId, nacked: usize) {
        self.state.entry(path).or_default().pending_nacks += nacked;
    }

    fn on_batch_sent(&mut self, path: PathId, media: usize, fec: usize) {
        let s = self.state.entry(path).or_default();
        s.last_media = media;
        s.last_fec = fec;
    }
}

/// WebRTC's static table-based FEC baseline.
///
/// Protection rate looked up from effective loss, applied uniformly to all
/// paths (aggregate loss, not per-path), and doubled for keyframes — the
/// design the paper measures as "overly aggressive" (≈40 % overhead at 1 %
/// loss with <20 % utilization).
#[derive(Debug, Default)]
pub struct WebRtcTableFec {
    /// Loss seen per path, pooled into one application-level estimate.
    path_loss: BTreeMap<PathId, f64>,
}

/// `(loss fraction, protection rate)` breakpoints of the table, linearly
/// interpolated. Calibrated to the behaviour in the paper's Fig. 12.
const TABLE: &[(f64, f64)] = &[
    (0.000, 0.00),
    (0.002, 0.25),
    (0.010, 0.40),
    (0.020, 0.44),
    (0.030, 0.47),
    (0.050, 0.52),
    (0.080, 0.56),
    (0.100, 0.60),
    (0.200, 0.65),
    (1.000, 0.70),
];

impl WebRtcTableFec {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// The table lookup with linear interpolation.
    pub fn table_rate(loss: f64) -> f64 {
        let l = loss.clamp(0.0, 1.0);
        for w in TABLE.windows(2) {
            let (l0, r0) = w[0];
            let (l1, r1) = w[1];
            if l <= l1 {
                if l1 == l0 {
                    return r1;
                }
                return r0 + (r1 - r0) * (l - l0) / (l1 - l0);
            }
        }
        TABLE.last().expect("table non-empty").1
    }

    fn aggregate_loss(&self) -> f64 {
        if self.path_loss.is_empty() {
            return 0.0;
        }
        self.path_loss.values().sum::<f64>() / self.path_loss.len() as f64
    }
}

impl FecPolicy for WebRtcTableFec {
    fn name(&self) -> &'static str {
        "webrtc-table-fec"
    }

    fn repair_count(
        &mut self,
        _now: SimTime,
        path: PathId,
        media_count: usize,
        loss: f64,
        is_keyframe: bool,
    ) -> usize {
        // Pool the per-path loss into the aggregate, application-level
        // estimate WebRTC would see.
        self.path_loss.insert(path, loss.clamp(0.0, 1.0));
        let mut rate = Self::table_rate(self.aggregate_loss());
        if is_keyframe {
            rate = (rate * 2.0).min(0.8);
        }
        ((media_count as f64) * rate).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: PathId = PathId(0);
    const P1: PathId = PathId(1);

    #[test]
    fn converge_fec_proportional_to_loss() {
        let mut f = ConvergeFec::new();
        assert_eq!(f.repair_count(SimTime::ZERO, P0, 30, 0.0, false), 0);
        assert_eq!(f.repair_count(SimTime::ZERO, P0, 30, 0.10, false), 3);
        assert_eq!(f.repair_count(SimTime::ZERO, P0, 60, 0.05, false), 3);
    }

    #[test]
    fn converge_fec_rounds_up_small_losses() {
        let mut f = ConvergeFec::new();
        assert_eq!(f.repair_count(SimTime::ZERO, P0, 10, 0.01, false), 1);
    }

    #[test]
    fn converge_fec_capped_at_media_count() {
        let mut f = ConvergeFec::new();
        assert_eq!(f.repair_count(SimTime::ZERO, P0, 5, 1.0, false), 5);
    }

    #[test]
    fn nacks_raise_beta_then_decay() {
        let mut f = ConvergeFec::new();
        f.on_batch_sent(P0, 20, 2);
        f.on_nack(P0, 6);
        // β = 1 + 6/(20-2) = 1.333…; FEC = 0.1 * 30 * 1.333 = 4.
        let fec = f.repair_count(SimTime::ZERO, P0, 30, 0.10, false);
        assert_eq!(fec, 4);
        assert!((f.beta(P0) - 1.3333).abs() < 0.001);
        // Without further NACKs β decays toward 1.
        f.repair_count(SimTime::ZERO, P0, 30, 0.10, false);
        assert!(f.beta(P0) < 1.3333);
    }

    #[test]
    fn beta_isolated_per_path() {
        let mut f = ConvergeFec::new();
        f.on_batch_sent(P0, 10, 1);
        f.on_nack(P0, 3);
        f.repair_count(SimTime::ZERO, P0, 10, 0.1, false);
        assert!(f.beta(P0) > 1.0);
        assert_eq!(f.beta(P1), 1.0);
    }

    #[test]
    fn table_rate_interpolates() {
        assert_eq!(WebRtcTableFec::table_rate(0.0), 0.0);
        assert!((WebRtcTableFec::table_rate(0.01) - 0.40).abs() < 1e-9);
        assert!((WebRtcTableFec::table_rate(0.10) - 0.60).abs() < 1e-9);
        let mid = WebRtcTableFec::table_rate(0.015);
        assert!(mid > 0.40 && mid < 0.44, "{mid}");
        assert_eq!(WebRtcTableFec::table_rate(5.0), 0.70);
    }

    #[test]
    fn webrtc_fec_heavy_at_low_loss() {
        let mut f = WebRtcTableFec::new();
        // 1% loss → ~40% overhead: 100 media → ~40 repair.
        let fec = f.repair_count(SimTime::ZERO, P0, 100, 0.01, false);
        assert_eq!(fec, 40);
    }

    #[test]
    fn webrtc_fec_doubles_keyframes() {
        let mut f = WebRtcTableFec::new();
        let delta = f.repair_count(SimTime::ZERO, P0, 100, 0.01, false);
        let key = f.repair_count(SimTime::ZERO, P0, 100, 0.01, true);
        assert_eq!(key, delta * 2);
    }

    #[test]
    fn webrtc_fec_keyframe_rate_capped() {
        let mut f = WebRtcTableFec::new();
        let key = f.repair_count(SimTime::ZERO, P0, 100, 0.5, true);
        assert_eq!(key, 80); // 2×0.675 capped at 0.8
    }

    #[test]
    fn webrtc_fec_uses_aggregate_loss() {
        let mut f = WebRtcTableFec::new();
        // Path 0 clean, path 1 at 10% — aggregate 5% drives BOTH paths'
        // protection, the waste Converge's path-specific design avoids.
        f.repair_count(SimTime::ZERO, P1, 100, 0.10, false);
        let clean_path_fec = f.repair_count(SimTime::ZERO, P0, 100, 0.0, false);
        assert!(
            clean_path_fec > 0,
            "aggregate loss should leak to clean path"
        );
    }

    #[test]
    fn converge_cheaper_than_webrtc_at_low_loss() {
        let mut c = ConvergeFec::new();
        let mut w = WebRtcTableFec::new();
        let c_fec = c.repair_count(SimTime::ZERO, P0, 100, 0.01, false);
        let w_fec = w.repair_count(SimTime::ZERO, P0, 100, 0.01, false);
        assert!(
            c_fec * 5 <= w_fec,
            "converge {c_fec} should be ≤ 1/5 of webrtc {w_fec}"
        );
    }
}
