//! RTCP packets, including the Converge multipath and QoE extensions.
//!
//! Converge extends RTCP in two ways (paper §5 and Appendix C): every packet
//! carries the ID of the path it reports on (Fig. 19), and two new messages
//! exist — one for the sender to advertise its expected frame rate (carried
//! here as an SDES private item) and one for the receiver's QoE feedback
//! `(path_id, α, FCD)` (carried as an APP packet named `CVRG`).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::packet::ParseError;

/// RTCP packet type values.
mod pt {
    pub const SR: u8 = 200;
    pub const RR: u8 = 201;
    pub const SDES: u8 = 202;
    pub const APP: u8 = 204;
    pub const RTPFB: u8 = 205;
    pub const PSFB: u8 = 206;
}

/// One RTCP packet together with the path it was observed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtcpPacket {
    /// Sender report: send-side clock and volume counters.
    SenderReport(SenderReport),
    /// Receiver report: per-path loss/jitter/delay blocks.
    ReceiverReport(ReceiverReport),
    /// Source description carrying the expected frame rate.
    Sdes(Sdes),
    /// Negative acknowledgement requesting retransmission.
    Nack(Nack),
    /// Picture Loss Indication — a keyframe request.
    Pli(Pli),
    /// Per-path transport-wide feedback for congestion control.
    TransportFeedback(TransportFeedback),
    /// The Converge video QoE feedback message.
    QoeFeedback(QoeFeedback),
}

/// Sender report (PT=200), extended with a path ID word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SenderReport {
    /// Path this report describes.
    pub path_id: u8,
    /// Reporting sender's SSRC.
    pub ssrc: u32,
    /// Send time, microseconds of simulation time (stand-in for NTP).
    pub ntp_micros: u64,
    /// RTP timestamp corresponding to `ntp_micros`.
    pub rtp_timestamp: u32,
    /// Packets sent on this path so far.
    pub packet_count: u32,
    /// Payload octets sent on this path so far.
    pub octet_count: u32,
}

/// One report block inside a receiver report. Carries both the media-level
/// and the per-path ("Mp") extended highest sequence numbers, per Fig. 19.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportBlock {
    /// SSRC of the stream this block describes.
    pub ssrc: u32,
    /// Fraction of packets lost since the previous report, in 1/256 units.
    pub fraction_lost: u8,
    /// Cumulative packets lost (24-bit on the wire).
    pub cumulative_lost: u32,
    /// Extended highest media sequence number received.
    pub ext_highest_seq: u32,
    /// Extended highest per-path sequence number received (Converge).
    pub ext_highest_mp_seq: u32,
    /// Interarrival jitter estimate, RTP timestamp units.
    pub jitter: u32,
    /// Middle 32 bits of the last SR timestamp, for RTT computation.
    pub last_sr: u32,
    /// Delay since that SR, in 1/65536 s units.
    pub delay_since_last_sr: u32,
}

/// Receiver report (PT=201) for one path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiverReport {
    /// Path this report describes.
    pub path_id: u8,
    /// Reporter's SSRC.
    pub ssrc: u32,
    /// Report blocks, one per media stream.
    pub blocks: Vec<ReportBlock>,
}

/// Source description (PT=202). We carry only what the system needs: a
/// CNAME and the sender's expected frame rate (§4.2 — "the sender's frame
/// rate is reported using a source description RTCP (SDES) message").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sdes {
    /// Source the description belongs to.
    pub ssrc: u32,
    /// Canonical name.
    pub cname: String,
    /// Expected frames per second at the sender, if advertised.
    pub frame_rate: Option<u8>,
}

/// Generic NACK (PT=205, FMT=1) carrying lost media sequence numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nack {
    /// Path the losses were observed on.
    pub path_id: u8,
    /// Media source being NACKed.
    pub ssrc: u32,
    /// Lost media sequence numbers.
    pub lost: Vec<u16>,
}

/// Picture Loss Indication (PT=206, FMT=1): a keyframe request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pli {
    /// Path the PLI travels on.
    pub path_id: u8,
    /// Media source that must refresh.
    pub ssrc: u32,
}

/// Per-path transport feedback (simplified transport-wide CC): arrival times
/// of recently received packets keyed by their per-path transport sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportFeedback {
    /// Path this feedback describes.
    pub path_id: u8,
    /// Reporter's SSRC.
    pub ssrc: u32,
    /// `(mp_transport_sequence, arrival time in simulation microseconds)`
    /// for each packet received since the previous feedback.
    pub arrivals: Vec<(u16, u64)>,
}

/// The Converge QoE feedback message (§4.2): identifies the path whose
/// asymmetry is hurting frame construction, how many packets arrived
/// late (α < 0) or could arrive earlier (α > 0), and the current frame
/// construction delay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QoeFeedback {
    /// Path causing (or able to absorb) the change.
    pub path_id: u8,
    /// Reporter's SSRC.
    pub ssrc: u32,
    /// Packet-count adjustment: negative to shrink the path's share,
    /// positive to grow it (Eq. 2 of the paper).
    pub alpha: i32,
    /// Frame construction delay observed, microseconds (Eq. 3 input).
    pub fcd_micros: u64,
}

const APP_NAME_CVRG: &[u8; 4] = b"CVRG";

fn put_rtcp_header(b: &mut BytesMut, count: u8, packet_type: u8, body_words: u16) {
    b.put_u8((2 << 6) | (count & 0x1f));
    b.put_u8(packet_type);
    b.put_u16(body_words);
}

impl RtcpPacket {
    /// The path ID the packet reports on.
    pub fn path_id(&self) -> u8 {
        match self {
            RtcpPacket::SenderReport(p) => p.path_id,
            RtcpPacket::ReceiverReport(p) => p.path_id,
            RtcpPacket::Sdes(_) => 0,
            RtcpPacket::Nack(p) => p.path_id,
            RtcpPacket::Pli(p) => p.path_id,
            RtcpPacket::TransportFeedback(p) => p.path_id,
            RtcpPacket::QoeFeedback(p) => p.path_id,
        }
    }

    /// Serialized size in bytes.
    pub fn wire_len(&self) -> usize {
        self.serialize().len()
    }

    /// Serializes one RTCP packet (header + path word + body).
    pub fn serialize(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(64);
        match self {
            RtcpPacket::SenderReport(sr) => {
                // body: path(4) + ssrc(4) + ntp(8) + rtp_ts(4) + counts(8) = 28
                put_rtcp_header(&mut b, 0, pt::SR, 7);
                b.put_u32(sr.path_id as u32);
                b.put_u32(sr.ssrc);
                b.put_u64(sr.ntp_micros);
                b.put_u32(sr.rtp_timestamp);
                b.put_u32(sr.packet_count);
                b.put_u32(sr.octet_count);
            }
            RtcpPacket::ReceiverReport(rr) => {
                let words = 2 + rr.blocks.len() as u16 * 7;
                put_rtcp_header(&mut b, rr.blocks.len() as u8, pt::RR, words);
                b.put_u32(rr.path_id as u32);
                b.put_u32(rr.ssrc);
                for blk in &rr.blocks {
                    b.put_u32(blk.ssrc);
                    b.put_u8(blk.fraction_lost);
                    b.put_uint(blk.cumulative_lost as u64 & 0xFF_FFFF, 3);
                    b.put_u32(blk.ext_highest_seq);
                    b.put_u32(blk.ext_highest_mp_seq);
                    b.put_u32(blk.jitter);
                    b.put_u32(blk.last_sr);
                    b.put_u32(blk.delay_since_last_sr);
                }
            }
            RtcpPacket::Sdes(s) => {
                // Chunk: ssrc, CNAME item, optional private frame-rate item,
                // end marker, padded to 32 bits.
                let mut body = BytesMut::new();
                body.put_u32(s.ssrc);
                body.put_u8(1); // CNAME
                body.put_u8(s.cname.len() as u8);
                body.put_slice(s.cname.as_bytes());
                if let Some(fr) = s.frame_rate {
                    body.put_u8(8); // PRIV
                    body.put_u8(1);
                    body.put_u8(fr);
                }
                body.put_u8(0); // end of items
                while !body.len().is_multiple_of(4) {
                    body.put_u8(0);
                }
                put_rtcp_header(&mut b, 1, pt::SDES, (body.len() / 4) as u16);
                b.put_slice(&body);
            }
            RtcpPacket::Nack(n) => {
                // Encode lost seqs as RFC 4585 (PID, BLP) pairs.
                let pairs = encode_nack_pairs(&n.lost);
                let words = 3 + pairs.len() as u16;
                put_rtcp_header(&mut b, 1, pt::RTPFB, words);
                b.put_u32(n.path_id as u32);
                b.put_u32(0); // sender SSRC unused in simulation
                b.put_u32(n.ssrc);
                for (pid, blp) in pairs {
                    b.put_u16(pid);
                    b.put_u16(blp);
                }
            }
            RtcpPacket::Pli(p) => {
                put_rtcp_header(&mut b, 1, pt::PSFB, 3);
                b.put_u32(p.path_id as u32);
                b.put_u32(0);
                b.put_u32(p.ssrc);
            }
            RtcpPacket::TransportFeedback(tf) => {
                let words = 3 + tf.arrivals.len() as u16 * 3;
                put_rtcp_header(&mut b, 15, pt::RTPFB, words);
                b.put_u32(tf.path_id as u32);
                b.put_u32(tf.ssrc);
                b.put_u32(tf.arrivals.len() as u32);
                for &(seq, at) in &tf.arrivals {
                    b.put_u16(seq);
                    b.put_u16(0); // alignment
                    b.put_u64(at);
                }
            }
            RtcpPacket::QoeFeedback(q) => {
                // APP packet: ssrc, name "CVRG", then path/alpha/fcd.
                put_rtcp_header(&mut b, 31, pt::APP, 6);
                b.put_u32(q.ssrc);
                b.put_slice(APP_NAME_CVRG);
                b.put_u32(q.path_id as u32);
                b.put_i32(q.alpha);
                b.put_u64(q.fcd_micros);
            }
        }
        b.freeze()
    }

    /// Parses one RTCP packet from the buffer.
    pub fn parse(mut buf: Bytes) -> Result<Self, ParseError> {
        if buf.len() < 4 {
            return Err(ParseError::Truncated);
        }
        let b0 = buf.get_u8();
        if b0 >> 6 != 2 {
            return Err(ParseError::BadVersion(b0 >> 6));
        }
        let count = b0 & 0x1f;
        let packet_type = buf.get_u8();
        let words = buf.get_u16() as usize;
        if buf.len() < words * 4 {
            return Err(ParseError::Truncated);
        }
        match packet_type {
            pt::SR => {
                if words != 7 {
                    return Err(ParseError::BadLength);
                }
                Ok(RtcpPacket::SenderReport(SenderReport {
                    path_id: buf.get_u32() as u8,
                    ssrc: buf.get_u32(),
                    ntp_micros: buf.get_u64(),
                    rtp_timestamp: buf.get_u32(),
                    packet_count: buf.get_u32(),
                    octet_count: buf.get_u32(),
                }))
            }
            pt::RR => {
                let path_id = buf.get_u32() as u8;
                let ssrc = buf.get_u32();
                let mut blocks = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    if buf.len() < 28 {
                        return Err(ParseError::Truncated);
                    }
                    blocks.push(ReportBlock {
                        ssrc: buf.get_u32(),
                        fraction_lost: buf.get_u8(),
                        cumulative_lost: buf.get_uint(3) as u32,
                        ext_highest_seq: buf.get_u32(),
                        ext_highest_mp_seq: buf.get_u32(),
                        jitter: buf.get_u32(),
                        last_sr: buf.get_u32(),
                        delay_since_last_sr: buf.get_u32(),
                    });
                }
                Ok(RtcpPacket::ReceiverReport(ReceiverReport {
                    path_id,
                    ssrc,
                    blocks,
                }))
            }
            pt::SDES => {
                if buf.len() < 6 {
                    return Err(ParseError::Truncated);
                }
                let ssrc = buf.get_u32();
                let mut cname = String::new();
                let mut frame_rate = None;
                loop {
                    if !buf.has_remaining() {
                        break;
                    }
                    let item = buf.get_u8();
                    if item == 0 {
                        break;
                    }
                    if !buf.has_remaining() {
                        return Err(ParseError::Truncated);
                    }
                    let len = buf.get_u8() as usize;
                    if buf.len() < len {
                        return Err(ParseError::Truncated);
                    }
                    match item {
                        1 => {
                            cname = String::from_utf8_lossy(&buf.split_to(len)).into_owned();
                        }
                        8 if len == 1 => frame_rate = Some(buf.get_u8()),
                        _ => buf.advance(len),
                    }
                }
                Ok(RtcpPacket::Sdes(Sdes {
                    ssrc,
                    cname,
                    frame_rate,
                }))
            }
            pt::RTPFB if count == 1 => {
                if buf.len() < 12 {
                    return Err(ParseError::Truncated);
                }
                let path_id = buf.get_u32() as u8;
                let _sender = buf.get_u32();
                let ssrc = buf.get_u32();
                let mut lost = Vec::new();
                while buf.len() >= 4 {
                    let pid = buf.get_u16();
                    let blp = buf.get_u16();
                    lost.push(pid);
                    for bit in 0..16 {
                        if blp & (1 << bit) != 0 {
                            lost.push(pid.wrapping_add(bit + 1));
                        }
                    }
                }
                Ok(RtcpPacket::Nack(Nack {
                    path_id,
                    ssrc,
                    lost,
                }))
            }
            pt::RTPFB if count == 15 => {
                if buf.len() < 12 {
                    return Err(ParseError::Truncated);
                }
                let path_id = buf.get_u32() as u8;
                let ssrc = buf.get_u32();
                let n = buf.get_u32() as usize;
                if buf.len() < n * 12 {
                    return Err(ParseError::Truncated);
                }
                let mut arrivals = Vec::with_capacity(n);
                for _ in 0..n {
                    let seq = buf.get_u16();
                    let _pad = buf.get_u16();
                    let at = buf.get_u64();
                    arrivals.push((seq, at));
                }
                Ok(RtcpPacket::TransportFeedback(TransportFeedback {
                    path_id,
                    ssrc,
                    arrivals,
                }))
            }
            pt::PSFB if count == 1 => {
                if buf.len() < 12 {
                    return Err(ParseError::Truncated);
                }
                let path_id = buf.get_u32() as u8;
                let _sender = buf.get_u32();
                let ssrc = buf.get_u32();
                Ok(RtcpPacket::Pli(Pli { path_id, ssrc }))
            }
            pt::APP => {
                if buf.len() < 24 {
                    return Err(ParseError::Truncated);
                }
                let ssrc = buf.get_u32();
                let mut name = [0u8; 4];
                buf.copy_to_slice(&mut name);
                if &name != APP_NAME_CVRG {
                    return Err(ParseError::BadExtension);
                }
                Ok(RtcpPacket::QoeFeedback(QoeFeedback {
                    ssrc,
                    path_id: buf.get_u32() as u8,
                    alpha: buf.get_i32(),
                    fcd_micros: buf.get_u64(),
                }))
            }
            other => Err(ParseError::UnknownPacketType(other)),
        }
    }
}

/// Packs sorted-or-not lost sequence numbers into RFC 4585 `(PID, BLP)`
/// pairs: each pair covers a base sequence plus a 16-bit bitmap of the
/// following 16 sequences.
fn encode_nack_pairs(lost: &[u16]) -> Vec<(u16, u16)> {
    let mut sorted: Vec<u16> = lost.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut pairs: Vec<(u16, u16)> = Vec::new();
    for seq in sorted {
        match pairs.last_mut() {
            Some((pid, blp)) if seq.wrapping_sub(*pid) >= 1 && seq.wrapping_sub(*pid) <= 16 => {
                *blp |= 1 << (seq.wrapping_sub(*pid) - 1);
            }
            _ => pairs.push((seq, 0)),
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: RtcpPacket) {
        let wire = p.serialize();
        let back = RtcpPacket::parse(wire).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn sender_report_roundtrip() {
        roundtrip(RtcpPacket::SenderReport(SenderReport {
            path_id: 1,
            ssrc: 0x1111,
            ntp_micros: 123_456_789,
            rtp_timestamp: 90_000,
            packet_count: 42,
            octet_count: 61_234,
        }));
    }

    #[test]
    fn receiver_report_roundtrip() {
        roundtrip(RtcpPacket::ReceiverReport(ReceiverReport {
            path_id: 2,
            ssrc: 0x2222,
            blocks: vec![
                ReportBlock {
                    ssrc: 0xAAAA,
                    fraction_lost: 25,
                    cumulative_lost: 1000,
                    ext_highest_seq: 70_000,
                    ext_highest_mp_seq: 35_000,
                    jitter: 99,
                    last_sr: 7,
                    delay_since_last_sr: 11,
                },
                ReportBlock {
                    ssrc: 0xBBBB,
                    fraction_lost: 0,
                    cumulative_lost: 0,
                    ext_highest_seq: 5,
                    ext_highest_mp_seq: 5,
                    jitter: 0,
                    last_sr: 0,
                    delay_since_last_sr: 0,
                },
            ],
        }));
    }

    #[test]
    fn empty_receiver_report_roundtrip() {
        roundtrip(RtcpPacket::ReceiverReport(ReceiverReport {
            path_id: 0,
            ssrc: 1,
            blocks: vec![],
        }));
    }

    #[test]
    fn sdes_roundtrip_with_frame_rate() {
        roundtrip(RtcpPacket::Sdes(Sdes {
            ssrc: 0x3333,
            cname: "camera0@converge".into(),
            frame_rate: Some(30),
        }));
    }

    #[test]
    fn sdes_roundtrip_without_frame_rate() {
        roundtrip(RtcpPacket::Sdes(Sdes {
            ssrc: 0x3333,
            cname: "x".into(),
            frame_rate: None,
        }));
    }

    #[test]
    fn nack_roundtrip_contiguous() {
        roundtrip(RtcpPacket::Nack(Nack {
            path_id: 1,
            ssrc: 0x4444,
            lost: vec![100, 101, 102, 116],
        }));
    }

    #[test]
    fn nack_roundtrip_sparse() {
        roundtrip(RtcpPacket::Nack(Nack {
            path_id: 0,
            ssrc: 0x4444,
            lost: vec![10, 200, 300],
        }));
    }

    #[test]
    fn nack_encoding_deduplicates_and_sorts() {
        let mut n = Nack {
            path_id: 0,
            ssrc: 1,
            lost: vec![5, 3, 5, 4],
        };
        let wire = RtcpPacket::Nack(n.clone()).serialize();
        if let RtcpPacket::Nack(back) = RtcpPacket::parse(wire).unwrap() {
            n.lost = vec![3, 4, 5];
            assert_eq!(back, n);
        } else {
            panic!("not a NACK");
        }
    }

    #[test]
    fn pli_roundtrip() {
        roundtrip(RtcpPacket::Pli(Pli {
            path_id: 3,
            ssrc: 0x5555,
        }));
    }

    #[test]
    fn transport_feedback_roundtrip() {
        roundtrip(RtcpPacket::TransportFeedback(TransportFeedback {
            path_id: 1,
            ssrc: 0x6666,
            arrivals: vec![(1, 1_000), (2, 2_500), (4, 9_999_999_999)],
        }));
    }

    #[test]
    fn qoe_feedback_roundtrip_negative_alpha() {
        roundtrip(RtcpPacket::QoeFeedback(QoeFeedback {
            path_id: 2,
            ssrc: 0x7777,
            alpha: -5,
            fcd_micros: 45_000,
        }));
    }

    #[test]
    fn qoe_feedback_roundtrip_positive_alpha() {
        roundtrip(RtcpPacket::QoeFeedback(QoeFeedback {
            path_id: 1,
            ssrc: 0x7777,
            alpha: 12,
            fcd_micros: 0,
        }));
    }

    #[test]
    fn parse_rejects_truncated() {
        let wire = RtcpPacket::Pli(Pli {
            path_id: 0,
            ssrc: 9,
        })
        .serialize();
        let short = wire.slice(0..wire.len() - 1);
        assert_eq!(RtcpPacket::parse(short), Err(ParseError::Truncated));
    }

    #[test]
    fn parse_rejects_unknown_type() {
        let mut b = BytesMut::new();
        b.put_u8(2 << 6);
        b.put_u8(199);
        b.put_u16(0);
        assert_eq!(
            RtcpPacket::parse(b.freeze()),
            Err(ParseError::UnknownPacketType(199))
        );
    }

    #[test]
    fn parse_rejects_bad_version() {
        let mut b = BytesMut::new();
        b.put_u8(1 << 6);
        b.put_u8(pt::SR);
        b.put_u16(0);
        assert_eq!(
            RtcpPacket::parse(b.freeze()),
            Err(ParseError::BadVersion(1))
        );
    }

    #[test]
    fn path_id_accessor() {
        let p = RtcpPacket::QoeFeedback(QoeFeedback {
            path_id: 7,
            ssrc: 0,
            alpha: 0,
            fcd_micros: 0,
        });
        assert_eq!(p.path_id(), 7);
    }

    #[test]
    fn nack_pair_encoding_window() {
        // 17 apart must start a new pair.
        let pairs = encode_nack_pairs(&[0, 17]);
        assert_eq!(pairs.len(), 2);
        // 16 apart fits in one pair.
        let pairs = encode_nack_pairs(&[0, 16]);
        assert_eq!(pairs, vec![(0, 1 << 15)]);
    }
}
