//! The Converge multipath RTP header extension (paper Fig. 18).
//!
//! The paper extends RTP with three fields so the receiver can demultiplex
//! and re-order per path: a path ID, a flow-level (per-path) media sequence
//! number, and a flow-level transport-wide sequence number. We carry them in
//! a single RFC 5285 one-byte-form extension block with three elements.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::packet::ParseError;

/// The Converge multipath extension carried on every multipath RTP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct MultipathExtension {
    /// Which path the packet was sent on.
    pub path_id: u8,
    /// Per-path media sequence number ("MpSequenceNumber" in Fig. 18).
    pub mp_sequence: u16,
    /// Per-path transport-wide sequence number used by per-path GCC
    /// ("MpTransportSequenceNumber").
    pub mp_transport_sequence: u16,
}

impl MultipathExtension {
    /// RFC 5285 "one-byte form" profile value.
    pub const PROFILE_ID: u16 = 0xBEDE;
    /// Element IDs within the extension block.
    const ID_PATH: u8 = 1;
    const ID_MP_SEQ: u8 = 2;
    const ID_MP_TSEQ: u8 = 3;
    /// Body length: (1+1) + (1+2) + (1+2) = 8 bytes, already 32-bit aligned.
    pub const PADDED_BODY_LEN: usize = 8;

    /// Serializes the 4-byte extension header plus body into `b`.
    pub(crate) fn serialize_block(&self, b: &mut BytesMut) {
        b.put_u16(Self::PROFILE_ID);
        b.put_u16((Self::PADDED_BODY_LEN / 4) as u16); // length in 32-bit words
                                                       // One-byte form elements: (id << 4) | (len - 1), then data.
        b.put_u8(Self::ID_PATH << 4); // 1 data byte
        b.put_u8(self.path_id);
        b.put_u8((Self::ID_MP_SEQ << 4) | 1); // 2 data bytes
        b.put_u16(self.mp_sequence);
        b.put_u8((Self::ID_MP_TSEQ << 4) | 1);
        b.put_u16(self.mp_transport_sequence);
    }

    /// Parses an extension block from the front of `buf`.
    pub(crate) fn parse_block(buf: &mut Bytes) -> Result<Self, ParseError> {
        if buf.len() < 4 {
            return Err(ParseError::Truncated);
        }
        let profile = buf.get_u16();
        if profile != Self::PROFILE_ID {
            return Err(ParseError::BadExtension);
        }
        let words = buf.get_u16() as usize;
        let body_len = words * 4;
        if buf.len() < body_len {
            return Err(ParseError::Truncated);
        }
        let mut body = buf.split_to(body_len);

        let mut path_id = None;
        let mut mp_sequence = None;
        let mut mp_transport_sequence = None;
        while body.has_remaining() {
            let head = body.get_u8();
            if head == 0 {
                continue; // padding
            }
            let id = head >> 4;
            let len = (head & 0x0f) as usize + 1;
            if body.len() < len {
                return Err(ParseError::BadExtension);
            }
            match (id, len) {
                (Self::ID_PATH, 1) => path_id = Some(body.get_u8()),
                (Self::ID_MP_SEQ, 2) => mp_sequence = Some(body.get_u16()),
                (Self::ID_MP_TSEQ, 2) => mp_transport_sequence = Some(body.get_u16()),
                _ => body.advance(len), // unknown element: skip
            }
        }
        match (path_id, mp_sequence, mp_transport_sequence) {
            (Some(p), Some(s), Some(t)) => Ok(MultipathExtension {
                path_id: p,
                mp_sequence: s,
                mp_transport_sequence: t,
            }),
            _ => Err(ParseError::BadExtension),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ext: MultipathExtension) -> MultipathExtension {
        let mut b = BytesMut::new();
        ext.serialize_block(&mut b);
        let mut wire = b.freeze();
        let parsed = MultipathExtension::parse_block(&mut wire).unwrap();
        assert!(wire.is_empty(), "block must consume exactly its bytes");
        parsed
    }

    #[test]
    fn roundtrips_all_fields() {
        let ext = MultipathExtension {
            path_id: 3,
            mp_sequence: 65535,
            mp_transport_sequence: 0,
        };
        assert_eq!(roundtrip(ext), ext);
    }

    #[test]
    fn block_is_32bit_aligned() {
        let mut b = BytesMut::new();
        MultipathExtension {
            path_id: 0,
            mp_sequence: 0,
            mp_transport_sequence: 0,
        }
        .serialize_block(&mut b);
        assert_eq!(b.len() % 4, 0);
        assert_eq!(b.len(), 4 + MultipathExtension::PADDED_BODY_LEN);
    }

    #[test]
    fn rejects_wrong_profile() {
        let mut b = BytesMut::new();
        b.put_u16(0xABCD);
        b.put_u16(2);
        b.put_slice(&[0u8; 8]);
        let mut wire = b.freeze();
        assert_eq!(
            MultipathExtension::parse_block(&mut wire),
            Err(ParseError::BadExtension)
        );
    }

    #[test]
    fn rejects_truncated_body() {
        let mut b = BytesMut::new();
        b.put_u16(MultipathExtension::PROFILE_ID);
        b.put_u16(4); // claims 16 bytes
        b.put_slice(&[0u8; 8]); // provides 8
        let mut wire = b.freeze();
        assert_eq!(
            MultipathExtension::parse_block(&mut wire),
            Err(ParseError::Truncated)
        );
    }

    #[test]
    fn missing_element_is_error() {
        // A block with only the path element.
        let mut b = BytesMut::new();
        b.put_u16(MultipathExtension::PROFILE_ID);
        b.put_u16(1);
        b.put_u8(1 << 4);
        b.put_u8(7);
        b.put_slice(&[0, 0]); // padding
        let mut wire = b.freeze();
        assert_eq!(
            MultipathExtension::parse_block(&mut wire),
            Err(ParseError::BadExtension)
        );
    }

    #[test]
    fn skips_unknown_elements() {
        let mut b = BytesMut::new();
        b.put_u16(MultipathExtension::PROFILE_ID);
        b.put_u16(3); // 12 bytes
        b.put_u8((9 << 4) | 1); // unknown id 9, 2 bytes
        b.put_u16(0xFFFF);
        b.put_u8(1 << 4);
        b.put_u8(5);
        b.put_u8((2 << 4) | 1);
        b.put_u16(10);
        b.put_u8((3 << 4) | 1);
        b.put_u16(20);
        b.put_u8(0); // padding
        let mut wire = b.freeze();
        let ext = MultipathExtension::parse_block(&mut wire).unwrap();
        assert_eq!(ext.path_id, 5);
        assert_eq!(ext.mp_sequence, 10);
        assert_eq!(ext.mp_transport_sequence, 20);
    }
}
