//! XOR-based forward error correction.
//!
//! WebRTC protects media with an XOR FEC scheme (ULPFEC/RFC 5109 family):
//! a repair packet is the XOR of a group of media packets and can recover
//! exactly one missing member of its group. Converge keeps the codec but
//! changes *how many* repair packets are generated and *where* they travel
//! (§4.3); this module provides the codec itself plus group assembly.

use bytes::{Bytes, BytesMut};

/// A group of media packets protected together, identified by the media
/// sequence numbers of its members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FecGroup {
    /// Media sequence numbers of the protected packets, ascending.
    pub protected: Vec<u16>,
    /// XOR of the protected payloads (padded to the longest).
    pub repair: Bytes,
    /// XOR of the protected payload lengths, to restore exact length.
    pub length_xor: u16,
}

/// XOR-accumulates `src` into the front of `acc`, one byte at a time.
///
/// The reference implementation the chunked kernel is checked against;
/// `acc` must be at least as long as `src`.
pub fn xor_into_scalar(acc: &mut [u8], src: &[u8]) {
    for (a, s) in acc.iter_mut().zip(src) {
        *a ^= s;
    }
}

/// XOR-accumulates `src` into the front of `acc`, eight bytes per step.
///
/// Byte-for-byte equivalent to [`xor_into_scalar`] (XOR is independent
/// per byte, so word order never matters), but processes `u64` words so
/// the compiler emits wide loads instead of a byte loop — the FEC encoder
/// XORs every media payload once per protected group, making this the
/// innermost loop of FEC-heavy cells. `acc` must be at least as long as
/// `src`.
pub fn xor_into(acc: &mut [u8], src: &[u8]) {
    let mut acc_words = acc[..src.len()].chunks_exact_mut(8);
    let mut src_words = src.chunks_exact(8);
    for (a, s) in acc_words.by_ref().zip(src_words.by_ref()) {
        let word = u64::from_ne_bytes(a.try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(s.try_into().expect("8-byte chunk"));
        a.copy_from_slice(&word.to_ne_bytes());
    }
    for (a, s) in acc_words.into_remainder().iter_mut().zip(src_words.remainder()) {
        *a ^= s;
    }
}

/// Encodes repair packets over groups of media packets.
///
/// `encode_groups(packets, n_repair)` splits `packets` into `n_repair`
/// contiguous groups (sizes as equal as possible) and produces one repair
/// per group — the strategy WebRTC's "random"/bursty mask tables reduce to
/// for single-loss protection.
pub fn encode_groups(packets: &[(u16, Bytes)], n_repair: usize) -> Vec<FecGroup> {
    if packets.is_empty() || n_repair == 0 {
        return Vec::new();
    }
    let n_repair = n_repair.min(packets.len());
    let base = packets.len() / n_repair;
    let extra = packets.len() % n_repair;
    let mut groups = Vec::with_capacity(n_repair);
    let mut idx = 0;
    for g in 0..n_repair {
        let size = base + usize::from(g < extra);
        let members = &packets[idx..idx + size];
        idx += size;
        groups.push(encode_one(members));
    }
    groups
}

/// Encodes a single repair packet protecting all of `members`.
pub fn encode_one(members: &[(u16, Bytes)]) -> FecGroup {
    let max_len = members.iter().map(|(_, p)| p.len()).max().unwrap_or(0);
    let mut repair = vec![0u8; max_len];
    let mut length_xor = 0u16;
    let mut protected = Vec::with_capacity(members.len());
    for (seq, payload) in members {
        protected.push(*seq);
        length_xor ^= payload.len() as u16;
        xor_into(&mut repair, payload);
    }
    protected.sort_unstable();
    FecGroup {
        protected,
        repair: Bytes::from(repair),
        length_xor,
    }
}

/// Attempts to recover one missing packet from a group.
///
/// `received` maps sequence number → payload for the group members that
/// arrived. Returns `Some((seq, payload))` when exactly one member is
/// missing; `None` when zero (nothing to do) or more than one (XOR cannot
/// recover multiple losses) are missing.
pub fn recover(group: &FecGroup, received: &[(u16, Bytes)]) -> Option<(u16, Bytes)> {
    let missing: Vec<u16> = group
        .protected
        .iter()
        .copied()
        .filter(|seq| !received.iter().any(|(s, _)| s == seq))
        .collect();
    if missing.len() != 1 {
        return None;
    }
    let missing_seq = missing[0];

    let mut payload = group.repair.to_vec();
    let mut length = group.length_xor;
    for (seq, p) in received {
        if !group.protected.contains(seq) {
            continue;
        }
        length ^= p.len() as u16;
        xor_into(&mut payload, p);
    }
    let length = length as usize;
    if length > payload.len() {
        return None; // inconsistent group; refuse to fabricate data
    }
    payload.truncate(length);
    Some((missing_seq, Bytes::from(payload)))
}

/// Convenience: builds `(seq, payload)` pairs from equally sized dummy
/// payloads — used by schedulers that only care about packet counts.
pub fn dummy_payloads(seqs: &[u16], size: usize) -> Vec<(u16, Bytes)> {
    seqs.iter()
        .map(|&s| {
            let mut b = BytesMut::zeroed(size);
            // Make each payload distinct so XOR tests are meaningful.
            if size >= 2 {
                b[0] = (s >> 8) as u8;
                b[1] = s as u8;
            }
            (s, b.freeze())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn media(n: usize) -> Vec<(u16, Bytes)> {
        (0..n as u16)
            .map(|s| {
                let payload: Vec<u8> = (0..(100 + s as usize % 40))
                    .map(|i| (i as u8).wrapping_mul(s as u8 + 1))
                    .collect();
                (s, Bytes::from(payload))
            })
            .collect()
    }

    #[test]
    fn recovers_any_single_loss() {
        let pkts = media(5);
        let group = encode_one(&pkts);
        for missing in 0..pkts.len() {
            let received: Vec<_> = pkts
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != missing)
                .map(|(_, p)| p.clone())
                .collect();
            let (seq, payload) = recover(&group, &received).expect("should recover");
            assert_eq!(seq, pkts[missing].0);
            assert_eq!(payload, pkts[missing].1);
        }
    }

    #[test]
    fn recovers_with_unequal_lengths() {
        let pkts = vec![
            (0u16, Bytes::from_static(b"short")),
            (1u16, Bytes::from_static(b"a much longer payload here")),
            (2u16, Bytes::from_static(b"mid length one")),
        ];
        let group = encode_one(&pkts);
        let received = vec![pkts[0].clone(), pkts[2].clone()];
        let (seq, payload) = recover(&group, &received).unwrap();
        assert_eq!(seq, 1);
        assert_eq!(payload, pkts[1].1);
    }

    #[test]
    fn no_loss_returns_none() {
        let pkts = media(4);
        let group = encode_one(&pkts);
        assert!(recover(&group, &pkts).is_none());
    }

    #[test]
    fn double_loss_unrecoverable() {
        let pkts = media(4);
        let group = encode_one(&pkts);
        let received = vec![pkts[0].clone(), pkts[1].clone()];
        assert!(recover(&group, &received).is_none());
    }

    #[test]
    fn foreign_packets_ignored_during_recovery() {
        let pkts = media(3);
        let group = encode_one(&pkts);
        let mut received = vec![pkts[0].clone(), pkts[2].clone()];
        received.push((999, Bytes::from_static(b"not in group")));
        let (seq, payload) = recover(&group, &received).unwrap();
        assert_eq!(seq, pkts[1].0);
        assert_eq!(payload, pkts[1].1);
    }

    #[test]
    fn encode_groups_splits_evenly() {
        let pkts = media(10);
        let groups = encode_groups(&pkts, 3);
        assert_eq!(groups.len(), 3);
        let sizes: Vec<usize> = groups.iter().map(|g| g.protected.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        // Every packet protected exactly once.
        let mut all: Vec<u16> = groups.iter().flat_map(|g| g.protected.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<u16>>());
    }

    #[test]
    fn encode_groups_caps_repair_count() {
        let pkts = media(2);
        let groups = encode_groups(&pkts, 10);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn encode_groups_empty_inputs() {
        assert!(encode_groups(&[], 3).is_empty());
        assert!(encode_groups(&media(3), 0).is_empty());
    }

    #[test]
    fn single_member_group_recovers_trivially() {
        let pkts = media(1);
        let group = encode_one(&pkts);
        let (seq, payload) = recover(&group, &[]).unwrap();
        assert_eq!(seq, pkts[0].0);
        assert_eq!(payload, pkts[0].1);
    }

    /// The chunked XOR kernel must match the scalar reference byte for
    /// byte over a grid of random payloads: every length around the
    /// 8-byte word boundaries (remainder handling) plus typical MTU-ish
    /// sizes, with random contents.
    #[test]
    fn chunked_xor_matches_scalar_on_random_grids() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xFEC);
        let lengths: Vec<usize> =
            (0..=17).chain([31, 32, 33, 63, 64, 65, 100, 1199, 1200, 1201]).collect();
        for &acc_len in &lengths {
            for &src_len in &lengths {
                if src_len > acc_len {
                    continue; // caller contract: acc at least as long
                }
                let mut acc_chunked: Vec<u8> = (0..acc_len).map(|_| rng.gen()).collect();
                let mut acc_scalar = acc_chunked.clone();
                let src: Vec<u8> = (0..src_len).map(|_| rng.gen()).collect();
                xor_into(&mut acc_chunked, &src);
                xor_into_scalar(&mut acc_scalar, &src);
                assert_eq!(
                    acc_chunked, acc_scalar,
                    "kernels diverged at acc_len {acc_len}, src_len {src_len}"
                );
            }
        }
    }

    /// Whole-codec check on top of the kernel grid: groups encoded with
    /// the chunked kernel still recover random unequal-length payloads.
    #[test]
    fn chunked_encode_recovers_random_payloads() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for round in 0..50 {
            let n = rng.gen_range(1..=12usize);
            let pkts: Vec<(u16, Bytes)> = (0..n as u16)
                .map(|s| {
                    let len = rng.gen_range(0..1300usize);
                    let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                    (s, Bytes::from(payload))
                })
                .collect();
            let group = encode_one(&pkts);
            let missing = rng.gen_range(0..n);
            let received: Vec<_> = pkts
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != missing)
                .map(|(_, p)| p.clone())
                .collect();
            let (seq, payload) = recover(&group, &received)
                .unwrap_or_else(|| panic!("round {round}: single loss must recover"));
            assert_eq!(seq, pkts[missing].0);
            assert_eq!(payload, pkts[missing].1, "round {round} payload mismatch");
        }
    }

    #[test]
    fn dummy_payloads_distinct() {
        let d = dummy_payloads(&[1, 2, 3], 10);
        assert_eq!(d.len(), 3);
        assert_ne!(d[0].1, d[1].1);
        assert!(d.iter().all(|(_, p)| p.len() == 10));
    }
}
