//! RTP packet model and wire format (RFC 3550 fixed header plus the
//! one-byte-form header extension of RFC 5285 carrying the Converge
//! multipath fields).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::extension::MultipathExtension;

/// Errors raised while parsing RTP/RTCP wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Buffer shorter than the structure it should contain.
    Truncated,
    /// RTP version field was not 2.
    BadVersion(u8),
    /// An extension block was malformed.
    BadExtension,
    /// An RTCP packet type byte was not recognised.
    UnknownPacketType(u8),
    /// A length or count field was inconsistent with the buffer.
    BadLength,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "buffer truncated"),
            ParseError::BadVersion(v) => write!(f, "unsupported RTP version {v}"),
            ParseError::BadExtension => write!(f, "malformed header extension"),
            ParseError::UnknownPacketType(pt) => write!(f, "unknown RTCP packet type {pt}"),
            ParseError::BadLength => write!(f, "inconsistent length field"),
        }
    }
}

impl std::error::Error for ParseError {}

/// RTP payload types used by this stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PayloadType {
    /// Encoded video media.
    Video,
    /// XOR FEC repair data.
    Fec,
    /// Retransmission of a lost media packet (RFC 4588-style).
    Retransmission,
    /// Duplicated probe packet used to measure a disabled path (§4.2).
    Probe,
}

impl PayloadType {
    /// The 7-bit wire value.
    pub fn to_wire(self) -> u8 {
        match self {
            PayloadType::Video => 96,
            PayloadType::Fec => 97,
            PayloadType::Retransmission => 98,
            PayloadType::Probe => 99,
        }
    }

    /// Parses the 7-bit wire value.
    pub fn from_wire(v: u8) -> Result<Self, ParseError> {
        match v {
            96 => Ok(PayloadType::Video),
            97 => Ok(PayloadType::Fec),
            98 => Ok(PayloadType::Retransmission),
            99 => Ok(PayloadType::Probe),
            other => Err(ParseError::UnknownPacketType(other)),
        }
    }
}

/// An RTP packet: fixed header, optional Converge multipath extension, and
/// payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtpPacket {
    /// Marker bit: set on the last packet of a video frame.
    pub marker: bool,
    /// Payload type.
    pub payload_type: PayloadType,
    /// Media-level sequence number (shared across paths, used for frame
    /// reconstruction — the paper's "original sequence numbers", §5).
    pub sequence: u16,
    /// RTP media timestamp (90 kHz video clock).
    pub timestamp: u32,
    /// Synchronization source — one per camera stream.
    pub ssrc: u32,
    /// Converge multipath extension (present on multipath sessions).
    pub extension: Option<MultipathExtension>,
    /// Payload bytes.
    pub payload: Bytes,
}

impl RtpPacket {
    /// RTP version emitted and accepted.
    pub const VERSION: u8 = 2;
    /// Fixed header size in bytes (no CSRCs).
    pub const FIXED_HEADER_LEN: usize = 12;

    /// Total serialized size in bytes.
    pub fn wire_len(&self) -> usize {
        let ext = self
            .extension
            .map(|_| 4 + MultipathExtension::PADDED_BODY_LEN)
            .unwrap_or(0);
        Self::FIXED_HEADER_LEN + ext + self.payload.len()
    }

    /// Serializes to wire format.
    pub fn serialize(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.wire_len());
        let x_bit = u8::from(self.extension.is_some());
        b.put_u8((Self::VERSION << 6) | (x_bit << 4)); // V=2, P=0, X, CC=0
        b.put_u8((u8::from(self.marker) << 7) | (self.payload_type.to_wire() & 0x7f));
        b.put_u16(self.sequence);
        b.put_u32(self.timestamp);
        b.put_u32(self.ssrc);
        if let Some(ext) = &self.extension {
            ext.serialize_block(&mut b);
        }
        b.put_slice(&self.payload);
        b.freeze()
    }

    /// Parses from wire format.
    pub fn parse(mut buf: Bytes) -> Result<Self, ParseError> {
        if buf.len() < Self::FIXED_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let b0 = buf.get_u8();
        let version = b0 >> 6;
        if version != Self::VERSION {
            return Err(ParseError::BadVersion(version));
        }
        let has_ext = (b0 >> 4) & 1 == 1;
        let cc = (b0 & 0x0f) as usize;
        let b1 = buf.get_u8();
        let marker = b1 >> 7 == 1;
        let payload_type = PayloadType::from_wire(b1 & 0x7f)?;
        let sequence = buf.get_u16();
        let timestamp = buf.get_u32();
        let ssrc = buf.get_u32();
        if buf.len() < cc * 4 {
            return Err(ParseError::Truncated);
        }
        buf.advance(cc * 4); // CSRCs ignored
        let extension = if has_ext {
            Some(MultipathExtension::parse_block(&mut buf)?)
        } else {
            None
        };
        Ok(RtpPacket {
            marker,
            payload_type,
            sequence,
            timestamp,
            ssrc,
            extension,
            payload: buf,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extension::MultipathExtension;

    fn sample(ext: Option<MultipathExtension>) -> RtpPacket {
        RtpPacket {
            marker: true,
            payload_type: PayloadType::Video,
            sequence: 0xBEEF,
            timestamp: 0x1234_5678,
            ssrc: 0xCAFE_BABE,
            extension: ext,
            payload: Bytes::from_static(b"hello media payload"),
        }
    }

    fn sample_ext() -> MultipathExtension {
        MultipathExtension {
            path_id: 2,
            mp_sequence: 41,
            mp_transport_sequence: 1007,
        }
    }

    #[test]
    fn roundtrip_without_extension() {
        let p = sample(None);
        let wire = p.serialize();
        assert_eq!(wire.len(), p.wire_len());
        let back = RtpPacket::parse(wire).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn roundtrip_with_extension() {
        let p = sample(Some(sample_ext()));
        let back = RtpPacket::parse(p.serialize()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut wire = sample(None).serialize().to_vec();
        wire[0] = 0b0100_0000; // version 1
        assert_eq!(
            RtpPacket::parse(Bytes::from(wire)),
            Err(ParseError::BadVersion(1))
        );
    }

    #[test]
    fn rejects_truncated() {
        let wire = sample(None).serialize();
        for cut in 0..RtpPacket::FIXED_HEADER_LEN {
            let short = wire.slice(0..cut);
            assert_eq!(RtpPacket::parse(short), Err(ParseError::Truncated));
        }
    }

    #[test]
    fn payload_type_wire_roundtrip() {
        for pt in [
            PayloadType::Video,
            PayloadType::Fec,
            PayloadType::Retransmission,
            PayloadType::Probe,
        ] {
            assert_eq!(PayloadType::from_wire(pt.to_wire()).unwrap(), pt);
        }
        assert!(PayloadType::from_wire(50).is_err());
    }

    #[test]
    fn marker_bit_preserved() {
        let mut p = sample(None);
        p.marker = false;
        let back = RtpPacket::parse(p.serialize()).unwrap();
        assert!(!back.marker);
    }

    #[test]
    fn empty_payload_ok() {
        let mut p = sample(Some(sample_ext()));
        p.payload = Bytes::new();
        let back = RtpPacket::parse(p.serialize()).unwrap();
        assert!(back.payload.is_empty());
        assert_eq!(back.extension, Some(sample_ext()));
    }
}
