//! # converge-rtp
//!
//! RTP/RTCP wire formats for the Converge (SIGCOMM 2023) reproduction:
//!
//! - [`packet`]: RTP packets (RFC 3550 fixed header) with typed payload
//!   types for media, FEC, retransmissions, and path probes.
//! - [`extension`]: the Converge multipath RTP header extension — path ID,
//!   per-path sequence, per-path transport sequence (paper Fig. 18).
//! - [`rtcp`]: SR/RR/SDES/NACK/PLI plus the Converge additions — a path ID
//!   on every report (Fig. 19), an expected-frame-rate SDES item, and the
//!   QoE feedback message `(path_id, alpha, FCD)` of paper section 4.2.
//! - [`fec`]: the XOR repair codec (ULPFEC-style single-loss recovery) that
//!   both WebRTC's table-driven FEC and Converge's path-specific FEC
//!   controller generate packets with.
//! - [`srtp`]: SRTP-style packet protection with path-aware nonces and
//!   per-path replay windows (the paper's multipath RTP/SRTP extension).
//!
//! All formats serialize to real wire bytes and parse back; the simulator
//! exchanges the typed forms, while serialization is exercised by tests and
//! the signalling layer.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod extension;
pub mod fec;
pub mod packet;
pub mod rtcp;
pub mod srtp;

pub use extension::MultipathExtension;
pub use fec::FecGroup;
pub use packet::{ParseError, PayloadType, RtpPacket};
pub use rtcp::{
    Nack, Pli, QoeFeedback, ReceiverReport, ReportBlock, RtcpPacket, Sdes, SenderReport,
    TransportFeedback,
};
pub use srtp::{SrtpContext, SrtpError};
