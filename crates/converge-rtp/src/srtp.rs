//! SRTP-style packet protection for multipath sessions.
//!
//! The paper extends "the RTP/SRTP protocols to enable multipath usage
//! using the WebRTC keys" (§5): every path shares the session key, and the
//! per-packet transform must key its nonce on the path so the same media
//! sequence travelling different paths never reuses a keystream. This
//! module provides that structure — encrypt-then-MAC with a per-packet
//! nonce derived from `(ssrc, rollover counter, sequence, path id)` and a
//! per-path replay window.
//!
//! ⚠️ The keystream and MAC here are *functional stand-ins* built from a
//! seeded xoshiro-style generator so the crate stays dependency-free; they
//! model SRTP's interface, nonce discipline, overhead, and failure modes
//! (tamper detection, replay rejection), not cryptographic strength.

use bytes::{BufMut, Bytes, BytesMut};

/// Authentication tag length in bytes (SRTP default is 10; WebRTC commonly
/// negotiates 4-byte tags for bandwidth, which we model).
pub const TAG_LEN: usize = 4;

/// Errors from unprotecting a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrtpError {
    /// Authentication tag mismatch: packet corrupted or forged.
    AuthenticationFailed,
    /// Sequence already seen on this path (replay window hit).
    Replayed,
    /// Packet shorter than a tag.
    Truncated,
}

impl std::fmt::Display for SrtpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SrtpError::AuthenticationFailed => write!(f, "authentication failed"),
            SrtpError::Replayed => write!(f, "replayed packet"),
            SrtpError::Truncated => write!(f, "packet shorter than auth tag"),
        }
    }
}

impl std::error::Error for SrtpError {}

/// One direction's SRTP context (sender or receiver of one session key).
#[derive(Debug, Clone)]
pub struct SrtpContext {
    key: u64,
    /// Per-path replay state: highest sequence seen and a 64-bit window.
    replay: std::collections::BTreeMap<u8, ReplayWindow>,
}

#[derive(Debug, Clone, Copy, Default)]
struct ReplayWindow {
    highest: u64,
    bitmap: u64,
}

impl ReplayWindow {
    /// Checks and records `seq`; `Err(Replayed)` when already seen or far
    /// behind the window.
    fn check_and_set(&mut self, seq: u64) -> Result<(), SrtpError> {
        if seq > self.highest {
            let shift = seq - self.highest;
            self.bitmap = if shift >= 64 { 0 } else { self.bitmap << shift };
            self.bitmap |= 1;
            self.highest = seq;
            return Ok(());
        }
        let behind = self.highest - seq;
        if behind >= 64 {
            return Err(SrtpError::Replayed);
        }
        let mask = 1u64 << behind;
        if self.bitmap & mask != 0 {
            return Err(SrtpError::Replayed);
        }
        self.bitmap |= mask;
        Ok(())
    }
}

impl SrtpContext {
    /// Derives a context from session keying material (in WebRTC this
    /// comes from the DTLS handshake).
    pub fn new(session_key: u64) -> Self {
        SrtpContext {
            key: session_key,
            replay: std::collections::BTreeMap::new(),
        }
    }

    /// Per-packet keystream: seeded by key ⊕ nonce(ssrc, seq, path).
    fn keystream(&self, ssrc: u32, seq: u64, path_id: u8, len: usize) -> Vec<u8> {
        // splitmix64-style expansion of the nonce-mixed key.
        let mut state = self.key
            ^ (ssrc as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ seq.wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ ((path_id as u64) << 56);
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            out.extend_from_slice(&z.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    /// Simple polynomial MAC over the ciphertext and nonce fields.
    fn tag(&self, ssrc: u32, seq: u64, path_id: u8, ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut acc: u64 = self.key ^ 0xA5A5_5A5A_C3C3_3C3C;
        let mix =
            |acc: u64, v: u64| -> u64 { (acc ^ v).wrapping_mul(0x100_0000_01B3).rotate_left(23) };
        acc = mix(acc, ssrc as u64);
        acc = mix(acc, seq);
        acc = mix(acc, path_id as u64);
        for chunk in ciphertext.chunks(8) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            acc = mix(acc, u64::from_le_bytes(b));
        }
        let folded = (acc ^ (acc >> 32)) as u32;
        folded.to_le_bytes()
    }

    /// Protects a payload: encrypts and appends the tag. `seq` is the
    /// extended (rollover-aware) sequence number.
    pub fn protect(&self, ssrc: u32, seq: u64, path_id: u8, payload: &[u8]) -> Bytes {
        let ks = self.keystream(ssrc, seq, path_id, payload.len());
        let mut out = BytesMut::with_capacity(payload.len() + TAG_LEN);
        for (b, k) in payload.iter().zip(&ks) {
            out.put_u8(b ^ k);
        }
        let tag = self.tag(ssrc, seq, path_id, &out);
        out.put_slice(&tag);
        out.freeze()
    }

    /// Unprotects a packet: verifies the tag, checks the per-path replay
    /// window, and decrypts.
    pub fn unprotect(
        &mut self,
        ssrc: u32,
        seq: u64,
        path_id: u8,
        protected: &[u8],
    ) -> Result<Bytes, SrtpError> {
        if protected.len() < TAG_LEN {
            return Err(SrtpError::Truncated);
        }
        let (ciphertext, tag) = protected.split_at(protected.len() - TAG_LEN);
        let expected = self.tag(ssrc, seq, path_id, ciphertext);
        if tag != expected {
            return Err(SrtpError::AuthenticationFailed);
        }
        self.replay.entry(path_id).or_default().check_and_set(seq)?;
        let ks = self.keystream(ssrc, seq, path_id, ciphertext.len());
        let plain: Vec<u8> = ciphertext.iter().zip(&ks).map(|(b, k)| b ^ k).collect();
        Ok(Bytes::from(plain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SrtpContext, SrtpContext) {
        (SrtpContext::new(0xDEAD_BEEF), SrtpContext::new(0xDEAD_BEEF))
    }

    #[test]
    fn roundtrip() {
        let (tx, mut rx) = pair();
        let payload = b"encoded video slice data";
        let wire = tx.protect(7, 100, 0, payload);
        assert_eq!(wire.len(), payload.len() + TAG_LEN);
        let plain = rx.unprotect(7, 100, 0, &wire).unwrap();
        assert_eq!(&plain[..], payload);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let (tx, _) = pair();
        let payload = [0u8; 64];
        let wire = tx.protect(1, 1, 0, &payload);
        assert_ne!(&wire[..64], &payload[..]);
    }

    #[test]
    fn same_seq_different_paths_use_different_keystreams() {
        // The multipath extension of SRTP must not reuse keystream when the
        // same sequence travels two paths (duplicated probe packets do!).
        let (tx, _) = pair();
        let payload = [0x42u8; 32];
        let a = tx.protect(1, 500, 0, &payload);
        let b = tx.protect(1, 500, 1, &payload);
        assert_ne!(a, b);
    }

    #[test]
    fn tamper_detected() {
        let (tx, mut rx) = pair();
        let wire = tx.protect(1, 2, 0, b"payload");
        let mut bad = wire.to_vec();
        bad[0] ^= 1;
        assert_eq!(
            rx.unprotect(1, 2, 0, &bad),
            Err(SrtpError::AuthenticationFailed)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let tx = SrtpContext::new(1);
        let mut rx = SrtpContext::new(2);
        let wire = tx.protect(1, 2, 0, b"payload");
        assert_eq!(
            rx.unprotect(1, 2, 0, &wire),
            Err(SrtpError::AuthenticationFailed)
        );
    }

    #[test]
    fn replay_rejected_per_path() {
        let (tx, mut rx) = pair();
        let wire = tx.protect(1, 10, 0, b"x");
        assert!(rx.unprotect(1, 10, 0, &wire).is_ok());
        assert_eq!(rx.unprotect(1, 10, 0, &wire), Err(SrtpError::Replayed));
        // Same sequence on a different path is legitimate (duplicate probe).
        let wire1 = tx.protect(1, 10, 1, b"x");
        assert!(rx.unprotect(1, 10, 1, &wire1).is_ok());
    }

    #[test]
    fn reordering_within_window_accepted() {
        let (tx, mut rx) = pair();
        let w20 = tx.protect(1, 20, 0, b"a");
        let w15 = tx.protect(1, 15, 0, b"b");
        assert!(rx.unprotect(1, 20, 0, &w20).is_ok());
        assert!(rx.unprotect(1, 15, 0, &w15).is_ok(), "within window");
        assert_eq!(rx.unprotect(1, 15, 0, &w15), Err(SrtpError::Replayed));
    }

    #[test]
    fn ancient_sequence_rejected() {
        let (tx, mut rx) = pair();
        let recent = tx.protect(1, 200, 0, b"a");
        let ancient = tx.protect(1, 100, 0, b"b");
        assert!(rx.unprotect(1, 200, 0, &recent).is_ok());
        assert_eq!(
            rx.unprotect(1, 100, 0, &ancient),
            Err(SrtpError::Replayed),
            "100 is 100 behind 200, outside the 64-wide window"
        );
    }

    #[test]
    fn truncated_rejected() {
        let (_, mut rx) = pair();
        assert_eq!(rx.unprotect(1, 1, 0, &[0, 1]), Err(SrtpError::Truncated));
    }

    #[test]
    fn empty_payload_roundtrips() {
        let (tx, mut rx) = pair();
        let wire = tx.protect(9, 1, 2, b"");
        assert_eq!(wire.len(), TAG_LEN);
        let plain = rx.unprotect(9, 1, 2, &wire).unwrap();
        assert!(plain.is_empty());
    }
}
