//! Packetization: encoded frames → video packets.
//!
//! Each frame is split into MTU-sized media packets plus one PPS control
//! packet; the first frame of each GOP additionally carries an SPS control
//! packet (§2.1/§3.1 of the paper: "The PPS packet is necessary for each
//! keyframe or delta frame, while a group of delta frames requires the SPS
//! packet").

use crate::types::{EncodedFrame, PacketKind, VideoPacket};

/// Packetizer configuration.
#[derive(Debug, Clone, Copy)]
pub struct PacketizerConfig {
    /// Maximum payload bytes per media packet ("k" in Algorithm 1).
    pub mtu: usize,
    /// Size of a PPS control packet, bytes.
    pub pps_size: usize,
    /// Size of an SPS control packet, bytes.
    pub sps_size: usize,
}

impl Default for PacketizerConfig {
    fn default() -> Self {
        PacketizerConfig {
            mtu: 1200,
            pps_size: 64,
            sps_size: 96,
        }
    }
}

/// Stateful packetizer for one stream (owns the sequence counter).
#[derive(Debug)]
pub struct Packetizer {
    config: PacketizerConfig,
    next_sequence: u64,
    last_sps_gop: Option<u64>,
}

impl Packetizer {
    /// Creates a packetizer.
    pub fn new(config: PacketizerConfig) -> Self {
        Packetizer {
            config,
            next_sequence: 0,
            last_sps_gop: None,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> PacketizerConfig {
        self.config
    }

    /// Next sequence number to be assigned.
    pub fn next_sequence(&self) -> u64 {
        self.next_sequence
    }

    /// Packetizes one encoded frame. Order: [SPS (new GOP only)], PPS,
    /// media 0..count. All packets share the frame's capture time.
    pub fn packetize(&mut self, frame: &EncodedFrame) -> Vec<VideoPacket> {
        let count = frame.size.div_ceil(self.config.mtu).max(1) as u16;
        let mut out = Vec::with_capacity(count as usize + 2);

        let mut push = |kind: PacketKind, size: usize, seq: &mut u64| {
            out.push(VideoPacket {
                stream: frame.stream,
                sequence: *seq,
                frame_id: frame.frame_id,
                gop_id: frame.gop_id,
                frame_type: frame.frame_type,
                kind,
                size,
                capture_time: frame.capture_time,
            });
            *seq += 1;
        };

        let mut seq = self.next_sequence;
        if self.last_sps_gop != Some(frame.gop_id) {
            self.last_sps_gop = Some(frame.gop_id);
            push(PacketKind::Sps, self.config.sps_size, &mut seq);
        }
        push(PacketKind::Pps, self.config.pps_size, &mut seq);

        let mut remaining = frame.size;
        for index in 0..count {
            let size = remaining.min(self.config.mtu).max(1);
            remaining = remaining.saturating_sub(size);
            push(PacketKind::Media { index, count }, size, &mut seq);
        }
        self.next_sequence = seq;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{FrameType, StreamId};
    use converge_net::SimTime;

    fn frame(frame_id: u64, gop_id: u64, ft: FrameType, size: usize) -> EncodedFrame {
        EncodedFrame {
            stream: StreamId(0),
            frame_id,
            gop_id,
            frame_type: ft,
            size,
            qp: 20,
            height: 720,
            capture_time: SimTime::from_millis(frame_id * 33),
        }
    }

    #[test]
    fn splits_frame_at_mtu() {
        let mut p = Packetizer::new(PacketizerConfig::default());
        let pkts = p.packetize(&frame(0, 0, FrameType::Key, 3000));
        // SPS + PPS + ceil(3000/1200)=3 media.
        assert_eq!(pkts.len(), 5);
        let media: Vec<_> = pkts.iter().filter(|p| p.kind.is_media()).collect();
        assert_eq!(media.len(), 3);
        assert_eq!(media.iter().map(|p| p.size).sum::<usize>(), 3000);
        assert!(media.iter().all(|p| p.size <= 1200));
    }

    #[test]
    fn sps_only_on_new_gop() {
        let mut p = Packetizer::new(PacketizerConfig::default());
        let a = p.packetize(&frame(0, 0, FrameType::Key, 1000));
        let b = p.packetize(&frame(1, 0, FrameType::Delta, 1000));
        let c = p.packetize(&frame(2, 1, FrameType::Key, 1000));
        let has_sps = |v: &[VideoPacket]| v.iter().any(|p| p.kind == PacketKind::Sps);
        assert!(has_sps(&a));
        assert!(!has_sps(&b));
        assert!(has_sps(&c));
    }

    #[test]
    fn every_frame_has_exactly_one_pps() {
        let mut p = Packetizer::new(PacketizerConfig::default());
        for id in 0..10 {
            let pkts = p.packetize(&frame(id, 0, FrameType::Delta, 2500));
            let pps = pkts.iter().filter(|p| p.kind == PacketKind::Pps).count();
            assert_eq!(pps, 1);
        }
    }

    #[test]
    fn sequences_are_contiguous_across_frames() {
        let mut p = Packetizer::new(PacketizerConfig::default());
        let mut all = Vec::new();
        for id in 0..5 {
            all.extend(p.packetize(&frame(id, 0, FrameType::Delta, 2000)));
        }
        for (i, pkt) in all.iter().enumerate() {
            assert_eq!(pkt.sequence, i as u64);
        }
        assert_eq!(p.next_sequence(), all.len() as u64);
    }

    #[test]
    fn media_indices_cover_count() {
        let mut p = Packetizer::new(PacketizerConfig::default());
        let pkts = p.packetize(&frame(0, 0, FrameType::Key, 5000));
        let mut indices = Vec::new();
        for pkt in &pkts {
            if let PacketKind::Media { index, count } = pkt.kind {
                indices.push(index);
                assert_eq!(count, 5);
            }
        }
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tiny_frame_still_one_media_packet() {
        let mut p = Packetizer::new(PacketizerConfig::default());
        let pkts = p.packetize(&frame(0, 0, FrameType::Delta, 1));
        let media: Vec<_> = pkts.iter().filter(|p| p.kind.is_media()).collect();
        assert_eq!(media.len(), 1);
        assert_eq!(media[0].size, 1);
    }

    #[test]
    fn metadata_propagates() {
        let mut p = Packetizer::new(PacketizerConfig::default());
        let f = frame(7, 3, FrameType::Key, 100);
        for pkt in p.packetize(&f) {
            assert_eq!(pkt.frame_id, 7);
            assert_eq!(pkt.gop_id, 3);
            assert_eq!(pkt.frame_type, FrameType::Key);
            assert_eq!(pkt.capture_time, f.capture_time);
            assert_eq!(pkt.stream, StreamId(0));
        }
    }
}
