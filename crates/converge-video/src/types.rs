//! Shared video-domain types: streams, frames, and the packets the
//! scheduler moves between paths.

use converge_net::SimTime;

/// Identifier of one camera stream within a conference.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct StreamId(pub u8);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cam{}", self.0)
    }
}

/// The two frame types of the paper's model (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FrameType {
    /// Keyframe (I-frame): independently decodable, anchors the GOP.
    Key,
    /// Delta frame: depends on the previous decodable frame.
    Delta,
}

/// What a video packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PacketKind {
    /// Slice of encoded frame data: `index` of `count` media packets.
    Media {
        /// Position of this packet within its frame, 0-based.
        index: u16,
        /// Total media packets the frame was split into.
        count: u16,
    },
    /// Picture Parameter Set: per-frame decoding parameters. Without it the
    /// frame is non-decodable (§2.1).
    Pps,
    /// Sequence Parameter Set: per-GOP decoding parameters. Without it the
    /// whole group of frames is non-decodable.
    Sps,
}

impl PacketKind {
    /// Whether this is regular media data.
    pub fn is_media(self) -> bool {
        matches!(self, PacketKind::Media { .. })
    }
}

/// One video RTP packet as scheduled over the network. Payload bytes are
/// modelled by `size` — the schedulers, buffers, and FEC act on structure,
/// not pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct VideoPacket {
    /// Camera stream this packet belongs to.
    pub stream: StreamId,
    /// Media-level sequence number, unique and monotone per stream (the
    /// "original sequence numbers" used for frame construction, paper §5).
    pub sequence: u64,
    /// Frame the packet belongs to (monotone per stream).
    pub frame_id: u64,
    /// GOP the frame belongs to (monotone per stream).
    pub gop_id: u64,
    /// Type of the carrying frame.
    pub frame_type: FrameType,
    /// What the packet carries.
    pub kind: PacketKind,
    /// Wire size in bytes, headers included.
    pub size: usize,
    /// When the camera captured the frame.
    pub capture_time: SimTime,
}

impl VideoPacket {
    /// Whether losing this packet makes a frame (PPS) or a GOP (SPS)
    /// non-decodable even if all media arrives.
    pub fn is_control(&self) -> bool {
        matches!(self.kind, PacketKind::Pps | PacketKind::Sps)
    }
}

/// An encoded frame emitted by the encoder model before packetization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodedFrame {
    /// Camera stream.
    pub stream: StreamId,
    /// Monotone frame number.
    pub frame_id: u64,
    /// GOP this frame opens or belongs to.
    pub gop_id: u64,
    /// Keyframe or delta.
    pub frame_type: FrameType,
    /// Encoded size of the frame's media data, bytes.
    pub size: usize,
    /// Quantization parameter used (0..=63, lower is better quality).
    pub qp: u8,
    /// Encoded frame height (the adaptive-resolution ladder rung).
    pub height: u32,
    /// Capture instant.
    pub capture_time: SimTime,
}

/// A frame fully reassembled by the receiver's packet buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompleteFrame {
    /// Camera stream.
    pub stream: StreamId,
    /// Frame number.
    pub frame_id: u64,
    /// GOP membership.
    pub gop_id: u64,
    /// Keyframe or delta.
    pub frame_type: FrameType,
    /// Total media bytes gathered.
    pub size: usize,
    /// Capture instant at the sender.
    pub capture_time: SimTime,
    /// Arrival of the frame's first packet.
    pub first_arrival: SimTime,
    /// Instant the frame became complete (all packets gathered).
    pub completed_at: SimTime,
}

impl CompleteFrame {
    /// Frame Construction Delay: gathering time from first packet to
    /// completeness (§4.2).
    pub fn fcd(&self) -> converge_net::SimDuration {
        self.completed_at.saturating_since(self.first_arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use converge_net::SimTime;

    #[test]
    fn control_packets_flagged() {
        let mut p = VideoPacket {
            stream: StreamId(0),
            sequence: 0,
            frame_id: 0,
            gop_id: 0,
            frame_type: FrameType::Key,
            kind: PacketKind::Pps,
            size: 40,
            capture_time: SimTime::ZERO,
        };
        assert!(p.is_control());
        p.kind = PacketKind::Sps;
        assert!(p.is_control());
        p.kind = PacketKind::Media { index: 0, count: 3 };
        assert!(!p.is_control());
        assert!(p.kind.is_media());
    }

    #[test]
    fn fcd_measures_gathering() {
        let f = CompleteFrame {
            stream: StreamId(0),
            frame_id: 1,
            gop_id: 0,
            frame_type: FrameType::Delta,
            size: 1000,
            capture_time: SimTime::ZERO,
            first_arrival: SimTime::from_millis(10),
            completed_at: SimTime::from_millis(25),
        };
        assert_eq!(f.fcd().as_millis(), 15);
    }

    #[test]
    fn stream_display() {
        assert_eq!(StreamId(2).to_string(), "cam2");
    }
}
