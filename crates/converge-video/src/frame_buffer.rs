//! The receiver's frame buffer (§2.1) and decode dependency tracking.
//!
//! Complete frames arrive from the packet buffer; the frame buffer hands
//! them to the decoder in order. A delta frame is decodable only if the
//! previous frame was decoded and its GOP's SPS arrived; a keyframe needs
//! only its SPS. When a frame goes missing and newer frames pile up, the
//! buffer purges the dependent chain and asks for a keyframe — the frame
//! drop + keyframe-request behaviour Table 1 of the paper measures. The
//! inter-arrival time of frames entering the buffer is the InterFrame
//! Delay (IFD) used by the QoE feedback.

use std::collections::{BTreeMap, BTreeSet};

use converge_net::{SimDuration, SimTime};

use crate::types::{CompleteFrame, FrameType};

/// Events the frame buffer reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameBufferEvent {
    /// A frame was released to the decoder.
    Decoded {
        /// The decoded frame.
        frame: CompleteFrame,
        /// When it was released.
        at: SimTime,
    },
    /// A frame (and possibly its dependent chain) was abandoned.
    Dropped {
        /// Frame id abandoned.
        frame_id: u64,
        /// Why.
        reason: DropReason,
    },
    /// The receiver must request a keyframe to resynchronize.
    KeyframeNeeded,
    /// A new frame entered the buffer; `ifd` is the gap since the previous
    /// frame entered (None for the first frame).
    FrameEntered {
        /// Frame id that entered.
        frame_id: u64,
        /// Interframe delay at entry.
        ifd: Option<SimDuration>,
    },
}

/// Why a frame was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// A frame it depends on never became decodable.
    BrokenDependency,
    /// The buffer was full and this was the oldest unplayable frame.
    BufferFull,
    /// The frame's GOP SPS never arrived.
    MissingSps,
    /// The frame predates the current decode position (arrived too late).
    TooOld,
}

/// Bounded reorder/dependency buffer for one stream.
#[derive(Debug)]
pub struct FrameBuffer {
    capacity_frames: usize,
    /// Complete frames waiting for decode, keyed by frame id.
    pending: BTreeMap<u64, CompleteFrame>,
    /// GOPs whose SPS has been received.
    sps_seen: BTreeSet<u64>,
    /// Next frame id the decoder expects; None until the first keyframe.
    next_decode: Option<u64>,
    /// Entry time of the last frame that entered the buffer (IFD reference).
    last_entry: Option<SimTime>,
    /// Frames the buffer has given up on (so late completions are dropped).
    abandoned_before: u64,
}

impl FrameBuffer {
    /// Creates a buffer holding at most `capacity_frames` pending frames.
    pub fn new(capacity_frames: usize) -> Self {
        FrameBuffer {
            capacity_frames: capacity_frames.max(1),
            pending: BTreeMap::new(),
            sps_seen: BTreeSet::new(),
            next_decode: None,
            last_entry: None,
            abandoned_before: 0,
        }
    }

    /// Frames currently waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no frames wait.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Records that the SPS for `gop_id` arrived.
    pub fn sps_received(&mut self, gop_id: u64) {
        self.sps_seen.insert(gop_id);
    }

    /// Whether the SPS for `gop_id` has arrived.
    pub fn has_sps(&self, gop_id: u64) -> bool {
        self.sps_seen.contains(&gop_id)
    }

    /// Frame ids of packets the buffer no longer wants (already abandoned);
    /// lets the owner purge the packet buffer.
    pub fn is_abandoned(&self, frame_id: u64) -> bool {
        frame_id < self.abandoned_before
    }

    /// Inserts a complete frame and drains everything now decodable.
    pub fn insert(&mut self, now: SimTime, frame: CompleteFrame) -> Vec<FrameBufferEvent> {
        let mut events = Vec::new();

        if self.is_abandoned(frame.frame_id) {
            events.push(FrameBufferEvent::Dropped {
                frame_id: frame.frame_id,
                reason: DropReason::TooOld,
            });
            return events;
        }

        let ifd = self.last_entry.map(|prev| now.saturating_since(prev));
        self.last_entry = Some(now);
        events.push(FrameBufferEvent::FrameEntered {
            frame_id: frame.frame_id,
            ifd,
        });

        self.pending.insert(frame.frame_id, frame);
        self.drain(now, &mut events);

        // Enforce capacity: if the buffer is still over-full, the decoder is
        // stuck waiting on a missing frame. Purge the blocked chain up to
        // the next keyframe and request a refresh.
        while self.pending.len() > self.capacity_frames {
            self.abandon_blocked_chain(&mut events);
            self.drain(now, &mut events);
        }
        events
    }

    /// Releases every frame that is decodable in order.
    fn drain(&mut self, now: SimTime, events: &mut Vec<FrameBufferEvent>) {
        loop {
            let Some((&first_id, frame)) = self.pending.iter().next() else {
                return;
            };
            let frame = *frame;
            match self.next_decode {
                // Before the first decode, we need a keyframe to start.
                None => {
                    if frame.frame_type == FrameType::Key && self.has_sps(frame.gop_id) {
                        self.decode(first_id, now, events);
                    } else if frame.frame_type == FrameType::Key {
                        // Keyframe waiting on SPS: hold.
                        return;
                    } else {
                        // Delta before any keyframe: useless.
                        self.pending.remove(&first_id);
                        self.abandoned_before = self.abandoned_before.max(first_id + 1);
                        events.push(FrameBufferEvent::Dropped {
                            frame_id: first_id,
                            reason: DropReason::BrokenDependency,
                        });
                        events.push(FrameBufferEvent::KeyframeNeeded);
                    }
                }
                Some(expect) => {
                    if first_id < expect {
                        // Shouldn't happen (abandoned_before guards), but be
                        // safe: frame is too old.
                        self.pending.remove(&first_id);
                        events.push(FrameBufferEvent::Dropped {
                            frame_id: first_id,
                            reason: DropReason::TooOld,
                        });
                        continue;
                    }
                    if first_id == expect {
                        if self.has_sps(frame.gop_id) {
                            self.decode(first_id, now, events);
                            continue;
                        }
                        // Complete but SPS missing: hold (it may still come).
                        return;
                    }
                    // first_id > expect: a keyframe can restart decode
                    // immediately; a delta must wait for `expect`.
                    if frame.frame_type == FrameType::Key && self.has_sps(frame.gop_id) {
                        // Everything before the keyframe is now moot.
                        self.abandoned_before = self.abandoned_before.max(first_id);
                        self.decode(first_id, now, events);
                        continue;
                    }
                    return;
                }
            }
        }
    }

    fn decode(&mut self, frame_id: u64, now: SimTime, events: &mut Vec<FrameBufferEvent>) {
        let frame = self.pending.remove(&frame_id).expect("frame present");
        self.next_decode = Some(frame_id + 1);
        self.abandoned_before = self.abandoned_before.max(frame_id + 1);
        events.push(FrameBufferEvent::Decoded { frame, at: now });
    }

    /// The decoder is blocked on a missing frame (or missing SPS). Abandon
    /// pending frames up to the next usable keyframe and request a refresh.
    fn abandon_blocked_chain(&mut self, events: &mut Vec<FrameBufferEvent>) {
        // Find the first pending keyframe whose SPS we have.
        let restart = self
            .pending
            .iter()
            .find(|(_, f)| f.frame_type == FrameType::Key && self.has_sps(f.gop_id))
            .map(|(&id, _)| id);

        let cut = restart.unwrap_or(u64::MAX);
        let doomed: Vec<u64> = self.pending.range(..cut).map(|(&id, _)| id).collect();
        if doomed.is_empty() && restart.is_none() {
            // Nothing to abandon and no keyframe: drop the oldest pending
            // frame outright to guarantee progress.
            if let Some((&id, _)) = self.pending.iter().next() {
                self.pending.remove(&id);
                self.abandoned_before = self.abandoned_before.max(id + 1);
                events.push(FrameBufferEvent::Dropped {
                    frame_id: id,
                    reason: DropReason::BufferFull,
                });
            }
            events.push(FrameBufferEvent::KeyframeNeeded);
            return;
        }
        for id in doomed {
            let f = self.pending.remove(&id).expect("pending");
            let reason = if self.has_sps(f.gop_id) {
                DropReason::BrokenDependency
            } else {
                DropReason::MissingSps
            };
            events.push(FrameBufferEvent::Dropped {
                frame_id: id,
                reason,
            });
        }
        if let Some(k) = restart {
            self.abandoned_before = self.abandoned_before.max(k);
            // Decoder will restart at the keyframe on the next drain.
            self.next_decode = Some(k);
        } else {
            // No keyframe available at all: resynchronize from the sender.
            self.abandoned_before = self.abandoned_before.max(self.next_decode.unwrap_or(0));
            events.push(FrameBufferEvent::KeyframeNeeded);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StreamId;

    fn frame(frame_id: u64, gop_id: u64, ft: FrameType, at_ms: u64) -> CompleteFrame {
        CompleteFrame {
            stream: StreamId(0),
            frame_id,
            gop_id,
            frame_type: ft,
            size: 4000,
            capture_time: SimTime::from_millis(frame_id * 33),
            first_arrival: SimTime::from_millis(at_ms),
            completed_at: SimTime::from_millis(at_ms),
        }
    }

    fn decoded_ids(events: &[FrameBufferEvent]) -> Vec<u64> {
        events
            .iter()
            .filter_map(|e| match e {
                FrameBufferEvent::Decoded { frame, .. } => Some(frame.frame_id),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn decodes_in_order_after_keyframe() {
        let mut fb = FrameBuffer::new(10);
        fb.sps_received(0);
        let mut all = Vec::new();
        all.extend(fb.insert(SimTime::from_millis(0), frame(0, 0, FrameType::Key, 0)));
        all.extend(fb.insert(SimTime::from_millis(33), frame(1, 0, FrameType::Delta, 33)));
        all.extend(fb.insert(SimTime::from_millis(66), frame(2, 0, FrameType::Delta, 66)));
        assert_eq!(decoded_ids(&all), vec![0, 1, 2]);
    }

    #[test]
    fn delta_before_keyframe_dropped_and_keyframe_requested() {
        let mut fb = FrameBuffer::new(10);
        fb.sps_received(0);
        let evs = fb.insert(SimTime::ZERO, frame(1, 0, FrameType::Delta, 0));
        assert!(evs.contains(&FrameBufferEvent::Dropped {
            frame_id: 1,
            reason: DropReason::BrokenDependency
        }));
        assert!(evs.contains(&FrameBufferEvent::KeyframeNeeded));
    }

    #[test]
    fn out_of_order_insert_reorders() {
        let mut fb = FrameBuffer::new(10);
        fb.sps_received(0);
        let mut all = Vec::new();
        all.extend(fb.insert(SimTime::from_millis(0), frame(0, 0, FrameType::Key, 0)));
        // Frame 2 arrives before frame 1.
        all.extend(fb.insert(SimTime::from_millis(50), frame(2, 0, FrameType::Delta, 50)));
        assert_eq!(decoded_ids(&all), vec![0]);
        all.extend(fb.insert(SimTime::from_millis(60), frame(1, 0, FrameType::Delta, 60)));
        assert_eq!(decoded_ids(&all), vec![0, 1, 2]);
    }

    #[test]
    fn missing_sps_holds_keyframe_until_it_arrives() {
        let mut fb = FrameBuffer::new(10);
        let evs = fb.insert(SimTime::ZERO, frame(0, 0, FrameType::Key, 0));
        assert!(decoded_ids(&evs).is_empty());
        fb.sps_received(0);
        // Next insert triggers a drain that releases both.
        let evs = fb.insert(SimTime::from_millis(33), frame(1, 0, FrameType::Delta, 33));
        assert_eq!(decoded_ids(&evs), vec![0, 1]);
    }

    #[test]
    fn later_keyframe_restarts_decode() {
        let mut fb = FrameBuffer::new(10);
        fb.sps_received(0);
        fb.sps_received(1);
        let mut all = Vec::new();
        all.extend(fb.insert(SimTime::from_millis(0), frame(0, 0, FrameType::Key, 0)));
        // Frame 1 lost forever; keyframe 2 (new GOP) arrives.
        all.extend(fb.insert(SimTime::from_millis(90), frame(2, 1, FrameType::Key, 90)));
        assert_eq!(decoded_ids(&all), vec![0, 2]);
        // Late frame 1 is now too old.
        let evs = fb.insert(SimTime::from_millis(95), frame(1, 0, FrameType::Delta, 95));
        assert!(evs.contains(&FrameBufferEvent::Dropped {
            frame_id: 1,
            reason: DropReason::TooOld
        }));
    }

    #[test]
    fn buffer_overflow_purges_blocked_chain_and_requests_keyframe() {
        let mut fb = FrameBuffer::new(3);
        fb.sps_received(0);
        let mut all = Vec::new();
        all.extend(fb.insert(SimTime::from_millis(0), frame(0, 0, FrameType::Key, 0)));
        // Frame 1 never completes. Deltas 2..=5 pile up.
        for id in 2..=5 {
            all.extend(fb.insert(
                SimTime::from_millis(id * 33),
                frame(id, 0, FrameType::Delta, id * 33),
            ));
        }
        let dropped: Vec<u64> = all
            .iter()
            .filter_map(|e| match e {
                FrameBufferEvent::Dropped { frame_id, .. } => Some(*frame_id),
                _ => None,
            })
            .collect();
        assert!(!dropped.is_empty(), "chain should be purged: {all:?}");
        assert!(all.contains(&FrameBufferEvent::KeyframeNeeded));
        // Decoded only the keyframe.
        assert_eq!(decoded_ids(&all), vec![0]);
    }

    #[test]
    fn recovery_after_purge_via_new_keyframe() {
        let mut fb = FrameBuffer::new(3);
        fb.sps_received(0);
        fb.sps_received(1);
        fb.insert(SimTime::from_millis(0), frame(0, 0, FrameType::Key, 0));
        for id in 2..=5 {
            fb.insert(
                SimTime::from_millis(id * 33),
                frame(id, 0, FrameType::Delta, id * 33),
            );
        }
        // Sender responds with a fresh keyframe (new GOP).
        let evs = fb.insert(SimTime::from_millis(300), frame(6, 1, FrameType::Key, 300));
        assert_eq!(decoded_ids(&evs), vec![6]);
    }

    #[test]
    fn ifd_reported_between_entries() {
        let mut fb = FrameBuffer::new(10);
        fb.sps_received(0);
        let e1 = fb.insert(SimTime::from_millis(100), frame(0, 0, FrameType::Key, 100));
        let ifd1 = e1.iter().find_map(|e| match e {
            FrameBufferEvent::FrameEntered { ifd, .. } => Some(*ifd),
            _ => None,
        });
        assert_eq!(ifd1, Some(None));
        let e2 = fb.insert(
            SimTime::from_millis(150),
            frame(1, 0, FrameType::Delta, 150),
        );
        let ifd2 = e2.iter().find_map(|e| match e {
            FrameBufferEvent::FrameEntered { ifd, .. } => Some(*ifd),
            _ => None,
        });
        assert_eq!(ifd2, Some(Some(SimDuration::from_millis(50))));
    }

    #[test]
    fn abandoned_frames_flagged_for_packet_buffer_purge() {
        let mut fb = FrameBuffer::new(10);
        fb.sps_received(0);
        fb.sps_received(1);
        fb.insert(SimTime::from_millis(0), frame(0, 0, FrameType::Key, 0));
        fb.insert(SimTime::from_millis(90), frame(3, 1, FrameType::Key, 90));
        // Frames 1 and 2 were skipped by the keyframe restart.
        assert!(fb.is_abandoned(1));
        assert!(fb.is_abandoned(2));
        assert!(!fb.is_abandoned(4));
    }
}
