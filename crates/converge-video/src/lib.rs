//! # converge-video
//!
//! The video pipeline model for the Converge (SIGCOMM 2023) reproduction:
//!
//! - [`types`]: streams, frames, and the structured video packets the
//!   multipath scheduler moves between paths.
//! - [`codec`]: a GOP-structured encoder model producing keyframes and
//!   delta frames sized by a rate-distortion model.
//! - [`packetize`]: frames into MTU-sized media packets plus PPS (per
//!   frame) and SPS (per GOP) control packets.
//! - [`packet_buffer`] / [`frame_buffer`]: the receiver's two bounded
//!   buffers from paper section 2.1, including frame-construction-delay
//!   (FCD) and inter-frame-delay (IFD) measurement, eviction under
//!   pressure, decode dependency enforcement, and keyframe requests.
//! - [`quality`]: QP <-> bitrate <-> PSNR models used to report the
//!   image-quality metrics of the evaluation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod frame_buffer;
pub mod packet_buffer;
pub mod packetize;
pub mod quality;
pub mod types;

pub use codec::{EncoderConfig, VideoEncoder};
pub use frame_buffer::{DropReason, FrameBuffer, FrameBufferEvent};
pub use packet_buffer::{PacketBuffer, PacketBufferEvent};
pub use packetize::{Packetizer, PacketizerConfig};
pub use quality::{effective_psnr, psnr_for_bitrate, qp_for_bitrate, VideoFormat};
pub use types::{CompleteFrame, EncodedFrame, FrameType, PacketKind, StreamId, VideoPacket};
