//! The receiver's packet buffer (§2.1).
//!
//! Accumulates RTP packets per frame until a frame is complete, then hands
//! the frame to the frame buffer. It has a bounded size; when full it makes
//! room by evicting packets of the oldest incomplete frame ("the packet
//! buffer may discard packets from that frame to make room for newly
//! arriving packets"). The time from a frame's first packet arrival until
//! its last is the Frame Construction Delay (FCD).

use std::collections::BTreeMap;

use converge_net::SimTime;

use crate::types::{CompleteFrame, FrameType, PacketKind, StreamId, VideoPacket};

/// Events the packet buffer reports to its owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketBufferEvent {
    /// A frame finished gathering all of its packets.
    FrameComplete(CompleteFrame),
    /// A frame's partial packets were evicted to make room; the frame can
    /// never complete (unless retransmissions rebuild it from scratch).
    FrameEvicted {
        /// Which frame lost its packets.
        frame_id: u64,
        /// How many gathered packets were discarded.
        packets_dropped: usize,
    },
    /// A packet arrived for a frame that was already completed or evicted —
    /// it arrived too late to matter.
    StalePacket {
        /// The late packet's frame.
        frame_id: u64,
    },
    /// A duplicate of an already-buffered packet arrived.
    Duplicate {
        /// Sequence number of the duplicate.
        sequence: u64,
    },
}

/// Assembly state of one frame.
#[derive(Debug)]
struct Assembly {
    stream: StreamId,
    gop_id: u64,
    frame_type: FrameType,
    capture_time: SimTime,
    first_arrival: SimTime,
    /// Media packet indices received, with sizes. A frame splits into a few
    /// dozen packets at most and this is touched on every arrival, so a
    /// flat vec (linear probe, insertion order) beats a tree map; only the
    /// distinct-index count and the size sum are ever read, neither of
    /// which depends on order.
    media: Vec<(u16, usize)>,
    /// Total media packets expected, learnt from any media packet.
    expected_media: Option<u16>,
    has_pps: bool,
    /// Sequence numbers held (for duplicate detection).
    sequences: Vec<u64>,
}

impl Assembly {
    fn packet_count(&self) -> usize {
        self.sequences.len()
    }

    fn is_complete(&self) -> bool {
        if !self.has_pps {
            return false;
        }
        match self.expected_media {
            Some(n) => self.media.len() == n as usize,
            // (distinct indices: inserts overwrite an existing index)
            None => false,
        }
    }

    fn media_bytes(&self) -> usize {
        self.media.iter().map(|(_, size)| size).sum()
    }
}

/// Bounded per-frame packet reassembly buffer for one stream.
#[derive(Debug)]
pub struct PacketBuffer {
    /// Maximum packets held across all frames under assembly.
    capacity_packets: usize,
    frames: BTreeMap<u64, Assembly>,
    total_packets: usize,
    /// Frames already completed or evicted; late packets for them are stale.
    /// We track the highest such frame id per category (frames complete in
    /// order of eviction/completion, not necessarily frame order, so keep a
    /// small recent-set).
    finished: std::collections::BTreeSet<u64>,
    /// Cap on the `finished` memory.
    finished_cap: usize,
    /// Highest frame id ever marked finished: any id above it cannot be in
    /// the set, which lets the common case (a packet of a brand-new frame)
    /// skip the set probe entirely.
    max_finished: Option<u64>,
}

impl PacketBuffer {
    /// Creates a buffer holding at most `capacity_packets` packets.
    pub fn new(capacity_packets: usize) -> Self {
        PacketBuffer {
            capacity_packets: capacity_packets.max(1),
            frames: BTreeMap::new(),
            total_packets: 0,
            finished: std::collections::BTreeSet::new(),
            finished_cap: 1024,
            max_finished: None,
        }
    }

    /// Packets currently buffered.
    pub fn len(&self) -> usize {
        self.total_packets
    }

    /// Whether no packets are buffered.
    pub fn is_empty(&self) -> bool {
        self.total_packets == 0
    }

    /// Frames currently under assembly.
    pub fn frames_pending(&self) -> usize {
        self.frames.len()
    }

    /// Whether `frame_id` has already completed or been evicted.
    pub fn is_finished(&self, frame_id: u64) -> bool {
        match self.max_finished {
            Some(max) if frame_id <= max => self.finished.contains(&frame_id),
            _ => false,
        }
    }

    /// Drops all partial packets of `frame_id` (used by the frame buffer
    /// when it gives up on a frame: "the frame buffer can also drop packets
    /// in the packet buffer if they belong to missing and purged frames").
    pub fn purge_frame(&mut self, frame_id: u64) -> Option<PacketBufferEvent> {
        let assembly = self.frames.remove(&frame_id)?;
        self.total_packets -= assembly.packet_count();
        self.remember_finished(frame_id);
        Some(PacketBufferEvent::FrameEvicted {
            frame_id,
            packets_dropped: assembly.packet_count(),
        })
    }

    /// Inserts one arriving packet; returns the events it produced.
    ///
    /// SPS packets are GOP-scoped, not frame-scoped; the caller should route
    /// them to its GOP ledger instead — passing one here is ignored with no
    /// event.
    pub fn insert(&mut self, now: SimTime, packet: &VideoPacket) -> Vec<PacketBufferEvent> {
        if packet.kind == PacketKind::Sps {
            return Vec::new();
        }
        let mut events = Vec::new();
        if self.is_finished(packet.frame_id) {
            return vec![PacketBufferEvent::StalePacket {
                frame_id: packet.frame_id,
            }];
        }

        let assembly = self
            .frames
            .entry(packet.frame_id)
            .or_insert_with(|| Assembly {
                stream: packet.stream,
                gop_id: packet.gop_id,
                frame_type: packet.frame_type,
                capture_time: packet.capture_time,
                first_arrival: now,
                media: Vec::new(),
                expected_media: None,
                has_pps: false,
                sequences: Vec::new(),
            });

        if assembly.sequences.contains(&packet.sequence) {
            return vec![PacketBufferEvent::Duplicate {
                sequence: packet.sequence,
            }];
        }

        match packet.kind {
            PacketKind::Media { index, count } => {
                assembly.expected_media = Some(count);
                match assembly.media.iter_mut().find(|(i, _)| *i == index) {
                    Some(slot) => slot.1 = packet.size,
                    None => assembly.media.push((index, packet.size)),
                }
            }
            PacketKind::Pps => assembly.has_pps = true,
            PacketKind::Sps => unreachable!("SPS filtered above"),
        }
        assembly.sequences.push(packet.sequence);
        let complete = assembly.is_complete();
        self.total_packets += 1;

        let frame_id = packet.frame_id;
        if complete {
            let a = self.frames.remove(&frame_id).expect("assembly exists");
            self.total_packets -= a.packet_count();
            self.remember_finished(frame_id);
            events.push(PacketBufferEvent::FrameComplete(CompleteFrame {
                stream: a.stream,
                frame_id,
                gop_id: a.gop_id,
                frame_type: a.frame_type,
                size: a.media_bytes(),
                capture_time: a.capture_time,
                first_arrival: a.first_arrival,
                completed_at: now,
            }));
        }

        // Evict oldest incomplete frames while over capacity, never the
        // frame that just received a packet unless it is the only one.
        while self.total_packets > self.capacity_packets {
            let victim = match self.frames.keys().next().copied() {
                Some(oldest) if oldest != frame_id || self.frames.len() == 1 => oldest,
                // Oldest is the active frame but others exist: evict the
                // next oldest instead.
                Some(_) => match self.frames.keys().nth(1).copied() {
                    Some(v) => v,
                    None => break,
                },
                None => break,
            };
            if let Some(ev) = self.purge_frame(victim) {
                events.push(ev);
            } else {
                break;
            }
        }

        events
    }

    fn remember_finished(&mut self, frame_id: u64) {
        self.max_finished = Some(self.max_finished.map_or(frame_id, |m| m.max(frame_id)));
        self.finished.insert(frame_id);
        while self.finished.len() > self.finished_cap {
            let oldest = *self.finished.iter().next().expect("non-empty");
            self.finished.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StreamId;

    fn pkt(frame_id: u64, seq: u64, kind: PacketKind) -> VideoPacket {
        VideoPacket {
            stream: StreamId(0),
            sequence: seq,
            frame_id,
            gop_id: frame_id / 90,
            frame_type: if frame_id.is_multiple_of(90) {
                FrameType::Key
            } else {
                FrameType::Delta
            },
            kind,
            size: match kind {
                PacketKind::Media { .. } => 1200,
                PacketKind::Pps => 64,
                PacketKind::Sps => 96,
            },
            capture_time: SimTime::from_millis(frame_id * 33),
        }
    }

    fn frame_packets(frame_id: u64, first_seq: u64, media: u16) -> Vec<VideoPacket> {
        let mut v = vec![pkt(frame_id, first_seq, PacketKind::Pps)];
        for i in 0..media {
            v.push(pkt(
                frame_id,
                first_seq + 1 + i as u64,
                PacketKind::Media {
                    index: i,
                    count: media,
                },
            ));
        }
        v
    }

    #[test]
    fn frame_completes_when_all_packets_arrive() {
        let mut buf = PacketBuffer::new(100);
        let pkts = frame_packets(0, 0, 3);
        let mut completed = None;
        for (i, p) in pkts.iter().enumerate() {
            let evs = buf.insert(SimTime::from_millis(i as u64), p);
            for e in evs {
                if let PacketBufferEvent::FrameComplete(f) = e {
                    completed = Some(f);
                }
            }
        }
        let f = completed.expect("frame should complete");
        assert_eq!(f.frame_id, 0);
        assert_eq!(f.size, 3600);
        assert_eq!(f.first_arrival.as_millis(), 0);
        assert_eq!(f.completed_at.as_millis(), 3);
        assert_eq!(f.fcd().as_millis(), 3);
        assert!(buf.is_empty());
    }

    #[test]
    fn incomplete_without_pps() {
        let mut buf = PacketBuffer::new(100);
        for p in frame_packets(0, 0, 2).iter().skip(1) {
            let evs = buf.insert(SimTime::ZERO, p);
            assert!(evs.is_empty(), "{evs:?}");
        }
        assert_eq!(buf.frames_pending(), 1);
    }

    #[test]
    fn completes_out_of_order() {
        let mut buf = PacketBuffer::new(100);
        let mut pkts = frame_packets(0, 0, 3);
        pkts.reverse();
        let mut done = false;
        for p in &pkts {
            for e in buf.insert(SimTime::from_millis(1), p) {
                if matches!(e, PacketBufferEvent::FrameComplete(_)) {
                    done = true;
                }
            }
        }
        assert!(done);
    }

    #[test]
    fn duplicate_detected() {
        let mut buf = PacketBuffer::new(100);
        let p = pkt(0, 5, PacketKind::Media { index: 0, count: 2 });
        buf.insert(SimTime::ZERO, &p);
        let evs = buf.insert(SimTime::ZERO, &p);
        assert_eq!(evs, vec![PacketBufferEvent::Duplicate { sequence: 5 }]);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn stale_packet_after_completion() {
        let mut buf = PacketBuffer::new(100);
        for p in frame_packets(0, 0, 2) {
            buf.insert(SimTime::ZERO, &p);
        }
        // Re-deliver one of them after the frame completed.
        let evs = buf.insert(
            SimTime::from_millis(9),
            &pkt(0, 1, PacketKind::Media { index: 0, count: 2 }),
        );
        assert_eq!(evs, vec![PacketBufferEvent::StalePacket { frame_id: 0 }]);
    }

    #[test]
    fn eviction_targets_oldest_incomplete_frame() {
        let mut buf = PacketBuffer::new(4);
        // Frame 0: 2 packets, incomplete (missing one media).
        buf.insert(SimTime::ZERO, &pkt(0, 0, PacketKind::Pps));
        buf.insert(
            SimTime::ZERO,
            &pkt(0, 1, PacketKind::Media { index: 0, count: 2 }),
        );
        // Frame 1 packets push the buffer over capacity.
        buf.insert(SimTime::from_millis(33), &pkt(1, 3, PacketKind::Pps));
        buf.insert(
            SimTime::from_millis(33),
            &pkt(1, 4, PacketKind::Media { index: 0, count: 3 }),
        );
        let evs = buf.insert(
            SimTime::from_millis(34),
            &pkt(1, 5, PacketKind::Media { index: 1, count: 3 }),
        );
        assert!(
            evs.contains(&PacketBufferEvent::FrameEvicted {
                frame_id: 0,
                packets_dropped: 2
            }),
            "{evs:?}"
        );
        assert!(buf.is_finished(0));
        // Frame 0's straggler is now stale even though it never completed.
        let evs = buf.insert(
            SimTime::from_millis(40),
            &pkt(0, 2, PacketKind::Media { index: 1, count: 2 }),
        );
        assert_eq!(evs, vec![PacketBufferEvent::StalePacket { frame_id: 0 }]);
    }

    #[test]
    fn eviction_spares_active_frame_when_possible() {
        let mut buf = PacketBuffer::new(3);
        // Oldest frame is the one receiving packets; next-oldest is evicted.
        buf.insert(SimTime::ZERO, &pkt(0, 0, PacketKind::Pps));
        buf.insert(SimTime::ZERO, &pkt(1, 1, PacketKind::Pps));
        buf.insert(
            SimTime::ZERO,
            &pkt(1, 2, PacketKind::Media { index: 0, count: 9 }),
        );
        // This 4th packet belongs to frame 0 (oldest): victim must be frame 1.
        let evs = buf.insert(
            SimTime::ZERO,
            &pkt(0, 3, PacketKind::Media { index: 0, count: 9 }),
        );
        assert!(
            evs.contains(&PacketBufferEvent::FrameEvicted {
                frame_id: 1,
                packets_dropped: 2
            }),
            "{evs:?}"
        );
        assert_eq!(buf.frames_pending(), 1);
    }

    #[test]
    fn purge_frame_reports_drop() {
        let mut buf = PacketBuffer::new(100);
        buf.insert(SimTime::ZERO, &pkt(3, 0, PacketKind::Pps));
        let ev = buf.purge_frame(3).unwrap();
        assert_eq!(
            ev,
            PacketBufferEvent::FrameEvicted {
                frame_id: 3,
                packets_dropped: 1
            }
        );
        assert!(buf.purge_frame(3).is_none());
        assert!(buf.is_empty());
    }

    #[test]
    fn sps_packets_ignored() {
        let mut buf = PacketBuffer::new(100);
        let evs = buf.insert(SimTime::ZERO, &pkt(0, 0, PacketKind::Sps));
        assert!(evs.is_empty());
        assert!(buf.is_empty());
    }

    #[test]
    fn multiple_frames_assemble_concurrently() {
        let mut buf = PacketBuffer::new(100);
        let f0 = frame_packets(0, 0, 2);
        let f1 = frame_packets(1, 10, 2);
        // Interleave.
        let mut completions = 0;
        for p in [&f0[0], &f1[0], &f0[1], &f1[1], &f0[2], &f1[2]] {
            for e in buf.insert(SimTime::ZERO, p) {
                if matches!(e, PacketBufferEvent::FrameComplete(_)) {
                    completions += 1;
                }
            }
        }
        assert_eq!(completions, 2);
    }
}
