//! Rate–distortion quality models: QP and PSNR from achieved bitrate.
//!
//! The paper measures QP (quantization parameter, lower = better) and PSNR
//! (higher = better) with external tooling. We replace the measurement with
//! a standard logarithmic rate–distortion model: image quality improves
//! roughly linearly in the log of bits-per-pixel, saturating at both ends.
//! The constants below are calibrated to VP8-like 720p behaviour so that a
//! 10 Mbps 720p30 stream sits near QP ≈ 10–15 / PSNR ≈ 42 dB and a starved
//! sub-Mbps stream degrades toward QP ≈ 50+ / PSNR ≈ 28 dB — the dynamic
//! range Figures 10, 14, and 15 of the paper span.

/// Video geometry used by the quality model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct VideoFormat {
    /// Luma width in pixels.
    pub width: u32,
    /// Luma height in pixels.
    pub height: u32,
    /// Nominal capture rate, frames per second.
    pub fps: u32,
}

impl VideoFormat {
    /// The 1280×720 @30 format used throughout the paper's evaluation.
    pub const HD720: VideoFormat = VideoFormat {
        width: 1280,
        height: 720,
        fps: 30,
    };

    /// Pixels per second of this format.
    pub fn pixel_rate(&self) -> f64 {
        self.width as f64 * self.height as f64 * self.fps as f64
    }

    /// Bits per pixel achieved at `bitrate_bps`.
    pub fn bits_per_pixel(&self, bitrate_bps: f64) -> f64 {
        bitrate_bps / self.pixel_rate()
    }
}

/// QP range emitted by the model (VP8-style 0..=63).
pub const QP_MIN: u8 = 2;
/// Worst (largest) representable QP; the paper normalizes QoE against 60 as
/// "the lowest video quality".
pub const QP_MAX: u8 = 60;

/// Maps an encoding rate to the quantization parameter the encoder model
/// would pick for it.
///
/// Anchors: 0.36 bpp (10 Mbps 720p30) → QP≈10; 0.036 bpp (1 Mbps) → QP≈35;
/// logarithmic in between, clamped to `[QP_MIN, QP_MAX]`.
pub fn qp_for_bitrate(format: VideoFormat, bitrate_bps: f64) -> u8 {
    if bitrate_bps <= 0.0 {
        return QP_MAX;
    }
    let bpp = format.bits_per_pixel(bitrate_bps);
    // QP drops ~7.5 per doubling of bpp through the anchor points.
    let qp = 10.0 - 7.52 * (bpp / 0.36).log2();
    qp.clamp(QP_MIN as f64, QP_MAX as f64).round() as u8
}

/// Maps an encoding rate to PSNR in dB of the encoded (fully delivered)
/// video.
///
/// Anchors: 10 Mbps 720p30 → ≈42 dB; 1 Mbps → ≈32 dB; ~3 dB per doubling
/// of rate, clamped to a plausible [20, 50] dB envelope.
pub fn psnr_for_bitrate(format: VideoFormat, bitrate_bps: f64) -> f64 {
    if bitrate_bps <= 0.0 {
        return 20.0;
    }
    let bpp = format.bits_per_pixel(bitrate_bps);
    let x = (bpp / 0.36).log2();
    // Asymmetric slope: quality falls ~3 dB per halving below the
    // reference operating point but saturates above it (diminishing
    // returns past ~0.4 bpp, as real encoders show).
    let psnr = if x <= 0.0 {
        42.0 + 3.01 * x
    } else {
        42.0 + 1.2 * x
    };
    psnr.clamp(20.0, 50.0)
}

/// The resolution ladder a conferencing encoder adapts over (16:9 rungs
/// below 720p). Ordered highest first.
pub const RESOLUTION_LADDER: [VideoFormat; 4] = [
    VideoFormat {
        width: 1280,
        height: 720,
        fps: 30,
    },
    VideoFormat {
        width: 960,
        height: 540,
        fps: 30,
    },
    VideoFormat {
        width: 640,
        height: 360,
        fps: 30,
    },
    VideoFormat {
        width: 480,
        height: 270,
        fps: 30,
    },
];

/// Perceived PSNR of video encoded at `encoded` and displayed at 720p:
/// the R–D quality at the encode resolution minus an upscaling penalty of
/// ~3.5 dB per halving of pixel count (detail lost to interpolation).
pub fn display_psnr(encoded: VideoFormat, bitrate_bps: f64) -> f64 {
    let native = psnr_for_bitrate(encoded, bitrate_bps);
    let pixel_ratio = (VideoFormat::HD720.width as f64 * VideoFormat::HD720.height as f64)
        / (encoded.width as f64 * encoded.height as f64);
    let penalty = 3.5 * pixel_ratio.log2().max(0.0);
    (native - penalty).max(20.0)
}

/// Minimum bits-per-pixel below which a resolution rung produces visible
/// blocking and the encoder should downscale (WebRTC's quality scaler
/// switches on QP thresholds that correspond to roughly this operating
/// point).
pub const MIN_BPP: f64 = 0.05;

/// The ladder rung a conferencing encoder picks at `bitrate_bps`: the
/// largest resolution that still gets [`MIN_BPP`] bits per pixel, falling
/// back to the smallest rung when even that is starved.
pub fn best_resolution_for(bitrate_bps: f64) -> VideoFormat {
    RESOLUTION_LADDER
        .into_iter()
        .find(|f| f.bits_per_pixel(bitrate_bps) >= MIN_BPP)
        .unwrap_or(RESOLUTION_LADDER[RESOLUTION_LADDER.len() - 1])
}

/// PSNR of the video *as experienced*, folding in frames that never made it:
/// a dropped or frozen frame repeats the previous image, which for
/// conferencing content costs heavily. We attribute `frozen_fraction` of
/// display time a floor PSNR of 22 dB (repeated stale frame vs moving
/// ground truth) and blend in the delivered-rate PSNR for the rest.
pub fn effective_psnr(format: VideoFormat, bitrate_bps: f64, frozen_fraction: f64) -> f64 {
    let clean = psnr_for_bitrate(format, bitrate_bps);
    let frozen = frozen_fraction.clamp(0.0, 1.0);
    clean * (1.0 - frozen) + 22.0 * frozen
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: VideoFormat = VideoFormat::HD720;

    #[test]
    fn qp_anchor_points() {
        let qp_10m = qp_for_bitrate(F, 10_000_000.0);
        let qp_1m = qp_for_bitrate(F, 1_000_000.0);
        assert!((8..=12).contains(&qp_10m), "10 Mbps → QP {qp_10m}");
        assert!((33..=38).contains(&qp_1m), "1 Mbps → QP {qp_1m}");
    }

    #[test]
    fn qp_monotone_decreasing_in_rate() {
        let rates = [200_000.0, 500_000.0, 1e6, 3e6, 5e6, 10e6, 20e6];
        let qps: Vec<u8> = rates.iter().map(|&r| qp_for_bitrate(F, r)).collect();
        for w in qps.windows(2) {
            assert!(w[0] >= w[1], "QP must not rise with rate: {qps:?}");
        }
    }

    #[test]
    fn qp_clamped_at_extremes() {
        assert_eq!(qp_for_bitrate(F, 0.0), QP_MAX);
        assert_eq!(qp_for_bitrate(F, 1e3), QP_MAX);
        assert_eq!(qp_for_bitrate(F, 1e12), QP_MIN);
    }

    #[test]
    fn psnr_anchor_points() {
        let p10 = psnr_for_bitrate(F, 10_000_000.0);
        let p1 = psnr_for_bitrate(F, 1_000_000.0);
        assert!((41.0..43.0).contains(&p10), "10 Mbps → {p10}");
        assert!((31.0..33.0).contains(&p1), "1 Mbps → {p1}");
    }

    #[test]
    fn psnr_monotone_increasing_in_rate() {
        let rates = [100_000.0, 1e6, 5e6, 10e6, 40e6];
        let ps: Vec<f64> = rates.iter().map(|&r| psnr_for_bitrate(F, r)).collect();
        for w in ps.windows(2) {
            assert!(w[0] <= w[1], "{ps:?}");
        }
    }

    #[test]
    fn psnr_clamped() {
        assert_eq!(psnr_for_bitrate(F, 0.0), 20.0);
        assert_eq!(psnr_for_bitrate(F, 1e15), 50.0);
    }

    #[test]
    fn effective_psnr_penalizes_freezes() {
        let clean = effective_psnr(F, 10e6, 0.0);
        let half_frozen = effective_psnr(F, 10e6, 0.5);
        let all_frozen = effective_psnr(F, 10e6, 1.0);
        assert!(clean > half_frozen && half_frozen > all_frozen);
        assert!((all_frozen - 22.0).abs() < 1e-9);
    }

    #[test]
    fn effective_psnr_clamps_fraction() {
        assert_eq!(effective_psnr(F, 10e6, -1.0), effective_psnr(F, 10e6, 0.0));
        assert_eq!(effective_psnr(F, 10e6, 2.0), effective_psnr(F, 10e6, 1.0));
    }

    #[test]
    fn high_rate_prefers_full_resolution() {
        assert_eq!(best_resolution_for(10e6).height, 720);
        assert_eq!(best_resolution_for(4e6).height, 720);
    }

    #[test]
    fn starved_rate_prefers_downscaling() {
        let r = best_resolution_for(400_000.0);
        assert!(
            r.height < 720,
            "400 kbps should downscale, got {}p",
            r.height
        );
        let r2 = best_resolution_for(150_000.0);
        assert!(
            r2.height <= r.height,
            "lower rate must not pick a bigger frame"
        );
    }

    #[test]
    fn display_psnr_penalizes_upscaling_at_high_rates() {
        // With ample bits, native 720p beats upscaled 360p.
        let hd = display_psnr(RESOLUTION_LADDER[0], 8e6);
        let sd = display_psnr(RESOLUTION_LADDER[2], 8e6);
        assert!(hd > sd, "{hd} vs {sd}");
    }

    #[test]
    fn ladder_monotone_in_rate() {
        let mut last = u32::MAX;
        for rate in [15e6, 5e6, 2e6, 1e6, 0.5e6, 0.2e6, 0.05e6] {
            let h = best_resolution_for(rate).height;
            assert!(h <= last, "resolution must not grow as rate falls");
            last = h;
        }
    }

    #[test]
    fn format_helpers() {
        assert_eq!(F.pixel_rate(), 1280.0 * 720.0 * 30.0);
        let bpp = F.bits_per_pixel(10_000_000.0);
        assert!((bpp - 0.3617).abs() < 0.001, "{bpp}");
    }
}
