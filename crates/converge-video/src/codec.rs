//! Encoder model: turns a target bitrate into a stream of keyframes and
//! delta frames with realistic sizes.
//!
//! The real system encodes camera frames with VP8/H.264 at the rate the
//! congestion controller dictates (§2.1). The scheduler only consumes the
//! *structure* of the output — frame types, sizes, GOP boundaries — so the
//! model generates exactly that: a GOP-structured stream where keyframes
//! are several times larger than delta frames, per-frame sizes jitter with
//! scene activity, and the QP tracks the rate via the R–D model in
//! [`crate::quality`].

use converge_net::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::quality::{best_resolution_for, qp_for_bitrate, VideoFormat};
use crate::types::{EncodedFrame, FrameType, StreamId};

/// Encoder configuration for one camera stream.
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// Stream identity.
    pub stream: StreamId,
    /// Capture format (geometry + fps).
    pub format: VideoFormat,
    /// Frames between keyframes (GOP length). WebRTC conferencing sends
    /// keyframes mostly on request (PLI) plus a slow periodic refresh; a
    /// 10 s refresh keeps keyframe bursts rare, as in the real system.
    pub gop_length: u32,
    /// Keyframe size as a multiple of the average frame size.
    pub keyframe_ratio: f64,
    /// Mean seconds between scene changes (0 disables them). A scene
    /// change makes delta frames momentarily large — the bursts that
    /// stress schedulers in real conference content.
    pub scene_change_mean_secs: f64,
    /// Maximum encoding rate the application allows (10 Mbps in the paper).
    pub max_bitrate_bps: u64,
    /// Minimum rate the encoder can produce sensible video at.
    pub min_bitrate_bps: u64,
    /// Whether the encoder downscales resolution when the target rate is
    /// too low for the capture format (WebRTC's quality scaler; the paper
    /// notes Converge "adjusting the video resolution to match the lower
    /// throughput").
    pub adaptive_resolution: bool,
    /// Seed for per-frame size jitter.
    pub seed: u64,
}

impl EncoderConfig {
    /// The paper's evaluation setup: 1280×720@30, 10 Mbps cap; keyframes
    /// from a slow (~10.6 s) refresh plus PLI requests.
    pub fn paper_default(stream: StreamId) -> Self {
        EncoderConfig {
            stream,
            format: VideoFormat::HD720,
            gop_length: 317,
            keyframe_ratio: 4.0,
            scene_change_mean_secs: 12.0,
            max_bitrate_bps: 10_000_000,
            min_bitrate_bps: 150_000,
            adaptive_resolution: true,
            seed: 0xC0DEC + stream.0 as u64,
        }
    }
}

/// The encoder model for one stream.
#[derive(Debug)]
pub struct VideoEncoder {
    config: EncoderConfig,
    rng: SmallRng,
    next_frame_id: u64,
    gop_id: u64,
    frames_into_gop: u32,
    force_keyframe: bool,
    target_bitrate_bps: u64,
    /// Current encode resolution (ladder rung).
    current_format: VideoFormat,
    /// Frames the candidate rung has been stable, for switch hysteresis.
    rung_stable_frames: u32,
    /// Frames left in the current scene-change burst.
    scene_burst_frames: u32,
}

impl VideoEncoder {
    /// Creates an encoder; the first frame is always a keyframe.
    pub fn new(config: EncoderConfig) -> Self {
        let seed = config.seed;
        let target = config.max_bitrate_bps;
        let current_format = config.format;
        VideoEncoder {
            config,
            rng: SmallRng::seed_from_u64(seed),
            next_frame_id: 0,
            gop_id: 0,
            frames_into_gop: 0,
            force_keyframe: true,
            target_bitrate_bps: target,
            current_format,
            rung_stable_frames: 0,
            scene_burst_frames: 0,
        }
    }

    /// Encoder configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Sets the encoding rate (from the congestion controller), clamped to
    /// the configured range.
    pub fn set_target_bitrate(&mut self, bps: u64) {
        self.target_bitrate_bps =
            bps.clamp(self.config.min_bitrate_bps, self.config.max_bitrate_bps);
    }

    /// The rate the encoder is currently encoding at.
    pub fn target_bitrate(&self) -> u64 {
        self.target_bitrate_bps
    }

    /// Requests the next frame to be a keyframe (reaction to a PLI).
    pub fn request_keyframe(&mut self) {
        self.force_keyframe = true;
    }

    /// Interval between captured frames.
    pub fn frame_interval(&self) -> SimDuration {
        SimDuration::from_micros(1_000_000 / self.config.fps() as u64)
    }

    /// The resolution currently being encoded.
    pub fn current_format(&self) -> VideoFormat {
        self.current_format
    }

    /// Adapts the resolution rung toward what the target rate supports,
    /// with 30-frame (~1 s) hysteresis so rate flutter does not thrash the
    /// encoder. A switch forces a keyframe, as real encoders must.
    fn adapt_resolution(&mut self) {
        if !self.config.adaptive_resolution {
            return;
        }
        let mut want = best_resolution_for(self.target_bitrate_bps as f64);
        // Never exceed the capture format.
        if want.height > self.config.format.height {
            want = self.config.format;
        }
        if want.height == self.current_format.height {
            self.rung_stable_frames = 0;
            return;
        }
        self.rung_stable_frames += 1;
        // Downswitches react faster (quality is visibly broken) than
        // upswitches (must be sure the rate will hold).
        let needed = if want.height < self.current_format.height {
            15
        } else {
            45
        };
        if self.rung_stable_frames >= needed {
            self.current_format = VideoFormat {
                width: want.width,
                height: want.height,
                fps: self.config.format.fps,
            };
            self.rung_stable_frames = 0;
            self.force_keyframe = true;
        }
    }

    /// Encodes the frame captured at `now`.
    pub fn encode(&mut self, now: SimTime) -> EncodedFrame {
        self.adapt_resolution();
        // Scene changes arrive as a Bernoulli-per-frame process with the
        // configured mean spacing; each spikes the next few delta frames
        // (the encoder cannot predict across the cut).
        if self.config.scene_change_mean_secs > 0.0 {
            let p = 1.0 / (self.config.scene_change_mean_secs * self.config.fps() as f64);
            if self.rng.gen_bool(p.clamp(0.0, 0.5)) {
                self.scene_burst_frames = 6;
            }
        }
        let is_key = self.force_keyframe || self.frames_into_gop >= self.config.gop_length;
        if is_key {
            self.force_keyframe = false;
            self.frames_into_gop = 0;
            if self.next_frame_id > 0 {
                self.gop_id += 1;
            }
        }
        self.frames_into_gop += 1;

        let size = self.frame_size(is_key);
        let qp = qp_for_bitrate(self.current_format, self.target_bitrate_bps as f64);
        let frame = EncodedFrame {
            stream: self.config.stream,
            frame_id: self.next_frame_id,
            gop_id: self.gop_id,
            frame_type: if is_key {
                FrameType::Key
            } else {
                FrameType::Delta
            },
            size,
            qp,
            height: self.current_format.height,
            capture_time: now,
        };
        self.next_frame_id += 1;
        frame
    }

    /// Size for one frame: the per-frame bit budget at the current target
    /// rate, redistributed so keyframes take `keyframe_ratio`× the delta
    /// share, plus ±20 % scene-activity jitter.
    fn frame_size(&mut self, is_key: bool) -> usize {
        let fps = self.config.fps() as f64;
        let gop = self.config.gop_length.max(1) as f64;
        let avg_bytes = self.target_bitrate_bps as f64 / 8.0 / fps;
        // One key + (gop-1) deltas must average to avg:
        //   ratio*d + (gop-1)*d = gop*avg  =>  d = gop*avg / (ratio + gop - 1)
        let delta_bytes = gop * avg_bytes / (self.config.keyframe_ratio + gop - 1.0);
        let base = if is_key {
            delta_bytes * self.config.keyframe_ratio
        } else {
            delta_bytes
        };
        let jitter = self.rng.gen_range(0.8..1.2);
        let burst = if !is_key && self.scene_burst_frames > 0 {
            self.scene_burst_frames -= 1;
            2.0
        } else {
            1.0
        };
        (base * jitter * burst).max(64.0) as usize
    }
}

impl EncoderConfig {
    fn fps(&self) -> u32 {
        self.format.fps.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder() -> VideoEncoder {
        VideoEncoder::new(EncoderConfig::paper_default(StreamId(0)))
    }

    fn encode_n(enc: &mut VideoEncoder, n: usize) -> Vec<EncodedFrame> {
        (0..n)
            .map(|i| enc.encode(SimTime::from_micros(i as u64 * 33_333)))
            .collect()
    }

    #[test]
    fn first_frame_is_keyframe() {
        let mut e = encoder();
        let f = e.encode(SimTime::ZERO);
        assert_eq!(f.frame_type, FrameType::Key);
        assert_eq!(f.frame_id, 0);
        assert_eq!(f.gop_id, 0);
    }

    #[test]
    fn keyframes_appear_every_gop() {
        let mut e = encoder();
        let gop = e.config().gop_length as u64;
        let frames = encode_n(&mut e, (gop * 3 + 1) as usize);
        let key_ids: Vec<u64> = frames
            .iter()
            .filter(|f| f.frame_type == FrameType::Key)
            .map(|f| f.frame_id)
            .collect();
        assert_eq!(key_ids, vec![0, gop, gop * 2, gop * 3]);
    }

    #[test]
    fn gop_id_increments_at_keyframes() {
        let mut e = encoder();
        let gop = e.config().gop_length as usize;
        let frames = encode_n(&mut e, gop * 2 + 1);
        assert_eq!(frames[0].gop_id, 0);
        assert_eq!(frames[gop - 1].gop_id, 0);
        assert_eq!(frames[gop].gop_id, 1);
        assert_eq!(frames[gop * 2].gop_id, 2);
    }

    #[test]
    fn keyframes_are_larger() {
        let mut e = encoder();
        let gop = e.config().gop_length as usize;
        let frames = encode_n(&mut e, gop * 2);
        let keys: Vec<f64> = frames
            .iter()
            .filter(|f| f.frame_type == FrameType::Key)
            .map(|f| f.size as f64)
            .collect();
        let deltas: Vec<f64> = frames
            .iter()
            .filter(|f| f.frame_type == FrameType::Delta)
            .map(|f| f.size as f64)
            .collect();
        let key_avg = keys.iter().sum::<f64>() / keys.len() as f64;
        let delta_avg = deltas.iter().sum::<f64>() / deltas.len() as f64;
        assert!(
            key_avg > delta_avg * 2.5,
            "key {key_avg:.0} vs delta {delta_avg:.0}"
        );
    }

    #[test]
    fn long_run_rate_matches_target() {
        let mut e = encoder();
        e.set_target_bitrate(5_000_000);
        let frames = encode_n(&mut e, 900); // 30 s
        let total_bytes: usize = frames.iter().map(|f| f.size).sum();
        let rate = total_bytes as f64 * 8.0 / 30.0;
        assert!(
            (rate - 5_000_000.0).abs() / 5_000_000.0 < 0.1,
            "achieved {rate:.0}"
        );
    }

    #[test]
    fn rate_clamped_to_config() {
        let mut e = encoder();
        e.set_target_bitrate(100);
        assert_eq!(e.target_bitrate(), e.config().min_bitrate_bps);
        e.set_target_bitrate(u64::MAX);
        assert_eq!(e.target_bitrate(), e.config().max_bitrate_bps);
    }

    #[test]
    fn keyframe_request_honoured_once() {
        let mut e = encoder();
        encode_n(&mut e, 5);
        e.request_keyframe();
        let f = e.encode(SimTime::from_secs(1));
        assert_eq!(f.frame_type, FrameType::Key);
        let f2 = e.encode(SimTime::from_secs(1));
        assert_eq!(f2.frame_type, FrameType::Delta);
    }

    #[test]
    fn keyframe_request_starts_new_gop() {
        let mut e = encoder();
        let before = encode_n(&mut e, 5).last().unwrap().gop_id;
        e.request_keyframe();
        let f = e.encode(SimTime::from_secs(1));
        assert_eq!(f.gop_id, before + 1);
    }

    #[test]
    fn qp_follows_rate() {
        let mut e = encoder();
        e.set_target_bitrate(10_000_000);
        let qp_high_rate = e.encode(SimTime::ZERO).qp;
        e.set_target_bitrate(500_000);
        let qp_low_rate = e.encode(SimTime::ZERO).qp;
        assert!(qp_low_rate > qp_high_rate);
    }

    #[test]
    fn frame_interval_matches_fps() {
        let e = encoder();
        assert_eq!(e.frame_interval().as_micros(), 33_333);
    }

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<usize> = encode_n(&mut encoder(), 100)
            .iter()
            .map(|f| f.size)
            .collect();
        let b: Vec<usize> = encode_n(&mut encoder(), 100)
            .iter()
            .map(|f| f.size)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn scene_changes_spike_delta_sizes() {
        let mut cfg = EncoderConfig::paper_default(StreamId(0));
        cfg.scene_change_mean_secs = 2.0; // frequent, for the test
        let mut e = VideoEncoder::new(cfg);
        let frames = encode_n(&mut e, 600); // 20 s
        let deltas: Vec<usize> = frames
            .iter()
            .filter(|f| f.frame_type == FrameType::Delta)
            .map(|f| f.size)
            .collect();
        let mean = deltas.iter().sum::<usize>() as f64 / deltas.len() as f64;
        let spikes = deltas.iter().filter(|&&s| s as f64 > mean * 1.5).count();
        assert!(spikes > 10, "expected scene-change spikes, saw {spikes}");
    }

    #[test]
    fn scene_changes_can_be_disabled() {
        let mut cfg = EncoderConfig::paper_default(StreamId(0));
        cfg.scene_change_mean_secs = 0.0;
        let mut e = VideoEncoder::new(cfg);
        let frames = encode_n(&mut e, 300);
        let deltas: Vec<usize> = frames
            .iter()
            .filter(|f| f.frame_type == FrameType::Delta)
            .map(|f| f.size)
            .collect();
        let mean = deltas.iter().sum::<usize>() as f64 / deltas.len() as f64;
        // Only the ±20% jitter remains.
        assert!(deltas.iter().all(|&s| (s as f64) < mean * 1.4));
    }

    #[test]
    fn resolution_downscales_when_starved() {
        let mut e = encoder();
        e.set_target_bitrate(400_000);
        // Hysteresis: ~15 frames to switch down.
        let frames = encode_n(&mut e, 60);
        assert_eq!(frames[0].height, 720, "starts at capture format");
        let last = frames.last().unwrap();
        assert!(last.height < 720, "should downscale, got {}p", last.height);
        // The switch frame is a keyframe.
        let switch = frames.windows(2).find(|w| w[0].height != w[1].height);
        let switch = switch.expect("a switch happened");
        assert_eq!(switch[1].frame_type, FrameType::Key);
    }

    #[test]
    fn resolution_recovers_when_rate_returns() {
        let mut e = encoder();
        e.set_target_bitrate(400_000);
        encode_n(&mut e, 60);
        assert!(e.current_format().height < 720);
        e.set_target_bitrate(8_000_000);
        encode_n(&mut e, 90); // upswitch hysteresis is slower (45 frames)
        assert_eq!(e.current_format().height, 720);
    }

    #[test]
    fn adaptation_can_be_disabled() {
        let mut cfg = EncoderConfig::paper_default(StreamId(0));
        cfg.adaptive_resolution = false;
        let mut e = VideoEncoder::new(cfg);
        e.set_target_bitrate(200_000);
        let frames = encode_n(&mut e, 60);
        assert!(frames.iter().all(|f| f.height == 720));
    }

    #[test]
    fn downscaled_qp_better_than_starved_hd() {
        use crate::quality::qp_for_bitrate;
        let starved_hd = qp_for_bitrate(VideoFormat::HD720, 400_000.0);
        let mut e = encoder();
        e.set_target_bitrate(400_000);
        let last = encode_n(&mut e, 60).pop().unwrap();
        assert!(
            last.qp < starved_hd,
            "adapted QP {} should beat starved-720p QP {starved_hd}",
            last.qp
        );
    }

    #[test]
    fn frame_ids_monotone() {
        let mut e = encoder();
        let frames = encode_n(&mut e, 50);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.frame_id, i as u64);
        }
    }
}
