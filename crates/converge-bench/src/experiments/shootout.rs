//! Controller shootout — the congestion-control axis the paper fixes to
//! GCC, swept: every [`ControllerKind`] (GCC, NADA, mp-BBR) drives the
//! same calls through the full Converge scheduler/FEC loop, and the fold
//! compares the QoE each controller's rate dynamics produce.

use converge_sim::{ControllerKind, FecKind, SchedulerKind};

use crate::runner::{metric, pm, Cell, Job, Scale, ScenarioSpec};
use crate::sweep::{ExperimentSpec, Reports};

fn scenarios() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        ("loss-2%", ScenarioSpec::fec_tradeoff_pct(2.0)),
        ("driving", ScenarioSpec::Driving),
    ]
}

fn shootout_cell(scenario: ScenarioSpec, controller: ControllerKind) -> Cell {
    Cell::new(scenario, SchedulerKind::Converge, FecKind::Converge, 1).with_controller(controller)
}

/// Quick scale is the CI smoke cell: one seed per (scenario, controller)
/// keeps the gate cheap; full scale averages over every seed.
fn seeds(scale: Scale) -> &'static [u64] {
    match scale {
        Scale::Quick => &scale.seeds()[..1],
        Scale::Full => scale.seeds(),
    }
}

/// Declares the shootout: scenario × controller × seed.
pub fn spec(scale: Scale) -> ExperimentSpec {
    let mut jobs = Vec::new();
    for (_, scenario) in scenarios() {
        for controller in ControllerKind::ALL {
            for &seed in seeds(scale) {
                jobs.push(Job::new(
                    shootout_cell(scenario, controller),
                    scale.duration(),
                    seed,
                ));
            }
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Controller shootout — GCC vs NADA vs mp-BBR through the full\n");
            out.push_str("# Converge scheduler/FEC loop (same calls, same seeds)\n");
            out.push_str(&format!(
                "{:<10} {:<8} {:>12} {:>10} {:>14} {:>10}\n",
                "#scenario", "ctrl", "norm_tput", "norm_fps", "avg_stall_ms", "e2e_ms"
            ));
            for (scenario_label, _) in scenarios() {
                for controller in ControllerKind::ALL {
                    let reports = r.take(seeds(scale).len());
                    out.push_str(&format!(
                        "{:<10} {:<8} {:>12} {:>10} {:>14} {:>10}\n",
                        scenario_label,
                        controller.label(),
                        pm(&metric(reports, |r| r.normalized_throughput()), 2),
                        pm(&metric(reports, |r| r.normalized_fps()), 2),
                        pm(&metric(reports, |r| r.avg_freeze_ms()), 0),
                        pm(&metric(reports, |r| r.e2e_mean_ms), 0),
                    ));
                }
                out.push('\n');
            }
            out.push_str("# expected shape: GCC (the paper's controller) sets the baseline;\n");
            out.push_str("# NADA tracks it closely on steady loss, mp-BBR probes harder and\n");
            out.push_str("# trades extra queuing delay for throughput on variable paths.\n");
            out
        }),
    }
}

/// Runs the shootout through the process-wide cache.
pub fn run(scale: Scale) -> String {
    crate::sweep::render(spec(scale), crate::sweep::CellCache::global())
}

#[cfg(test)]
mod tests {
    use super::*;
    use converge_net::SimDuration;

    /// Acceptance gate: every controller drives the full scheduler/FEC
    /// loop with a clean invariant checker, and the non-GCC controllers
    /// leave their own trace events in the timeline.
    #[test]
    fn every_controller_runs_clean_through_the_full_loop() {
        for controller in ControllerKind::ALL {
            let job = Job::new(
                shootout_cell(ScenarioSpec::fec_tradeoff_pct(2.0), controller),
                SimDuration::from_secs(10),
                11,
            );
            let (report, records, violations) = job.run_checked();
            assert!(violations.is_empty(), "{}: {violations:?}", controller.id());
            assert!(
                report.frames_decoded > 100,
                "{}: {} frames",
                controller.id(),
                report.frames_decoded
            );
            if controller != ControllerKind::Gcc {
                let has_cc_rate = records
                    .iter()
                    .any(|rec| rec.event.name() == "cc_rate_changed");
                assert!(has_cc_rate, "{} must emit cc_rate_changed", controller.id());
            }
        }
    }

    /// The determinism satellite: for each controller, the captured JSONL
    /// timeline is byte-identical whether the sweep ran on 1 worker or 4.
    #[test]
    fn per_controller_traces_are_byte_identical_across_worker_counts() {
        let jobs: Vec<Job> = ControllerKind::ALL
            .iter()
            .map(|&controller| {
                Job::new(
                    shootout_cell(ScenarioSpec::fec_tradeoff_pct(2.0), controller),
                    SimDuration::from_secs(5),
                    42,
                )
            })
            .collect();
        let render_traces = |workers: usize| -> Vec<String> {
            let cache = crate::sweep::CellCache::new();
            cache.set_trace_capture(true);
            let spec = ExperimentSpec {
                jobs: jobs.clone(),
                fold: Box::new(|_| String::new()),
            };
            crate::sweep::run_sweep(vec![("shootout".into(), spec)], Scale::Quick, workers, &cache);
            jobs.iter()
                .map(|job| {
                    let run = cache.get_or_run(job);
                    let records = run.trace.as_ref().expect("capture armed");
                    assert!(!records.is_empty(), "{}", job.fingerprint());
                    converge_trace::jsonl::render(&job.fingerprint(), records)
                })
                .collect()
        };
        assert_eq!(
            render_traces(1),
            render_traces(4),
            "per-controller timelines must not depend on --jobs"
        );
    }

    #[test]
    fn spec_covers_every_controller_per_scenario() {
        let spec = spec(Scale::Quick);
        // The CI smoke cell: 2 scenarios × 3 controllers × 1 seed.
        assert_eq!(
            spec.jobs.len(),
            scenarios().len() * ControllerKind::ALL.len()
        );
        for controller in ControllerKind::ALL {
            assert!(
                spec.jobs.iter().any(|j| j.cell.controller == controller),
                "{} missing from the shootout",
                controller.id()
            );
        }
    }
}
