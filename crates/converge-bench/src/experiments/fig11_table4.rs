//! Fig. 11 and Table 4 — the QoE feedback ablation: the video-aware
//! scheduler with and without the feedback loop, on the path-collapse
//! scenario (path 1 steady at 25 Mbps; path 2 collapses to 0.5–2.5 Mbps
//! between 30 s and 90 s).

use converge_sim::{FecKind, ScenarioConfig, SchedulerKind};

use crate::runner::{Cell, Job, Scale, ScenarioSpec};
use crate::sweep::{ExperimentSpec, Reports};

/// The ablation needs the 30–90 s dip window, so quick scale keeps a
/// 120 s call rather than the usual 30 s.
fn ablation_duration(scale: Scale) -> converge_net::SimDuration {
    converge_net::SimDuration::from_secs(match scale {
        Scale::Full => 180,
        Scale::Quick => 120,
    })
}

fn variant_cell(scheduler: SchedulerKind) -> Cell {
    Cell::new(
        ScenarioSpec::FeedbackBenefit,
        scheduler,
        FecKind::Converge,
        1,
    )
}

/// Declares Fig. 11: with- and without-feedback variants, one seed.
pub fn spec_fig11(scale: Scale) -> ExperimentSpec {
    let duration = ablation_duration(scale);
    let seed = 42;
    ExperimentSpec {
        jobs: vec![
            Job::new(variant_cell(SchedulerKind::Converge), duration, seed),
            Job::new(
                variant_cell(SchedulerKind::ConvergeNoFeedback),
                duration,
                seed,
            ),
        ],
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let with_fb = r.one();
            let without_fb = r.one();
            let scenario = ScenarioConfig::feedback_benefit(duration, seed);

            let mut out = String::new();
            out.push_str("# Fig. 11 — QoE feedback ablation time series\n");
            out.push_str(
                "# columns: t_s path1_mbps path2_mbps tput_fb tput_nofb ifd_fb ifd_nofb fcd_fb fcd_nofb\n",
            );
            let empty = Vec::new();
            let sent_p1 = with_fb
                .path_series
                .get(&converge_net::PathId(0))
                .unwrap_or(&empty);
            let sent_p2 = with_fb
                .path_series
                .get(&converge_net::PathId(1))
                .unwrap_or(&empty);
            for (i, (b_fb, b_no)) in with_fb.bins.iter().zip(&without_fb.bins).enumerate() {
                let t = converge_net::SimTime::from_secs(i as u64);
                out.push_str(&format!(
                    "{i} {:.1} {:.1} {:.2} {:.2} {:.1} {:.1} {:.1} {:.1} {:.2} {:.2}\n",
                    scenario.paths[0].rate.rate_at(t) as f64 / 1e6,
                    scenario.paths[1].rate.rate_at(t) as f64 / 1e6,
                    b_fb.throughput_bps() / 1e6,
                    b_no.throughput_bps() / 1e6,
                    b_fb.ifd_ms().unwrap_or(0.0),
                    b_no.ifd_ms().unwrap_or(0.0),
                    b_fb.fcd_ms().unwrap_or(0.0),
                    b_no.fcd_ms().unwrap_or(0.0),
                    sent_p1.get(i).copied().unwrap_or(0) as f64 * 8.0 / 1e6,
                    sent_p2.get(i).copied().unwrap_or(0) as f64 * 8.0 / 1e6,
                ));
            }
            out.push_str("# paper shape: without feedback, IFD exceeds the 33 ms target and FCD\n");
            out.push_str("# grows during the 30-90 s dip, and throughput falls below 10 Mbps;\n");
            out.push_str("# with feedback the sender sheds path 2 and the curves stay flat.\n");
            out
        }),
    }
}

/// Fig. 11: path dynamics, video throughput, IFD, and FCD time series for
/// the two variants.
pub fn run_fig11(scale: Scale) -> String {
    crate::sweep::render(spec_fig11(scale), crate::sweep::CellCache::global())
}

/// Declares Table 4: the same two variants, same seed — the sweep engine's
/// cell cache means these jobs are free when Fig. 11 already ran.
pub fn spec_table4(scale: Scale) -> ExperimentSpec {
    let duration = ablation_duration(scale);
    let variants = [
        ("with-feedback", SchedulerKind::Converge),
        ("without-feedback", SchedulerKind::ConvergeNoFeedback),
    ];
    ExperimentSpec {
        jobs: variants
            .iter()
            .map(|&(_, scheduler)| Job::new(variant_cell(scheduler), duration, 42))
            .collect(),
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Table 4 — Converge with vs without QoE feedback\n");
            out.push_str(&format!(
                "{:<18} {:>12} {:>16} {:>14}\n",
                "variant", "frame_drops", "freeze_ms", "kf_requests"
            ));
            for (label, _) in variants {
                let rep = r.one();
                out.push_str(&format!(
                    "{:<18} {:>12} {:>16.0} {:>14}\n",
                    label, rep.frames_dropped, rep.freeze_total_ms, rep.keyframe_requests
                ));
            }
            out.push_str("# paper shape: feedback cuts frame drops ~10x, freezes ~70%, and\n");
            out.push_str("# keyframe requests ~90%.\n");
            out
        }),
    }
}

/// Table 4: frame drops, freeze duration, keyframe requests with vs
/// without feedback.
pub fn run_table4(scale: Scale) -> String {
    crate::sweep::render(spec_table4(scale), crate::sweep::CellCache::global())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_once;

    /// Seconds inside the dip (35–90 s, past the unavoidable onset
    /// transient) in which the frame rate degraded below 25 fps.
    fn degraded_mid_dip_seconds(r: &converge_sim::CallReport) -> usize {
        r.bins
            .iter()
            .enumerate()
            .filter(|(i, b)| (35..90).contains(i) && b.frames_decoded < 25)
            .count()
    }

    #[test]
    fn feedback_improves_mid_dip_stability() {
        // The collapse-onset transient (packets already queued on the dying
        // path when it collapses) costs both variants a similar burst and
        // is chaotic run-to-run, so the assertion averages seeds and looks
        // at the steady mid-dip window where the mechanism matters.
        let duration = converge_net::SimDuration::from_secs(120);
        let run = |scheduler, seed| run_once(crate::sweep::CellCache::global(), &variant_cell(scheduler), duration, seed);
        let mut fb_bad = 0usize;
        let mut nofb_bad = 0usize;
        let mut fb_fps = 0.0f64;
        let mut nofb_fps = 0.0f64;
        for seed in [7, 42, 99] {
            let fb = run(SchedulerKind::Converge, seed);
            let nofb = run(SchedulerKind::ConvergeNoFeedback, seed);
            fb_bad += degraded_mid_dip_seconds(&fb);
            nofb_bad += degraded_mid_dip_seconds(&nofb);
            fb_fps += fb.fps;
            nofb_fps += nofb.fps;
        }
        assert!(
            fb_bad <= nofb_bad + 2,
            "feedback degraded-seconds {fb_bad} must not exceed no-feedback {nofb_bad}"
        );
        assert!(
            fb_fps >= nofb_fps * 0.97,
            "feedback fps {fb_fps} must not clearly lose to no-feedback {nofb_fps}"
        );
    }
}
