//! Figs. 16–17 and Table 6 — the stationary (appendix A) evaluation:
//! Converge vs single-path WebRTC on stable WiFi + cellular.

use converge_sim::{FecKind, ScenarioConfig, SchedulerKind};

use crate::runner::{metric, pm, run_once, run_seeds, Cell, Scale};

fn systems() -> Vec<(&'static str, SchedulerKind, FecKind)> {
    vec![
        (
            "WebRTC-W",
            SchedulerKind::SinglePath(0),
            FecKind::WebRtcTable,
        ),
        (
            "WebRTC-T",
            SchedulerKind::SinglePath(1),
            FecKind::WebRtcTable,
        ),
        ("Converge", SchedulerKind::Converge, FecKind::Converge),
    ]
}

/// Fig. 16: stationary time series (throughput, FPS, E2E).
pub fn run_fig16(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Fig. 16 — stationary time series\n");
    out.push_str("# columns: t_s system tput_mbps fps e2e_ms\n");
    for (label, scheduler, fec) in systems() {
        let cell = Cell {
            scenario: ScenarioConfig::stationary,
            scheduler,
            fec,
            streams: 1,
        };
        let r = run_once(&cell, scale.duration(), 42);
        for (i, bin) in r.bins.iter().enumerate() {
            out.push_str(&format!(
                "{i} {label} {:.2} {} {:.0}\n",
                bin.throughput_bps() / 1e6,
                bin.frames_decoded,
                bin.e2e_ms().unwrap_or(0.0)
            ));
        }
    }
    out.push_str("# paper shape: on stable WiFi, Converge ~= WebRTC-W at ~10 Mbps and\n");
    out.push_str("# ~30 FPS; WebRTC-T is capacity-limited below both.\n");
    out
}

/// Fig. 17: normalized QoE bars for 1–3 camera streams.
pub fn run_fig17(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Fig. 17 — stationary normalized QoE, 1-3 streams\n");
    out.push_str(&format!(
        "{:<4} {:<12} {:>14} {:>12} {:>14} {:>12}\n",
        "#", "system", "norm_tput", "norm_fps", "avg_stall_ms", "norm_qp"
    ));
    for streams in 1..=3u8 {
        for (label, scheduler, fec) in systems() {
            let cell = Cell {
                scenario: ScenarioConfig::stationary,
                scheduler,
                fec,
                streams,
            };
            let reports = run_seeds(&cell, scale);
            out.push_str(&format!(
                "{:<4} {:<12} {:>14} {:>12} {:>14} {:>12}\n",
                streams,
                label,
                pm(&metric(&reports, |r| r.normalized_throughput()), 2),
                pm(&metric(&reports, |r| r.normalized_fps()), 2),
                pm(&metric(&reports, |r| r.avg_freeze_ms()), 0),
                pm(&metric(&reports, |r| r.normalized_qp()), 2),
            ));
        }
        out.push('\n');
    }
    out.push_str("# paper shape: Converge beats WebRTC-W on throughput by ~41% and\n");
    out.push_str("# WebRTC-T by ~2.7x by aggregating the two stable paths; FPS gains\n");
    out.push_str("# are small because WiFi alone already sustains 30 FPS.\n");
    out
}

/// Table 6: stationary E2E latency, FEC overhead, FEC utilization.
pub fn run_table6(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Table 6 — stationary E2E (ms), FEC overhead (%), FEC utilization (%)\n");
    out.push_str(&format!(
        "{:<4} {:<12} {:>16} {:>16} {:>16}\n",
        "#", "system", "e2e_ms", "fec_ovh_%", "fec_util_%"
    ));
    for streams in 1..=3u8 {
        for (label, scheduler, fec) in systems() {
            let cell = Cell {
                scenario: ScenarioConfig::stationary,
                scheduler,
                fec,
                streams,
            };
            let reports = run_seeds(&cell, scale);
            out.push_str(&format!(
                "{:<4} {:<12} {:>16} {:>16} {:>16}\n",
                streams,
                label,
                pm(&metric(&reports, |r| r.e2e_mean_ms), 0),
                pm(&metric(&reports, |r| r.fec_overhead_pct()), 2),
                pm(&metric(&reports, |r| r.fec_utilization_pct()), 1),
            ));
        }
    }
    out.push_str("# paper shape: E2E within ~10% of WebRTC-W (Converge carries more\n");
    out.push_str("# data); FEC overhead minimal for everyone, lowest for Converge,\n");
    out.push_str("# with better utilization.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_converge_aggregates_paths() {
        // 60 s runs: GCC needs ~15 s to converge, which dominates shorter
        // quick-scale runs.
        let duration = converge_net::SimDuration::from_secs(60);
        let conv = crate::runner::run_once(
            &Cell {
                scenario: ScenarioConfig::stationary,
                scheduler: SchedulerKind::Converge,
                fec: FecKind::Converge,
                streams: 3,
            },
            duration,
            42,
        );
        let cellular = crate::runner::run_once(
            &Cell {
                scenario: ScenarioConfig::stationary,
                scheduler: SchedulerKind::SinglePath(1),
                fec: FecKind::WebRtcTable,
                streams: 3,
            },
            duration,
            42,
        );
        assert!(
            conv.throughput_bps > cellular.throughput_bps * 1.3,
            "Converge {:.1} Mbps should clearly beat cellular-only {:.1} Mbps",
            conv.throughput_bps / 1e6,
            cellular.throughput_bps / 1e6
        );
    }
}
