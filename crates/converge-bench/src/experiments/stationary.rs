//! Figs. 16–17 and Table 6 — the stationary (appendix A) evaluation:
//! Converge vs single-path WebRTC on stable WiFi + cellular.

use converge_sim::{FecKind, SchedulerKind};

use crate::runner::{metric, pm, Cell, Job, Scale, ScenarioSpec};
use crate::sweep::{ExperimentSpec, Reports};

fn systems() -> Vec<(&'static str, SchedulerKind, FecKind)> {
    vec![
        (
            "WebRTC-W",
            SchedulerKind::SinglePath(0),
            FecKind::WebRtcTable,
        ),
        (
            "WebRTC-T",
            SchedulerKind::SinglePath(1),
            FecKind::WebRtcTable,
        ),
        ("Converge", SchedulerKind::Converge, FecKind::Converge),
    ]
}

fn stationary_cell(scheduler: SchedulerKind, fec: FecKind, streams: u8) -> Cell {
    Cell::new(ScenarioSpec::Stationary, scheduler, fec, streams)
}

/// Declares Fig. 16: one seed-42 call per system.
pub fn spec_fig16(scale: Scale) -> ExperimentSpec {
    let jobs = systems()
        .into_iter()
        .map(|(_, scheduler, fec)| {
            Job::new(stationary_cell(scheduler, fec, 1), scale.duration(), 42)
        })
        .collect();
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Fig. 16 — stationary time series\n");
            out.push_str("# columns: t_s system tput_mbps fps e2e_ms\n");
            for (label, _, _) in systems() {
                let rep = r.one();
                for (i, bin) in rep.bins.iter().enumerate() {
                    out.push_str(&format!(
                        "{i} {label} {:.2} {} {:.0}\n",
                        bin.throughput_bps() / 1e6,
                        bin.frames_decoded,
                        bin.e2e_ms().unwrap_or(0.0)
                    ));
                }
            }
            out.push_str("# paper shape: on stable WiFi, Converge ~= WebRTC-W at ~10 Mbps and\n");
            out.push_str("# ~30 FPS; WebRTC-T is capacity-limited below both.\n");
            out
        }),
    }
}

/// Fig. 16: stationary time series (throughput, FPS, E2E).
pub fn run_fig16(scale: Scale) -> String {
    crate::sweep::render(spec_fig16(scale), crate::sweep::CellCache::global())
}

/// Declares Fig. 17: every system × 1–3 streams × every seed.
pub fn spec_fig17(scale: Scale) -> ExperimentSpec {
    let mut jobs = Vec::new();
    for streams in 1..=3u8 {
        for (_, scheduler, fec) in systems() {
            for &seed in scale.seeds() {
                jobs.push(Job::new(
                    stationary_cell(scheduler, fec, streams),
                    scale.duration(),
                    seed,
                ));
            }
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Fig. 17 — stationary normalized QoE, 1-3 streams\n");
            out.push_str(&format!(
                "{:<4} {:<12} {:>14} {:>12} {:>14} {:>12}\n",
                "#", "system", "norm_tput", "norm_fps", "avg_stall_ms", "norm_qp"
            ));
            for streams in 1..=3u8 {
                for (label, _, _) in systems() {
                    let reports = r.take(scale.seeds().len());
                    out.push_str(&format!(
                        "{:<4} {:<12} {:>14} {:>12} {:>14} {:>12}\n",
                        streams,
                        label,
                        pm(&metric(reports, |r| r.normalized_throughput()), 2),
                        pm(&metric(reports, |r| r.normalized_fps()), 2),
                        pm(&metric(reports, |r| r.avg_freeze_ms()), 0),
                        pm(&metric(reports, |r| r.normalized_qp()), 2),
                    ));
                }
                out.push('\n');
            }
            out.push_str("# paper shape: Converge beats WebRTC-W on throughput by ~41% and\n");
            out.push_str("# WebRTC-T by ~2.7x by aggregating the two stable paths; FPS gains\n");
            out.push_str("# are small because WiFi alone already sustains 30 FPS.\n");
            out
        }),
    }
}

/// Fig. 17: normalized QoE bars for 1–3 camera streams.
pub fn run_fig17(scale: Scale) -> String {
    crate::sweep::render(spec_fig17(scale), crate::sweep::CellCache::global())
}

/// Declares Table 6: the same cells as Fig. 17 — free under a shared
/// sweep cache.
pub fn spec_table6(scale: Scale) -> ExperimentSpec {
    let mut jobs = Vec::new();
    for streams in 1..=3u8 {
        for (_, scheduler, fec) in systems() {
            for &seed in scale.seeds() {
                jobs.push(Job::new(
                    stationary_cell(scheduler, fec, streams),
                    scale.duration(),
                    seed,
                ));
            }
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str(
                "# Table 6 — stationary E2E (ms), FEC overhead (%), FEC utilization (%)\n",
            );
            out.push_str(&format!(
                "{:<4} {:<12} {:>16} {:>16} {:>16}\n",
                "#", "system", "e2e_ms", "fec_ovh_%", "fec_util_%"
            ));
            for streams in 1..=3u8 {
                for (label, _, _) in systems() {
                    let reports = r.take(scale.seeds().len());
                    out.push_str(&format!(
                        "{:<4} {:<12} {:>16} {:>16} {:>16}\n",
                        streams,
                        label,
                        pm(&metric(reports, |r| r.e2e_mean_ms), 0),
                        pm(&metric(reports, |r| r.fec_overhead_pct()), 2),
                        pm(&metric(reports, |r| r.fec_utilization_pct()), 1),
                    ));
                }
            }
            out.push_str("# paper shape: E2E within ~10% of WebRTC-W (Converge carries more\n");
            out.push_str("# data); FEC overhead minimal for everyone, lowest for Converge,\n");
            out.push_str("# with better utilization.\n");
            out
        }),
    }
}

/// Table 6: stationary E2E latency, FEC overhead, FEC utilization.
pub fn run_table6(scale: Scale) -> String {
    crate::sweep::render(spec_table6(scale), crate::sweep::CellCache::global())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_converge_aggregates_paths() {
        // 60 s runs: GCC needs ~15 s to converge, which dominates shorter
        // quick-scale runs.
        let duration = converge_net::SimDuration::from_secs(60);
        let conv = crate::runner::run_once(
            crate::sweep::CellCache::global(),
            &stationary_cell(SchedulerKind::Converge, FecKind::Converge, 3),
            duration,
            42,
        );
        let cellular = crate::runner::run_once(
            crate::sweep::CellCache::global(),
            &stationary_cell(SchedulerKind::SinglePath(1), FecKind::WebRtcTable, 3),
            duration,
            42,
        );
        assert!(
            conv.throughput_bps > cellular.throughput_bps * 1.3,
            "Converge {:.1} Mbps should clearly beat cellular-only {:.1} Mbps",
            conv.throughput_bps / 1e6,
            cellular.throughput_bps / 1e6
        );
    }
}
