//! Fig. 1 — motivation: single-path WebRTC FPS and E2E latency collapse
//! under driving-grade cellular bandwidth variation.

use converge_sim::{FecKind, ScenarioConfig, SchedulerKind};

use crate::runner::{Cell, Job, Scale, ScenarioSpec};
use crate::sweep::{ExperimentSpec, Reports};

/// Declares the two single-path calls (one per carrier) of Fig. 1.
pub fn spec(scale: Scale) -> ExperimentSpec {
    let duration = scale.duration();
    let seed = 42;
    let cell_a = Cell::new(
        ScenarioSpec::Driving,
        SchedulerKind::SinglePath(1), // "T-Mobile"-like path
        FecKind::WebRtcTable,
        1,
    );
    let cell_b = Cell::new(
        ScenarioSpec::Driving,
        SchedulerKind::SinglePath(0), // "Verizon"-like path
        FecKind::WebRtcTable,
        1,
    );
    ExperimentSpec {
        jobs: vec![
            Job::new(cell_a, duration, seed),
            Job::new(cell_b, duration, seed),
        ],
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let ra = r.one();
            let rb = r.one();
            let scenario = ScenarioConfig::driving(duration, seed);

            let mut out = String::new();
            out.push_str("# Fig. 1 — WebRTC degrades under cellular bandwidth variation\n");
            out.push_str("# columns: t_s carrierA_mbps carrierB_mbps fpsA fpsB e2eA_ms e2eB_ms\n");
            for (i, (ba, bb)) in ra.bins.iter().zip(&rb.bins).enumerate() {
                let t = converge_net::SimTime::from_secs(i as u64);
                let rate_a = scenario.paths[1].rate.rate_at(t) as f64 / 1e6;
                let rate_b = scenario.paths[0].rate.rate_at(t) as f64 / 1e6;
                out.push_str(&format!(
                    "{i} {rate_a:.2} {rate_b:.2} {} {} {:.0} {:.0}\n",
                    ba.frames_decoded,
                    bb.frames_decoded,
                    ba.e2e_ms().unwrap_or(0.0),
                    bb.e2e_ms().unwrap_or(0.0),
                ));
            }

            let min_fps_a = ra.bins.iter().map(|b| b.frames_decoded).min().unwrap_or(0);
            let min_fps_b = rb.bins.iter().map(|b| b.frames_decoded).min().unwrap_or(0);
            out.push_str(&format!(
                "# summary: carrierA min/avg fps = {}/{:.1}; carrierB min/avg fps = {}/{:.1}\n",
                min_fps_a, ra.fps, min_fps_b, rb.fps
            ));
            out.push_str("# paper shape: FPS repeatedly collapses toward 0 and E2E spikes when\n");
            out.push_str("# the active carrier's bandwidth dips; the dips of the two carriers\n");
            out.push_str("# do not coincide (multipath headroom exists).\n");
            out
        }),
    }
}

/// Regenerates Fig. 1: per-second FPS and E2E for two single-path WebRTC
/// calls (one per carrier), plus the carriers' bandwidth traces.
pub fn run(scale: Scale) -> String {
    crate::sweep::render(spec(scale), crate::sweep::CellCache::global())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shows_fps_variation() {
        // Full scale: the 30 s quick window may fall between coverage gaps.
        let out = run(Scale::Full);
        assert!(out.contains("summary"));
        // At least one second of degraded FPS must appear in driving, on
        // at least one of the two carriers.
        let degraded = out
            .lines()
            .filter(|l| !l.starts_with('#'))
            .filter_map(|l| {
                let mut w = l.split_whitespace();
                let a: u32 = w.nth(3)?.parse().ok()?;
                let b: u32 = w.next()?.parse().ok()?;
                Some(a.min(b))
            })
            .any(|fps| fps < 24);
        assert!(degraded, "expected FPS dips in the driving trace:\n{out}");
    }
}
