//! Design-choice ablations called out in DESIGN.md (beyond the paper's own
//! feedback ablation of Fig. 11): video-aware prioritization on/off, the
//! fast-path selection metric of Algorithm 1 vs simpler criteria, and FEC
//! policy variants including no protection at all.

use converge_sim::{FecKind, ScenarioConfig, SchedulerKind};

use crate::runner::{metric, pm, run_seeds, Cell, Scale};

/// Ablation A: video-awareness. The full scheduler vs the same scheduler
/// with Table-2 priorities disabled, on lossy driving paths where keyframe
/// and control packets landing on a bad path break decode chains.
pub fn run_priority_ablation(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Ablation — video-aware prioritization (driving, 1 stream)\n");
    out.push_str(&format!(
        "{:<26} {:>10} {:>14} {:>14} {:>12}\n",
        "variant", "norm_fps", "kf_requests", "frame_drops", "e2e_ms"
    ));
    for (label, scheduler) in [
        ("priority-on (Converge)", SchedulerKind::Converge),
        ("priority-off", SchedulerKind::ConvergeNoPriority),
    ] {
        let cell = Cell {
            scenario: ScenarioConfig::driving,
            scheduler,
            fec: FecKind::Converge,
            streams: 1,
        };
        let reports = run_seeds(&cell, scale);
        out.push_str(&format!(
            "{:<26} {:>10} {:>14} {:>14} {:>12}\n",
            label,
            pm(&metric(&reports, |r| r.normalized_fps()), 2),
            pm(&metric(&reports, |r| r.keyframe_requests as f64), 1),
            pm(&metric(&reports, |r| r.frames_dropped as f64), 0),
            pm(&metric(&reports, |r| r.e2e_mean_ms), 0),
        ));
    }
    out.push_str("# expectation: without priorities, keyframe/control packets spread\n");
    out.push_str("# onto weak paths and decode chains break more often.\n");
    out
}

/// Ablation B: the fast-path metric of Algorithm 1 (completion time) vs
/// minRTT, on asymmetric paths.
pub fn run_fastpath_ablation(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Ablation — fast-path metric (driving, 1 stream)\n");
    out.push_str(&format!(
        "{:<30} {:>10} {:>14} {:>12}\n",
        "variant", "norm_fps", "avg_stall_ms", "e2e_ms"
    ));
    for (label, scheduler) in [
        ("completion-time (Alg. 1)", SchedulerKind::Converge),
        ("minRTT fast path", SchedulerKind::ConvergeMinRttFast),
    ] {
        let cell = Cell {
            scenario: ScenarioConfig::driving,
            scheduler,
            fec: FecKind::Converge,
            streams: 1,
        };
        let reports = run_seeds(&cell, scale);
        out.push_str(&format!(
            "{:<30} {:>10} {:>14} {:>12}\n",
            label,
            pm(&metric(&reports, |r| r.normalized_fps()), 2),
            pm(&metric(&reports, |r| r.avg_freeze_ms()), 0),
            pm(&metric(&reports, |r| r.e2e_mean_ms), 0),
        ));
    }
    out.push_str("# expectation: minRTT can pick a low-latency thin path that cannot\n");
    out.push_str("# absorb a priority burst; completion time accounts for batch size.\n");
    out
}

/// Ablation C: FEC policy — Converge's path-specific controller vs the
/// WebRTC table vs no FEC, at a fixed moderate loss.
pub fn run_fec_ablation(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Ablation — FEC policy at 3% loss (two 15 Mbps paths)\n");
    out.push_str(&format!(
        "{:<16} {:>10} {:>12} {:>12} {:>12} {:>12}\n",
        "policy", "norm_fps", "fec_ovh_%", "nacks", "rtx", "e2e_ms"
    ));
    for (label, fec) in [
        ("converge", FecKind::Converge),
        ("webrtc-table", FecKind::WebRtcTable),
        ("none", FecKind::None),
    ] {
        let cell = Cell {
            scenario: |_, _| ScenarioConfig::fec_tradeoff(3.0),
            scheduler: SchedulerKind::Converge,
            fec,
            streams: 1,
        };
        let reports = run_seeds(&cell, scale);
        out.push_str(&format!(
            "{:<16} {:>10} {:>12} {:>12} {:>12} {:>12}\n",
            label,
            pm(&metric(&reports, |r| r.normalized_fps()), 2),
            pm(&metric(&reports, |r| r.fec_overhead_pct()), 1),
            pm(&metric(&reports, |r| r.nacks_sent as f64), 0),
            pm(&metric(&reports, |r| r.retransmissions as f64), 0),
            pm(&metric(&reports, |r| r.e2e_mean_ms), 0),
        ));
    }
    out.push_str("# expectation: no FEC leans entirely on NACK/RTX (latency cost);\n");
    out.push_str("# the table overspends; Converge sits between.\n");
    out
}

/// Ablation D: queue discipline at the bottleneck — GCC (and everything
/// above it) under drop-tail vs CoDel on the same constant-rate paths.
pub fn run_aqm_ablation(scale: Scale) -> String {
    use converge_net::QueueDiscipline;
    let mut out = String::new();
    out.push_str("# Ablation - bottleneck queue discipline (two 10 Mbps / 80 ms paths)\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>12} {:>12} {:>12}\n",
        "discipline", "norm_fps", "e2e_ms", "e2e_p95_ms", "tput_mbps"
    ));
    for (label, discipline) in [
        ("drop-tail", QueueDiscipline::DropTail),
        ("codel", QueueDiscipline::codel_default()),
    ] {
        // The Cell fn-pointer API cannot carry a modified scenario, so run
        // the session directly for this ablation.
        let mut scenario = ScenarioConfig::fec_tradeoff(0.0);
        for p in &mut scenario.paths {
            p.rate = converge_net::RateTrace::constant(10_000_000);
            p.propagation = converge_net::SimDuration::from_millis(40);
            p.discipline = discipline.clone();
        }
        let cfg = converge_sim::SessionConfig::paper_default(
            scenario,
            SchedulerKind::Converge,
            FecKind::Converge,
            1,
            scale.duration(),
            42,
        );
        let r = converge_sim::Session::new(cfg).run();
        out.push_str(&format!(
            "{:<12} {:>10.2} {:>12.0} {:>12.0} {:>12.2}\n",
            label,
            r.normalized_fps(),
            r.e2e_mean_ms,
            r.e2e_p95_ms,
            r.throughput_bps / 1e6
        ));
    }
    out.push_str("# expectation: CoDel caps the standing queue, cutting tail latency;\n");
    out.push_str("# GCC's delay-based control keeps drop-tail queues short already, so\n");
    out.push_str("# the gap is modest on clean paths and grows under bursts.\n");
    out
}

/// Ablation E: congestion-controller coupling — the paper's uncoupled
/// per-path GCC vs LIA-style coupled growth, on two independent paths
/// where coupling has nothing to be fair to and only costs throughput.
pub fn run_coupling_ablation(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("# Ablation - CC coupling on two independent 15 Mbps paths\n");
    out.push_str(&format!(
        "{:<12} {:>14} {:>12} {:>10} {:>12}\n",
        "coupling", "ramp_8s_mbps", "tput_mbps", "norm_fps", "e2e_ms"
    ));
    for (label, coupled) in [("uncoupled", false), ("lia-coupled", true)] {
        let mut cfg = converge_sim::SessionConfig::paper_default(
            ScenarioConfig::fec_tradeoff(0.0),
            SchedulerKind::Converge,
            FecKind::Converge,
            1,
            scale.duration(),
            42,
        );
        cfg.coupled_cc = coupled;
        let r = converge_sim::Session::new(cfg).run();
        // Ramp speed: delivered rate over the first 8 seconds, where the
        // dampened growth of coupled subflows shows.
        let ramp_bits: u64 = r.bins[..8.min(r.bins.len())]
            .iter()
            .map(|b| b.media_bits)
            .sum();
        out.push_str(&format!(
            "{:<12} {:>14.2} {:>12.2} {:>10.2} {:>12.0}\n",
            label,
            ramp_bits as f64 / 8.0 / 1e6,
            r.throughput_bps / 1e6,
            r.normalized_fps(),
            r.e2e_mean_ms
        ));
    }
    out.push_str("# finding: on independent paths, coupling never helps; in this GCC\n");
    out.push_str("# the effect is near-zero because the 1.5x-incoming growth gate (not\n");
    out.push_str("# the growth exponent) binds the ramp. Uncoupled is strictly simpler\n");
    out.push_str("# at no cost, supporting the paper's section 4.1 choice.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::mean_std;

    #[test]
    fn no_fec_needs_more_retransmissions() {
        let run = |fec| {
            let cell = Cell {
                scenario: |_, _| ScenarioConfig::fec_tradeoff(3.0),
                scheduler: SchedulerKind::Converge,
                fec,
                streams: 1,
            };
            run_seeds(&cell, Scale::Quick)
        };
        let none = run(FecKind::None);
        let conv = run(FecKind::Converge);
        let (none_rtx, _) = mean_std(&metric(&none, |r| r.retransmissions as f64));
        let (conv_rtx, _) = mean_std(&metric(&conv, |r| r.retransmissions as f64));
        assert!(
            none_rtx > conv_rtx,
            "no-FEC rtx {none_rtx} should exceed Converge-FEC rtx {conv_rtx}"
        );
    }

    #[test]
    fn coupled_cc_converges_no_faster_than_uncoupled() {
        let run = |coupled: bool| {
            let mut cfg = converge_sim::SessionConfig::paper_default(
                ScenarioConfig::fec_tradeoff(0.0),
                SchedulerKind::Converge,
                FecKind::Converge,
                1,
                converge_net::SimDuration::from_secs(15),
                4,
            );
            cfg.coupled_cc = coupled;
            converge_sim::Session::new(cfg).run()
        };
        let uncoupled = run(false);
        let coupled = run(true);
        // Early-call throughput (ramp speed) must not favour coupling.
        let early = |r: &converge_sim::CallReport| -> u64 {
            r.bins[..8].iter().map(|b| b.media_bits).sum()
        };
        assert!(
            early(&coupled) <= early(&uncoupled),
            "coupled ramp {} should not beat uncoupled {}",
            early(&coupled),
            early(&uncoupled)
        );
    }

    #[test]
    fn ablated_schedulers_still_function() {
        for scheduler in [
            SchedulerKind::ConvergeNoPriority,
            SchedulerKind::ConvergeMinRttFast,
        ] {
            let cell = Cell {
                scenario: |_, _| ScenarioConfig::fec_tradeoff(0.0),
                scheduler,
                fec: FecKind::Converge,
                streams: 1,
            };
            let r = crate::runner::run_once(&cell, converge_net::SimDuration::from_secs(10), 3);
            assert!(
                r.frames_decoded > 100,
                "{}: {} frames",
                scheduler.label(),
                r.frames_decoded
            );
        }
    }
}
