//! Design-choice ablations called out in DESIGN.md (beyond the paper's own
//! feedback ablation of Fig. 11): video-aware prioritization on/off, the
//! fast-path selection metric of Algorithm 1 vs simpler criteria, and FEC
//! policy variants including no protection at all.

use converge_sim::{FecKind, SchedulerKind};

use crate::runner::{metric, pm, Cell, Job, Scale, ScenarioSpec};
use crate::sweep::{ExperimentSpec, Reports};

/// Declares ablation A: video-awareness on/off, every seed.
pub fn spec_priority(scale: Scale) -> ExperimentSpec {
    let variants = [
        ("priority-on (Converge)", SchedulerKind::Converge),
        ("priority-off", SchedulerKind::ConvergeNoPriority),
    ];
    let mut jobs = Vec::new();
    for (_, scheduler) in variants {
        let cell = Cell::new(ScenarioSpec::Driving, scheduler, FecKind::Converge, 1);
        for &seed in scale.seeds() {
            jobs.push(Job::new(cell, scale.duration(), seed));
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Ablation — video-aware prioritization (driving, 1 stream)\n");
            out.push_str(&format!(
                "{:<26} {:>10} {:>14} {:>14} {:>12}\n",
                "variant", "norm_fps", "kf_requests", "frame_drops", "e2e_ms"
            ));
            for (label, _) in variants {
                let reports = r.take(scale.seeds().len());
                out.push_str(&format!(
                    "{:<26} {:>10} {:>14} {:>14} {:>12}\n",
                    label,
                    pm(&metric(reports, |r| r.normalized_fps()), 2),
                    pm(&metric(reports, |r| r.keyframe_requests as f64), 1),
                    pm(&metric(reports, |r| r.frames_dropped as f64), 0),
                    pm(&metric(reports, |r| r.e2e_mean_ms), 0),
                ));
            }
            out.push_str("# expectation: without priorities, keyframe/control packets spread\n");
            out.push_str("# onto weak paths and decode chains break more often.\n");
            out
        }),
    }
}

/// Ablation A: video-awareness. The full scheduler vs the same scheduler
/// with Table-2 priorities disabled, on lossy driving paths where keyframe
/// and control packets landing on a bad path break decode chains.
pub fn run_priority_ablation(scale: Scale) -> String {
    crate::sweep::render(spec_priority(scale), crate::sweep::CellCache::global())
}

/// Declares ablation B: completion-time vs minRTT fast path, every seed.
pub fn spec_fastpath(scale: Scale) -> ExperimentSpec {
    let variants = [
        ("completion-time (Alg. 1)", SchedulerKind::Converge),
        ("minRTT fast path", SchedulerKind::ConvergeMinRttFast),
    ];
    let mut jobs = Vec::new();
    for (_, scheduler) in variants {
        let cell = Cell::new(ScenarioSpec::Driving, scheduler, FecKind::Converge, 1);
        for &seed in scale.seeds() {
            jobs.push(Job::new(cell, scale.duration(), seed));
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Ablation — fast-path metric (driving, 1 stream)\n");
            out.push_str(&format!(
                "{:<30} {:>10} {:>14} {:>12}\n",
                "variant", "norm_fps", "avg_stall_ms", "e2e_ms"
            ));
            for (label, _) in variants {
                let reports = r.take(scale.seeds().len());
                out.push_str(&format!(
                    "{:<30} {:>10} {:>14} {:>12}\n",
                    label,
                    pm(&metric(reports, |r| r.normalized_fps()), 2),
                    pm(&metric(reports, |r| r.avg_freeze_ms()), 0),
                    pm(&metric(reports, |r| r.e2e_mean_ms), 0),
                ));
            }
            out.push_str("# expectation: minRTT can pick a low-latency thin path that cannot\n");
            out.push_str("# absorb a priority burst; completion time accounts for batch size.\n");
            out
        }),
    }
}

/// Ablation B: the fast-path metric of Algorithm 1 (completion time) vs
/// minRTT, on asymmetric paths.
pub fn run_fastpath_ablation(scale: Scale) -> String {
    crate::sweep::render(spec_fastpath(scale), crate::sweep::CellCache::global())
}

/// Declares ablation C: three FEC policies at 3 % loss, every seed.
pub fn spec_fec(scale: Scale) -> ExperimentSpec {
    let policies = [
        ("converge", FecKind::Converge),
        ("webrtc-table", FecKind::WebRtcTable),
        ("none", FecKind::None),
    ];
    let mut jobs = Vec::new();
    for (_, fec) in policies {
        let cell = Cell::new(
            ScenarioSpec::fec_tradeoff_pct(3.0),
            SchedulerKind::Converge,
            fec,
            1,
        );
        for &seed in scale.seeds() {
            jobs.push(Job::new(cell, scale.duration(), seed));
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Ablation — FEC policy at 3% loss (two 15 Mbps paths)\n");
            out.push_str(&format!(
                "{:<16} {:>10} {:>12} {:>12} {:>12} {:>12}\n",
                "policy", "norm_fps", "fec_ovh_%", "nacks", "rtx", "e2e_ms"
            ));
            for (label, _) in policies {
                let reports = r.take(scale.seeds().len());
                out.push_str(&format!(
                    "{:<16} {:>10} {:>12} {:>12} {:>12} {:>12}\n",
                    label,
                    pm(&metric(reports, |r| r.normalized_fps()), 2),
                    pm(&metric(reports, |r| r.fec_overhead_pct()), 1),
                    pm(&metric(reports, |r| r.nacks_sent as f64), 0),
                    pm(&metric(reports, |r| r.retransmissions as f64), 0),
                    pm(&metric(reports, |r| r.e2e_mean_ms), 0),
                ));
            }
            out.push_str("# expectation: no FEC leans entirely on NACK/RTX (latency cost);\n");
            out.push_str("# the table overspends; Converge sits between.\n");
            out
        }),
    }
}

/// Ablation C: FEC policy — Converge's path-specific controller vs the
/// WebRTC table vs no FEC, at a fixed moderate loss.
pub fn run_fec_ablation(scale: Scale) -> String {
    crate::sweep::render(spec_fec(scale), crate::sweep::CellCache::global())
}

/// Declares ablation D: drop-tail vs CoDel at the bottleneck, seed 42.
/// `ScenarioSpec::AqmTuned` carries the modified scenario declaratively,
/// so these cells memoize like any other.
pub fn spec_aqm(scale: Scale) -> ExperimentSpec {
    let variants = [("drop-tail", false), ("codel", true)];
    let jobs = variants
        .iter()
        .map(|&(_, codel)| {
            let cell = Cell::new(
                ScenarioSpec::AqmTuned { codel },
                SchedulerKind::Converge,
                FecKind::Converge,
                1,
            );
            Job::new(cell, scale.duration(), 42)
        })
        .collect();
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Ablation - bottleneck queue discipline (two 10 Mbps / 80 ms paths)\n");
            out.push_str(&format!(
                "{:<12} {:>10} {:>12} {:>12} {:>12}\n",
                "discipline", "norm_fps", "e2e_ms", "e2e_p95_ms", "tput_mbps"
            ));
            for (label, _) in variants {
                let rep = r.one();
                out.push_str(&format!(
                    "{:<12} {:>10.2} {:>12.0} {:>12.0} {:>12.2}\n",
                    label,
                    rep.normalized_fps(),
                    rep.e2e_mean_ms,
                    rep.e2e_p95_ms,
                    rep.throughput_bps / 1e6
                ));
            }
            out.push_str("# expectation: CoDel caps the standing queue, cutting tail latency;\n");
            out.push_str("# GCC's delay-based control keeps drop-tail queues short already, so\n");
            out.push_str("# the gap is modest on clean paths and grows under bursts.\n");
            out
        }),
    }
}

/// Ablation D: queue discipline at the bottleneck — GCC (and everything
/// above it) under drop-tail vs CoDel on the same constant-rate paths.
pub fn run_aqm_ablation(scale: Scale) -> String {
    crate::sweep::render(spec_aqm(scale), crate::sweep::CellCache::global())
}

/// Declares ablation E: uncoupled vs LIA-coupled CC, seed 42. The
/// `Cell::coupled_cc` knob keeps these cells declarative and cacheable.
pub fn spec_coupling(scale: Scale) -> ExperimentSpec {
    let variants = [("uncoupled", false), ("lia-coupled", true)];
    let jobs = variants
        .iter()
        .map(|&(_, coupled)| {
            let mut cell = Cell::new(
                ScenarioSpec::fec_tradeoff_pct(0.0),
                SchedulerKind::Converge,
                FecKind::Converge,
                1,
            );
            cell.coupled_cc = coupled;
            Job::new(cell, scale.duration(), 42)
        })
        .collect();
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Ablation - CC coupling on two independent 15 Mbps paths\n");
            out.push_str(&format!(
                "{:<12} {:>14} {:>12} {:>10} {:>12}\n",
                "coupling", "ramp_8s_mbps", "tput_mbps", "norm_fps", "e2e_ms"
            ));
            for (label, _) in variants {
                let rep = r.one();
                // Ramp speed: delivered rate over the first 8 seconds, where
                // the dampened growth of coupled subflows shows.
                let ramp_bits: u64 = rep.bins[..8.min(rep.bins.len())]
                    .iter()
                    .map(|b| b.media_bits)
                    .sum();
                out.push_str(&format!(
                    "{:<12} {:>14.2} {:>12.2} {:>10.2} {:>12.0}\n",
                    label,
                    ramp_bits as f64 / 8.0 / 1e6,
                    rep.throughput_bps / 1e6,
                    rep.normalized_fps(),
                    rep.e2e_mean_ms
                ));
            }
            out.push_str("# finding: on independent paths, coupling never helps; in this GCC\n");
            out.push_str("# the effect is near-zero because the 1.5x-incoming growth gate (not\n");
            out.push_str("# the growth exponent) binds the ramp. Uncoupled is strictly simpler\n");
            out.push_str("# at no cost, supporting the paper's section 4.1 choice.\n");
            out
        }),
    }
}

/// Ablation E: congestion-controller coupling — the paper's uncoupled
/// per-path GCC vs LIA-style coupled growth, on two independent paths
/// where coupling has nothing to be fair to and only costs throughput.
pub fn run_coupling_ablation(scale: Scale) -> String {
    crate::sweep::render(spec_coupling(scale), crate::sweep::CellCache::global())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{mean_std, run_once, run_seeds};

    #[test]
    fn no_fec_needs_more_retransmissions() {
        let run = |fec| {
            let cell = Cell::new(
                ScenarioSpec::fec_tradeoff_pct(3.0),
                SchedulerKind::Converge,
                fec,
                1,
            );
            run_seeds(crate::sweep::CellCache::global(), &cell, Scale::Quick)
        };
        let none = run(FecKind::None);
        let conv = run(FecKind::Converge);
        let (none_rtx, _) = mean_std(&metric(&none, |r| r.retransmissions as f64));
        let (conv_rtx, _) = mean_std(&metric(&conv, |r| r.retransmissions as f64));
        assert!(
            none_rtx > conv_rtx,
            "no-FEC rtx {none_rtx} should exceed Converge-FEC rtx {conv_rtx}"
        );
    }

    #[test]
    fn coupled_cc_converges_no_faster_than_uncoupled() {
        let run = |coupled: bool| {
            let mut cell = Cell::new(
                ScenarioSpec::fec_tradeoff_pct(0.0),
                SchedulerKind::Converge,
                FecKind::Converge,
                1,
            );
            cell.coupled_cc = coupled;
            run_once(crate::sweep::CellCache::global(), &cell, converge_net::SimDuration::from_secs(15), 4)
        };
        let uncoupled = run(false);
        let coupled = run(true);
        // Early-call throughput (ramp speed) must not favour coupling.
        let early = |r: &converge_sim::CallReport| -> u64 {
            r.bins[..8].iter().map(|b| b.media_bits).sum()
        };
        assert!(
            early(&coupled) <= early(&uncoupled),
            "coupled ramp {} should not beat uncoupled {}",
            early(&coupled),
            early(&uncoupled)
        );
    }

    #[test]
    fn ablated_schedulers_still_function() {
        for scheduler in [
            SchedulerKind::ConvergeNoPriority,
            SchedulerKind::ConvergeMinRttFast,
        ] {
            let cell = Cell::new(
                ScenarioSpec::fec_tradeoff_pct(0.0),
                scheduler,
                FecKind::Converge,
                1,
            );
            let r = run_once(crate::sweep::CellCache::global(), &cell, converge_net::SimDuration::from_secs(10), 3);
            assert!(
                r.frames_decoded > 100,
                "{}: {} frames",
                scheduler.label(),
                r.frames_decoded
            );
        }
    }
}
