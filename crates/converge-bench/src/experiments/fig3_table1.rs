//! Fig. 3 and Table 1 — WebRTC vs multipath WebRTC variants vs Converge,
//! 1–3 camera streams on the emulated driving traces: normalized FPS,
//! average freeze duration, FEC overhead (Fig. 3a–c); frame drops and
//! keyframe requests (Table 1). Both come from the same runs, so one spec
//! emits the combined report.

use converge_sim::{FecKind, SchedulerKind};

use crate::runner::{metric, pm, Cell, Job, Scale, ScenarioSpec};
use crate::sweep::{ExperimentSpec, Reports};

/// The systems Fig. 3 compares, with their FEC policies.
pub fn systems() -> Vec<(SchedulerKind, FecKind)> {
    vec![
        (SchedulerKind::SinglePath(1), FecKind::WebRtcTable),
        (SchedulerKind::MRtp, FecKind::WebRtcTable),
        (SchedulerKind::MTput, FecKind::WebRtcTable),
        (SchedulerKind::Srtt, FecKind::WebRtcTable),
        (SchedulerKind::Converge, FecKind::Converge),
    ]
}

/// Declares the Fig. 3 / Table 1 sweep: every system × 1–3 streams ×
/// every seed of the scale.
pub fn spec(scale: Scale) -> ExperimentSpec {
    let mut jobs = Vec::new();
    for streams in 1..=3u8 {
        for (scheduler, fec) in systems() {
            let cell = Cell::new(ScenarioSpec::Driving, scheduler, fec, streams);
            for &seed in scale.seeds() {
                jobs.push(Job::new(cell, scale.duration(), seed));
            }
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Fig. 3 / Table 1 — driving, 1-3 camera streams\n");
            out.push_str(&format!(
                "{:<12} {:>8} {:>14} {:>16} {:>14} {:>18} {:>14}\n",
                "system",
                "streams",
                "norm_fps",
                "avg_freeze_ms",
                "fec_ovh_%",
                "frame_drops",
                "kf_requests"
            ));
            for streams in 1..=3u8 {
                for (scheduler, _fec) in systems() {
                    let reports = r.take(scale.seeds().len());
                    out.push_str(&format!(
                        "{:<12} {:>8} {:>14} {:>16} {:>14} {:>18} {:>14}\n",
                        scheduler.label(),
                        streams,
                        pm(&metric(reports, |r| r.normalized_fps()), 2),
                        pm(&metric(reports, |r| r.avg_freeze_ms()), 0),
                        pm(&metric(reports, |r| r.fec_overhead_pct()), 1),
                        pm(&metric(reports, |r| r.frames_dropped as f64), 0),
                        pm(&metric(reports, |r| r.keyframe_requests as f64), 1),
                    ));
                }
                out.push('\n');
            }
            out.push_str("# paper shape: multipath variants drop FPS below single-path WebRTC,\n");
            out.push_str("# freeze longer, carry far more FEC, drop ~10x the frames and request\n");
            out.push_str("# more keyframes; Converge matches WebRTC's drops with the best FPS.\n");
            out
        }),
    }
}

/// Regenerates Fig. 3 (a: normalized FPS, b: freeze duration, c: FEC
/// overhead) and Table 1 (frame drops, keyframe requests) in one pass.
pub fn run(scale: Scale) -> String {
    crate::sweep::render(spec(scale), crate::sweep::CellCache::global())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{mean_std, run_seeds};

    #[test]
    fn converge_beats_naive_multipath_on_fps() {
        let mk = |scheduler, fec| Cell::new(ScenarioSpec::Driving, scheduler, fec, 1);
        let conv = run_seeds(
            crate::sweep::CellCache::global(),
            &mk(SchedulerKind::Converge, FecKind::Converge),
            Scale::Quick,
        );
        let mrtp = run_seeds(crate::sweep::CellCache::global(), &mk(SchedulerKind::MRtp, FecKind::WebRtcTable), Scale::Quick);
        let (conv_fps, _) = mean_std(&metric(&conv, |r| r.fps));
        let (mrtp_fps, _) = mean_std(&metric(&mrtp, |r| r.fps));
        assert!(
            conv_fps >= mrtp_fps * 0.95,
            "Converge {conv_fps} should not lose to M-RTP {mrtp_fps}"
        );
        let (conv_fec, _) = mean_std(&metric(&conv, |r| r.fec_overhead_pct()));
        let (mrtp_fec, _) = mean_std(&metric(&mrtp, |r| r.fec_overhead_pct()));
        assert!(
            conv_fec < mrtp_fec,
            "Converge FEC {conv_fec}% must undercut M-RTP {mrtp_fec}%"
        );
    }
}
