//! One regenerator per table/figure of the paper's evaluation. Each module
//! exposes a `spec*` function declaring its jobs plus a fold that renders
//! the printable report, and a `run*` wrapper for direct use. The
//! `experiments` binary hands the specs to the sweep engine
//! ([`crate::sweep`]), which executes the union of all jobs on a
//! work-stealing pool with cross-experiment memoization.

pub mod ablations;
pub mod chaos;
pub mod drive;
pub mod fec_tradeoff;
pub mod fig1;
pub mod fig11_table4;
pub mod fig14_15;
pub mod fig3_table1;
pub mod fig9_10_table3;
pub mod fleet;
pub mod shootout;
pub mod stationary;
pub mod traces;

use crate::runner::Scale;
use crate::sweep::ExperimentSpec;

/// One registry entry: an experiment ID (plus aliases that resolve to the
/// same runs, like `table1` → `fig3`) and its declarative spec.
pub struct ExperimentDef {
    /// Primary experiment ID.
    pub id: &'static str,
    /// Alternate IDs producing the same report (shared runs).
    pub aliases: &'static [&'static str],
    /// One-line description for `experiments list`.
    pub desc: &'static str,
    /// Builds the job list + fold at a given scale.
    pub spec: fn(Scale) -> ExperimentSpec,
}

impl ExperimentDef {
    /// Whether `target` names this experiment (by ID or alias).
    pub fn matches(&self, target: &str) -> bool {
        self.id == target || self.aliases.contains(&target)
    }
}

/// Every experiment, in report order. `fig3` carries the `table1` alias —
/// both come from the same cells, so one spec emits the combined report
/// and `all` schedules it exactly once.
pub fn registry() -> Vec<ExperimentDef> {
    vec![
        ExperimentDef {
            id: "fig1",
            aliases: &[],
            desc: "WebRTC degradation under cellular variation",
            spec: fig1::spec,
        },
        ExperimentDef {
            id: "fig3",
            aliases: &["table1"],
            desc: "FPS/freeze/FEC + drops/keyframes vs variants, 1-3 streams",
            spec: fig3_table1::spec,
        },
        ExperimentDef {
            id: "fig9",
            aliases: &[],
            desc: "walking/driving time series",
            spec: fig9_10_table3::spec_fig9,
        },
        ExperimentDef {
            id: "fig10",
            aliases: &[],
            desc: "normalized QoE bars",
            spec: fig9_10_table3::spec_fig10,
        },
        ExperimentDef {
            id: "table3",
            aliases: &[],
            desc: "E2E / FEC overhead / FEC utilization",
            spec: fig9_10_table3::spec_table3,
        },
        ExperimentDef {
            id: "fig11",
            aliases: &[],
            desc: "QoE feedback ablation time series",
            spec: fig11_table4::spec_fig11,
        },
        ExperimentDef {
            id: "table4",
            aliases: &[],
            desc: "QoE feedback ablation summary",
            spec: fig11_table4::spec_table4,
        },
        ExperimentDef {
            id: "fig12",
            aliases: &[],
            desc: "FEC overhead & utilization vs loss",
            spec: fec_tradeoff::spec_fig12,
        },
        ExperimentDef {
            id: "fig13",
            aliases: &[],
            desc: "throughput vs E2E delay trade-off",
            spec: fec_tradeoff::spec_fig13,
        },
        ExperimentDef {
            id: "table5",
            aliases: &[],
            desc: "% QoE improvement vs loss rate",
            spec: fec_tradeoff::spec_table5,
        },
        ExperimentDef {
            id: "fig14",
            aliases: &[],
            desc: "driving comparison vs all systems",
            spec: fig14_15::spec_fig14,
        },
        ExperimentDef {
            id: "fig14c",
            aliases: &[],
            desc: "E2E latency CDF",
            spec: fig14_15::spec_fig14c,
        },
        ExperimentDef {
            id: "fig15",
            aliases: &[],
            desc: "PSNR comparison",
            spec: fig14_15::spec_fig15,
        },
        ExperimentDef {
            id: "fig16",
            aliases: &[],
            desc: "stationary time series",
            spec: stationary::spec_fig16,
        },
        ExperimentDef {
            id: "fig17",
            aliases: &[],
            desc: "stationary normalized QoE",
            spec: stationary::spec_fig17,
        },
        ExperimentDef {
            id: "table6",
            aliases: &[],
            desc: "stationary E2E / FEC",
            spec: stationary::spec_table6,
        },
        ExperimentDef {
            id: "traces",
            aliases: &[],
            desc: "Figs. 20-22 bandwidth dynamics",
            spec: traces::spec,
        },
        ExperimentDef {
            id: "abl-priority",
            aliases: &[],
            desc: "ablation: video-aware prioritization",
            spec: ablations::spec_priority,
        },
        ExperimentDef {
            id: "abl-fastpath",
            aliases: &[],
            desc: "ablation: fast-path metric",
            spec: ablations::spec_fastpath,
        },
        ExperimentDef {
            id: "abl-fec",
            aliases: &[],
            desc: "ablation: FEC policy incl. none",
            spec: ablations::spec_fec,
        },
        ExperimentDef {
            id: "abl-aqm",
            aliases: &[],
            desc: "ablation: bottleneck queue discipline",
            spec: ablations::spec_aqm,
        },
        ExperimentDef {
            id: "abl-coupling",
            aliases: &[],
            desc: "ablation: coupled vs uncoupled per-path CC",
            spec: ablations::spec_coupling,
        },
        ExperimentDef {
            id: "chaos",
            aliases: &[],
            desc: "fault-injection matrix: scheduler x impairment x seed",
            spec: chaos::spec,
        },
        ExperimentDef {
            id: "shootout",
            aliases: &[],
            desc: "controller shootout: GCC vs NADA vs mp-BBR",
            spec: shootout::spec,
        },
        ExperimentDef {
            id: "drive",
            aliases: &[],
            desc: "drive replay: 4-8 path fixtures x scheduler x controller",
            spec: drive::spec,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_and_aliases_are_unique() {
        let defs = registry();
        let mut names = std::collections::HashSet::new();
        for def in &defs {
            assert!(names.insert(def.id), "duplicate id {}", def.id);
            for alias in def.aliases {
                assert!(names.insert(alias), "duplicate alias {alias}");
            }
        }
        // table1 resolves to fig3's combined spec, not a second entry.
        assert!(names.contains("table1"));
        assert_eq!(defs.iter().filter(|d| d.matches("table1")).count(), 1);
        assert!(defs.iter().find(|d| d.matches("table1")).unwrap().id == "fig3");
    }

    #[test]
    fn every_spec_declares_valid_jobs() {
        for def in registry() {
            let spec = (def.spec)(Scale::Quick);
            for job in &spec.jobs {
                assert!(!job.fingerprint().is_empty(), "{}", def.id);
                assert!(job.sim_seconds() > 0.0, "{}", def.id);
            }
        }
    }
}
