//! One regenerator per table/figure of the paper's evaluation. Each module
//! exposes `run*` functions returning printable reports; the `experiments`
//! binary dispatches on experiment IDs.

pub mod ablations;
pub mod fec_tradeoff;
pub mod fig1;
pub mod fig11_table4;
pub mod fig14_15;
pub mod fig3_table1;
pub mod fig9_10_table3;
pub mod stationary;
pub mod traces;

use crate::runner::Scale;

/// An experiment runner: takes the scale, returns the printable report.
pub type ExperimentFn = fn(Scale) -> String;

/// Every experiment ID with its runner and a short description.
pub fn registry() -> Vec<(&'static str, &'static str, ExperimentFn)> {
    vec![
        (
            "fig1",
            "WebRTC degradation under cellular variation",
            fig1::run as fn(Scale) -> String,
        ),
        (
            "fig3",
            "FPS/freeze/FEC vs variants, 1-3 streams",
            fig3_table1::run,
        ),
        (
            "table1",
            "frame drops & keyframe requests (same runs as fig3)",
            fig3_table1::run,
        ),
        (
            "fig9",
            "walking/driving time series",
            fig9_10_table3::run_fig9,
        ),
        ("fig10", "normalized QoE bars", fig9_10_table3::run_fig10),
        (
            "table3",
            "E2E / FEC overhead / FEC utilization",
            fig9_10_table3::run_table3,
        ),
        (
            "fig11",
            "QoE feedback ablation time series",
            fig11_table4::run_fig11,
        ),
        (
            "table4",
            "QoE feedback ablation summary",
            fig11_table4::run_table4,
        ),
        (
            "fig12",
            "FEC overhead & utilization vs loss",
            fec_tradeoff::run_fig12,
        ),
        (
            "fig13",
            "throughput vs E2E delay trade-off",
            fec_tradeoff::run_fig13,
        ),
        (
            "table5",
            "% QoE improvement vs loss rate",
            fec_tradeoff::run_table5,
        ),
        (
            "fig14",
            "driving comparison vs all systems",
            fig14_15::run_fig14,
        ),
        ("fig14c", "E2E latency CDF", fig14_15::run_fig14c),
        ("fig15", "PSNR comparison", fig14_15::run_fig15),
        ("fig16", "stationary time series", stationary::run_fig16),
        ("fig17", "stationary normalized QoE", stationary::run_fig17),
        ("table6", "stationary E2E / FEC", stationary::run_table6),
        ("traces", "Figs. 20-22 bandwidth dynamics", traces::run),
        (
            "abl-priority",
            "ablation: video-aware prioritization",
            ablations::run_priority_ablation,
        ),
        (
            "abl-fastpath",
            "ablation: fast-path metric",
            ablations::run_fastpath_ablation,
        ),
        (
            "abl-fec",
            "ablation: FEC policy incl. none",
            ablations::run_fec_ablation,
        ),
        (
            "abl-aqm",
            "ablation: bottleneck queue discipline",
            ablations::run_aqm_ablation,
        ),
        (
            "abl-coupling",
            "ablation: coupled vs uncoupled per-path CC",
            ablations::run_coupling_ablation,
        ),
    ]
}
