//! Figs. 20–22 — the bandwidth dynamics of the three scenarios
//! (stationary, walking, driving) as synthesized by the trace generator.

use converge_net::{trace, Carrier, Scenario, SimTime};

use crate::runner::Scale;
use crate::sweep::ExperimentSpec;

/// Declares the trace regeneration as a zero-job experiment: synthesis is
/// cheap and deterministic, so there is nothing to farm out to the pool —
/// the fold does all the work.
pub fn spec(scale: Scale) -> ExperimentSpec {
    ExperimentSpec {
        jobs: Vec::new(),
        fold: Box::new(move |_reports| render_traces(scale)),
    }
}

/// Regenerates the bandwidth-dynamics plots: one series per carrier per
/// scenario, sampled at 1 Hz, with summary statistics.
pub fn run(scale: Scale) -> String {
    crate::sweep::render(spec(scale), crate::sweep::CellCache::global())
}

fn render_traces(scale: Scale) -> String {
    let duration = scale.duration();
    let mut out = String::new();
    out.push_str("# Figs. 20-22 — scenario bandwidth dynamics\n");
    for (fig, scenario) in [
        ("fig20-stationary", Scenario::Stationary),
        ("fig21-walking", Scenario::Walking),
        ("fig22-driving", Scenario::Driving),
    ] {
        out.push_str(&format!("## {fig}\n"));
        out.push_str("# columns: t_s wifi_mbps cellA_mbps cellB_mbps combined_cell_mbps\n");
        let wifi = trace::synthesize(scenario, Carrier::Wifi, duration, 42);
        let cell_a = trace::synthesize(scenario, Carrier::CellularA, duration, 42);
        let cell_b = trace::synthesize(scenario, Carrier::CellularB, duration, 42);
        let secs = duration.as_secs_f64() as u64;
        let mut combined_below_10 = 0u64;
        for t in 0..secs {
            let at = SimTime::from_secs(t);
            let w = wifi.rate_at(at) as f64 / 1e6;
            let a = cell_a.rate_at(at) as f64 / 1e6;
            let b = cell_b.rate_at(at) as f64 / 1e6;
            if a + b < 10.0 {
                combined_below_10 += 1;
            }
            out.push_str(&format!("{t} {w:.2} {a:.2} {b:.2} {:.2}\n", a + b));
        }
        out.push_str(&format!(
            "# {fig} summary: wifi mean {:.1} Mbps, cellA mean {:.1} Mbps, cellB mean {:.1} Mbps, combined-cell < 10 Mbps for {combined_below_10}/{secs} s\n",
            wifi.mean_rate() as f64 / 1e6,
            cell_a.mean_rate() as f64 / 1e6,
            cell_b.mean_rate() as f64 / 1e6,
        ));
    }
    out.push_str("# paper shape: stationary traces rarely dip below the required rate;\n");
    out.push_str("# walking dips occasionally; driving varies violently and even the\n");
    out.push_str("# combined cellular rate briefly falls below the demand.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driving_combined_sometimes_insufficient() {
        let out = run(Scale::Quick);
        assert!(out.contains("fig22-driving"));
        // The driving summary line reports the insufficient seconds; at
        // minimum the stationary trace must have fewer such seconds than
        // driving (shape check).
        let grab = |tag: &str| -> u64 {
            out.lines()
                .find(|l| l.starts_with(&format!("# {tag} summary")))
                .and_then(|l| l.split("combined-cell < 10 Mbps for ").nth(1))
                .and_then(|s| s.split('/').next())
                .and_then(|s| s.parse().ok())
                .expect("summary line")
        };
        assert!(grab("fig20-stationary") <= grab("fig22-driving"));
    }
}
