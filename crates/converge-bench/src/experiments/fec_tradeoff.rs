//! Figs. 12–13 and Table 5 — the FEC trade-off study: Converge's
//! path-specific controller vs WebRTC's static table on two 15 Mbps /
//! 100 ms paths, loss swept 0–10 %.

use converge_sim::{FecKind, SchedulerKind};

use crate::runner::{Cell, Job, Scale, ScenarioSpec};
use crate::sweep::{ExperimentSpec, Reports};

fn pair_cell(loss_pct: f64, fec: FecKind) -> Cell {
    Cell::new(
        ScenarioSpec::fec_tradeoff_pct(loss_pct),
        SchedulerKind::Converge,
        fec,
        1,
    )
}

const FIG12_LOSSES: [f64; 7] = [0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 10.0];
const FIG13_LOSSES: [f64; 4] = [1.0, 2.0, 5.0, 10.0];
const POLICIES: [(&str, FecKind); 2] = [
    ("webrtc-table", FecKind::WebRtcTable),
    ("converge", FecKind::Converge),
];

/// Declares Fig. 12: both policies across the loss sweep, seed 7.
pub fn spec_fig12(scale: Scale) -> ExperimentSpec {
    let mut jobs = Vec::new();
    for loss in FIG12_LOSSES {
        for (_, fec) in POLICIES {
            jobs.push(Job::new(pair_cell(loss, fec), scale.duration(), 7));
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Fig. 12 — FEC overhead & utilization vs loss rate\n");
            out.push_str(&format!(
                "{:>6} {:<14} {:>10} {:>10}\n",
                "loss%", "policy", "ovh_%", "util_%"
            ));
            for loss in FIG12_LOSSES {
                for (label, _) in POLICIES {
                    let rep = r.one();
                    out.push_str(&format!(
                        "{:>6.1} {:<14} {:>10.1} {:>10.1}\n",
                        loss,
                        label,
                        rep.fec_overhead_pct(),
                        rep.fec_utilization_pct()
                    ));
                }
            }
            out.push_str("# paper shape: the table sends ~40% overhead at 1% loss with <20%\n");
            out.push_str("# utilization; Converge sends ~5% and uses almost all of it.\n");
            out
        }),
    }
}

/// Fig. 12: FEC overhead and utilization vs loss rate for both policies.
pub fn run_fig12(scale: Scale) -> String {
    crate::sweep::render(spec_fig12(scale), crate::sweep::CellCache::global())
}

/// Declares Fig. 13: both policies at four loss rates, seed 13.
pub fn spec_fig13(scale: Scale) -> ExperimentSpec {
    let mut jobs = Vec::new();
    for loss in FIG13_LOSSES {
        for (_, fec) in POLICIES {
            jobs.push(Job::new(pair_cell(loss, fec), scale.duration(), 13));
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Fig. 13 — throughput vs E2E delay trade-off\n");
            out.push_str("# columns: loss% policy tput_mbps e2e_ms\n");
            for loss in FIG13_LOSSES {
                for (label, _) in POLICIES {
                    let rep = r.one();
                    out.push_str(&format!(
                        "{loss:.0} {label} {:.2} {:.1}\n",
                        rep.throughput_bps / 1e6,
                        rep.e2e_mean_ms
                    ));
                }
            }
            out.push_str("# paper shape: Converge sits in the upper-left (high throughput, low\n");
            out.push_str("# delay); the table pays both throughput and latency for its FEC.\n");
            out
        }),
    }
}

/// Fig. 13: the throughput vs E2E-delay trade-off scatter.
pub fn run_fig13(scale: Scale) -> String {
    crate::sweep::render(spec_fig13(scale), crate::sweep::CellCache::global())
}

/// Declares Table 5: both policies at 1–10 % integer loss rates, seed 21.
pub fn spec_table5(scale: Scale) -> ExperimentSpec {
    let mut jobs = Vec::new();
    for loss in 1..=10u32 {
        jobs.push(Job::new(
            pair_cell(loss as f64, FecKind::WebRtcTable),
            scale.duration(),
            21,
        ));
        jobs.push(Job::new(
            pair_cell(loss as f64, FecKind::Converge),
            scale.duration(),
            21,
        ));
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Table 5 — % improvement, Converge FEC vs WebRTC table FEC\n");
            out.push_str(&format!(
                "{:>6} {:>14} {:>14} {:>14}\n",
                "loss%", "drops_%", "freeze_%", "kf_req_%"
            ));
            let improvement = |base: f64, ours: f64| {
                if base <= 0.0 {
                    0.0
                } else {
                    ((base - ours) / base * 100.0).max(0.0)
                }
            };
            for loss in 1..=10u32 {
                let table = r.one();
                let conv = r.one();
                out.push_str(&format!(
                    "{:>6} {:>14.0} {:>14.0} {:>14.0}\n",
                    loss,
                    improvement(table.frames_dropped as f64, conv.frames_dropped as f64),
                    improvement(table.freeze_total_ms, conv.freeze_total_ms),
                    improvement(
                        table.keyframe_requests as f64,
                        conv.keyframe_requests as f64
                    ),
                ));
            }
            out.push_str("# paper shape: ~90%+ fewer frame drops, ~50% less freezing, and\n");
            out.push_str("# 50-80% fewer keyframe requests across the sweep.\n");
            out
        }),
    }
}

/// Table 5: percentage QoE improvement (frame drops, freeze duration,
/// keyframe requests) of Converge's FEC vs the table at 1–10 % loss.
pub fn run_table5(scale: Scale) -> String {
    crate::sweep::render(spec_table5(scale), crate::sweep::CellCache::global())
}

#[cfg(test)]
mod tests {
    use super::*;
    use converge_sim::CallReport;

    fn run_pair(loss_pct: f64, fec: FecKind, scale: Scale, seed: u64) -> CallReport {
        crate::runner::run_once(
            crate::sweep::CellCache::global(),
            &pair_cell(loss_pct, fec),
            scale.duration(),
            seed,
        )
    }

    #[test]
    fn converge_fec_dominates_table_at_low_loss() {
        let table = run_pair(1.0, FecKind::WebRtcTable, Scale::Quick, 3);
        let conv = run_pair(1.0, FecKind::Converge, Scale::Quick, 3);
        assert!(
            conv.fec_overhead_pct() * 3.0 < table.fec_overhead_pct(),
            "converge {:.1}% vs table {:.1}%",
            conv.fec_overhead_pct(),
            table.fec_overhead_pct()
        );
        assert!(
            conv.fec_utilization_pct() > table.fec_utilization_pct(),
            "converge util {:.1}% vs table {:.1}%",
            conv.fec_utilization_pct(),
            table.fec_utilization_pct()
        );
    }

    #[test]
    fn converge_fec_keeps_higher_throughput() {
        let table = run_pair(5.0, FecKind::WebRtcTable, Scale::Quick, 5);
        let conv = run_pair(5.0, FecKind::Converge, Scale::Quick, 5);
        assert!(
            conv.throughput_bps >= table.throughput_bps * 0.95,
            "converge tput {:.2} must not lose to table {:.2}",
            conv.throughput_bps / 1e6,
            table.throughput_bps / 1e6
        );
    }
}
