//! The chaos matrix — every multipath scheduler crossed with every named
//! fault, over several seeds. Not a figure from the paper: this is the
//! adversarial counterpart to §5's claims, checking that the control loop
//! *survives* (calls complete, finite freeze ratios, no invariant
//! violations) under carrier blackouts, handover flaps, reordering,
//! duplication, and feedback starvation. Run with `--check-invariants` to
//! replay every timeline through the [`converge_trace::InvariantSink`]
//! rules and fail on any violation.

use converge_sim::{FecKind, ImpairmentKind, SchedulerKind};

use crate::runner::{metric, pm, Cell, Job, Scale, ScenarioSpec};
use crate::sweep::{ExperimentSpec, Reports};

/// The multipath schedulers of the matrix (single-path baselines are
/// excluded: pinning to the impaired path measures the fault, not the
/// control loop).
pub const SCHEDULERS: [SchedulerKind; 4] = [
    SchedulerKind::Converge,
    SchedulerKind::MRtp,
    SchedulerKind::MTput,
    SchedulerKind::Srtt,
];

fn chaos_cell(scheduler: SchedulerKind, kind: ImpairmentKind) -> Cell {
    Cell::new(
        ScenarioSpec::Chaos { kind },
        scheduler,
        FecKind::Converge,
        1,
    )
}

/// Declares the matrix: scheduler × impairment × every seed of the scale.
pub fn spec(scale: Scale) -> ExperimentSpec {
    let mut jobs = Vec::new();
    for scheduler in SCHEDULERS {
        for kind in ImpairmentKind::ALL {
            for &seed in scale.seeds() {
                jobs.push(Job::new(
                    chaos_cell(scheduler, kind),
                    scale.duration(),
                    seed,
                ));
            }
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Chaos matrix — QoE under fault injection\n");
            out.push_str(&format!(
                "{:<10} {:<10} {:>12} {:>12} {:>14} {:>12}\n",
                "#sched", "fault", "fps", "freeze_%", "frames", "e2e_ms"
            ));
            for scheduler in SCHEDULERS {
                for kind in ImpairmentKind::ALL {
                    let reports = r.take(scale.seeds().len());
                    // Survival floor: every call decodes something and
                    // freeze ratios stay finite.
                    for rep in reports {
                        assert!(
                            rep.frames_decoded > 0,
                            "{scheduler:?}/{} decoded nothing",
                            kind.id()
                        );
                        assert!(
                            rep.freeze_ratio_pct().is_finite(),
                            "{scheduler:?}/{} freeze ratio not finite",
                            kind.id()
                        );
                    }
                    out.push_str(&format!(
                        "{:<10} {:<10} {:>12} {:>12} {:>14} {:>12}\n",
                        format!("{scheduler:?}"),
                        kind.id(),
                        pm(&metric(reports, |r| r.fps), 1),
                        pm(&metric(reports, |r| r.freeze_ratio_pct()), 2),
                        pm(&metric(reports, |r| r.frames_decoded as f64), 0),
                        pm(&metric(reports, |r| r.e2e_mean_ms), 0),
                    ));
                }
                out.push('\n');
            }
            out.push_str("# expected shape: all calls survive every fault; Converge degrades\n");
            out.push_str("# most gracefully (blackout/flap cost frames, never the call).\n");
            out
        }),
    }
}

/// The chaos matrix report.
pub fn run(scale: Scale) -> String {
    crate::sweep::render(spec(scale), crate::sweep::CellCache::global())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_all_cells() {
        let s = spec(Scale::Quick);
        assert_eq!(
            s.jobs.len(),
            SCHEDULERS.len() * ImpairmentKind::ALL.len() * Scale::Quick.seeds().len()
        );
        // Every job fingerprint is distinct — nothing collapses in the memo
        // cache by accident.
        let fps: std::collections::HashSet<String> =
            s.jobs.iter().map(|j| j.fingerprint()).collect();
        assert_eq!(fps.len(), s.jobs.len());
    }

    #[test]
    fn one_chaos_cell_survives_and_is_clean() {
        let job = Job::new(
            chaos_cell(SchedulerKind::Converge, ImpairmentKind::Blackout),
            converge_net::SimDuration::from_secs(20),
            11,
        );
        let (report, _records, violations) = job.run_checked();
        assert!(violations.is_empty(), "{violations:?}");
        assert!(report.frames_decoded > 0);
    }
}
