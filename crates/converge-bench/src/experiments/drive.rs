//! Drive replay — the committed multi-path drive fixtures
//! ([`DriveFixture`]) replayed through the full stack: every fixture ×
//! scheduler × congestion controller × seed. The fold reports QoE plus
//! the per-path byte split, which is where the 4–8 path topologies show
//! their character (a scheduler that keeps load on a path through its
//! coverage gap shows up directly in the utilization column).

use converge_sim::{ControllerKind, DriveFixture, FecKind, SchedulerKind};

use crate::runner::{metric, pm, Cell, Job, Scale, ScenarioSpec};
use crate::sweep::{ExperimentSpec, Reports};

/// The scheduler axis: Converge vs the two strongest multipath baselines.
const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Converge,
    SchedulerKind::Srtt,
    SchedulerKind::MTput,
];

fn drive_cell(fixture: DriveFixture, scheduler: SchedulerKind, controller: ControllerKind) -> Cell {
    Cell::new(
        ScenarioSpec::Drive { fixture },
        scheduler,
        FecKind::Converge,
        1,
    )
    .with_controller(controller)
}

/// Quick scale is the CI smoke cell: one seed keeps the 27-cell matrix
/// cheap; full scale averages over every seed.
fn seeds(scale: Scale) -> &'static [u64] {
    match scale {
        Scale::Quick => &scale.seeds()[..1],
        Scale::Full => scale.seeds(),
    }
}

/// The fixtures are 60 s captures: full scale replays them end to end,
/// quick scale stops at the generic smoke duration (30 s, which still
/// crosses the first coverage gap, the handover midpoint, and the
/// blackout window of every fixture).
fn duration(scale: Scale) -> converge_net::SimDuration {
    match scale {
        Scale::Full => converge_net::SimDuration::from_secs(60),
        Scale::Quick => Scale::Quick.duration(),
    }
}

/// Formats each path's share of total sent bytes as `p0/p1/…` percents.
fn utilization_split(reports: &[converge_sim::CallReport]) -> String {
    let paths = reports
        .iter()
        .map(|r| r.paths.len())
        .max()
        .unwrap_or_default();
    let mut shares = vec![0.0f64; paths];
    for report in reports {
        let total: u64 = report.paths.values().map(|p| p.bytes_sent).sum();
        if total == 0 {
            continue;
        }
        for (i, counters) in report.paths.values().enumerate() {
            shares[i] += counters.bytes_sent as f64 / total as f64 / reports.len() as f64;
        }
    }
    shares
        .iter()
        .map(|s| format!("{:.0}", s * 100.0))
        .collect::<Vec<_>>()
        .join("/")
}

/// Declares the replay matrix: fixture × scheduler × controller × seed.
pub fn spec(scale: Scale) -> ExperimentSpec {
    let mut jobs = Vec::new();
    for fixture in DriveFixture::ALL {
        for scheduler in SCHEDULERS {
            for controller in ControllerKind::ALL {
                for &seed in seeds(scale) {
                    jobs.push(Job::new(
                        drive_cell(fixture, scheduler, controller),
                        duration(scale),
                        seed,
                    ));
                }
            }
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Drive replay — committed 4-8 path drive fixtures through\n");
            out.push_str("# scheduler x controller; util = per-path share of sent bytes\n");
            out.push_str(&format!(
                "{:<14} {:<8} {:<6} {:>10} {:>9} {:>9} {:>8}  {}\n",
                "#fixture", "sched", "ctrl", "norm_tput", "norm_fps", "stall_ms", "e2e_ms", "util_pct"
            ));
            for fixture in DriveFixture::ALL {
                for scheduler in SCHEDULERS {
                    for controller in ControllerKind::ALL {
                        let reports = r.take(seeds(scale).len());
                        out.push_str(&format!(
                            "{:<14} {:<8} {:<6} {:>10} {:>9} {:>9} {:>8}  {}\n",
                            fixture.id(),
                            scheduler.label(),
                            controller.label(),
                            pm(&metric(reports, |r| r.normalized_throughput()), 2),
                            pm(&metric(reports, |r| r.normalized_fps()), 2),
                            pm(&metric(reports, |r| r.avg_freeze_ms()), 0),
                            pm(&metric(reports, |r| r.e2e_mean_ms), 0),
                            utilization_split(reports),
                        ));
                    }
                }
                out.push('\n');
            }
            out.push_str("# expected shape: Converge routes around the coverage gaps and\n");
            out.push_str("# the blackout (util shifts off the dark path), SRTT chases the\n");
            out.push_str("# low-OWD path, M-TPUT splits by rate and keeps satellite loaded.\n");
            out
        }),
    }
}

/// Runs the drive replay through the process-wide cache.
pub fn run(scale: Scale) -> String {
    crate::sweep::render(spec(scale), crate::sweep::CellCache::global())
}

#[cfg(test)]
mod tests {
    use super::*;
    use converge_net::SimDuration;

    /// The controller-shootout-over-a-drive satellite: every controller
    /// replays a fixture through the full loop with a clean invariant
    /// checker and actually decodes video on the far side.
    #[test]
    fn every_controller_replays_a_drive_clean() {
        for controller in ControllerKind::ALL {
            let job = Job::new(
                drive_cell(DriveFixture::CoverageGaps, SchedulerKind::Converge, controller),
                SimDuration::from_secs(12),
                11,
            );
            let (report, _records, violations) = job.run_checked();
            assert!(violations.is_empty(), "{}: {violations:?}", controller.id());
            assert!(
                report.frames_decoded > 100,
                "{}: {} frames",
                controller.id(),
                report.frames_decoded
            );
        }
    }

    /// Every fixture (4, 6, and 8 paths) runs invariant-clean and spreads
    /// bytes over more than one path.
    #[test]
    fn every_fixture_replays_clean_and_multipath() {
        for fixture in DriveFixture::ALL {
            let job = Job::new(
                drive_cell(fixture, SchedulerKind::Converge, ControllerKind::Gcc),
                SimDuration::from_secs(12),
                11,
            );
            let (report, _records, violations) = job.run_checked();
            assert!(violations.is_empty(), "{}: {violations:?}", fixture.id());
            assert_eq!(report.paths.len(), fixture.path_count(), "{}", fixture.id());
            let active = report
                .paths
                .values()
                .filter(|p| p.bytes_sent > 0)
                .count();
            assert!(active > 1, "{}: {active} active paths", fixture.id());
        }
    }

    /// The determinism satellite: per-(fixture, controller) timelines are
    /// byte-identical whether the sweep ran on 1 worker or 4.
    #[test]
    fn drive_traces_are_byte_identical_across_worker_counts() {
        let jobs: Vec<Job> = DriveFixture::ALL
            .iter()
            .flat_map(|&fixture| {
                ControllerKind::ALL.iter().map(move |&controller| {
                    Job::new(
                        drive_cell(fixture, SchedulerKind::Converge, controller),
                        SimDuration::from_secs(5),
                        42,
                    )
                })
            })
            .collect();
        let render_traces = |workers: usize| -> Vec<String> {
            let cache = crate::sweep::CellCache::new();
            cache.set_trace_capture(true);
            let spec = ExperimentSpec {
                jobs: jobs.clone(),
                fold: Box::new(|_| String::new()),
            };
            crate::sweep::run_sweep(vec![("drive".into(), spec)], Scale::Quick, workers, &cache);
            jobs.iter()
                .map(|job| {
                    let run = cache.get_or_run(job);
                    let records = run.trace.as_ref().expect("capture armed");
                    assert!(!records.is_empty(), "{}", job.fingerprint());
                    converge_trace::jsonl::render(&job.fingerprint(), records)
                })
                .collect()
        };
        assert_eq!(
            render_traces(1),
            render_traces(4),
            "drive timelines must not depend on --jobs"
        );
    }

    #[test]
    fn spec_covers_the_full_matrix() {
        let spec = spec(Scale::Quick);
        // 3 fixtures × 3 schedulers × 3 controllers × 1 seed.
        assert_eq!(
            spec.jobs.len(),
            DriveFixture::ALL.len() * SCHEDULERS.len() * ControllerKind::ALL.len()
        );
        for fixture in DriveFixture::ALL {
            let id = format!("drive-{}", fixture.id());
            assert!(
                spec.jobs.iter().any(|j| j.cell.scenario.id() == id),
                "{id} missing from the drive matrix"
            );
        }
    }
}
