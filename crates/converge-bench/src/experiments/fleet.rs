//! The `fleet` experiment: fleet-scale engine throughput and QoE fairness.
//!
//! Unlike the figure regenerators, the fleet experiment does not decompose
//! into `Cell × seed` sweep jobs: one invocation *is* one run of the
//! sharded [`FleetEngine`], which already multiplexes every session into
//! shared event machinery. The `experiments` binary special-cases the
//! `fleet` target onto [`run_fleet`].
//!
//! The report's fold section comes verbatim from
//! [`FleetReport::fold_text`], so stdout is byte-identical for any
//! `--shards` value; wall-clock throughput goes to the JSON report only
//! (`results/BENCH_fleet.current.json` in CI), where the perf ratchet
//! compares it against the committed `results/BENCH_fleet.json`
//! trajectory.

use std::fmt::Write as _;
use std::time::Instant;

use converge_net::SimDuration;
use converge_sim::{FleetConfig, FleetEngine, FleetReport};

/// CLI-level options of one fleet invocation.
#[derive(Debug, Clone)]
pub struct FleetOpts {
    /// Total concurrent sessions.
    pub sessions: usize,
    /// Members per conference.
    pub conference_size: usize,
    /// Worker shards (0 = one per available core).
    pub shards: usize,
    /// Shared ingress bottleneck per conference, Mbps.
    pub bottleneck_mbps: f64,
    /// Call duration in seconds (0 = the 20 s default; `--quick` uses 5 s).
    pub duration_s: u64,
    /// Master seed.
    pub seed: u64,
    /// Arm invariant checking on every member.
    pub check_invariants: bool,
    /// Shrink the run for smoke testing.
    pub quick: bool,
    /// Also sweep a small sessions × conference-size × bottleneck grid.
    pub grid: bool,
}

impl Default for FleetOpts {
    fn default() -> Self {
        FleetOpts {
            sessions: 1000,
            conference_size: 4,
            shards: 0,
            bottleneck_mbps: 8.0,
            duration_s: 0,
            seed: 1,
            check_invariants: false,
            quick: false,
            grid: false,
        }
    }
}

/// The outcome of one fleet invocation: the deterministic stdout report,
/// the JSON performance document, and the invariant violation count.
#[derive(Debug)]
pub struct FleetRunOutput {
    /// Printable report (fold + fairness summary); shard-count invariant.
    pub report: String,
    /// `converge-bench/fleet/v1` JSON with top-level `sim_s_per_wall_s`.
    pub json: String,
    /// Invariant violations (0 unless `--check-invariants` found some).
    pub violations: usize,
}

fn build_config(opts: &FleetOpts) -> FleetConfig {
    let mut cfg = FleetConfig::new(opts.sessions, opts.conference_size);
    cfg.shards = if opts.shards == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        opts.shards
    };
    cfg.seed = opts.seed;
    cfg.bottleneck_ingress_bps = (opts.bottleneck_mbps * 1e6) as u64;
    cfg.duration = match (opts.duration_s, opts.quick) {
        (0, true) => SimDuration::from_secs(5),
        (0, false) => SimDuration::from_secs(20),
        (s, _) => SimDuration::from_secs(s),
    };
    cfg.check_invariants = opts.check_invariants;
    cfg
}

fn run_cell(cfg: FleetConfig) -> (FleetReport, f64) {
    let started = Instant::now();
    let report = FleetEngine::new(cfg).run();
    (report, started.elapsed().as_secs_f64())
}

/// Runs the fleet experiment and renders its report + JSON.
pub fn run_fleet(opts: &FleetOpts) -> FleetRunOutput {
    let cfg = build_config(opts);
    let shards = cfg.shards;
    let duration_s = cfg.duration.as_secs_f64();
    let bottleneck_mbps = cfg.bottleneck_ingress_bps as f64 / 1e6;
    let (fleet, wall_s) = run_cell(cfg);

    let sim_s = fleet.sessions as f64 * duration_s;
    let sim_rate = if wall_s > 0.0 { sim_s / wall_s } else { 0.0 };
    let sessions_per_core = fleet.sessions as f64 / shards.max(1) as f64;
    let q = fleet.qoe_quantiles();

    let mut report = String::new();
    let _ = writeln!(
        report,
        "# fleet: {} sessions x {}s through {} SFU conference(s)",
        fleet.sessions,
        duration_s,
        fleet.conferences.len()
    );
    report.push_str(&fleet.fold_text());
    if opts.grid {
        report.push_str(&run_grid(opts));
    }

    let queue_hw = fleet.shard_stats.iter().map(|s| s.queue_high_water).max().unwrap_or(0);
    let wheel_hw = fleet.shard_stats.iter().map(|s| s.wheel.high_water).max().unwrap_or(0);
    let cascades: u64 = fleet.shard_stats.iter().map(|s| s.wheel.cascades).sum();
    let json = format!(
        "{{\n  \"schema\": \"converge-bench/fleet/v1\",\n  \"sessions\": {},\n  \"conference_size\": {},\n  \"conferences\": {},\n  \"shards\": {},\n  \"duration_s\": {:.1},\n  \"seed\": {},\n  \"bottleneck_mbps\": {:.1},\n  \"wall_s\": {:.3},\n  \"sim_s\": {:.1},\n  \"sim_s_per_wall_s\": {:.2},\n  \"sessions_per_core\": {:.1},\n  \"qoe_p5\": {:.6},\n  \"qoe_p25\": {:.6},\n  \"qoe_p50\": {:.6},\n  \"qoe_p75\": {:.6},\n  \"qoe_p95\": {:.6},\n  \"queue_high_water\": {},\n  \"wheel_high_water\": {},\n  \"wheel_cascades\": {},\n  \"violations\": {}\n}}\n",
        fleet.sessions,
        fleet.conference_size,
        fleet.conferences.len(),
        shards,
        duration_s,
        fleet.seed,
        bottleneck_mbps,
        wall_s,
        sim_s,
        sim_rate,
        sessions_per_core,
        q[0],
        q[1],
        q[2],
        q[3],
        q[4],
        queue_hw,
        wheel_hw,
        cascades,
        fleet.violations,
    );

    FleetRunOutput { report, json, violations: fleet.violations }
}

/// A small sessions × conference-size × bottleneck grid at reduced scale:
/// each cell reports throughput and median QoE, showing how fairness and
/// engine speed move with conference shape and bottleneck pressure.
fn run_grid(opts: &FleetOpts) -> String {
    let base_sessions = (opts.sessions / 4).max(8);
    let mut out = String::from("grid|sessions|size|bottleneck_mbps|sim_s_per_wall_s|qoe_p50\n");
    for &sessions in &[base_sessions / 2, base_sessions] {
        for &size in &[2usize, opts.conference_size.max(3)] {
            for &mbps in &[opts.bottleneck_mbps / 2.0, opts.bottleneck_mbps] {
                let mut cell = opts.clone();
                cell.sessions = sessions;
                cell.conference_size = size;
                cell.bottleneck_mbps = mbps;
                cell.grid = false;
                let cfg = build_config(&cell);
                let duration_s = cfg.duration.as_secs_f64();
                let (fleet, wall_s) = run_cell(cfg);
                let rate = if wall_s > 0.0 {
                    fleet.sessions as f64 * duration_s / wall_s
                } else {
                    0.0
                };
                let q = fleet.qoe_quantiles();
                let _ = writeln!(
                    out,
                    "cell|{}|{}|{:.1}|{:.0}|{:.6}",
                    fleet.sessions, fleet.conference_size, mbps, rate, q[2]
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetOpts {
        FleetOpts {
            sessions: 8,
            conference_size: 4,
            shards: 2,
            duration_s: 3,
            quick: true,
            ..FleetOpts::default()
        }
    }

    #[test]
    fn fleet_json_carries_the_ratchet_metric() {
        let out = run_fleet(&tiny());
        assert!(out.json.contains("\"schema\": \"converge-bench/fleet/v1\""));
        assert!(out.json.contains("\"sim_s_per_wall_s\": "));
        assert!(out.json.contains("\"qoe_p50\": "));
        assert_eq!(out.violations, 0);
    }

    #[test]
    fn fleet_report_is_shard_invariant() {
        let mut one = tiny();
        one.shards = 1;
        let a = run_fleet(&one);
        let b = run_fleet(&tiny());
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn invariants_armed_run_stays_clean() {
        let mut opts = tiny();
        opts.check_invariants = true;
        let out = run_fleet(&opts);
        assert_eq!(out.violations, 0);
    }
}
