//! Fig. 9 (walking & driving time series), Fig. 10 (normalized QoE bars),
//! and Table 3 (E2E latency / FEC overhead / FEC utilization for 1–3
//! cameras) — Converge vs single-path WebRTC in the wild.

use converge_sim::{CallReport, FecKind, SchedulerKind};

use crate::runner::{metric, pm, Cell, Job, Scale, ScenarioSpec};
use crate::sweep::{ExperimentSpec, Reports};

fn scenario_for(name: &str) -> ScenarioSpec {
    match name {
        "walking" => ScenarioSpec::Walking,
        "driving" => ScenarioSpec::Driving,
        _ => unreachable!("unknown scenario"),
    }
}

/// Systems per scenario: Converge plus the two single-path baselines
/// (path 0 and path 1 carriers).
fn systems() -> Vec<(&'static str, SchedulerKind, FecKind)> {
    vec![
        (
            "WebRTC-p0",
            SchedulerKind::SinglePath(0),
            FecKind::WebRtcTable,
        ),
        (
            "WebRTC-p1",
            SchedulerKind::SinglePath(1),
            FecKind::WebRtcTable,
        ),
        ("Converge", SchedulerKind::Converge, FecKind::Converge),
    ]
}

/// Declares Fig. 9: one seed-42 call per system per scenario.
pub fn spec_fig9(scale: Scale) -> ExperimentSpec {
    let mut jobs = Vec::new();
    for scenario_name in ["walking", "driving"] {
        for (_, scheduler, fec) in systems() {
            let cell = Cell::new(scenario_for(scenario_name), scheduler, fec, 1);
            jobs.push(Job::new(cell, scale.duration(), 42));
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Fig. 9 — time series, walking and driving\n");
            for scenario_name in ["walking", "driving"] {
                out.push_str(&format!("## scenario: {scenario_name}\n"));
                out.push_str("# columns: t_s system tput_mbps fps e2e_ms enc_height\n");
                for (label, _, _) in systems() {
                    let report = r.one();
                    for (i, bin) in report.bins.iter().enumerate() {
                        out.push_str(&format!(
                            "{i} {label} {:.2} {} {:.0} {:.0}\n",
                            bin.throughput_bps() / 1e6,
                            bin.frames_decoded,
                            bin.e2e_ms().unwrap_or(0.0),
                            bin.encoded_height().unwrap_or(0.0)
                        ));
                    }
                }
            }
            out.push_str("# paper shape: single-path WebRTC shows zero-FPS periods when its\n");
            out.push_str("# carrier dips; Converge sustains FPS by combining the paths and\n");
            out.push_str("# downscales resolution through dips instead of freezing (Fig. 9b).\n");
            out
        }),
    }
}

/// Fig. 9: per-second throughput / FPS / E2E time series.
pub fn run_fig9(scale: Scale) -> String {
    crate::sweep::render(spec_fig9(scale), crate::sweep::CellCache::global())
}

/// Declares Fig. 10: every system × scenario at 3 streams, all seeds.
pub fn spec_fig10(scale: Scale) -> ExperimentSpec {
    let mut jobs = Vec::new();
    for scenario_name in ["walking", "driving"] {
        for (_, scheduler, fec) in systems() {
            let cell = Cell::new(scenario_for(scenario_name), scheduler, fec, 3);
            for &seed in scale.seeds() {
                jobs.push(Job::new(cell, scale.duration(), seed));
            }
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Fig. 10 — normalized QoE metrics (3 camera streams)\n");
            out.push_str(&format!(
                "{:<10} {:<12} {:>14} {:>12} {:>14} {:>12}\n",
                "scenario", "system", "norm_tput", "norm_fps", "avg_stall_ms", "norm_qp"
            ));
            for scenario_name in ["walking", "driving"] {
                for (label, _, _) in systems() {
                    let reports = r.take(scale.seeds().len());
                    out.push_str(&format!(
                        "{:<10} {:<12} {:>14} {:>12} {:>14} {:>12}\n",
                        scenario_name,
                        label,
                        pm(&metric(reports, |r| r.normalized_throughput()), 2),
                        pm(&metric(reports, |r| r.normalized_fps()), 2),
                        pm(&metric(reports, |r| r.avg_freeze_ms()), 0),
                        pm(&metric(reports, |r| r.normalized_qp()), 2),
                    ));
                }
                out.push('\n');
            }
            out.push_str("# paper shape: Converge leads normalized throughput and FPS and cuts\n");
            out.push_str("# stalls vs either single-path WebRTC; QP (quality) improves too.\n");
            out
        }),
    }
}

/// Fig. 10: normalized QoE bars (throughput, FPS, stall, QP) per scenario.
pub fn run_fig10(scale: Scale) -> String {
    crate::sweep::render(spec_fig10(scale), crate::sweep::CellCache::global())
}

/// Declares Table 3: every system × scenario × 1–3 streams, all seeds.
pub fn spec_table3(scale: Scale) -> ExperimentSpec {
    let mut jobs = Vec::new();
    for scenario_name in ["walking", "driving"] {
        for streams in 1..=3u8 {
            for (_, scheduler, fec) in systems() {
                let cell = Cell::new(scenario_for(scenario_name), scheduler, fec, streams);
                for &seed in scale.seeds() {
                    jobs.push(Job::new(cell, scale.duration(), seed));
                }
            }
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Table 3 — E2E latency (s), FEC overhead (%), FEC utilization (%)\n");
            for scenario_name in ["walking", "driving"] {
                out.push_str(&format!("## scenario: {scenario_name}\n"));
                out.push_str(&format!(
                    "{:<4} {:<12} {:>16} {:>16} {:>16}\n",
                    "#", "system", "e2e_s", "fec_ovh_%", "fec_util_%"
                ));
                for streams in 1..=3u8 {
                    for (label, _, _) in systems() {
                        let reports = r.take(scale.seeds().len());
                        let e2e_s: Vec<f64> =
                            metric(reports, |r: &CallReport| r.e2e_mean_ms / 1_000.0);
                        out.push_str(&format!(
                            "{:<4} {:<12} {:>16} {:>16} {:>16}\n",
                            streams,
                            label,
                            pm(&e2e_s, 3),
                            pm(&metric(reports, |r| r.fec_overhead_pct()), 1),
                            pm(&metric(reports, |r| r.fec_utilization_pct()), 1),
                        ));
                    }
                }
                out.push('\n');
            }
            out.push_str("# paper shape: Converge has the lowest E2E and FEC overhead with the\n");
            out.push_str("# highest utilization in both scenarios, at every stream count.\n");
            out
        }),
    }
}

/// Table 3: E2E latency / FEC overhead / FEC utilization for 1–3 cameras.
pub fn run_table3(scale: Scale) -> String {
    crate::sweep::render(spec_table3(scale), crate::sweep::CellCache::global())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{mean_std, run_seeds};

    #[test]
    fn converge_outperforms_single_path_in_walking_throughput() {
        let conv = run_seeds(
            crate::sweep::CellCache::global(),
            &Cell::new(
                ScenarioSpec::Walking,
                SchedulerKind::Converge,
                FecKind::Converge,
                3,
            ),
            Scale::Quick,
        );
        let single = run_seeds(
            crate::sweep::CellCache::global(),
            &Cell::new(
                ScenarioSpec::Walking,
                SchedulerKind::SinglePath(1),
                FecKind::WebRtcTable,
                3,
            ),
            Scale::Quick,
        );
        let (c, _) = mean_std(&metric(&conv, |r| r.throughput_bps));
        let (s, _) = mean_std(&metric(&single, |r| r.throughput_bps));
        assert!(
            c > s,
            "Converge tput {c} should beat single-path cellular {s}"
        );
    }

    #[test]
    fn converge_fec_utilization_beats_table() {
        let conv = run_seeds(
            crate::sweep::CellCache::global(),
            &Cell::new(
                ScenarioSpec::Driving,
                SchedulerKind::Converge,
                FecKind::Converge,
                1,
            ),
            Scale::Quick,
        );
        let single = run_seeds(
            crate::sweep::CellCache::global(),
            &Cell::new(
                ScenarioSpec::Driving,
                SchedulerKind::SinglePath(0),
                FecKind::WebRtcTable,
                1,
            ),
            Scale::Quick,
        );
        let (c_ovh, _) = mean_std(&metric(&conv, |r| r.fec_overhead_pct()));
        let (s_ovh, _) = mean_std(&metric(&single, |r| r.fec_overhead_pct()));
        assert!(
            c_ovh < s_ovh,
            "Converge overhead {c_ovh}% must undercut WebRTC {s_ovh}%"
        );
    }
}
