//! Figs. 14–15 — comparison with existing solutions in the driving
//! scenario: QoE bars (throughput/FPS/stall/QP), FEC overhead and
//! utilization, the E2E latency CDF, and the PSNR CDF.

use converge_sim::{FecKind, SchedulerKind};

use crate::runner::{metric, pm, Cell, Job, Scale, ScenarioSpec};
use crate::sweep::{ExperimentSpec, Reports};

/// The full system roster of Fig. 14 (single-path, CM, multipath variants,
/// Converge).
pub fn systems() -> Vec<(&'static str, SchedulerKind, FecKind)> {
    vec![
        (
            "WebRTC-V",
            SchedulerKind::SinglePath(0),
            FecKind::WebRtcTable,
        ),
        (
            "WebRTC-T",
            SchedulerKind::SinglePath(1),
            FecKind::WebRtcTable,
        ),
        (
            "WebRTC-CM",
            SchedulerKind::ConnectionMigration(0),
            FecKind::WebRtcTable,
        ),
        ("M-RTP", SchedulerKind::MRtp, FecKind::WebRtcTable),
        ("M-TPUT", SchedulerKind::MTput, FecKind::WebRtcTable),
        ("SRTT", SchedulerKind::Srtt, FecKind::WebRtcTable),
        ("Converge", SchedulerKind::Converge, FecKind::Converge),
    ]
}

fn roster_cell(scheduler: SchedulerKind, fec: FecKind) -> Cell {
    Cell::new(ScenarioSpec::Driving, scheduler, fec, 1)
}

/// Declares Fig. 14a–b: every system over every seed of the scale.
pub fn spec_fig14(scale: Scale) -> ExperimentSpec {
    let mut jobs = Vec::new();
    for (_, scheduler, fec) in systems() {
        for &seed in scale.seeds() {
            jobs.push(Job::new(
                roster_cell(scheduler, fec),
                scale.duration(),
                seed,
            ));
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Fig. 14 — driving comparison vs existing solutions\n");
            out.push_str(&format!(
                "{:<12} {:>12} {:>10} {:>12} {:>10} {:>12} {:>12} {:>10}\n",
                "system",
                "norm_tput",
                "norm_fps",
                "avg_stall_ms",
                "norm_qp",
                "fec_ovh_%",
                "fec_util_%",
                "e2e_ms"
            ));
            for (label, _, _) in systems() {
                let reports = r.take(scale.seeds().len());
                out.push_str(&format!(
                    "{:<12} {:>12} {:>10} {:>12} {:>10} {:>12} {:>12} {:>10}\n",
                    label,
                    pm(&metric(reports, |r| r.normalized_throughput()), 2),
                    pm(&metric(reports, |r| r.normalized_fps()), 2),
                    pm(&metric(reports, |r| r.avg_freeze_ms()), 0),
                    pm(&metric(reports, |r| r.normalized_qp()), 2),
                    pm(&metric(reports, |r| r.fec_overhead_pct()), 1),
                    pm(&metric(reports, |r| r.fec_utilization_pct()), 1),
                    pm(&metric(reports, |r| r.e2e_mean_ms), 0),
                ));
            }
            out.push_str("# paper shape: Converge has the highest delivered share, the least\n");
            out.push_str("# FEC overhead at the best utilization, and the lowest E2E latency.\n");
            out
        }),
    }
}

/// Fig. 14a–b: QoE metrics and FEC behaviour per system.
pub fn run_fig14(scale: Scale) -> String {
    crate::sweep::render(spec_fig14(scale), crate::sweep::CellCache::global())
}

/// Declares Fig. 14c: one seed-42 call per system.
pub fn spec_fig14c(scale: Scale) -> ExperimentSpec {
    let jobs = systems()
        .into_iter()
        .map(|(_, scheduler, fec)| Job::new(roster_cell(scheduler, fec), scale.duration(), 42))
        .collect();
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Fig. 14c — E2E latency CDF (driving, 1 stream)\n");
            out.push_str("# columns: system p10 p25 p50 p75 p90 p99 (ms)\n");
            for (label, _, _) in systems() {
                let rep = r.one();
                let qs = crate::stats::quantiles(
                    &rep.e2e_samples_ms,
                    &[0.10, 0.25, 0.50, 0.75, 0.90, 0.99],
                );
                out.push_str(&format!(
                    "{label} {:.0} {:.0} {:.0} {:.0} {:.0} {:.0}\n",
                    qs[0], qs[1], qs[2], qs[3], qs[4], qs[5]
                ));
            }
            out
        }),
    }
}

/// Fig. 14c: the E2E latency CDF per system.
pub fn run_fig14c(scale: Scale) -> String {
    crate::sweep::render(spec_fig14c(scale), crate::sweep::CellCache::global())
}

/// Declares Fig. 15: every system over every seed (same cells as Fig. 14,
/// so a combined sweep simulates them only once).
pub fn spec_fig15(scale: Scale) -> ExperimentSpec {
    let mut jobs = Vec::new();
    for (_, scheduler, fec) in systems() {
        for &seed in scale.seeds() {
            jobs.push(Job::new(
                roster_cell(scheduler, fec),
                scale.duration(),
                seed,
            ));
        }
    }
    ExperimentSpec {
        jobs,
        fold: Box::new(move |reports| {
            let mut r = Reports::new(reports);
            let mut out = String::new();
            out.push_str("# Fig. 15 — PSNR (dB), single camera stream, driving\n");
            out.push_str(&format!("{:<12} {:>14}\n", "system", "psnr_db"));
            for (label, _, _) in systems() {
                let reports = r.take(scale.seeds().len());
                out.push_str(&format!(
                    "{:<12} {:>14}\n",
                    label,
                    pm(&metric(reports, |r| r.psnr_db), 1)
                ));
            }
            out.push_str("# paper shape: Converge's PSNR distribution dominates every other\n");
            out.push_str("# system's.\n");
            out
        }),
    }
}

/// Fig. 15: the PSNR comparison per system (single camera stream).
pub fn run_fig15(scale: Scale) -> String {
    crate::sweep::render(spec_fig15(scale), crate::sweep::CellCache::global())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{mean_std, run_seeds};

    #[test]
    fn converge_has_best_psnr_of_multipath_systems() {
        let run = |scheduler, fec| {
            let rs = run_seeds(crate::sweep::CellCache::global(), &roster_cell(scheduler, fec), Scale::Quick);
            mean_std(&metric(&rs, |r| r.psnr_db)).0
        };
        let conv = run(SchedulerKind::Converge, FecKind::Converge);
        let mrtp = run(SchedulerKind::MRtp, FecKind::WebRtcTable);
        assert!(conv >= mrtp, "Converge PSNR {conv} vs M-RTP {mrtp}");
    }
}
