//! Small statistics helpers for experiment reporting: seed aggregation
//! (mean ± std), metric extraction, and quantile/CDF tables for the
//! distribution-style figures (e.g. the paper's E2E and PSNR CDFs).

use converge_sim::CallReport;

/// Mean and sample standard deviation of a series.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Formats `mean ± std` compactly.
pub fn pm(values: &[f64], decimals: usize) -> String {
    let (m, s) = mean_std(values);
    format!("{m:.decimals$} ± {s:.decimals$}")
}

/// Extracts a metric from each report.
pub fn metric(reports: &[CallReport], f: impl Fn(&CallReport) -> f64) -> Vec<f64> {
    reports.iter().map(f).collect()
}

/// A quantile of `values` using the nearest-rank method on a sorted copy.
/// `q` is in `[0, 1]`. Returns 0.0 for an empty slice.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Several quantiles at once (sorts a single copy).
pub fn quantiles(values: &[f64], qs: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return vec![0.0; qs.len()];
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    qs.iter()
        .map(|q| {
            let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
            sorted[idx]
        })
        .collect()
}

/// An empirical CDF as `(value, cumulative_fraction)` points, decimated to
/// at most `max_points` rows for plotting.
pub fn cdf(values: &[f64], max_points: usize) -> Vec<(f64, f64)> {
    if values.is_empty() || max_points == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();
    let step = (n / max_points).max(1);
    let mut out = Vec::with_capacity(n.div_ceil(step) + 1);
    for (i, &v) in sorted.iter().enumerate().step_by(step) {
        out.push((v, (i + 1) as f64 / n as f64));
    }
    if out.last().map(|&(_, f)| f) != Some(1.0) {
        out.push((sorted[n - 1], 1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 6.0]);
        assert_eq!(m, 4.0);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]), (5.0, 0.0));
    }

    #[test]
    fn pm_formats() {
        assert_eq!(pm(&[1.0, 3.0], 1), "2.0 ± 1.4");
    }

    #[test]
    fn quantile_of_known_series() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 100.0);
        assert!((quantile(&v, 0.5) - 50.0).abs() <= 1.0);
        assert!((quantile(&v, 0.95) - 95.0).abs() <= 1.0);
    }

    #[test]
    fn quantile_handles_edge_cases() {
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[7.0], 0.99), 7.0);
        assert_eq!(quantile(&[3.0, 1.0], -1.0), 1.0); // clamped
        assert_eq!(quantile(&[3.0, 1.0], 2.0), 3.0);
    }

    #[test]
    fn quantiles_matches_individual_calls() {
        let v: Vec<f64> = (0..50).map(|i| (i * 7 % 50) as f64).collect();
        let qs = [0.1, 0.5, 0.9];
        let batch = quantiles(&v, &qs);
        for (q, b) in qs.iter().zip(&batch) {
            assert_eq!(*b, quantile(&v, *q));
        }
    }

    #[test]
    fn cdf_monotone_and_terminated() {
        let v: Vec<f64> = (0..1000).map(|i| (i % 37) as f64).collect();
        let table = cdf(&v, 50);
        assert!(table.len() <= 52);
        for w in table.windows(2) {
            assert!(w[0].0 <= w[1].0, "values sorted");
            assert!(w[0].1 <= w[1].1, "fractions monotone");
        }
        assert_eq!(table.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_empty_and_tiny() {
        assert!(cdf(&[], 10).is_empty());
        let t = cdf(&[5.0], 10);
        assert_eq!(t, vec![(5.0, 1.0)]);
    }
}
