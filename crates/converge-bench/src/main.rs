//! The `experiments` binary: regenerates the paper's tables and figures.

use converge_bench::experiments::registry;
use converge_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let targets: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    let scale = if quick { Scale::Quick } else { Scale::Full };

    let registry = registry();
    if targets.is_empty() || targets.iter().any(|t| t == "list") {
        eprintln!("usage: experiments <id>|all [--quick]\n\navailable experiments:");
        for (id, desc, _) in &registry {
            eprintln!("  {id:<8} {desc}");
        }
        return;
    }

    let run_all = targets.iter().any(|t| t == "all");
    let mut seen = std::collections::HashSet::new();
    for (id, desc, runner) in &registry {
        if run_all || targets.iter().any(|t| t == id) {
            // fig3/table1 share a runner; print once under a joint header.
            if !seen.insert(*runner as usize) {
                continue;
            }
            eprintln!(">> {id}: {desc} ({scale:?})");
            let started = std::time::Instant::now();
            let output = runner(scale);
            println!("{output}");
            eprintln!("   done in {:.1}s\n", started.elapsed().as_secs_f64());
        }
    }
}
