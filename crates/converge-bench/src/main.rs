//! The `experiments` binary: regenerates the paper's tables and figures by
//! handing every selected experiment to the work-stealing sweep engine.
//!
//! Usage: `experiments <id>|all [--quick] [--jobs N] [--bench-json PATH]
//! [--trace DIR] [--check-invariants]`
//!
//! The `fleet` target is special: it is not a figure regenerator and runs
//! the sharded fleet engine directly (see [`experiments::fleet`]) with its
//! own flags — `--sessions`, `--conference-size`, `--shards`,
//! `--bottleneck-mbps`, `--duration-s`, `--seed`, `--grid`. It cannot be
//! combined with other targets and is excluded from `all`.
//!
//! Reports go to stdout in registry order and are byte-identical for any
//! `--jobs` value; progress, timing, and the sweep summary go to stderr.
//! With `--trace DIR`, every unique job additionally writes its structured
//! event timeline as `DIR/<fingerprint>.jsonl` plus a human-readable
//! per-path summary as `DIR/<fingerprint>.timeline.txt`. Each timeline is
//! captured inside the job's own single-threaded simulation, so the JSONL
//! bytes are identical for any `--jobs` value too. With
//! `--check-invariants`, every unique job's timeline is replayed through
//! the control-loop invariant rules after the sweep; any violation is
//! printed and the process exits non-zero — this is the CI chaos gate.

use converge_bench::experiments::fleet::{run_fleet, FleetOpts};
use converge_bench::experiments::registry;
use converge_bench::{run_sweep, CellCache, Job, Scale};

struct Cli {
    scale: Scale,
    jobs: usize,
    bench_json: Option<String>,
    trace: Option<String>,
    check_invariants: bool,
    fleet: FleetOpts,
    fleet_flags_seen: bool,
    targets: Vec<String>,
}

/// Parses a fleet-only flag's value into the right [`FleetOpts`] field.
fn parse_fleet_flag(cli: &mut Cli, flag: &str, value: &str) -> Result<bool, String> {
    fn parsed<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
        value
            .parse()
            .map_err(|_| format!("bad {flag} value {value:?}"))
    }
    match flag {
        "--sessions" => cli.fleet.sessions = parsed(flag, value)?,
        "--conference-size" => cli.fleet.conference_size = parsed(flag, value)?,
        "--shards" => cli.fleet.shards = parsed(flag, value)?,
        "--bottleneck-mbps" => cli.fleet.bottleneck_mbps = parsed(flag, value)?,
        "--duration-s" => cli.fleet.duration_s = parsed(flag, value)?,
        "--seed" => cli.fleet.seed = parsed(flag, value)?,
        _ => return Ok(false),
    }
    cli.fleet_flags_seen = true;
    Ok(true)
}

fn parse_cli() -> Result<Cli, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        scale: Scale::Full,
        jobs: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        bench_json: None,
        trace: None,
        check_invariants: false,
        fleet: FleetOpts::default(),
        fleet_flags_seen: false,
        targets: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--quick" {
            cli.scale = Scale::Quick;
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            cli.jobs = v.parse().map_err(|_| format!("bad --jobs value {v:?}"))?;
        } else if arg == "--jobs" {
            let v = it.next().ok_or("--jobs needs a value")?;
            cli.jobs = v.parse().map_err(|_| format!("bad --jobs value {v:?}"))?;
        } else if let Some(v) = arg.strip_prefix("--bench-json=") {
            cli.bench_json = Some(v.to_string());
        } else if arg == "--bench-json" {
            cli.bench_json = Some(it.next().ok_or("--bench-json needs a path")?);
        } else if let Some(v) = arg.strip_prefix("--trace=") {
            cli.trace = Some(v.to_string());
        } else if arg == "--trace" {
            cli.trace = Some(it.next().ok_or("--trace needs a directory")?);
        } else if arg == "--check-invariants" {
            cli.check_invariants = true;
        } else if arg == "--grid" {
            cli.fleet.grid = true;
            cli.fleet_flags_seen = true;
        } else if let Some((flag, value)) = arg.split_once('=').filter(|(f, _)| f.starts_with("--"))
        {
            if !parse_fleet_flag(&mut cli, flag, value)? {
                return Err(format!("unknown flag {arg:?}"));
            }
        } else if arg.starts_with("--") {
            let Some(value) = it.next() else {
                return Err(format!("unknown flag {arg:?}"));
            };
            if !parse_fleet_flag(&mut cli, &arg, &value)? {
                return Err(format!("unknown flag {arg:?}"));
            }
        } else {
            cli.targets.push(arg);
        }
    }
    if cli.jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    if cli.fleet.sessions == 0 {
        return Err("--sessions must be at least 1".into());
    }
    if cli.fleet.conference_size == 0 {
        return Err("--conference-size must be at least 1".into());
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if cli.targets.iter().any(|t| t == "fleet") {
        if cli.targets.len() > 1 {
            eprintln!("error: `fleet` cannot be combined with other targets");
            std::process::exit(2);
        }
        run_fleet_target(&cli);
        return;
    }
    if cli.fleet_flags_seen {
        eprintln!("error: --sessions/--conference-size/--shards/--bottleneck-mbps/--duration-s/--seed/--grid only apply to the `fleet` target");
        std::process::exit(2);
    }

    let registry = registry();
    if cli.targets.is_empty() || cli.targets.iter().any(|t| t == "list") {
        eprintln!(
            "usage: experiments <id>|all [--quick] [--jobs N] [--bench-json PATH] [--trace DIR] [--check-invariants]\n\navailable experiments:"
        );
        for def in &registry {
            let alias = if def.aliases.is_empty() {
                String::new()
            } else {
                format!(" (also: {})", def.aliases.join(", "))
            };
            eprintln!("  {:<12} {}{alias}", def.id, def.desc);
        }
        eprintln!(
            "  {:<12} fleet-scale engine: N sessions through SFU bottlenecks (own flags; excluded from `all`)",
            "fleet"
        );
        return;
    }

    let run_all = cli.targets.iter().any(|t| t == "all");
    if !run_all {
        for target in &cli.targets {
            if !registry.iter().any(|def| def.matches(target)) {
                eprintln!("error: unknown experiment {target:?} (try `experiments list`)");
                std::process::exit(2);
            }
        }
    }
    let selected: Vec<_> = registry
        .iter()
        .filter(|def| run_all || cli.targets.iter().any(|t| def.matches(t)))
        .collect();

    let scale = cli.scale;
    eprintln!(
        ">> sweeping {} experiment(s) at {scale:?} scale on {} worker(s)",
        selected.len(),
        cli.jobs
    );
    let specs: Vec<_> = selected
        .iter()
        .map(|def| (def.id.to_string(), (def.spec)(scale)))
        .collect();

    // Trace capture must be armed before the first simulation executes
    // (the invariant gate replays captured timelines too); remember the
    // unique jobs (declaration order) so their timelines can be fetched
    // back out of the cache after the sweep.
    let trace_jobs: Vec<Job> = if cli.trace.is_some() || cli.check_invariants {
        CellCache::global().set_trace_capture(true);
        let mut seen = std::collections::HashSet::new();
        specs
            .iter()
            .flat_map(|(_, spec)| spec.jobs.iter().copied())
            .filter(|job| seen.insert(*job))
            .collect()
    } else {
        Vec::new()
    };

    let (outputs, stats) = run_sweep(specs, scale, cli.jobs, CellCache::global());

    for ((id, output), def) in outputs.iter().zip(&selected) {
        eprintln!(">> {id}: {}", def.desc);
        println!("{output}");
    }
    eprintln!("   {}", stats.summary());

    if let Some(path) = &cli.bench_json {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("error: creating {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        if let Err(e) = std::fs::write(path, stats.to_json()) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("   bench report written to {path}");
    }

    if let Some(dir) = &cli.trace {
        if let Err(e) = write_traces(dir, &trace_jobs) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }

    if cli.check_invariants {
        let total = check_invariants(&trace_jobs);
        if total > 0 {
            eprintln!("error: {total} invariant violation(s) across the sweep");
            std::process::exit(1);
        }
    }
}

/// Runs the `fleet` target: one sharded fleet-engine run (plus an optional
/// reduced-scale grid), deterministic report on stdout, performance JSON
/// via `--bench-json`, non-zero exit on invariant violations when
/// `--check-invariants` is armed.
fn run_fleet_target(cli: &Cli) {
    let mut opts = cli.fleet.clone();
    opts.quick = matches!(cli.scale, Scale::Quick);
    opts.check_invariants = cli.check_invariants;
    if cli.fleet.shards == 0 {
        // `--jobs` caps auto shard selection so CI can pin parallelism
        // with the flag it already uses for the sweep engine.
        opts.shards = cli.jobs;
    }
    eprintln!(
        ">> fleet: {} session(s), conference size {}, {} shard(s)",
        opts.sessions, opts.conference_size, opts.shards
    );
    let out = run_fleet(&opts);
    println!("{}", out.report);
    if let Some(path) = &cli.bench_json {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("error: creating {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        if let Err(e) = std::fs::write(path, &out.json) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("   fleet report written to {path}");
    }
    if cli.check_invariants {
        eprintln!("   invariants checked on every member: {} violation(s)", out.violations);
        if out.violations > 0 {
            std::process::exit(1);
        }
    }
}

/// Replays every unique job's captured timeline through the control-loop
/// invariant rules; prints each violation and returns the total count.
fn check_invariants(jobs: &[Job]) -> usize {
    use converge_trace::invariant::{check_records, InvariantConfig};
    let mut total = 0usize;
    for job in jobs {
        let run = CellCache::global().get_or_run(job);
        let Some(records) = &run.trace else {
            eprintln!(
                "   warning: no timeline to check for {}",
                job.fingerprint()
            );
            continue;
        };
        let violations = check_records(records, InvariantConfig::default());
        for v in &violations {
            eprintln!("   VIOLATION {}: {v}", job.fingerprint());
        }
        total += violations.len();
    }
    eprintln!(
        "   invariants checked on {} timeline(s): {total} violation(s)",
        jobs.len()
    );
    total
}

/// Filesystem-safe rendering of a job fingerprint.
fn sanitize(fingerprint: &str) -> String {
    fingerprint
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// Writes one JSONL timeline plus one per-path summary per unique job.
fn write_traces(dir: &str, jobs: &[Job]) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
    let mut written = 0usize;
    for job in jobs {
        let run = CellCache::global().get_or_run(job);
        let Some(records) = &run.trace else {
            // Memoized before capture was armed (cannot happen in this
            // binary's flow, but the cache API allows it).
            eprintln!("   warning: no trace captured for {}", job.fingerprint());
            continue;
        };
        let fingerprint = job.fingerprint();
        let stem = sanitize(&fingerprint);
        let jsonl_path = format!("{dir}/{stem}.jsonl");
        std::fs::write(&jsonl_path, converge_trace::jsonl::render(&fingerprint, records))
            .map_err(|e| format!("writing {jsonl_path}: {e}"))?;
        let summary_path = format!("{dir}/{stem}.timeline.txt");
        std::fs::write(&summary_path, converge_trace::timeline::summarize(records))
            .map_err(|e| format!("writing {summary_path}: {e}"))?;
        written += 1;
    }
    eprintln!("   {written} trace timeline(s) written to {dir}/");
    Ok(())
}
