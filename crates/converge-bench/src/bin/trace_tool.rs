//! Bandwidth-trace utility: generate the synthetic scenario traces as CSV
//! (for plotting or external replay) and summarize trace files.
//!
//! ```text
//! trace-tool gen <stationary|walking|driving> <wifi|cella|cellb> <secs> <seed>
//! trace-tool info <file.csv>
//! ```

use converge_net::{trace, Carrier, RateTrace, Scenario, SimDuration, SimTime};

fn usage() -> ! {
    eprintln!(
        "usage:\n  trace-tool gen <stationary|walking|driving> <wifi|cella|cellb> <secs> <seed>\n  trace-tool info <file.csv>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            if args.len() != 5 {
                usage();
            }
            let scenario = match args[1].as_str() {
                "stationary" => Scenario::Stationary,
                "walking" => Scenario::Walking,
                "driving" => Scenario::Driving,
                _ => usage(),
            };
            let carrier = match args[2].as_str() {
                "wifi" => Carrier::Wifi,
                "cella" => Carrier::CellularA,
                "cellb" => Carrier::CellularB,
                _ => usage(),
            };
            let secs: u64 = args[3].parse().unwrap_or_else(|_| usage());
            let seed: u64 = args[4].parse().unwrap_or_else(|_| usage());
            let t = trace::synthesize(scenario, carrier, SimDuration::from_secs(secs), seed);
            print!("{}", t.to_csv());
        }
        Some("info") => {
            if args.len() != 2 {
                usage();
            }
            let text = std::fs::read_to_string(&args[1]).unwrap_or_else(|e| {
                eprintln!("cannot read {}: {e}", args[1]);
                std::process::exit(1);
            });
            let t = RateTrace::from_csv(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse {}: {e}", args[1]);
                std::process::exit(1);
            });
            let rates = t.rates();
            let min = rates.iter().min().copied().unwrap_or(0);
            let max = rates.iter().max().copied().unwrap_or(0);
            let below_10m = (0..t.span().as_secs_f64() as u64)
                .filter(|&s| t.rate_at(SimTime::from_secs(s)) < 10_000_000)
                .count();
            println!("segments:   {}", rates.len());
            println!("step:       {}", t.step());
            println!("span:       {}", t.span());
            println!("mean rate:  {:.2} Mbps", t.mean_rate() as f64 / 1e6);
            println!("min rate:   {:.2} Mbps", min as f64 / 1e6);
            println!("max rate:   {:.2} Mbps", max as f64 / 1e6);
            println!("sec <10Mbps: {below_10m}");
        }
        _ => usage(),
    }
}
