//! The work-stealing sweep engine and memoized cell cache.
//!
//! Experiments declare their work as a flat, ordered list of [`Job`]s plus
//! a fold that renders the jobs' reports into the printable table
//! ([`ExperimentSpec`]); the engine owns execution. [`run_sweep`] flattens
//! every selected experiment into one global job pool, dedups jobs by
//! their canonical fingerprint, executes the unique ones on a fixed-size
//! work-stealing thread pool (crossbeam deques fed from a shared
//! injector), and folds each experiment from reports fetched in
//! declaration order — so the report text is byte-identical no matter how
//! many workers run or in which order jobs finish.
//!
//! The [`CellCache`] memoizes `Job → CallReport` for the whole process:
//! any cell shared between experiments (fig3/table1, the ablations, the
//! FEC-tradeoff family) is simulated exactly once.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use converge_sim::CallReport;
use converge_trace::TraceRecord;

use crate::runner::{Job, Scale};

/// One memoized simulation: the report plus its execution cost and, when
/// the cache ran with trace capture on, the structured event timeline.
#[derive(Debug)]
pub struct CachedRun {
    /// The simulation's final report.
    pub report: CallReport,
    /// Wall-clock seconds the simulation took to execute.
    pub exec_s: f64,
    /// The captured trace timeline, `None` unless the job was executed
    /// with [`CellCache::set_trace_capture`] enabled.
    pub trace: Option<Vec<TraceRecord>>,
}

/// A concurrent memo cache of `Job → CallReport`, keyed by the canonical
/// cell fingerprint (the [`Job`] value: scenario, scheduler, FEC, streams,
/// coupling, duration, seed). The simulator is fully seeded, so equal jobs
/// are interchangeable and each is executed at most once; concurrent
/// requests for the same job block until the single execution finishes.
#[derive(Debug, Default)]
pub struct CellCache {
    entries: Mutex<HashMap<Job, Arc<OnceLock<Arc<CachedRun>>>>>,
    hits: AtomicU64,
    executed: AtomicU64,
    capture_trace: AtomicBool,
}

impl CellCache {
    /// An empty cache.
    pub fn new() -> Self {
        CellCache::default()
    }

    /// The process-wide cache shared by [`crate::runner::run_once`],
    /// [`crate::runner::run_seeds`], and the `experiments` binary.
    pub fn global() -> &'static CellCache {
        static GLOBAL: OnceLock<CellCache> = OnceLock::new();
        GLOBAL.get_or_init(CellCache::new)
    }

    /// Turns structured trace capture on or off for *subsequent*
    /// executions. Jobs already memoized keep whatever they recorded;
    /// enable capture before the first simulation (the `--trace` flag
    /// does this before the sweep starts).
    pub fn set_trace_capture(&self, on: bool) {
        self.capture_trace.store(on, Ordering::Relaxed);
    }

    /// Whether newly executed jobs capture their trace timeline.
    pub fn trace_capture(&self) -> bool {
        self.capture_trace.load(Ordering::Relaxed)
    }

    /// Whether the job's result is already memoized.
    pub fn contains(&self, job: &Job) -> bool {
        self.entries
            .lock()
            .expect("cache lock")
            .get(job)
            .is_some_and(|entry| entry.get().is_some())
    }

    /// Returns the memoized run for `job`, simulating it first if this is
    /// the first request for its fingerprint.
    pub fn get_or_run(&self, job: &Job) -> Arc<CachedRun> {
        let entry = {
            let mut map = self.entries.lock().expect("cache lock");
            map.entry(*job).or_default().clone()
        };
        let mut executed_here = false;
        let run = entry
            .get_or_init(|| {
                executed_here = true;
                let started = Instant::now();
                let (report, trace) = if self.trace_capture() {
                    let (report, records) = job.run_traced();
                    (report, Some(records))
                } else {
                    (job.run_uncached(), None)
                };
                Arc::new(CachedRun {
                    report,
                    exec_s: started.elapsed().as_secs_f64(),
                    trace,
                })
            })
            .clone();
        if executed_here {
            self.executed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        run
    }

    /// Simulations actually executed through this cache.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Requests served from memory without simulating.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

/// The rendering half of an experiment: consumes its jobs' reports, in
/// declaration order, and produces the printable report text.
pub type FoldFn = Box<dyn FnOnce(&[CallReport]) -> String>;

/// A declarative experiment: the jobs it needs plus the fold that renders
/// them. The engine owns execution.
pub struct ExperimentSpec {
    /// Every `Cell × seed` job, in the order `fold` expects reports.
    pub jobs: Vec<Job>,
    /// Renders the ordered reports into the experiment's report text.
    pub fold: FoldFn,
}

/// Sequential reader over an experiment's ordered reports, for fold
/// implementations that mirror their job-declaration loops.
pub struct Reports<'a> {
    all: &'a [CallReport],
    next: usize,
}

impl<'a> Reports<'a> {
    /// Wraps an ordered report slice.
    pub fn new(all: &'a [CallReport]) -> Self {
        Reports { all, next: 0 }
    }

    /// Takes the next `n` reports.
    pub fn take(&mut self, n: usize) -> &'a [CallReport] {
        let slice = &self.all[self.next..self.next + n];
        self.next += n;
        slice
    }

    /// Takes the next single report.
    pub fn one(&mut self) -> &'a CallReport {
        &self.take(1)[0]
    }
}

/// Executes a spec's jobs serially through `cache` and folds the report —
/// the one-shot path used by tests and the legacy per-experiment `run`
/// functions (which pass [`CellCache::global`]).
pub fn render(spec: ExperimentSpec, cache: &CellCache) -> String {
    let reports: Vec<CallReport> = spec
        .jobs
        .iter()
        .map(|job| cache.get_or_run(job).report.clone())
        .collect();
    (spec.fold)(&reports)
}

/// Per-experiment sweep accounting.
#[derive(Debug, Clone)]
pub struct ExpStats {
    /// Experiment ID.
    pub id: String,
    /// Jobs the experiment declared.
    pub jobs: usize,
    /// Jobs this experiment was first to claim and therefore paid to
    /// simulate.
    pub executed: usize,
    /// Jobs served from the memo cache (shared with another experiment in
    /// this sweep, or already warm in the process cache).
    pub cache_hits: usize,
    /// Summed execution seconds of the jobs it paid for.
    pub job_time_s: f64,
    /// Simulated call seconds across all its jobs.
    pub sim_s: f64,
}

/// Whole-sweep accounting, rendered to `BENCH_sweep.json` by
/// [`SweepStats::to_json`].
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// Scale the sweep ran at.
    pub scale: Scale,
    /// Worker-thread count (`--jobs`).
    pub workers: usize,
    /// Wall-clock seconds for the whole sweep (execution + folding).
    pub wall_s: f64,
    /// Total jobs declared across experiments.
    pub jobs: usize,
    /// Unique jobs actually simulated.
    pub executed: usize,
    /// Jobs resolved from the memo cache instead of simulating.
    pub cache_hits: usize,
    /// Simulated call seconds actually executed.
    pub sim_s: f64,
    /// Per-job execution wall times (one entry per executed job).
    pub job_times_s: Vec<f64>,
    /// Per-experiment breakdown.
    pub experiments: Vec<ExpStats>,
}

impl SweepStats {
    /// Simulated-seconds-per-wall-second throughput of the sweep.
    pub fn sim_s_per_wall_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.sim_s / self.wall_s
        } else {
            0.0
        }
    }

    /// Renders the machine-readable bench report (`BENCH_sweep.json`).
    pub fn to_json(&self) -> String {
        let (p50, p95) = {
            let qs = crate::stats::quantiles(&self.job_times_s, &[0.50, 0.95]);
            (qs[0], qs[1])
        };
        let mut exps = String::new();
        for (i, e) in self.experiments.iter().enumerate() {
            if i > 0 {
                exps.push(',');
            }
            exps.push_str(&format!(
                "\n    {{\"id\": {:?}, \"jobs\": {}, \"executed\": {}, \"cache_hits\": {}, \"job_time_s\": {:.3}, \"sim_s\": {:.1}}}",
                e.id, e.jobs, e.executed, e.cache_hits, e.job_time_s, e.sim_s
            ));
        }
        format!(
            "{{\n  \"schema\": \"converge-bench/sweep/v1\",\n  \"scale\": \"{:?}\",\n  \"workers\": {},\n  \"wall_s\": {:.3},\n  \"jobs\": {},\n  \"executed\": {},\n  \"cache_hits\": {},\n  \"sim_s\": {:.1},\n  \"sim_s_per_wall_s\": {:.2},\n  \"job_time_p50_s\": {:.3},\n  \"job_time_p95_s\": {:.3},\n  \"experiments\": [{}\n  ]\n}}\n",
            self.scale,
            self.workers,
            self.wall_s,
            self.jobs,
            self.executed,
            self.cache_hits,
            self.sim_s,
            self.sim_s_per_wall_s(),
            p50,
            p95,
            exps
        )
    }

    /// One-line human summary for stderr.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs ({} executed, {} cache hits) on {} worker(s) in {:.1}s — {:.0} sim-s/wall-s",
            self.jobs,
            self.executed,
            self.cache_hits,
            self.workers,
            self.wall_s,
            self.sim_s_per_wall_s()
        )
    }
}

/// Executes the experiments' pooled jobs on `workers` threads and folds
/// each experiment, returning `(id, report_text)` pairs in input order
/// plus the sweep accounting.
pub fn run_sweep(
    experiments: Vec<(String, ExperimentSpec)>,
    scale: Scale,
    workers: usize,
    cache: &CellCache,
) -> (Vec<(String, String)>, SweepStats) {
    let started = Instant::now();

    // Flatten every experiment into the global pool, dedup by fingerprint,
    // and record which experiment first claimed each unique job (that
    // experiment pays for its execution in the accounting).
    let mut unique: Vec<Job> = Vec::new();
    let mut owner: Vec<usize> = Vec::new();
    let mut slot_of: HashMap<Job, usize> = HashMap::new();
    for (exp_idx, (_, spec)) in experiments.iter().enumerate() {
        for job in &spec.jobs {
            slot_of.entry(*job).or_insert_with(|| {
                unique.push(*job);
                owner.push(exp_idx);
                unique.len() - 1
            });
        }
    }

    // Jobs already warm in the cache cost nothing; only the rest enter the
    // work-stealing pool.
    let cold: HashSet<usize> = (0..unique.len())
        .filter(|&slot| !cache.contains(&unique[slot]))
        .collect();
    let pending: Vec<Job> = cold.iter().map(|&slot| unique[slot]).collect();
    execute_pool(&pending, workers, cache);

    // Fold each experiment from reports fetched in declaration order.
    let mut outputs = Vec::with_capacity(experiments.len());
    let mut exp_stats = Vec::with_capacity(experiments.len());
    let mut job_times_s = Vec::new();
    let mut total_jobs = 0usize;
    let mut total_executed = 0usize;
    let mut executed_sim_s = 0.0f64;
    for (exp_idx, (id, spec)) in experiments.into_iter().enumerate() {
        let mut stats = ExpStats {
            id: id.clone(),
            jobs: spec.jobs.len(),
            executed: 0,
            cache_hits: 0,
            job_time_s: 0.0,
            sim_s: 0.0,
        };
        let reports: Vec<CallReport> = spec
            .jobs
            .iter()
            .map(|job| {
                let slot = slot_of[job];
                let run = cache.get_or_run(job);
                stats.sim_s += job.sim_seconds();
                if owner[slot] == exp_idx && cold.contains(&slot) {
                    stats.executed += 1;
                    stats.job_time_s += run.exec_s;
                    job_times_s.push(run.exec_s);
                    executed_sim_s += job.sim_seconds();
                } else {
                    stats.cache_hits += 1;
                }
                run.report.clone()
            })
            .collect();
        outputs.push((id, (spec.fold)(&reports)));
        total_jobs += stats.jobs;
        total_executed += stats.executed;
        exp_stats.push(stats);
    }

    let stats = SweepStats {
        scale,
        workers,
        wall_s: started.elapsed().as_secs_f64(),
        jobs: total_jobs,
        executed: total_executed,
        cache_hits: total_jobs - total_executed,
        sim_s: executed_sim_s,
        job_times_s,
        experiments: exp_stats,
    };
    (outputs, stats)
}

/// Runs the unique pending jobs to completion on a work-stealing pool:
/// every worker owns a local deque, takes batches from the shared
/// injector, and steals from siblings when both run dry.
fn execute_pool(jobs: &[Job], workers: usize, cache: &CellCache) {
    if jobs.is_empty() {
        return;
    }
    let n = workers.max(1).min(jobs.len());
    if n == 1 {
        for job in jobs {
            cache.get_or_run(job);
        }
        return;
    }
    use crossbeam::deque::{Injector, Stealer, Worker};
    let injector = Injector::new();
    for &job in jobs {
        injector.push(job);
    }
    let locals: Vec<Worker<Job>> = (0..n).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<Job>> = locals.iter().map(|w| w.stealer()).collect();
    crossbeam::thread::scope(|s| {
        for local in locals {
            let injector = &injector;
            let stealers = &stealers;
            s.spawn(move |_| {
                while let Some(job) = find_task(&local, injector, stealers) {
                    cache.get_or_run(&job);
                }
            });
        }
    })
    .expect("sweep scope");
}

/// The classic crossbeam-deque scheduling loop: pop locally, then take a
/// batch from the injector, then steal from a sibling.
fn find_task(
    local: &crossbeam::deque::Worker<Job>,
    global: &crossbeam::deque::Injector<Job>,
    stealers: &[crossbeam::deque::Stealer<Job>],
) -> Option<Job> {
    local.pop().or_else(|| {
        std::iter::repeat_with(|| {
            global
                .steal_batch_and_pop(local)
                .or_else(|| stealers.iter().map(|s| s.steal()).collect())
        })
        .find(|s| !s.is_retry())
        .and_then(|s| s.success())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Cell, ScenarioSpec};
    use converge_net::SimDuration;
    use converge_sim::{FecKind, SchedulerKind};

    fn tiny_cell(loss_pct: f64) -> Cell {
        Cell::new(
            ScenarioSpec::fec_tradeoff_pct(loss_pct),
            SchedulerKind::Converge,
            FecKind::Converge,
            1,
        )
    }

    /// A 4-job spec over 5 s calls whose fold prints one line per job.
    fn tiny_spec() -> ExperimentSpec {
        let duration = SimDuration::from_secs(5);
        let jobs: Vec<Job> = [(0.0, 1), (0.0, 2), (3.0, 1), (3.0, 2)]
            .iter()
            .map(|&(loss, seed)| Job::new(tiny_cell(loss), duration, seed))
            .collect();
        let fold_jobs = jobs.clone();
        ExperimentSpec {
            jobs,
            fold: Box::new(move |reports| {
                let mut out = String::new();
                for (job, r) in fold_jobs.iter().zip(reports) {
                    out.push_str(&format!(
                        "{} {} {} {:.3}\n",
                        job.fingerprint(),
                        r.frames_decoded,
                        r.frames_dropped,
                        r.e2e_mean_ms
                    ));
                }
                out
            }),
        }
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        let serial_cache = CellCache::new();
        let (serial, serial_stats) = run_sweep(
            vec![("tiny".into(), tiny_spec())],
            Scale::Quick,
            1,
            &serial_cache,
        );
        let parallel_cache = CellCache::new();
        let (parallel, parallel_stats) = run_sweep(
            vec![("tiny".into(), tiny_spec())],
            Scale::Quick,
            4,
            &parallel_cache,
        );
        assert!(!serial[0].1.is_empty());
        assert_eq!(serial[0].1, parallel[0].1, "reports must be byte-identical");
        assert_eq!(serial_stats.executed, 4);
        assert_eq!(parallel_stats.executed, 4);
        assert_eq!(parallel_stats.cache_hits, 0);
    }

    #[test]
    fn repeated_cell_simulates_once() {
        let cache = CellCache::new();
        let job = Job::new(tiny_cell(0.0), SimDuration::from_secs(5), 7);
        let first = cache.get_or_run(&job);
        let second = cache.get_or_run(&job);
        assert_eq!(cache.executed(), 1, "one simulation for a repeated cell");
        assert_eq!(cache.hits(), 1);
        assert_eq!(first.report.frames_decoded, second.report.frames_decoded);
    }

    #[test]
    fn shared_cells_across_experiments_execute_once() {
        let cache = CellCache::new();
        let (outputs, stats) = run_sweep(
            vec![("a".into(), tiny_spec()), ("b".into(), tiny_spec())],
            Scale::Quick,
            2,
            &cache,
        );
        assert_eq!(outputs[0].1, outputs[1].1);
        assert_eq!(stats.jobs, 8);
        assert_eq!(stats.executed, 4, "the duplicate experiment costs nothing");
        assert_eq!(stats.cache_hits, 4);
        assert_eq!(stats.experiments[0].executed, 4);
        assert_eq!(stats.experiments[1].executed, 0);
        assert_eq!(stats.experiments[1].cache_hits, 4);
        assert_eq!(cache.executed(), 4);
    }

    #[test]
    fn warm_cache_turns_jobs_into_hits() {
        let cache = CellCache::new();
        let spec = tiny_spec();
        for job in &spec.jobs {
            cache.get_or_run(job);
        }
        let (_, stats) = run_sweep(vec![("warm".into(), spec)], Scale::Quick, 2, &cache);
        assert_eq!(stats.executed, 0);
        assert_eq!(stats.cache_hits, 4);
    }

    /// The tentpole determinism guarantee: the JSONL timeline of every
    /// job is byte-identical whether the sweep ran on 1 worker or 4,
    /// because each timeline is captured inside its own single-threaded,
    /// fully seeded simulation.
    #[test]
    fn captured_traces_are_byte_identical_across_worker_counts() {
        let render_traces = |workers: usize| -> Vec<(String, String)> {
            let cache = CellCache::new();
            cache.set_trace_capture(true);
            let spec = tiny_spec();
            let jobs = spec.jobs.clone();
            run_sweep(vec![("tiny".into(), spec)], Scale::Quick, workers, &cache);
            jobs.iter()
                .map(|job| {
                    let run = cache.get_or_run(job);
                    let records = run.trace.as_ref().expect("capture was armed");
                    assert!(!records.is_empty(), "{}", job.fingerprint());
                    (
                        job.fingerprint(),
                        converge_trace::jsonl::render(&job.fingerprint(), records),
                    )
                })
                .collect()
        };
        let serial = render_traces(1);
        let parallel = render_traces(4);
        assert_eq!(serial, parallel, "timelines must not depend on --jobs");
    }

    #[test]
    fn trace_capture_is_off_by_default() {
        let cache = CellCache::new();
        let job = Job::new(tiny_cell(0.0), SimDuration::from_secs(5), 3);
        assert!(!cache.trace_capture());
        assert!(cache.get_or_run(&job).trace.is_none());
    }

    #[test]
    fn bench_json_is_well_formed() {
        let cache = CellCache::new();
        let (_, stats) = run_sweep(vec![("tiny".into(), tiny_spec())], Scale::Quick, 2, &cache);
        let json = stats.to_json();
        assert!(json.contains("\"schema\": \"converge-bench/sweep/v1\""));
        assert!(json.contains("\"experiments\": ["));
        assert!(json.contains("\"id\": \"tiny\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        assert!(!stats.summary().is_empty());
    }
}
