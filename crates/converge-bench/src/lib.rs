//! # converge-bench
//!
//! Experiment regenerators for every table and figure of the Converge
//! (SIGCOMM 2023) evaluation, plus the shared run/aggregate machinery.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p converge-bench --bin experiments -- all --jobs 8
//! ```
//!
//! or a single experiment (`fig3`, `table5`, ...); add `--quick` for short
//! smoke runs, `--jobs N` to size the work-stealing pool, and
//! `--bench-json PATH` for a machine-readable sweep report. Experiments
//! declare `Cell × seed` jobs; the sweep engine ([`sweep`]) dedups them by
//! canonical fingerprint, executes each unique job once on the pool, and
//! memoizes reports in a process-wide cache. Criterion micro-benches for
//! the hot paths live in `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod runner;
pub mod stats;
pub mod sweep;

pub use runner::{mean_std, metric, pm, run_once, run_seeds, Cell, Job, Scale, ScenarioSpec};
pub use stats::{cdf, quantile, quantiles};
pub use sweep::{render, run_sweep, CellCache, ExperimentSpec, Reports, SweepStats};
