//! # converge-bench
//!
//! Experiment regenerators for every table and figure of the Converge
//! (SIGCOMM 2023) evaluation, plus the shared run/aggregate machinery.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p converge-bench --bin experiments -- all
//! ```
//!
//! or a single experiment (`fig3`, `table5`, ...); add `--quick` for short
//! smoke runs. Criterion micro-benches for the hot paths live in
//! `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod runner;
pub mod stats;

pub use runner::{mean_std, metric, pm, run_once, run_seeds, Cell, Scale};
pub use stats::{cdf, quantile, quantiles};
