//! Shared experiment machinery: repeated seeded runs, aggregation, and
//! parallel sweeps.

use converge_net::SimDuration;
use converge_sim::{CallReport, FecKind, ScenarioConfig, SchedulerKind, Session, SessionConfig};

/// One experiment cell: a scenario × system × stream-count combination.
#[derive(Clone)]
pub struct Cell {
    /// Builds the scenario for a given (duration, seed).
    pub scenario: fn(SimDuration, u64) -> ScenarioConfig,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// FEC policy under test.
    pub fec: FecKind,
    /// Camera streams.
    pub streams: u8,
}

/// Experiment scale: full reproduces the paper's 3-minute calls; quick is
/// for smoke runs and CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 180 s calls, 3 seeds.
    Full,
    /// 30 s calls, 2 seeds.
    Quick,
}

impl Scale {
    /// Call duration at this scale.
    pub fn duration(self) -> SimDuration {
        match self {
            Scale::Full => SimDuration::from_secs(180),
            Scale::Quick => SimDuration::from_secs(30),
        }
    }

    /// Seeds to average over.
    pub fn seeds(self) -> &'static [u64] {
        match self {
            Scale::Full => &[11, 42, 77],
            Scale::Quick => &[11, 42],
        }
    }
}

/// Runs one cell once.
pub fn run_once(cell: &Cell, duration: SimDuration, seed: u64) -> CallReport {
    let scenario = (cell.scenario)(duration, seed);
    let config = SessionConfig::paper_default(
        scenario,
        cell.scheduler,
        cell.fec,
        cell.streams,
        duration,
        seed,
    );
    Session::new(config).run()
}

/// Runs one cell over every seed of the scale, in parallel, returning every
/// report.
pub fn run_seeds(cell: &Cell, scale: Scale) -> Vec<CallReport> {
    let duration = scale.duration();
    let seeds = scale.seeds();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let cell = cell.clone();
                s.spawn(move |_| run_once(&cell, duration, seed))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run"))
            .collect()
    })
    .expect("scope")
}

/// Mean and sample standard deviation of a series.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Formats `mean ± std` compactly.
pub fn pm(values: &[f64], decimals: usize) -> String {
    let (m, s) = mean_std(values);
    format!("{m:.decimals$} ± {s:.decimals$}")
}

/// Extracts a metric from each report.
pub fn metric(reports: &[CallReport], f: impl Fn(&CallReport) -> f64) -> Vec<f64> {
    reports.iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 6.0]);
        assert_eq!(m, 4.0);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]), (5.0, 0.0));
    }

    #[test]
    fn pm_formats() {
        assert_eq!(pm(&[1.0, 3.0], 1), "2.0 ± 1.4");
    }

    #[test]
    fn quick_scale_runs() {
        let cell = Cell {
            scenario: |_, _| ScenarioConfig::fec_tradeoff(0.0),
            scheduler: SchedulerKind::Converge,
            fec: FecKind::Converge,
            streams: 1,
        };
        let report = run_once(&cell, SimDuration::from_secs(5), 1);
        assert!(report.frames_decoded > 0);
    }

    #[test]
    fn run_seeds_parallel() {
        let cell = Cell {
            scenario: |_, _| ScenarioConfig::fec_tradeoff(0.0),
            scheduler: SchedulerKind::Converge,
            fec: FecKind::Converge,
            streams: 1,
        };
        // Abbreviated: 2 seeds at quick scale.
        let reports = crossbeam::thread::scope(|s| {
            let h1 = s.spawn(|_| run_once(&cell, SimDuration::from_secs(5), 1));
            let h2 = s.spawn(|_| run_once(&cell, SimDuration::from_secs(5), 2));
            (h1.join().unwrap(), h2.join().unwrap())
        })
        .unwrap();
        assert!(reports.0.frames_decoded > 0);
        assert!(reports.1.frames_decoded > 0);
    }
}
