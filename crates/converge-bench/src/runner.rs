//! Shared experiment machinery: declarative experiment cells, the jobs the
//! sweep engine executes, and the seeded-run helpers used by tests.
//!
//! A [`Cell`] is a fully declarative description of one experiment point
//! (scenario × scheduler × FEC × streams × CC coupling); a [`Job`] pins it
//! to a concrete duration and seed. Because the simulator is a pure
//! function of its configuration and seed, equal jobs produce identical
//! [`CallReport`]s — which is what lets the sweep engine
//! ([`crate::sweep`]) fingerprint, dedup, and memoize them.

use std::sync::Arc;

use converge_net::{QueueDiscipline, RateTrace, SimDuration};
use converge_sim::{
    CallReport, ControllerKind, DriveFixture, FecKind, ImpairmentKind, ScenarioConfig,
    SchedulerKind, Session, SessionConfig,
};
use converge_trace::{InvariantSink, RingSink, TraceHandle, TraceRecord, Violation};

pub use crate::stats::{mean_std, metric, pm};
use crate::sweep::CellCache;

/// Declarative scenario selector: a canonical, hashable description of the
/// network setup. Replaces the old `fn(SimDuration, u64) -> ScenarioConfig`
/// pointer so cells can be fingerprinted and memoized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioSpec {
    /// §6.1 walking: WiFi + "T-Mobile"-like cellular.
    Walking,
    /// §6.1 driving: two cellular carriers.
    Driving,
    /// Appendix A stationary: stable WiFi + cellular.
    Stationary,
    /// Fig. 11 path-collapse scenario (path 2 dips between 30 s and 90 s).
    FeedbackBenefit,
    /// Figs. 12/13 and Table 5: two 15 Mbps / 100 ms RTT paths with random
    /// loss, stored in milli-percent so the cell stays hashable
    /// (`3_000` = 3 % loss).
    FecTradeoff {
        /// Loss rate in thousandths of a percent.
        loss_milli_pct: u32,
    },
    /// The AQM ablation's network: two constant 10 Mbps / 40 ms paths
    /// under either drop-tail or CoDel.
    AqmTuned {
        /// Run CoDel instead of drop-tail at the bottleneck.
        codel: bool,
    },
    /// The fault-injection matrix: a clean reference path plus a path
    /// carrying one named impairment.
    Chaos {
        /// Which fault path 1 carries.
        kind: ImpairmentKind,
    },
    /// Replays a committed multi-path drive fixture (4–8 paths of
    /// rate/OWD/loss captures). The fixture enum keeps the cell hashable;
    /// the capture itself is embedded at compile time.
    Drive {
        /// Which committed fixture to replay.
        fixture: DriveFixture,
    },
    /// The 4–8 path mixed WiFi/cellular/satellite topology
    /// ([`ScenarioConfig::multi_carrier`]).
    MultiCarrier {
        /// Path count, 4–8.
        paths: u8,
    },
}

impl ScenarioSpec {
    /// `FecTradeoff` from a percent loss rate (e.g. `3.0` for 3 %).
    pub fn fec_tradeoff_pct(loss_pct: f64) -> Self {
        ScenarioSpec::FecTradeoff {
            loss_milli_pct: (loss_pct * 1_000.0).round() as u32,
        }
    }

    /// Canonical identifier used in job fingerprints.
    pub fn id(self) -> String {
        match self {
            ScenarioSpec::Walking => "walking".into(),
            ScenarioSpec::Driving => "driving".into(),
            ScenarioSpec::Stationary => "stationary".into(),
            ScenarioSpec::FeedbackBenefit => "feedback-benefit".into(),
            ScenarioSpec::FecTradeoff { loss_milli_pct } => {
                format!("fec-tradeoff-{loss_milli_pct}mpct")
            }
            ScenarioSpec::AqmTuned { codel } => {
                format!("aqm-{}", if codel { "codel" } else { "drop-tail" })
            }
            ScenarioSpec::Chaos { kind } => format!("chaos-{}", kind.id()),
            ScenarioSpec::Drive { fixture } => format!("drive-{}", fixture.id()),
            ScenarioSpec::MultiCarrier { paths } => format!("multi-carrier-{paths}"),
        }
    }

    /// Builds the concrete scenario for a `(duration, seed)`.
    pub fn build(self, duration: SimDuration, seed: u64) -> ScenarioConfig {
        match self {
            ScenarioSpec::Walking => ScenarioConfig::walking(duration, seed),
            ScenarioSpec::Driving => ScenarioConfig::driving(duration, seed),
            ScenarioSpec::Stationary => ScenarioConfig::stationary(duration, seed),
            ScenarioSpec::FeedbackBenefit => ScenarioConfig::feedback_benefit(duration, seed),
            ScenarioSpec::FecTradeoff { loss_milli_pct } => {
                ScenarioConfig::fec_tradeoff(loss_milli_pct as f64 / 1_000.0)
            }
            ScenarioSpec::AqmTuned { codel } => {
                let discipline = if codel {
                    QueueDiscipline::codel_default()
                } else {
                    QueueDiscipline::DropTail
                };
                let mut scenario = ScenarioConfig::fec_tradeoff(0.0);
                for p in &mut scenario.paths {
                    p.rate = RateTrace::constant(10_000_000);
                    p.propagation = SimDuration::from_millis(40);
                    p.discipline = discipline.clone();
                }
                scenario
            }
            ScenarioSpec::Chaos { kind } => ScenarioConfig::chaos(kind),
            ScenarioSpec::Drive { fixture } => fixture.scenario(),
            ScenarioSpec::MultiCarrier { paths } => {
                ScenarioConfig::multi_carrier(paths as usize, duration, seed)
            }
        }
    }
}

/// One experiment cell: a scenario × system × stream-count combination
/// (plus the CC-coupling knob of the coupling ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cell {
    /// Network scenario.
    pub scenario: ScenarioSpec,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// FEC policy under test.
    pub fec: FecKind,
    /// Camera streams.
    pub streams: u8,
    /// LIA-style coupled congestion control (the coupling ablation);
    /// `false` everywhere else, matching the paper.
    pub coupled_cc: bool,
    /// Per-path congestion-control algorithm (GCC everywhere except the
    /// controller shootout).
    pub controller: ControllerKind,
}

impl Cell {
    /// A cell with the paper's default (uncoupled GCC) congestion control.
    pub fn new(
        scenario: ScenarioSpec,
        scheduler: SchedulerKind,
        fec: FecKind,
        streams: u8,
    ) -> Self {
        Cell {
            scenario,
            scheduler,
            fec,
            streams,
            coupled_cc: false,
            controller: ControllerKind::Gcc,
        }
    }

    /// The same cell under a different congestion controller.
    pub fn with_controller(mut self, controller: ControllerKind) -> Self {
        self.controller = controller;
        self
    }
}

/// A unit of sweep work: one [`Cell`] at a concrete duration and seed.
/// The `Job` value itself is the canonical cell fingerprint the memo cache
/// keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    /// The cell.
    pub cell: Cell,
    /// Call duration.
    pub duration: SimDuration,
    /// Master seed.
    pub seed: u64,
}

impl Job {
    /// Pins a cell to a duration and seed.
    pub fn new(cell: Cell, duration: SimDuration, seed: u64) -> Self {
        Job {
            cell,
            duration,
            seed,
        }
    }

    /// The canonical fingerprint (scenario, scheduler, FEC, streams,
    /// coupling, controller, duration, seed) rendered as text for logs.
    pub fn fingerprint(&self) -> String {
        format!(
            "{}|{:?}|{:?}|s{}|cc{}|{}|d{}us|seed{}",
            self.cell.scenario.id(),
            self.cell.scheduler,
            self.cell.fec,
            self.cell.streams,
            self.cell.coupled_cc as u8,
            self.cell.controller.id(),
            self.duration.as_micros(),
            self.seed
        )
    }

    /// Simulated call seconds this job covers.
    pub fn sim_seconds(&self) -> f64 {
        self.duration.as_secs_f64()
    }

    /// The session config this job describes, with the given trace handle.
    fn config(&self, trace: TraceHandle) -> SessionConfig {
        SessionConfig::builder()
            .scenario(self.cell.scenario.build(self.duration, self.seed))
            .scheduler(self.cell.scheduler)
            .fec(self.cell.fec)
            .streams(self.cell.streams)
            .duration(self.duration)
            .seed(self.seed)
            .coupled_cc(self.cell.coupled_cc)
            .controller(self.cell.controller)
            .trace(trace)
            .build()
            .expect("job parameters form a valid session config")
    }

    /// Runs the simulation for this job, bypassing the memo cache.
    pub fn run_uncached(&self) -> CallReport {
        Session::new(self.config(TraceHandle::disabled())).run()
    }

    /// Runs the simulation for this job with trace capture on, returning
    /// the report plus the full event timeline. The session itself is
    /// single-threaded and fully seeded, so the timeline is a pure
    /// function of the job — identical no matter how many sweep workers
    /// run around it.
    pub fn run_traced(&self) -> (CallReport, Vec<TraceRecord>) {
        let sink = Arc::new(RingSink::new(TRACE_RING_CAPACITY));
        let report = Session::new(self.config(TraceHandle::new(sink.clone()))).run();
        (report, sink.drain())
    }

    /// Runs the job with trace capture *and* the control-loop invariant
    /// checker armed as a tee: the timeline is identical to
    /// [`Job::run_traced`], plus any invariant violations observed.
    pub fn run_checked(&self) -> (CallReport, Vec<TraceRecord>, Vec<Violation>) {
        let sink = Arc::new(RingSink::new(TRACE_RING_CAPACITY));
        let checker = Arc::new(InvariantSink::wrapping(&TraceHandle::new(sink.clone())));
        let report = Session::new(self.config(TraceHandle::new(checker.clone()))).run();
        (report, sink.drain(), checker.take_violations())
    }
}

/// Ring capacity for captured timelines: large enough that a 180 s call
/// never wraps (a full-scale job emits well under a million events).
const TRACE_RING_CAPACITY: usize = 1 << 21;

/// Experiment scale: full reproduces the paper's 3-minute calls; quick is
/// for smoke runs and CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 180 s calls, 3 seeds.
    Full,
    /// 30 s calls, 2 seeds.
    Quick,
}

impl Scale {
    /// Call duration at this scale.
    pub fn duration(self) -> SimDuration {
        match self {
            Scale::Full => SimDuration::from_secs(180),
            Scale::Quick => SimDuration::from_secs(30),
        }
    }

    /// Seeds to average over.
    pub fn seeds(self) -> &'static [u64] {
        match self {
            Scale::Full => &[11, 42, 77],
            Scale::Quick => &[11, 42],
        }
    }
}

/// Runs one cell once through `cache`: repeated runs of the same
/// fingerprint are simulated only once per cache. Pass
/// [`CellCache::global`] for the process-wide cache.
pub fn run_once(cache: &CellCache, cell: &Cell, duration: SimDuration, seed: u64) -> CallReport {
    cache
        .get_or_run(&Job::new(*cell, duration, seed))
        .report
        .clone()
}

/// Runs one cell over every seed of the scale, in parallel, returning the
/// reports in seed order. Results are memoized in `cache`; pass
/// [`CellCache::global`] for the process-wide cache.
pub fn run_seeds(cache: &CellCache, cell: &Cell, scale: Scale) -> Vec<CallReport> {
    let duration = scale.duration();
    let seeds = scale.seeds();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let job = Job::new(*cell, duration, seed);
                s.spawn(move |_| cache.get_or_run(&job).report.clone())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run"))
            .collect()
    })
    .expect("scope")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_runs() {
        let cell = Cell::new(
            ScenarioSpec::fec_tradeoff_pct(0.0),
            SchedulerKind::Converge,
            FecKind::Converge,
            1,
        );
        let report = run_once(&CellCache::new(), &cell, SimDuration::from_secs(5), 1);
        assert!(report.frames_decoded > 0);
    }

    #[test]
    fn run_seeds_parallel() {
        let cell = Cell::new(
            ScenarioSpec::fec_tradeoff_pct(0.0),
            SchedulerKind::Converge,
            FecKind::Converge,
            1,
        );
        // Abbreviated: 2 seeds at quick scale.
        let cache = CellCache::new();
        let reports = crossbeam::thread::scope(|s| {
            let h1 = s.spawn(|_| run_once(&cache, &cell, SimDuration::from_secs(5), 1));
            let h2 = s.spawn(|_| run_once(&cache, &cell, SimDuration::from_secs(5), 2));
            (h1.join().unwrap(), h2.join().unwrap())
        })
        .unwrap();
        assert!(reports.0.frames_decoded > 0);
        assert!(reports.1.frames_decoded > 0);
    }

    #[test]
    fn traced_run_matches_untraced_report_and_is_monotone() {
        let cell = Cell::new(
            ScenarioSpec::fec_tradeoff_pct(2.0),
            SchedulerKind::Converge,
            FecKind::Converge,
            1,
        );
        let job = Job::new(cell, SimDuration::from_secs(5), 1);
        let (report, records) = job.run_traced();
        let plain = job.run_uncached();
        assert_eq!(report.frames_decoded, plain.frames_decoded);
        assert_eq!(report.nacks_sent, plain.nacks_sent);
        assert!(!records.is_empty());
        assert!(
            records.windows(2).all(|w| w[0].at <= w[1].at),
            "timeline must be monotone"
        );
    }

    #[test]
    fn scenario_specs_build_and_fingerprint() {
        let d = SimDuration::from_secs(10);
        for spec in [
            ScenarioSpec::Walking,
            ScenarioSpec::Driving,
            ScenarioSpec::Stationary,
            ScenarioSpec::FeedbackBenefit,
            ScenarioSpec::fec_tradeoff_pct(3.0),
            ScenarioSpec::AqmTuned { codel: true },
            ScenarioSpec::Chaos {
                kind: ImpairmentKind::Blackout,
            },
        ] {
            let scenario = spec.build(d, 1);
            assert_eq!(scenario.paths.len(), 2, "{}", spec.id());
            assert!(!spec.id().is_empty());
        }
        // Milli-percent preserves the sweep's fractional loss rates exactly.
        assert_eq!(
            ScenarioSpec::fec_tradeoff_pct(3.0),
            ScenarioSpec::FecTradeoff {
                loss_milli_pct: 3_000
            }
        );
    }

    #[test]
    fn wide_scenario_specs_build_their_full_topologies() {
        let d = SimDuration::from_secs(10);
        for fixture in DriveFixture::ALL {
            let spec = ScenarioSpec::Drive { fixture };
            assert_eq!(spec.build(d, 1).paths.len(), fixture.path_count());
            assert_eq!(spec.id(), format!("drive-{}", fixture.id()));
        }
        for paths in 4..=8u8 {
            let spec = ScenarioSpec::MultiCarrier { paths };
            assert_eq!(spec.build(d, 1).paths.len(), paths as usize);
            assert_eq!(spec.id(), format!("multi-carrier-{paths}"));
        }
    }

    #[test]
    fn checked_run_matches_traced_and_is_clean() {
        let cell = Cell::new(
            ScenarioSpec::Chaos {
                kind: ImpairmentKind::Flap,
            },
            SchedulerKind::Converge,
            FecKind::Converge,
            1,
        );
        let job = Job::new(cell, SimDuration::from_secs(10), 11);
        let (report, records, violations) = job.run_checked();
        assert!(violations.is_empty(), "{violations:?}");
        let (plain_report, plain_records) = job.run_traced();
        assert_eq!(report.frames_decoded, plain_report.frames_decoded);
        assert_eq!(records, plain_records, "checker tee must not alter the timeline");
    }

    #[test]
    fn distinct_jobs_have_distinct_fingerprints() {
        let cell = Cell::new(
            ScenarioSpec::Driving,
            SchedulerKind::Converge,
            FecKind::Converge,
            1,
        );
        let d = SimDuration::from_secs(30);
        let a = Job::new(cell, d, 11);
        let b = Job::new(cell, d, 42);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), Job::new(cell, d, 11).fingerprint());
        let mut coupled = cell;
        coupled.coupled_cc = true;
        assert_ne!(Job::new(coupled, d, 11).fingerprint(), a.fingerprint());
        // The controller axis is part of the cell identity too.
        let nada = cell.with_controller(ControllerKind::Nada);
        assert_ne!(Job::new(nada, d, 11).fingerprint(), a.fingerprint());
    }
}
