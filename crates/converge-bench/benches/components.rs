//! Criterion micro-benches for the hot paths: scheduler batch assignment,
//! XOR FEC encode/recover, receiver packet-buffer insertion, and GCC
//! feedback processing.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use converge_core::{
    classify, ConvergeScheduler, ConvergeSchedulerConfig, MRtpScheduler, MTputScheduler,
    PathMetrics, Schedulable, Scheduler, SrttScheduler,
};
use converge_gcc::{GccConfig, GccController, PacketTiming};
use converge_net::{PathId, SimDuration, SimTime};
use converge_rtp::fec;
use converge_video::{
    EncoderConfig, PacketBuffer, Packetizer, PacketizerConfig, StreamId, VideoEncoder,
};

fn paths() -> Vec<PathMetrics> {
    vec![
        PathMetrics::new(PathId(0), 15_000_000, SimDuration::from_millis(40), 0.01),
        PathMetrics::new(PathId(1), 5_000_000, SimDuration::from_millis(70), 0.03),
    ]
}

fn frame_batch(n_frames: usize) -> Vec<Schedulable> {
    let mut enc = VideoEncoder::new(EncoderConfig::paper_default(StreamId(0)));
    let mut pkt = Packetizer::new(PacketizerConfig::default());
    let mut out = Vec::new();
    for i in 0..n_frames {
        let frame = enc.encode(SimTime::from_micros(i as u64 * 33_333));
        for p in pkt.packetize(&frame) {
            out.push(Schedulable {
                packet: p,
                class: classify(&p),
            });
        }
    }
    out
}

fn bench_schedulers(c: &mut Criterion) {
    let batch = frame_batch(1);
    let paths = paths();
    let mut group = c.benchmark_group("scheduler/assign_batch");
    let mut schedulers: Vec<(&str, Box<dyn Scheduler>)> = vec![
        (
            "converge",
            Box::new(ConvergeScheduler::new(ConvergeSchedulerConfig::default())),
        ),
        (
            "srtt",
            Box::new(SrttScheduler::new(1250, SimDuration::from_micros(33_333))),
        ),
        ("m-tput", Box::new(MTputScheduler::new())),
        ("m-rtp", Box::new(MRtpScheduler::new())),
    ];
    for (name, sched) in schedulers.iter_mut() {
        group.bench_with_input(BenchmarkId::from_parameter(*name), &batch, |b, batch| {
            b.iter(|| sched.assign_batch(SimTime::ZERO, std::hint::black_box(batch), &paths));
        });
    }
    group.finish();
}

fn bench_fec(c: &mut Criterion) {
    let mut group = c.benchmark_group("fec/xor");
    for k in [4usize, 10, 30] {
        let packets: Vec<(u16, Bytes)> = (0..k as u16)
            .map(|s| (s, Bytes::from(vec![s as u8; 1200])))
            .collect();
        group.bench_with_input(BenchmarkId::new("encode", k), &packets, |b, pkts| {
            b.iter(|| fec::encode_one(std::hint::black_box(pkts)));
        });
        let grp = fec::encode_one(&packets);
        let received: Vec<(u16, Bytes)> = packets[1..].to_vec();
        group.bench_with_input(BenchmarkId::new("recover", k), &received, |b, recv| {
            b.iter(|| fec::recover(&grp, std::hint::black_box(recv)));
        });
    }
    group.finish();
}

fn bench_packet_buffer(c: &mut Criterion) {
    let batch = frame_batch(30);
    c.bench_function("receiver/packet_buffer_30frames", |b| {
        b.iter(|| {
            let mut buf = PacketBuffer::new(768);
            for (i, s) in batch.iter().enumerate() {
                let _ = buf.insert(SimTime::from_micros(i as u64 * 100), &s.packet);
            }
            buf.len()
        });
    });
}

fn bench_gcc(c: &mut Criterion) {
    let timings: Vec<PacketTiming> = (0..100u64)
        .map(|i| PacketTiming {
            send_time: SimTime::from_micros(i * 1_000),
            arrival_time: SimTime::from_micros(i * 1_000 + 30_000),
            size: 1200,
        })
        .collect();
    c.bench_function("gcc/transport_feedback_100pkts", |b| {
        b.iter(|| {
            let mut ctl = GccController::new(GccConfig::default());
            ctl.on_transport_feedback(SimTime::from_millis(130), std::hint::black_box(&timings));
            ctl.target_rate_bps()
        });
    });
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_fec,
    bench_packet_buffer,
    bench_gcc
);
criterion_main!(benches);
