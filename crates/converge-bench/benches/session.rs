//! Criterion end-to-end session benches: a short conference call per
//! system, measuring full simulation cost (sender + network + receiver),
//! plus the sweep engine's memo-cache hit path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use converge_bench::{Cell, CellCache, Job, ScenarioSpec};
use converge_net::SimDuration;
use converge_sim::{FecKind, SchedulerKind};

fn bench_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("session/10s_driving_call");
    group.sample_size(10);
    let systems: Vec<(&str, SchedulerKind, FecKind)> = vec![
        ("converge", SchedulerKind::Converge, FecKind::Converge),
        ("webrtc", SchedulerKind::SinglePath(0), FecKind::WebRtcTable),
        ("m-tput", SchedulerKind::MTput, FecKind::WebRtcTable),
        ("srtt", SchedulerKind::Srtt, FecKind::WebRtcTable),
        ("m-rtp", SchedulerKind::MRtp, FecKind::WebRtcTable),
    ];
    for (name, scheduler, fec) in systems {
        let job = Job::new(
            Cell::new(ScenarioSpec::Driving, scheduler, fec, 1),
            SimDuration::from_secs(10),
            42,
        );
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| std::hint::black_box(&job).run_uncached().frames_decoded);
        });
    }
    group.finish();
}

fn bench_cell_cache(c: &mut Criterion) {
    let job = Job::new(
        Cell::new(
            ScenarioSpec::Driving,
            SchedulerKind::Converge,
            FecKind::Converge,
            1,
        ),
        SimDuration::from_secs(10),
        42,
    );
    let cache = CellCache::new();
    cache.get_or_run(&job); // warm the entry; the bench measures pure hits
    c.bench_function("sweep/cell_cache_hit", |b| {
        b.iter(|| {
            cache
                .get_or_run(std::hint::black_box(&job))
                .report
                .frames_decoded
        });
    });
}

criterion_group!(benches, bench_sessions, bench_cell_cache);
criterion_main!(benches);
