//! Criterion end-to-end session benches: a short conference call per
//! system, measuring full simulation cost (sender + network + receiver).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use converge_net::SimDuration;
use converge_sim::{FecKind, ScenarioConfig, SchedulerKind, Session, SessionConfig};

fn bench_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("session/10s_driving_call");
    group.sample_size(10);
    let systems: Vec<(&str, SchedulerKind, FecKind)> = vec![
        ("converge", SchedulerKind::Converge, FecKind::Converge),
        ("webrtc", SchedulerKind::SinglePath(0), FecKind::WebRtcTable),
        ("m-tput", SchedulerKind::MTput, FecKind::WebRtcTable),
        ("srtt", SchedulerKind::Srtt, FecKind::WebRtcTable),
        ("m-rtp", SchedulerKind::MRtp, FecKind::WebRtcTable),
    ];
    for (name, scheduler, fec) in systems {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let duration = SimDuration::from_secs(10);
                let config = SessionConfig::paper_default(
                    ScenarioConfig::driving(duration, 42),
                    scheduler,
                    fec,
                    1,
                    duration,
                    42,
                );
                Session::new(config).run().frames_decoded
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sessions);
criterion_main!(benches);
