//! Criterion benches for the structured-trace layer: the per-emit cost of
//! a disabled handle versus live sinks, and the end-to-end cost a trace
//! handle adds to a full session. The disabled-handle results are the
//! acceptance gauge for the zero-overhead-when-disabled design: a
//! disabled emit is a branch on a `None`, so `session/traced_off` must be
//! indistinguishable from `session/untraced`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use converge_bench::{Cell, Job, ScenarioSpec};
use converge_net::{PathId, SimDuration, SimTime};
use converge_sim::{FecKind, SchedulerKind, Session, SessionConfig};
use converge_trace::{NullSink, RingSink, TraceEvent, TraceHandle};

fn bench_emit(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace/emit");
    let handles: Vec<(&str, TraceHandle)> = vec![
        ("disabled", TraceHandle::disabled()),
        ("null_sink", TraceHandle::new(Arc::new(NullSink))),
        ("ring_sink", TraceHandle::new(Arc::new(RingSink::new(1 << 16)))),
    ];
    for (name, trace) in handles {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                trace.emit(
                    SimTime::from_micros(t),
                    TraceEvent::SplitDecision {
                        path: PathId((t % 2) as u8),
                        packets: t as u32,
                        offset: -(t as i64),
                    },
                );
            });
        });
    }
    group.finish();
}

fn driving_job() -> Job {
    Job::new(
        Cell::new(
            ScenarioSpec::Driving,
            SchedulerKind::Converge,
            FecKind::Converge,
            1,
        ),
        SimDuration::from_secs(10),
        42,
    )
}

fn session_with(job: &Job, trace: TraceHandle) -> SessionConfig {
    SessionConfig::builder()
        .scenario(job.cell.scenario.build(job.duration, job.seed))
        .scheduler(job.cell.scheduler)
        .fec(job.cell.fec)
        .streams(job.cell.streams)
        .duration(job.duration)
        .seed(job.seed)
        .trace(trace)
        .build()
        .expect("valid config")
}

fn bench_session_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("session/trace_overhead_10s_driving");
    group.sample_size(10);
    let job = driving_job();
    group.bench_function("untraced", |b| {
        b.iter(|| std::hint::black_box(&job).run_uncached().frames_decoded);
    });
    group.bench_function("traced_off", |b| {
        b.iter(|| {
            Session::new(session_with(
                std::hint::black_box(&job),
                TraceHandle::disabled(),
            ))
            .run()
            .frames_decoded
        });
    });
    group.bench_function("traced_ring", |b| {
        b.iter(|| {
            Session::new(session_with(
                std::hint::black_box(&job),
                TraceHandle::new(Arc::new(RingSink::new(1 << 20))),
            ))
            .run()
            .frames_decoded
        });
    });
    group.finish();
}

criterion_group!(benches, bench_emit, bench_session_overhead);
criterion_main!(benches);
