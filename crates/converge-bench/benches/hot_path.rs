//! Criterion micro-benches for the event-loop hot path introduced by the
//! perf work: slab-backed event-queue push/pop-batch, arena alloc/free,
//! and the XOR FEC group encode in both scalar and chunked form.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use converge_net::event::EventQueue;
use converge_net::{Arena, SimTime};
use converge_rtp::fec;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");

    // Push/pop churn at steady-state depth: the session keeps a handful
    // of timers plus every in-flight packet queued.
    for depth in [16usize, 256, 4096] {
        group.bench_with_input(BenchmarkId::new("push_pop", depth), &depth, |b, &depth| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..depth {
                q.schedule(SimTime::from_micros(i as u64), i as u64);
            }
            let mut t = depth as u64;
            b.iter(|| {
                let (at, ev) = q.pop().expect("queue stays non-empty");
                std::hint::black_box((at, ev));
                q.schedule(SimTime::from_micros(t), t);
                t += 1;
            });
        });
    }

    // Batched drain of same-timestamp events — the shape the session loop
    // hits every frame tick, when ~36 packet events land on one instant.
    for batch in [8usize, 36, 128] {
        group.bench_with_input(BenchmarkId::new("drain_due", batch), &batch, |b, &batch| {
            let mut out: Vec<(SimTime, u64)> = Vec::with_capacity(batch);
            let mut t = 0u64;
            b.iter(|| {
                let mut q: EventQueue<u64> = EventQueue::new();
                let at = SimTime::from_micros(t);
                for i in 0..batch {
                    q.schedule(at, i as u64);
                }
                out.clear();
                q.drain_due_into(at, &mut out);
                std::hint::black_box(out.len());
                t += 1;
            });
        });
    }
    group.finish();
}

fn bench_arena(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena");

    // Alloc/free churn with a warm free list — the steady state of the
    // in-flight packet arena (every send inserts, every delivery removes).
    group.bench_function("alloc_free_warm", |b| {
        let mut arena: Arena<[u8; 64]> = Arena::with_capacity(1024);
        let keys: Vec<_> = (0..512).map(|_| arena.insert([0u8; 64])).collect();
        for k in keys {
            arena.remove(k);
        }
        b.iter(|| {
            let k = arena.insert([7u8; 64]);
            std::hint::black_box(arena.get(k));
            arena.remove(k).expect("just inserted");
        });
    });

    // Bulk fill/drain: a burst of sends followed by their deliveries.
    group.bench_function("bulk_64", |b| {
        let mut arena: Arena<[u8; 64]> = Arena::with_capacity(128);
        let mut keys = Vec::with_capacity(64);
        b.iter(|| {
            for _ in 0..64 {
                keys.push(arena.insert([1u8; 64]));
            }
            for k in keys.drain(..) {
                arena.remove(k).expect("inserted this iteration");
            }
        });
    });
    group.finish();
}

fn bench_fec_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fec/encode_kernel");

    // A realistic FEC group: 8 MTU-sized media payloads, one repair.
    let pkts: Vec<(u16, Bytes)> = (0..8u16)
        .map(|s| {
            let payload: Vec<u8> = (0..1200).map(|i| (i as u8).wrapping_mul(s as u8 + 3)).collect();
            (s, Bytes::from(payload))
        })
        .collect();

    group.bench_function("group_encode", |b| {
        b.iter(|| fec::encode_one(std::hint::black_box(&pkts)));
    });

    // The two XOR kernels head to head on one payload.
    let src: Vec<u8> = (0..1200).map(|i| i as u8).collect();
    group.bench_function("xor_chunked", |b| {
        let mut acc = vec![0u8; 1200];
        b.iter(|| fec::xor_into(std::hint::black_box(&mut acc), std::hint::black_box(&src)));
    });
    group.bench_function("xor_scalar", |b| {
        let mut acc = vec![0u8; 1200];
        b.iter(|| fec::xor_into_scalar(std::hint::black_box(&mut acc), std::hint::black_box(&src)));
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_arena, bench_fec_kernels);
criterion_main!(benches);
