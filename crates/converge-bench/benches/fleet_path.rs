//! Criterion micro-benches for the fleet engine's hot path: timer-wheel
//! insert/advance, the shared event queue under fleet-shaped churn, and
//! SFU ingress/fan-out offers. These are the per-event costs that bound
//! sessions-per-core at fleet scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use converge_net::event::EventQueue;
use converge_net::{PathId, SfuConfig, SfuNode, SimTime, TimerWheel};

fn bench_timer_wheel(c: &mut Criterion) {
    let mut group = c.benchmark_group("timer_wheel");

    // Steady-state insert + pop at realistic pending depths: every
    // session keeps ~5 armed timers, so 1k sessions ≈ 5k pending.
    for pending in [64usize, 1024, 8192] {
        group.bench_with_input(
            BenchmarkId::new("insert_pop", pending),
            &pending,
            |b, &pending| {
                let mut wheel: TimerWheel<u64> = TimerWheel::new();
                for i in 0..pending {
                    // Spread over ~33 ms, the frame-tick horizon.
                    wheel.schedule(SimTime::from_micros((i as u64 * 37) % 33_333 + 1), i as u64);
                }
                let mut due: Vec<(SimTime, u64)> = Vec::with_capacity(16);
                let mut now = 0u64;
                b.iter(|| {
                    now += 1_024;
                    wheel.pop_due_into(SimTime::from_micros(now), &mut due);
                    for &(_, item) in &due {
                        wheel.schedule(SimTime::from_micros(now + 1 + (item % 33_333)), item);
                    }
                    std::hint::black_box(due.len());
                    due.clear();
                });
            },
        );
    }

    // Pure advance over an idle stretch: the cost of skipping dead air,
    // which must stay near zero for idle sessions to be free.
    group.bench_function("advance_idle_1s", |b| {
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut due: Vec<(SimTime, u64)> = Vec::new();
        let mut now = 0u64;
        b.iter(|| {
            now += 1_000_000;
            wheel.schedule(SimTime::from_micros(now + 500_000), now);
            wheel.pop_due_into(SimTime::from_micros(now + 999_999), &mut due);
            std::hint::black_box(due.len());
            due.clear();
        });
    });
    group.finish();
}

fn bench_shard_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_queue");

    // Push/drain churn at the depths a shard sees: one conference in
    // flight (~100s of packet events) up to a full batch of conferences.
    for depth in [128usize, 2048, 16384] {
        group.bench_with_input(BenchmarkId::new("push_pop_due", depth), &depth, |b, &depth| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..depth {
                q.schedule(SimTime::from_micros(i as u64), i as u64);
            }
            let mut t = depth as u64;
            b.iter(|| {
                let at = q.peek_time().expect("queue stays non-empty");
                while let Some(ev) = q.pop_due(at) {
                    std::hint::black_box(ev);
                    q.schedule(SimTime::from_micros(t), t);
                    t += 1;
                }
            });
        });
    }

    // Batch reset: clearing a drained queue between conference batches
    // must keep its allocations (O(1) amortized, no refill cost).
    group.bench_function("clear_reuse_1024", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        b.iter(|| {
            for i in 0..1024u64 {
                q.schedule(SimTime::from_micros(i), i);
            }
            q.clear();
            std::hint::black_box(q.len());
        });
    });
    group.finish();
}

fn bench_sfu_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("sfu_fanout");

    // One media packet in, fanout-1 copies out — the SFU's unit of work.
    for fanout in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("ingress_egress", fanout), &fanout, |b, &fanout| {
            let mut sfu = SfuNode::new(SfuConfig::for_bottleneck(8_000_000, fanout));
            let members: Vec<_> = (0..fanout)
                .map(|_| sfu.register_member(&[PathId(0), PathId(1)]))
                .collect();
            let mut now = 0u64;
            b.iter(|| {
                now += 500;
                let at = SimTime::from_micros(now);
                let fate = sfu.offer_ingress(members[0], at, 1_200);
                std::hint::black_box(fate);
                for _ in 1..fanout {
                    std::hint::black_box(sfu.offer_egress(at, 1_200));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_timer_wheel, bench_shard_queue, bench_sfu_fanout);
criterion_main!(benches);
