//! ICE-lite connectivity establishment over the emulated network.
//!
//! The paper extends ICE "to obtain possible network connections for
//! multiple paths" (§5). This module implements the minimal machinery that
//! negotiation needs: gather one host candidate per local interface, pair
//! local and remote candidates that share an interface/path, run a
//! connectivity check per pair (a request/response over the emulated path),
//! and nominate one pair per path ID.

use std::collections::BTreeMap;

use converge_net::{PathId, SimTime};

use crate::sdp::Candidate;

/// A local network interface mapped onto an emulated path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interface {
    /// Interface name ("wifi0", "cell0", ...).
    pub name: String,
    /// The emulated path this interface reaches the peer over.
    pub path: PathId,
    /// Preference: higher wins when multiple interfaces share a path.
    pub preference: u32,
}

/// State of one candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairState {
    /// Created; no check sent yet.
    Waiting,
    /// Check sent; awaiting response.
    InProgress,
    /// Check round-tripped.
    Succeeded,
    /// Check timed out.
    Failed,
}

/// A local×remote candidate pair under check.
#[derive(Debug, Clone)]
pub struct CandidatePair {
    /// Path the pair uses.
    pub path: PathId,
    /// Local candidate address.
    pub local: String,
    /// Remote candidate address.
    pub remote: String,
    /// Pair priority (max of candidate priorities; simplified).
    pub priority: u64,
    /// Check state.
    pub state: PairState,
    /// When the outstanding check was sent.
    pub check_sent_at: Option<SimTime>,
}

/// An ICE-lite agent for one endpoint.
#[derive(Debug)]
pub struct IceAgent {
    interfaces: Vec<Interface>,
    pairs: Vec<CandidatePair>,
    nominated: BTreeMap<PathId, usize>,
    check_timeout: converge_net::SimDuration,
}

/// A connectivity-check message carried over the emulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckMessage {
    /// Path being checked.
    pub path: PathId,
    /// Pair index at the sender (echoed by the responder).
    pub pair_index: usize,
    /// True for the response leg.
    pub is_response: bool,
}

impl IceAgent {
    /// Creates an agent that owns the given interfaces.
    pub fn new(interfaces: Vec<Interface>) -> Self {
        IceAgent {
            interfaces,
            pairs: Vec::new(),
            nominated: BTreeMap::new(),
            check_timeout: converge_net::SimDuration::from_millis(1_000),
        }
    }

    /// Gathers host candidates: one per interface, priority from the
    /// interface preference.
    pub fn gather_candidates(&self) -> Vec<Candidate> {
        self.interfaces
            .iter()
            .map(|i| Candidate {
                foundation: format!("host-{}", i.name),
                component: 1,
                priority: (i.preference as u64) << 8 | i.path.0 as u64,
                address: i.name.clone(),
                port: 9000 + i.path.0 as u16,
            })
            .collect()
    }

    /// Forms the check list by pairing local interfaces with remote
    /// candidates reachable over the same path (address families match in
    /// the emulation when the path IDs encoded in ports match).
    pub fn form_pairs(&mut self, remote: &[Candidate]) {
        self.pairs.clear();
        self.nominated.clear();
        for iface in &self.interfaces {
            for rc in remote {
                let remote_path = (rc.port.wrapping_sub(9000)) as u8;
                if remote_path == iface.path.0 {
                    self.pairs.push(CandidatePair {
                        path: iface.path,
                        local: iface.name.clone(),
                        remote: rc.address.clone(),
                        priority: (iface.preference as u64).max(rc.priority),
                        state: PairState::Waiting,
                        check_sent_at: None,
                    });
                }
            }
        }
        // Highest priority first per path.
        self.pairs
            .sort_by_key(|p| (p.path, std::cmp::Reverse(p.priority)));
    }

    /// The current check list (tests/telemetry).
    pub fn pairs(&self) -> &[CandidatePair] {
        &self.pairs
    }

    /// Produces the next connectivity checks to transmit (one per waiting
    /// pair), marking them in-progress.
    pub fn next_checks(&mut self, now: SimTime) -> Vec<CheckMessage> {
        let mut out = Vec::new();
        for (i, pair) in self.pairs.iter_mut().enumerate() {
            if pair.state == PairState::Waiting {
                pair.state = PairState::InProgress;
                pair.check_sent_at = Some(now);
                out.push(CheckMessage {
                    path: pair.path,
                    pair_index: i,
                    is_response: false,
                });
            }
        }
        out
    }

    /// Handles an incoming check or response; returns a response to send
    /// back when `msg` was a request.
    pub fn on_message(&mut self, now: SimTime, msg: CheckMessage) -> Option<CheckMessage> {
        if msg.is_response {
            if let Some(pair) = self.pairs.get_mut(msg.pair_index) {
                if pair.state == PairState::InProgress {
                    pair.state = PairState::Succeeded;
                    let _ = now;
                    // Nominate the first (highest-priority) succeeded pair
                    // per path.
                    self.nominated.entry(msg.path).or_insert(msg.pair_index);
                }
            }
            None
        } else {
            Some(CheckMessage {
                is_response: true,
                ..msg
            })
        }
    }

    /// Fails any in-progress checks older than the timeout.
    pub fn expire_checks(&mut self, now: SimTime) {
        for pair in &mut self.pairs {
            if pair.state == PairState::InProgress {
                if let Some(sent) = pair.check_sent_at {
                    if now.saturating_since(sent) > self.check_timeout {
                        pair.state = PairState::Failed;
                    }
                }
            }
        }
    }

    /// The nominated pair per path, once checks succeed.
    pub fn nominated(&self) -> Vec<(PathId, &CandidatePair)> {
        self.nominated
            .iter()
            .filter_map(|(&path, &idx)| self.pairs.get(idx).map(|p| (path, p)))
            .collect()
    }

    /// Paths with a working (nominated) pair.
    pub fn connected_paths(&self) -> Vec<PathId> {
        self.nominated.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent() -> IceAgent {
        IceAgent::new(vec![
            Interface {
                name: "wifi0".into(),
                path: PathId(0),
                preference: 200,
            },
            Interface {
                name: "cell0".into(),
                path: PathId(1),
                preference: 100,
            },
        ])
    }

    #[test]
    fn gathers_one_candidate_per_interface() {
        let cands = agent().gather_candidates();
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].address, "wifi0");
        assert_eq!(cands[1].port, 9001);
    }

    #[test]
    fn pairs_match_by_path() {
        let mut a = agent();
        let remote = agent().gather_candidates();
        a.form_pairs(&remote);
        assert_eq!(a.pairs().len(), 2);
        assert!(a
            .pairs()
            .iter()
            .all(|p| { (p.local == "wifi0") == (p.path == PathId(0)) }));
    }

    #[test]
    fn full_handshake_nominates_both_paths() {
        let mut alice = agent();
        let mut bob = agent();
        let bob_cands = bob.gather_candidates();
        alice.form_pairs(&bob_cands);
        bob.form_pairs(&alice.gather_candidates());

        let t0 = SimTime::ZERO;
        let checks = alice.next_checks(t0);
        assert_eq!(checks.len(), 2);
        for check in checks {
            // Bob answers; Alice processes the response.
            let resp = bob.on_message(t0, check).expect("request yields response");
            assert!(alice.on_message(SimTime::from_millis(50), resp).is_none());
        }
        let connected = alice.connected_paths();
        assert_eq!(connected, vec![PathId(0), PathId(1)]);
        assert_eq!(alice.nominated().len(), 2);
    }

    #[test]
    fn lost_check_times_out() {
        let mut a = agent();
        a.form_pairs(&agent().gather_candidates());
        let _ = a.next_checks(SimTime::ZERO);
        a.expire_checks(SimTime::from_millis(500));
        assert!(a.pairs().iter().all(|p| p.state == PairState::InProgress));
        a.expire_checks(SimTime::from_millis(1_500));
        assert!(a.pairs().iter().all(|p| p.state == PairState::Failed));
        assert!(a.connected_paths().is_empty());
    }

    #[test]
    fn checks_emitted_once() {
        let mut a = agent();
        a.form_pairs(&agent().gather_candidates());
        assert_eq!(a.next_checks(SimTime::ZERO).len(), 2);
        assert!(a.next_checks(SimTime::ZERO).is_empty());
    }

    #[test]
    fn no_pairs_without_matching_paths() {
        let mut a = agent();
        // Remote has only path 7.
        let remote = vec![Candidate {
            foundation: "f".into(),
            component: 1,
            priority: 1,
            address: "x".into(),
            port: 9007,
        }];
        a.form_pairs(&remote);
        assert!(a.pairs().is_empty());
    }
}
