//! Connection status monitoring (paper §5).
//!
//! "To prevent disruptions between Converge's multipath management and
//! WebRTC's existing connection migration (CM), we added a wrapper to
//! monitor the connection status and synchronize it with the WebRTC
//! connection management system." This module is that wrapper: it tracks
//! per-path liveness from packet arrivals and consent-style keepalives,
//! debounces transitions, and emits events the session layer uses to mark
//! paths up or down at the transport level (distinct from the *scheduler's*
//! feedback-driven disablement, which is a QoE decision about live paths).

use std::collections::BTreeMap;

use converge_net::{PathId, SimDuration, SimTime};
use converge_trace::{LinkState, TraceEvent, TraceHandle};

/// Liveness state of one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathState {
    /// Connectivity confirmed recently.
    Up,
    /// Nothing heard for a while; candidate for failure.
    Suspect,
    /// Declared dead; WebRTC CM would tear down / re-establish here.
    Down,
}

/// A state-change event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathEvent {
    /// The path whose state changed.
    pub path: PathId,
    /// The new state.
    pub state: PathState,
    /// When the transition was declared.
    pub at: SimTime,
}

/// Configuration of the monitor's timers.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Silence after which a path becomes suspect.
    pub suspect_after: SimDuration,
    /// Silence after which a suspect path is declared down.
    pub down_after: SimDuration,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            suspect_after: SimDuration::from_millis(1_500),
            down_after: SimDuration::from_secs(5),
        }
    }
}

/// Per-path connection monitor.
#[derive(Debug)]
pub struct ConnectionMonitor {
    config: MonitorConfig,
    paths: BTreeMap<PathId, PathRecord>,
    trace: TraceHandle,
}

fn link_state(state: PathState) -> LinkState {
    match state {
        PathState::Up => LinkState::Up,
        PathState::Suspect => LinkState::Suspect,
        PathState::Down => LinkState::Down,
    }
}

#[derive(Debug, Clone, Copy)]
struct PathRecord {
    state: PathState,
    last_heard: SimTime,
}

impl ConnectionMonitor {
    /// Creates a monitor over the given paths, all initially up at t=0.
    pub fn new(config: MonitorConfig, paths: &[PathId]) -> Self {
        ConnectionMonitor {
            config,
            paths: paths
                .iter()
                .map(|&p| {
                    (
                        p,
                        PathRecord {
                            state: PathState::Up,
                            last_heard: SimTime::ZERO,
                        },
                    )
                })
                .collect(),
            trace: TraceHandle::disabled(),
        }
    }

    /// Installs a trace handle; the monitor then emits a
    /// [`TraceEvent::MonitorEdge`] per state transition.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Current state of a path.
    pub fn state(&self, path: PathId) -> Option<PathState> {
        self.paths.get(&path).map(|r| r.state)
    }

    /// Paths currently considered usable (up or suspect — suspect paths
    /// still carry traffic while being probed, as WebRTC does during
    /// consent-freshness checks).
    pub fn usable_paths(&self) -> Vec<PathId> {
        self.paths
            .iter()
            .filter(|(_, r)| r.state != PathState::Down)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Records that anything (media, RTCP, probe echo) arrived via `path`.
    /// Returns an event if this resurrects a suspect/down path.
    pub fn on_activity(&mut self, now: SimTime, path: PathId) -> Option<PathEvent> {
        let rec = self.paths.get_mut(&path)?;
        rec.last_heard = now;
        if rec.state != PathState::Up {
            rec.state = PathState::Up;
            self.trace.emit(
                now,
                TraceEvent::MonitorEdge {
                    path,
                    state: LinkState::Up,
                },
            );
            return Some(PathEvent {
                path,
                state: PathState::Up,
                at: now,
            });
        }
        None
    }

    /// Advances the timers; returns transitions that fired.
    pub fn poll(&mut self, now: SimTime) -> Vec<PathEvent> {
        let mut events = Vec::new();
        for (&path, rec) in self.paths.iter_mut() {
            let silence = now.saturating_since(rec.last_heard);
            let next = if silence >= self.config.down_after {
                PathState::Down
            } else if silence >= self.config.suspect_after {
                PathState::Suspect
            } else {
                PathState::Up
            };
            // Only monotone degradations happen here; recovery goes through
            // `on_activity`.
            let degrade = matches!(
                (rec.state, next),
                (PathState::Up, PathState::Suspect)
                    | (PathState::Up, PathState::Down)
                    | (PathState::Suspect, PathState::Down)
            );
            if degrade {
                rec.state = next;
                self.trace.emit(
                    now,
                    TraceEvent::MonitorEdge {
                        path,
                        state: link_state(next),
                    },
                );
                events.push(PathEvent {
                    path,
                    state: next,
                    at: now,
                });
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: PathId = PathId(0);
    const P1: PathId = PathId(1);

    fn monitor() -> ConnectionMonitor {
        ConnectionMonitor::new(MonitorConfig::default(), &[P0, P1])
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn starts_up() {
        let m = monitor();
        assert_eq!(m.state(P0), Some(PathState::Up));
        assert_eq!(m.usable_paths(), vec![P0, P1]);
    }

    #[test]
    fn silence_degrades_to_suspect_then_down() {
        let mut m = monitor();
        m.on_activity(t(0), P0);
        m.on_activity(t(0), P1);
        // Keep P0 alive; let P1 go silent.
        m.on_activity(t(2_000), P0);
        let evs = m.poll(t(2_000));
        assert_eq!(
            evs,
            vec![PathEvent {
                path: P1,
                state: PathState::Suspect,
                at: t(2_000)
            }]
        );
        assert_eq!(m.usable_paths(), vec![P0, P1], "suspect still usable");
        m.on_activity(t(5_500), P0);
        let evs = m.poll(t(5_500));
        assert_eq!(
            evs,
            vec![PathEvent {
                path: P1,
                state: PathState::Down,
                at: t(5_500)
            }]
        );
        assert_eq!(m.usable_paths(), vec![P0]);
    }

    #[test]
    fn activity_resurrects_path() {
        let mut m = monitor();
        m.poll(t(10_000)); // both go down
        assert!(m.usable_paths().is_empty());
        let ev = m.on_activity(t(10_500), P1).expect("resurrection event");
        assert_eq!(ev.state, PathState::Up);
        assert_eq!(m.usable_paths(), vec![P1]);
    }

    #[test]
    fn steady_activity_emits_nothing() {
        let mut m = monitor();
        for ms in (0..10_000).step_by(500) {
            assert!(m.on_activity(t(ms), P0).is_none());
            assert!(m.on_activity(t(ms), P1).is_none());
            assert!(m.poll(t(ms)).is_empty());
        }
    }

    #[test]
    fn transitions_fire_once() {
        let mut m = monitor();
        assert_eq!(m.poll(t(2_000)).len(), 2); // both suspect
        assert!(m.poll(t(2_100)).is_empty(), "no repeat events");
        assert_eq!(m.poll(t(6_000)).len(), 2); // both down
        assert!(m.poll(t(7_000)).is_empty());
    }

    #[test]
    fn unknown_path_ignored() {
        let mut m = monitor();
        assert!(m.on_activity(t(0), PathId(9)).is_none());
        assert_eq!(m.state(PathId(9)), None);
    }
}
