//! # converge-signal
//!
//! Connection establishment for the Converge (SIGCOMM 2023) reproduction.
//! The paper modifies three WebRTC protocols for multipath (section 5):
//! SDP advertises multipath capability, ICE gathers connections for
//! multiple paths, and the session falls back to standard single-path
//! WebRTC when either endpoint lacks multipath support.
//!
//! - [`sdp`]: an SDP subset with the `a=x-converge-multipath` capability
//!   attribute and path-set negotiation (backward compatible with legacy
//!   peers).
//! - [`ice`]: ICE-lite candidate gathering, pairing, connectivity checks,
//!   and per-path nomination over the emulated network.
//! - [`monitor`]: the connection-status wrapper that synchronizes Converge's
//!   multipath management with WebRTC connection management (per-path
//!   liveness with debounced up/suspect/down transitions).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ice;
pub mod monitor;
pub mod sdp;

pub use ice::{CandidatePair, CheckMessage, IceAgent, Interface, PairState};
pub use monitor::{ConnectionMonitor, MonitorConfig, PathEvent, PathState};
pub use sdp::{Candidate, MediaSection, SdpError, SessionDescription};
