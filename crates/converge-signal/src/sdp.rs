//! SDP subset with the Converge multipath capability attribute.
//!
//! The paper modifies SDP "to advertise the multipath capabilities of each
//! peer" (§5) and falls back to standard WebRTC when the far end does not
//! support multipath. This module implements just enough of SDP for that
//! negotiation: session-level fields, one video media section per camera
//! stream, ICE credentials, candidates, and an `a=x-converge-multipath`
//! attribute listing the path IDs the peer is willing to use.

use std::fmt::Write as _;

/// Errors from SDP parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdpError {
    /// A line did not match `type=value`.
    BadLine(usize),
    /// Mandatory `v=`/`o=`/`s=` preamble missing or out of order.
    BadPreamble,
    /// An attribute had an invalid value.
    BadAttribute(String),
}

impl std::fmt::Display for SdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SdpError::BadLine(n) => write!(f, "malformed SDP line {n}"),
            SdpError::BadPreamble => write!(f, "missing or misordered v=/o=/s= preamble"),
            SdpError::BadAttribute(a) => write!(f, "invalid attribute: {a}"),
        }
    }
}

impl std::error::Error for SdpError {}

/// An ICE candidate advertised in SDP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Foundation string grouping related candidates.
    pub foundation: String,
    /// Component (1 = RTP).
    pub component: u32,
    /// Priority; higher is preferred.
    pub priority: u64,
    /// Address, here an interface name in the emulated network.
    pub address: String,
    /// Port.
    pub port: u16,
}

/// One media section (a camera stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaSection {
    /// Media identification tag (`a=mid:`).
    pub mid: String,
    /// RTP payload types offered.
    pub payload_types: Vec<u8>,
    /// Candidates for this media.
    pub candidates: Vec<Candidate>,
}

/// A parsed or constructed session description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionDescription {
    /// Origin username.
    pub origin: String,
    /// Session identifier.
    pub session_id: u64,
    /// ICE username fragment.
    pub ice_ufrag: String,
    /// ICE password.
    pub ice_pwd: String,
    /// Path IDs the peer supports for multipath; empty means the peer is a
    /// legacy single-path WebRTC endpoint.
    pub multipath_paths: Vec<u8>,
    /// Media sections, one per camera stream.
    pub media: Vec<MediaSection>,
}

impl SessionDescription {
    /// A minimal offer for `streams` camera streams over `paths`.
    pub fn offer(origin: &str, session_id: u64, streams: u8, paths: &[u8]) -> Self {
        SessionDescription {
            origin: origin.to_string(),
            session_id,
            ice_ufrag: format!("uf{session_id:08x}"),
            ice_pwd: format!("pw{session_id:016x}"),
            multipath_paths: paths.to_vec(),
            media: (0..streams)
                .map(|i| MediaSection {
                    mid: format!("video{i}"),
                    payload_types: vec![96, 97, 98, 99],
                    candidates: Vec::new(),
                })
                .collect(),
        }
    }

    /// Whether this endpoint advertised multipath support.
    pub fn supports_multipath(&self) -> bool {
        !self.multipath_paths.is_empty()
    }

    /// The path set both descriptions agree on (the negotiated multipath
    /// configuration); empty means fall back to single-path WebRTC.
    pub fn negotiated_paths(&self, other: &SessionDescription) -> Vec<u8> {
        self.multipath_paths
            .iter()
            .copied()
            .filter(|p| other.multipath_paths.contains(p))
            .collect()
    }

    /// Serializes to SDP text.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "v=0");
        let _ = writeln!(
            out,
            "o={} {} 0 IN IP4 0.0.0.0",
            self.origin, self.session_id
        );
        let _ = writeln!(out, "s=converge");
        let _ = writeln!(out, "t=0 0");
        let _ = writeln!(out, "a=ice-ufrag:{}", self.ice_ufrag);
        let _ = writeln!(out, "a=ice-pwd:{}", self.ice_pwd);
        if !self.multipath_paths.is_empty() {
            let list: Vec<String> = self.multipath_paths.iter().map(|p| p.to_string()).collect();
            let _ = writeln!(out, "a=x-converge-multipath:{}", list.join(","));
        }
        for m in &self.media {
            let pts: Vec<String> = m.payload_types.iter().map(|p| p.to_string()).collect();
            let _ = writeln!(out, "m=video 9 UDP/RTP {}", pts.join(" "));
            let _ = writeln!(out, "a=mid:{}", m.mid);
            for c in &m.candidates {
                let _ = writeln!(
                    out,
                    "a=candidate:{} {} udp {} {} {} typ host",
                    c.foundation, c.component, c.priority, c.address, c.port
                );
            }
        }
        out
    }

    /// Parses SDP text produced by [`SessionDescription::serialize`] (plus
    /// tolerant handling of unknown attributes, as real SDP requires).
    pub fn parse(text: &str) -> Result<Self, SdpError> {
        let mut lines = text.lines().enumerate().peekable();

        // Preamble: v=, o=, s= in order.
        let (_, v) = lines.next().ok_or(SdpError::BadPreamble)?;
        if v.trim() != "v=0" {
            return Err(SdpError::BadPreamble);
        }
        let (_, o) = lines.next().ok_or(SdpError::BadPreamble)?;
        let o = o.strip_prefix("o=").ok_or(SdpError::BadPreamble)?;
        let mut o_parts = o.split_whitespace();
        let origin = o_parts.next().ok_or(SdpError::BadPreamble)?.to_string();
        let session_id: u64 = o_parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(SdpError::BadPreamble)?;
        let (_, s) = lines.next().ok_or(SdpError::BadPreamble)?;
        if !s.starts_with("s=") {
            return Err(SdpError::BadPreamble);
        }

        let mut desc = SessionDescription {
            origin,
            session_id,
            ice_ufrag: String::new(),
            ice_pwd: String::new(),
            multipath_paths: Vec::new(),
            media: Vec::new(),
        };

        for (lineno, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (kind, value) = line.split_once('=').ok_or(SdpError::BadLine(lineno + 1))?;
            match kind {
                "a" => Self::parse_attribute(&mut desc, value)?,
                "m" => {
                    let mut parts = value.split_whitespace();
                    let media_kind = parts.next().unwrap_or("");
                    if media_kind != "video" {
                        continue; // ignore non-video sections
                    }
                    let _port = parts.next();
                    let _proto = parts.next();
                    let payload_types: Vec<u8> = parts.filter_map(|p| p.parse().ok()).collect();
                    desc.media.push(MediaSection {
                        mid: String::new(),
                        payload_types,
                        candidates: Vec::new(),
                    });
                }
                // Tolerated / ignored line types.
                "t" | "c" | "b" | "o" | "s" | "v" => {}
                _ => return Err(SdpError::BadLine(lineno + 1)),
            }
        }
        Ok(desc)
    }

    fn parse_attribute(desc: &mut SessionDescription, value: &str) -> Result<(), SdpError> {
        let (name, rest) = value.split_once(':').unwrap_or((value, ""));
        match name {
            "ice-ufrag" => desc.ice_ufrag = rest.to_string(),
            "ice-pwd" => desc.ice_pwd = rest.to_string(),
            "x-converge-multipath" => {
                for part in rest.split(',') {
                    let id: u8 = part
                        .trim()
                        .parse()
                        .map_err(|_| SdpError::BadAttribute(value.to_string()))?;
                    desc.multipath_paths.push(id);
                }
            }
            "mid" => {
                if let Some(m) = desc.media.last_mut() {
                    m.mid = rest.to_string();
                }
            }
            "candidate" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() < 5 {
                    return Err(SdpError::BadAttribute(value.to_string()));
                }
                let cand = Candidate {
                    foundation: parts[0].to_string(),
                    component: parts[1]
                        .parse()
                        .map_err(|_| SdpError::BadAttribute(value.to_string()))?,
                    priority: parts[3]
                        .parse()
                        .map_err(|_| SdpError::BadAttribute(value.to_string()))?,
                    address: parts[4].to_string(),
                    port: parts.get(5).and_then(|p| p.parse().ok()).unwrap_or(9),
                };
                if let Some(m) = desc.media.last_mut() {
                    m.candidates.push(cand);
                }
            }
            _ => {} // unknown attributes are ignored, per SDP convention
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offer_roundtrips() {
        let mut offer = SessionDescription::offer("alice", 42, 2, &[0, 1]);
        offer.media[0].candidates.push(Candidate {
            foundation: "f0".into(),
            component: 1,
            priority: 100,
            address: "wifi0".into(),
            port: 5000,
        });
        let text = offer.serialize();
        let parsed = SessionDescription::parse(&text).unwrap();
        assert_eq!(parsed, offer);
    }

    #[test]
    fn legacy_peer_has_no_multipath() {
        let offer = SessionDescription::offer("bob", 1, 1, &[]);
        assert!(!offer.supports_multipath());
        let text = offer.serialize();
        assert!(!text.contains("x-converge-multipath"));
        let parsed = SessionDescription::parse(&text).unwrap();
        assert!(!parsed.supports_multipath());
    }

    #[test]
    fn negotiation_intersects_paths() {
        let a = SessionDescription::offer("a", 1, 1, &[0, 1, 2]);
        let b = SessionDescription::offer("b", 2, 1, &[1, 2, 3]);
        assert_eq!(a.negotiated_paths(&b), vec![1, 2]);
    }

    #[test]
    fn negotiation_with_legacy_falls_back() {
        let a = SessionDescription::offer("a", 1, 1, &[0, 1]);
        let legacy = SessionDescription::offer("b", 2, 1, &[]);
        assert!(a.negotiated_paths(&legacy).is_empty());
    }

    #[test]
    fn parse_rejects_missing_preamble() {
        assert_eq!(
            SessionDescription::parse("a=mid:video0\n"),
            Err(SdpError::BadPreamble)
        );
        assert_eq!(
            SessionDescription::parse("v=1\no=a 1 0 IN IP4 0\ns=x\n"),
            Err(SdpError::BadPreamble)
        );
    }

    #[test]
    fn parse_rejects_bad_multipath_attr() {
        let text = "v=0\no=a 1 0 IN IP4 0\ns=x\na=x-converge-multipath:zero,one\n";
        assert!(matches!(
            SessionDescription::parse(text),
            Err(SdpError::BadAttribute(_))
        ));
    }

    #[test]
    fn unknown_attributes_ignored() {
        let text = "v=0\no=a 1 0 IN IP4 0\ns=x\na=fancy-new-thing:whatever\n";
        let d = SessionDescription::parse(text).unwrap();
        assert_eq!(d.origin, "a");
    }

    #[test]
    fn multiple_media_sections() {
        let offer = SessionDescription::offer("a", 9, 3, &[0, 1]);
        let parsed = SessionDescription::parse(&offer.serialize()).unwrap();
        assert_eq!(parsed.media.len(), 3);
        assert_eq!(parsed.media[2].mid, "video2");
    }
}
